"""Plain-text reporting for the experiment harness."""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Fixed-width text table (benches print these; EXPERIMENTS.md quotes
    them verbatim)."""
    headers = [str(h) for h in headers]
    body = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def growth_factors(series):
    """Successive ratios of a numeric series (shape diagnostics).

    ``growth_factors([10, 20, 40]) == [2.0, 2.0]`` — a doubling series;
    constant-factor claims show up as flat ratio columns.
    """
    factors = []
    for a, b in zip(series, series[1:]):
        factors.append(round(b / a, 2) if a else float("inf"))
    return factors
