"""Measurement core: uniform vs non-uniform-with-correct-guesses.

The reproduced quantity per Table-1 row is the pair

* ``rounds(non-uniform, correct guesses Γ*)`` — what the paper's cited
  algorithm costs when every node is told the true global parameters;
* ``rounds(uniform, no knowledge)`` — what the transformed algorithm
  costs with empty inputs.

Theorems 1–3 predict ``uniform / non-uniform = O(s_f(f*))`` — a constant
for additive bounds, ``O(log f*)`` for product bounds.  Every
measurement also re-verifies both outputs with the row's problem.
"""

from __future__ import annotations

from pathlib import Path

from ..core.domain import PhysicalDomain
from ..local.algorithm import HostAlgorithm
from ..local.runner import run
from ..params import actual_parameters

#: Slack added to a non-uniform box's declared round bound when running it
#: to self-termination.  Declared bounds are aligned-schedule budgets; the
#: realized execution can run a handful of rounds past them (termination
#: detection, final announcement rounds, the ±1 conventions of the
#: composition layer).  Eight rounds covers every box in the registry
#: while still catching runaway executions as NonTerminationError.
NONUNIFORM_ROUND_SLACK = 8


class RowMeasurement:
    """One (row, graph) measurement."""

    __slots__ = (
        "label",
        "n",
        "delta",
        "params",
        "nonuniform_rounds",
        "nonuniform_ok",
        "uniform_rounds",
        "uniform_ok",
        "steps",
    )

    def __init__(self, label, n, delta, params):
        self.label = label
        self.n = n
        self.delta = delta
        self.params = params
        self.nonuniform_rounds = None
        self.nonuniform_ok = None
        self.uniform_rounds = None
        self.uniform_ok = None
        self.steps = None

    @property
    def ratio(self):
        if not self.nonuniform_rounds:
            return float("inf")
        return self.uniform_rounds / self.nonuniform_rounds

    def row(self):
        return [
            self.label,
            self.n,
            self.delta,
            self.nonuniform_rounds,
            "ok" if self.nonuniform_ok else "FAIL",
            self.uniform_rounds,
            "ok" if self.uniform_ok else "FAIL",
            f"{self.ratio:.1f}",
        ]


HEADERS = [
    "graph",
    "n",
    "Δ",
    "nonunif rounds",
    "valid",
    "uniform rounds",
    "valid",
    "ratio",
]


def measure_nonuniform(nonuniform, graph, *, seed=0):
    """Run the black box with oracle guesses; returns (rounds, outputs).

    LOCAL-algorithm boxes run to self-termination (their schedules are
    guess-determined); host orchestrations run restricted to their
    declared budget, which is also what the aligned model charges.
    """
    params = actual_parameters(
        graph, [p for p in nonuniform.bound.params]
    )
    for extra in nonuniform.algorithm.requires:
        if extra not in params:
            params.update(actual_parameters(graph, [extra]))
    for key in params:
        params[key] = max(1, params[key])
    budget = nonuniform.bound.rounds(
        {k: params[k] for k in nonuniform.bound.params}
    )
    box = nonuniform.algorithm
    if isinstance(box, HostAlgorithm):
        outputs, charged = box.run_restricted(
            PhysicalDomain(graph),
            budget,
            inputs=None,
            guesses=params,
            seed=seed,
            salt="oracle",
            default_output=nonuniform.default_output,
        )
        return charged, outputs, params
    result = run(
        graph,
        box,
        guesses=params,
        seed=seed,
        salt="oracle",
        max_rounds=budget + NONUNIFORM_ROUND_SLACK,
    )
    return result.rounds, result.outputs, params


def measure_row(row, label, graph, *, seed=0):
    """Measure one Table-1 row on one graph."""
    nonuniform, _, uniform = row.build()
    meas = RowMeasurement(label, graph.n, graph.max_degree, {})
    rounds, outputs, params = measure_nonuniform(
        nonuniform, graph, seed=seed
    )
    meas.params = params
    meas.nonuniform_rounds = rounds
    meas.nonuniform_ok = row.problem.is_solution(graph, {}, outputs)
    result = uniform.run(graph, seed=seed)
    meas.uniform_rounds = result.rounds
    meas.uniform_ok = row.problem.is_solution(graph, {}, result.outputs)
    meas.steps = len(result.steps)
    return meas


#: Repository root (this file lives at src/repro/bench/harness.py).
REPO_ROOT = Path(__file__).resolve().parents[3]


def write_report(name, text):
    """Persist a bench report under ``benchmarks/out/`` and echo it."""
    out_dir = REPO_ROOT / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
    return str(path)
