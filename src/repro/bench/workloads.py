"""Workload generators for the Table-1 experiments.

Each workload maps a size to a networkx graph; identities default to the
poly(n) scheme (assumption D8).  The suites mirror the regimes of the
paper's rows: general sparse graphs, controlled-degree regular graphs,
bounded-arboricity families and high-degree/low-diameter graphs.
"""

from __future__ import annotations

from ..graphs import families, identifiers
from ..local import SimGraph


def build_graph(graph, *, seed=0):
    """Networkx graph -> SimGraph with poly(n) identities."""
    idents = identifiers.poly_idents(graph, seed=seed)
    return SimGraph.from_networkx(graph, idents=idents)


WORKLOADS = {
    "gnp-sparse": lambda n, seed=0: families.gnp_avg_degree(n, 6.0, seed=seed),
    "gnp-dense": lambda n, seed=0: families.gnp(n, min(0.5, 24.0 / n), seed=seed),
    "regular-4": lambda n, seed=0: families.random_regular(
        n if (n * 4) % 2 == 0 else n + 1, 4, seed=seed
    ),
    "regular-8": lambda n, seed=0: families.random_regular(
        n if (n * 8) % 2 == 0 else n + 1, 8, seed=seed
    ),
    "tree": lambda n, seed=0: families.random_tree(n, seed=seed),
    "grid": lambda n, seed=0: families.grid(
        max(2, int(n**0.5)), max(2, int(n**0.5))
    ),
    "forest-3": lambda n, seed=0: families.forest_union(n, 3, seed=seed),
    "star-noise": lambda n, seed=0: families.star_with_noise(
        n, extra_edges=n // 2, seed=seed
    ),
    "udg": lambda n, seed=0: families.unit_disk(
        n, radius=min(0.5, 2.2 / (n**0.5)), seed=seed
    ),
}


def sized_suite(workload, sizes, *, seed=0):
    """Build ``[(label, SimGraph)]`` for a workload across sizes."""
    maker = WORKLOADS[workload]
    suite = []
    for n in sizes:
        graph = maker(n, seed=seed)
        suite.append((f"{workload}-n{graph.number_of_nodes()}", build_graph(graph, seed=seed)))
    return suite
