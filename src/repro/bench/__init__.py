"""Experiment harness shared by the ``benchmarks/`` directory."""

from .harness import (
    RowMeasurement,
    measure_nonuniform,
    measure_row,
    write_report,
)
from .reporting import format_table, growth_factors
from .workloads import WORKLOADS, build_graph, sized_suite

__all__ = [
    "RowMeasurement",
    "WORKLOADS",
    "build_graph",
    "format_table",
    "growth_factors",
    "measure_nonuniform",
    "measure_row",
    "sized_suite",
    "write_report",
]
