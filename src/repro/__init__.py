"""repro — uniform local algorithms via pruning.

A faithful, executable reproduction of:

    Amos Korman, Jean-Sébastien Sereni, Laurent Viennot.
    "Toward more localized local algorithms: removing assumptions
    concerning global knowledge."  PODC 2011 / Distributed Computing
    26(5-6), 2013.

The library provides:

* a LOCAL-model simulator (:mod:`repro.local`);
* graph families, identifier schemes and graph parameters
  (:mod:`repro.graphs`, :mod:`repro.params`);
* problem definitions with centralized verifiers (:mod:`repro.problems`);
* the paper's core machinery — pruning algorithms, set-sequences,
  alternating algorithms, and the transformers of Theorems 1–5
  (:mod:`repro.core`);
* implementations of the non-uniform algorithms of Table 1
  (:mod:`repro.algorithms`);
* an experiment harness regenerating Table 1, Corollary 1 and Figure 1
  (:mod:`repro.bench`, driven by the ``benchmarks/`` directory).
"""

from .version import __version__

__all__ = ["__version__"]
