"""Derived-graph constructions: line graphs and the clique product.

Section 5.1 of the paper constructs, without any global parameter, the
graph ``G'``: one clique ``C_u`` on ``deg(u)+1`` virtual nodes per node
``u``, plus the cross edges ``(u_i, v_i)`` for every physical edge
``(u, v)`` and every ``i ∈ [1, 1 + min(deg u, deg v)]``.  Maximal
independent sets of ``G'`` correspond one-to-one to ``(deg+1)``-colorings
of ``G``.

Section 5.2 and the edge-coloring rows run vertex-coloring algorithms on
the line graph ``L(G)``.

Both are materialized as :class:`~repro.local.virtual.VirtualSpec`
instances so the algorithms execute on the physical network through the
virtual-node layer.  Virtual identities are injective integer encodings
of (physical identity, index) pairs, keeping the identity space
polynomial in the physical one (assumption D8).
"""

from __future__ import annotations

from ..errors import InvalidInstanceError
from ..local.virtual import VirtualSpec


def clique_product_spec(graph):
    """The paper's ``G'``: cliques ``C_u`` joined by ``(u_i, v_i)`` edges.

    Virtual node ``(u, i)`` (``i ∈ 0..deg(u)``) is hosted at ``u``; clique
    edges are internal, cross edges ride the physical edge — dilation 1.

    Virtual identities: ``ident(u) * (M + 2) + i`` with ``M`` the largest
    physical identity, hence unique and ≤ ``(M+1)(M+2)``.
    """
    big = graph.max_ident + 2
    adj = {}
    ident = {}
    host = {}
    for u in graph.nodes:
        size = graph.degree(u) + 1
        for i in range(size):
            virt = (u, i)
            host[virt] = u
            ident[virt] = graph.ident[u] * big + i
            clique = [(u, j) for j in range(size) if j != i]
            adj[virt] = clique
    for u, v in graph.edges():
        limit = 1 + min(graph.degree(u), graph.degree(v))
        for i in range(limit):
            adj[(u, i)].append((v, i))
            adj[(v, i)].append((u, i))
    return VirtualSpec(host, ident, adj, graph)


def coloring_from_mis(graph, spec, mis_outputs):
    """Decode a MIS of the clique product into a ``(deg+1)``-coloring.

    Per Section 5.1, a MIS of ``G'`` hits every clique ``C_u`` exactly
    once; the index of the chosen virtual node is the color.  Raises
    :class:`InvalidInstanceError` when the input is not a MIS of ``G'``
    (e.g. some clique is missed) — callers that pass tentative vectors
    should verify first.
    """
    colors = {}
    for u in graph.nodes:
        chosen = [
            i
            for i in range(graph.degree(u) + 1)
            if mis_outputs.get((u, i)) == 1
        ]
        if len(chosen) != 1:
            raise InvalidInstanceError(
                f"clique of node {u!r} selected {len(chosen)} virtual nodes; "
                "input is not a MIS of the clique product"
            )
        colors[u] = chosen[0] + 1  # colors in [1, deg(u)+1]
    return colors


def line_graph_spec(graph):
    """The line graph ``L(G)`` as a virtual-node specification.

    Virtual node per physical edge, hosted at the endpoint with the
    smaller identity; two edge-nodes are adjacent iff the edges share an
    endpoint.  Some virtual edges need a two-hop relay (hosts ``u`` and
    ``w`` of edges ``(u,v)``, ``(v,w)`` may be non-adjacent), so the
    dilation is 2 in general.

    Virtual identities: ``ident(u) * (M + 2) + ident(v)`` for the edge
    ``(u, v)`` with ``ident(u) < ident(v)``.
    """
    big = graph.max_ident + 2
    host = {}
    ident = {}
    adj = {}
    incident = {u: [] for u in graph.nodes}
    for u, v in graph.edges():
        iu, iv = graph.ident[u], graph.ident[v]
        virt = (u, v) if iu < iv else (v, u)
        host[virt] = virt[0]
        ident[virt] = graph.ident[virt[0]] * big + graph.ident[virt[1]]
        adj[virt] = []
        incident[u].append(virt)
        incident[v].append(virt)
    for u in graph.nodes:
        edges_here = sorted(incident[u], key=lambda e: ident[e])
        for i, e in enumerate(edges_here):
            for f in edges_here[i + 1 :]:
                adj[e].append(f)
                adj[f].append(e)
    return VirtualSpec(host, ident, adj, graph)


def edge_of_virt(virt):
    """Physical edge represented by a line-graph virtual node."""
    return virt


def line_graph_max_degree(graph):
    """Δ(L(G)) = max over edges of deg(u)+deg(v)-2."""
    best = 0
    for u, v in graph.edges():
        best = max(best, graph.degree(u) + graph.degree(v) - 2)
    return best
