"""Graph substrate: families, identities, parameters, derived graphs."""

from . import families, identifiers
from .params import (
    arboricity_bounds,
    degeneracy,
    density_arboricity,
    graph_parameters,
    max_density,
    nash_williams_exact,
)
from .transforms import (
    clique_product_spec,
    coloring_from_mis,
    line_graph_max_degree,
    line_graph_spec,
)

__all__ = [
    "arboricity_bounds",
    "clique_product_spec",
    "coloring_from_mis",
    "degeneracy",
    "density_arboricity",
    "families",
    "graph_parameters",
    "identifiers",
    "line_graph_max_degree",
    "line_graph_spec",
    "max_density",
    "nash_williams_exact",
]
