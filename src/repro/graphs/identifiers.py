"""Identity-assignment schemes.

The paper assumes each node holds a unique integer identity ``Id(v)``
(Section 2) and — like the algorithms it transforms — treats the largest
identity ``m`` as a graph parameter (Section 5.2).  Our default schemes
keep ``m ≤ n³`` (the standard poly(n) identity-space assumption,
documented as D8 in DESIGN.md); adversarial schemes exist to stress the
dependence of algorithms on the identity space.
"""

from __future__ import annotations

import random

from ..errors import InvalidInstanceError


def compact_idents(graph, seed=0):
    """A random permutation of ``1..n``: the tightest identity space."""
    nodes = sorted(graph.nodes(), key=repr)
    rng = random.Random(seed)
    values = list(range(1, len(nodes) + 1))
    rng.shuffle(values)
    return dict(zip(nodes, values))


def poly_idents(graph, seed=0, exponent=3):
    """Distinct identities drawn from ``[1, n^exponent]`` (default n³).

    This is the identity regime assumed throughout the reproduction:
    ``m ≤ n^exponent`` keeps ``log* m = log* n + O(1)`` and ID bit-length
    ``O(log n)``.
    """
    nodes = sorted(graph.nodes(), key=repr)
    n = max(1, len(nodes))
    space = max(n, n**exponent)
    rng = random.Random(seed)
    values = rng.sample(range(1, space + 1), len(nodes))
    return dict(zip(nodes, values))


def sequential_idents(graph):
    """Identities ``1..n`` in label order (worst case for greedy chains)."""
    nodes = sorted(graph.nodes(), key=repr)
    return {u: i + 1 for i, u in enumerate(nodes)}


def adversarial_path_idents(graph):
    """Monotone identities along a BFS order.

    Produces long monotone identity paths — the classic bad case for
    naive greedy-by-identity symmetry breaking, used in tests to show why
    the implemented algorithms avoid that trap.
    """
    import networkx as nx

    order = []
    seen = set()
    for component in nx.connected_components(graph):
        root = min(component, key=repr)
        for u in nx.bfs_tree(graph, root).nodes():
            order.append(u)
            seen.add(u)
    for u in graph.nodes():
        if u not in seen:
            order.append(u)
    return {u: i + 1 for i, u in enumerate(order)}


def validate_idents(graph, idents):
    """Check identities are unique positive integers covering the graph."""
    missing = [u for u in graph.nodes() if u not in idents]
    if missing:
        raise InvalidInstanceError(f"{len(missing)} node(s) without identity")
    values = [idents[u] for u in graph.nodes()]
    if any((not isinstance(x, int)) or x <= 0 for x in values):
        raise InvalidInstanceError("identities must be positive integers")
    if len(set(values)) != len(values):
        raise InvalidInstanceError("identities must be unique")
    return True


SCHEMES = {
    "compact": compact_idents,
    "poly": poly_idents,
    "sequential": sequential_idents,
    "adversarial_path": adversarial_path_idents,
}
