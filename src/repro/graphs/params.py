"""Computation of the paper's graph parameters.

Section 2 evaluates running times against *non-decreasing
graph-parameters*; the ones the paper uses are:

* ``n`` — number of nodes;
* ``Δ`` — maximum degree;
* ``m`` — largest identity (Section 5.2 treats identities as colors);
* ``a`` — arboricity.

For arboricity we compute the *density arboricity*
``⌈max_H |E(H)| / |V(H)|⌉`` exactly via Goldberg's maximum-density-
subgraph reduction to max-flow.  It sandwiches the Nash–Williams
arboricity (``density ≤ a_NW ≤ degeneracy ≤ 2·density``), is
non-decreasing under subgraphs, and is the quantity our peeling
procedures are analysed against (every subgraph has average degree at
most twice it).  Exact Nash–Williams by brute force is provided for tiny
graphs as a test oracle.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import networkx as nx

from ..mathutils import int_ceil_div


def degeneracy(graph):
    """Exact degeneracy via min-degree peeling (0 for edgeless graphs)."""
    if graph.number_of_edges() == 0:
        return 0
    cores = nx.core_number(graph)
    return max(cores.values())


def max_density(graph):
    """Exact maximum subgraph density ``max_H m_H / n_H`` as a Fraction.

    Implements Goldberg's reduction: for a guessed density ``g`` the
    max-flow in an auxiliary network reveals whether some subgraph beats
    ``g``.  Distinct achievable densities are rationals with denominator
    ≤ n, so a binary search to precision ``1/n²`` isolates the optimum,
    recovered with ``Fraction.limit_denominator``.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if m == 0:
        return Fraction(0)

    def beats(g):
        """True iff some subgraph has density strictly above ``g``."""
        den = g.denominator
        num = g.numerator
        flow_net = nx.DiGraph()
        source, sink = ("s",), ("t",)
        for idx, (u, v) in enumerate(graph.edges()):
            e = ("e", idx)
            flow_net.add_edge(source, e, capacity=den)
            flow_net.add_edge(e, ("v", u), capacity=m * den + 1)
            flow_net.add_edge(e, ("v", v), capacity=m * den + 1)
        for u in graph.nodes():
            flow_net.add_edge(("v", u), sink, capacity=num)
        value = nx.maximum_flow_value(flow_net, source, sink)
        return value < m * den

    lo = Fraction(m, n)  # whole graph is a witness
    hi = Fraction(n, 2)  # density can never exceed (n-1)/2
    if not beats(lo):
        # The whole graph is already densest (common for regular graphs);
        # lo is achievable and nothing beats it.
        return lo
    precision = Fraction(1, 2 * n * n)
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if beats(mid):
            lo = mid
        else:
            hi = mid
    # The optimum is the unique rational with denominator ≤ n in (lo, hi].
    candidate = ((lo + hi) / 2).limit_denominator(n)
    if candidate <= lo:
        candidate = hi.limit_denominator(n)
    return candidate


def density_arboricity(graph):
    """``max(1, ⌈max_density⌉)`` — the library's arboricity parameter ``a``.

    Within [a_NW / 2, a_NW] of the Nash–Williams arboricity and
    non-decreasing under subgraphs; all peeling thresholds in
    :mod:`repro.algorithms.arboricity` are stated against it.
    """
    density = max_density(graph)
    return max(1, int_ceil_div(density.numerator, density.denominator))


def nash_williams_exact(graph, max_nodes=14):
    """Exact Nash–Williams arboricity by brute force (test oracle only).

    ``max over subgraphs H of ⌈m_H / (n_H - 1)⌉``; exponential in n, so
    guarded by ``max_nodes``.
    """
    n = graph.number_of_nodes()
    if n > max_nodes:
        raise ValueError(f"brute force limited to {max_nodes} nodes")
    if graph.number_of_edges() == 0:
        return 0
    nodes = list(graph.nodes())
    best = 1
    for size in range(2, n + 1):
        for subset in itertools.combinations(nodes, size):
            sub = graph.subgraph(subset)
            m_h = sub.number_of_edges()
            if m_h:
                best = max(best, int_ceil_div(m_h, size - 1))
    return best


def arboricity_bounds(graph):
    """Certified (lower, upper) bounds on Nash–Williams arboricity.

    ``⌈density⌉ ≤ a_NW ≤ degeneracy`` (a d-degenerate graph's peeling
    order orients edges into d forests).
    """
    lower = density_arboricity(graph) if graph.number_of_edges() else 0
    upper = degeneracy(graph)
    return max(lower, min(1, upper)), max(upper, lower)


def graph_parameters(sim_graph, *, with_arboricity=True):
    """All paper parameters of a :class:`~repro.local.graph.SimGraph`."""
    params = {
        "n": sim_graph.n,
        "Delta": sim_graph.max_degree,
        "m": sim_graph.max_ident,
    }
    if with_arboricity:
        params["a"] = density_arboricity(sim_graph.to_networkx())
    return params
