"""Graph families used across the paper's Table 1.

All generators return undirected :mod:`networkx` graphs with integer node
labels ``0..n-1``.  Identity assignment is a separate concern
(:mod:`repro.graphs.identifiers`) because several algorithms' bounds
depend on the identity space, not on the topology.

The families cover the regimes of Table 1:

* general graphs (:func:`gnp`, :func:`random_regular`) — rows with
  ``O(Δ + log* n)`` / n-only bounds;
* bounded-arboricity graphs (:func:`random_tree`, :func:`grid`,
  :func:`forest_union`, :func:`caterpillar`) — the Barenboim–Elkin rows;
* bounded-independence graphs (:func:`unit_disk`) — the
  Schneider–Wattenhofer uniform results cited in related work;
* high-degree, low-diameter graphs (:func:`star_with_noise`,
  :func:`complete`) — where n-only bounds beat ``O(Δ + log* n)``.
"""

from __future__ import annotations

import itertools
import math
import random

import networkx as nx

from ..errors import InvalidInstanceError


def _check_n(n, minimum=1):
    if n < minimum:
        raise InvalidInstanceError(f"need at least {minimum} nodes, got {n}")


def path(n):
    """Path on ``n`` nodes (arboricity 1, Δ ≤ 2)."""
    _check_n(n)
    return nx.path_graph(n)


def cycle(n):
    """Cycle on ``n`` nodes (arboricity ≤ 2, Δ = 2)."""
    _check_n(n, 3)
    return nx.cycle_graph(n)


def star(n):
    """Star on ``n`` nodes: Δ = n-1, arboricity 1, diameter 2."""
    _check_n(n, 2)
    return nx.star_graph(n - 1)


def complete(n):
    """Clique on ``n`` nodes: the extreme high-degree instance."""
    _check_n(n)
    return nx.complete_graph(n)


def hypercube(dim):
    """Boolean hypercube of dimension ``dim`` (Δ = dim, n = 2^dim)."""
    graph = nx.hypercube_graph(dim)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def grid(rows, cols):
    """2D grid (planar, arboricity ≤ 2, Δ ≤ 4)."""
    _check_n(rows * cols)
    graph = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def triangulated_grid(rows, cols):
    """Grid with one diagonal per cell (planar, arboricity ≤ 3, Δ ≤ 6)."""
    graph = nx.grid_2d_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            graph.add_edge((r, c), (r + 1, c + 1))
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def gnp(n, p, seed=0):
    """Erdős–Rényi G(n, p) (general graphs)."""
    _check_n(n)
    return nx.gnp_random_graph(n, p, seed=seed)


def gnp_avg_degree(n, avg_degree, seed=0):
    """G(n, p) parameterized by expected average degree."""
    _check_n(n)
    p = min(1.0, avg_degree / max(1, n - 1))
    return nx.gnp_random_graph(n, p, seed=seed)


def random_regular(n, degree, seed=0):
    """Random ``degree``-regular graph (uniform degree → clean Δ sweeps)."""
    _check_n(n)
    if degree >= n or (n * degree) % 2:
        raise InvalidInstanceError(
            f"no {degree}-regular graph on {n} nodes exists"
        )
    return nx.random_regular_graph(degree, n, seed=seed)


def random_tree(n, seed=0):
    """Uniform random labelled tree (arboricity 1)."""
    _check_n(n)
    if n == 1:
        return nx.empty_graph(1)
    rng = random.Random(seed)
    if n == 2:
        return nx.path_graph(2)
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(sequence)


def caterpillar(spine, legs_per_node, seed=0):
    """Caterpillar tree: a spine path with pendant legs (arboricity 1)."""
    _check_n(spine)
    rng = random.Random(seed)
    graph = nx.path_graph(spine)
    next_label = spine
    for u in range(spine):
        for _ in range(rng.randint(0, legs_per_node)):
            graph.add_edge(u, next_label)
            next_label += 1
    return graph


def forest_union(n, forests, seed=0):
    """Union of ``forests`` random spanning forests: arboricity ≤ forests.

    The canonical bounded-arboricity family: Nash–Williams says the edge
    set decomposes into exactly the forests we glued together.
    """
    _check_n(n)
    rng = random.Random(seed)
    graph = nx.empty_graph(n)
    for k in range(forests):
        tree = random_tree(n, seed=rng.randrange(2**31))
        relabel = list(range(n))
        rng.shuffle(relabel)
        for u, v in tree.edges():
            graph.add_edge(relabel[u], relabel[v])
    return graph


def unit_disk(n, radius, seed=0):
    """Random geometric (unit-disk) graph: bounded independence."""
    _check_n(n)
    return nx.random_geometric_graph(n, radius, seed=seed)


def star_with_noise(n, extra_edges, seed=0):
    """A star plus random leaf-to-leaf edges: Δ ≈ n-1, tiny diameter.

    Built so that n-only running-time bounds beat ``O(Δ + log* n)`` —
    the regime where Panconesi–Srinivasan-style algorithms win in
    Corollary 1(i).
    """
    _check_n(n, 3)
    rng = random.Random(seed)
    graph = star(n)
    leaves = list(range(1, n))
    for _ in range(extra_edges):
        u, v = rng.sample(leaves, 2)
        graph.add_edge(u, v)
    return graph


def disjoint_union(graphs):
    """Disjoint union (problems are closed under disjoint union)."""
    graphs = list(graphs)
    if not graphs:
        return nx.empty_graph(0)
    combined = nx.empty_graph(0)
    offset = 0
    for graph in graphs:
        mapping = {u: u + offset for u in graph.nodes()}
        combined = nx.union(combined, nx.relabel_nodes(graph, mapping))
        offset += graph.number_of_nodes()
    return combined


def dumbbell(n_side, bridge_length=1):
    """Two cliques joined by a path: heterogeneous degrees in one graph."""
    left = nx.complete_graph(n_side)
    right = nx.relabel_nodes(
        nx.complete_graph(n_side),
        {u: u + n_side + bridge_length for u in range(n_side)},
    )
    graph = nx.union(left, right)
    chain = [0] + [n_side + i for i in range(bridge_length)] + [n_side + bridge_length]
    for a, b in itertools.pairwise(chain):
        graph.add_edge(a, b)
    return graph


def family_catalog():
    """Small labelled catalogue used by tests to sweep many shapes."""
    return {
        "path16": path(16),
        "cycle17": cycle(17),
        "star24": star(24),
        "grid4x6": grid(4, 6),
        "tri_grid4x4": triangulated_grid(4, 4),
        "tree40": random_tree(40, seed=7),
        "caterpillar": caterpillar(10, 3, seed=3),
        "forest3_32": forest_union(32, 3, seed=5),
        "gnp48": gnp(48, 0.12, seed=11),
        "regular4_30": random_regular(30, 4, seed=13),
        "udg36": unit_disk(36, 0.28, seed=17),
        "star_noise": star_with_noise(40, 30, seed=19),
        "dumbbell": dumbbell(8, 3),
        "hypercube4": hypercube(4),
        "two_comp": disjoint_union([path(8), cycle(9)]),
    }


def with_sizes(maker, sizes, **kwargs):
    """Build the same family at several sizes (bench sweeps)."""
    return {n: maker(n, **kwargs) for n in sizes}


def log2ceil(x):
    """⌈log2 x⌉ for x ≥ 1 (convenience used by workload builders)."""
    return max(0, math.ceil(math.log2(max(1, x))))
