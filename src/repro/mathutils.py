"""Small integer-math helpers shared across the library.

These implement the handful of arithmetic functions the paper's bounds
are written in (``log*``, ceilings of logarithms) plus the prime-field
utilities needed by Linial-style set-system constructions.
"""

from __future__ import annotations

import math
from functools import lru_cache


def ceil_log2(x):
    """⌈log2 x⌉ for x ≥ 1; 0 for x ≤ 1."""
    if x <= 1:
        return 0
    return (int(x) - 1).bit_length() if float(x).is_integer() else math.ceil(
        math.log2(x)
    )


def floor_log2(x):
    """⌊log2 x⌋ for x ≥ 1; 0 for x ≤ 1."""
    if x <= 1:
        return 0
    return int(x).bit_length() - 1 if float(x).is_integer() else math.floor(
        math.log2(x)
    )


def log_star(x):
    """The iterated logarithm log* x (base 2): steps of log2 until ≤ 1."""
    count = 0
    value = float(x)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(q):
    """Miller–Rabin primality with fixed bases.

    Deterministic (no false positives) below 3.3·10^24; above that the
    fixed-base test is a deterministic *function* with a vanishing
    heuristic error — acceptable here because a composite modulus would
    merely yield an improper tentative coloring, which the pruning loop
    detects and retries.
    """
    if q < 2:
        return False
    for p in _MR_BASES:
        if q == p:
            return True
        if q % p == 0:
            return False
    d = q - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_BASES:
        x = pow(a, d, q)
        if x in (1, q - 1):
            continue
        for _ in range(r - 1):
            x = x * x % q
            if x == q - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=4096)
def next_prime(x):
    """Smallest prime ≥ x (Bertrand guarantees quick termination)."""
    q = max(2, int(math.ceil(x)))
    while not is_prime(q):
        q += 1
    return q


def int_ceil_div(a, b):
    """⌈a / b⌉ for positive integers."""
    return -(-a // b)


@lru_cache(maxsize=16384)
def int_nthroot_floor(value, k):
    """⌊value^(1/k)⌋ by integer Newton iteration (exact, any size).

    Needed because guesses coming from set-sequence inversions can reach
    2^96 and beyond, far outside float precision.  Memoized: Linial
    schedules and KW reducers probe the same (value, k) pairs at every
    node of a run.
    """
    if value <= 0:
        return 0
    if value == 1 or k <= 1:
        return int(value) if k <= 1 else 1
    value = int(value)
    # Initial over-estimate from the bit length: 2^ceil(bits/k) >= root.
    r = 1 << (-(-value.bit_length() // k))
    while True:
        # Newton step for r^k - value.
        nxt = ((k - 1) * r + value // r ** (k - 1)) // k
        if nxt >= r:
            break
        r = nxt
    while r**k > value:
        r -= 1
    return r


def int_nthroot_ceil(value, k):
    """Smallest integer ``r`` with ``r**k ≥ value`` (exact, any size)."""
    if value <= 1:
        return 1
    floor = int_nthroot_floor(value, k)
    if floor**k == value:
        return floor
    return floor + 1


def clamp(x, lo, hi):
    """Restrict ``x`` to ``[lo, hi]``."""
    return max(lo, min(hi, x))
