"""(α, β)-ruling sets (paper Section 2).

A set ``S`` is (α, β)-ruling when (1) any two nodes of ``S`` are at
distance at least α and (2) every node outside ``S`` has a node of ``S``
within distance β.  MIS is exactly the (2, 1)-ruling set problem.
"""

from __future__ import annotations

from collections import deque

from .base import Problem, Violation, require_outputs
from .mis import in_set


def _bfs_within(graph, source, limit):
    """Nodes within distance ``limit`` of ``source`` (excluding it)."""
    seen = {source: 0}
    queue = deque([source])
    reached = []
    while queue:
        u = queue.popleft()
        if seen[u] == limit:
            continue
        for v in graph.neighbors(u):
            if v not in seen:
                seen[v] = seen[u] + 1
                reached.append((v, seen[v]))
                queue.append(v)
    return reached


class RulingSetProblem(Problem):
    """Verifier for (α, β)-ruling sets."""

    def __init__(self, alpha, beta):
        if alpha < 1 or beta < 1:
            raise ValueError("ruling-set parameters must be >= 1")
        self.alpha = alpha
        self.beta = beta
        self.name = f"({alpha},{beta})-ruling-set"

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        found = []
        rulers = {u for u in graph.nodes if in_set(outputs[u])}
        for u in rulers:
            for v, dist in _bfs_within(graph, u, self.alpha - 1):
                if v in rulers and graph.ident[u] < graph.ident[v]:
                    found.append(
                        Violation(
                            (u, v),
                            f"rulers at distance {dist} < α={self.alpha}",
                        )
                    )
        for u in graph.nodes:
            if u in rulers:
                continue
            close = any(
                v in rulers for v, _ in _bfs_within(graph, u, self.beta)
            )
            if not close:
                found.append(
                    Violation(u, f"no ruler within distance β={self.beta}")
                )
        return found


def ruling_set(alpha, beta):
    """Convenience constructor."""
    return RulingSetProblem(alpha, beta)
