"""Problem definitions and centralized verifiers."""

from .base import Problem, Violation, require_outputs
from .coloring import (
    PROPER_COLORING,
    ColoringProblem,
    ColorList,
    SLC,
    SLCInput,
    SLCProblem,
    deg_plus_one_coloring,
)
from .decomposition import HPartitionProblem
from .edge_coloring import EDGE_COLORING, EdgeColoringProblem
from .forbidden import (
    STRONG_COLORING,
    ForbiddenInput,
    StrongColoringProblem,
    fresh_inputs,
)
from .matching import (
    MAXIMAL_MATCHING,
    MaximalMatchingProblem,
    matched_pairs,
    partner_to_paper_encoding,
)
from .mis import MIS, MISProblem, in_set
from .ruling import RulingSetProblem, ruling_set

__all__ = [
    "ColorList",
    "ColoringProblem",
    "EDGE_COLORING",
    "EdgeColoringProblem",
    "ForbiddenInput",
    "HPartitionProblem",
    "STRONG_COLORING",
    "StrongColoringProblem",
    "fresh_inputs",
    "MAXIMAL_MATCHING",
    "MIS",
    "MISProblem",
    "MaximalMatchingProblem",
    "PROPER_COLORING",
    "Problem",
    "RulingSetProblem",
    "SLC",
    "SLCInput",
    "SLCProblem",
    "Violation",
    "deg_plus_one_coloring",
    "in_set",
    "matched_pairs",
    "partner_to_paper_encoding",
    "require_outputs",
    "ruling_set",
]
