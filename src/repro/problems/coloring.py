"""Vertex coloring problems, including the paper's Strong List Coloring.

Three flavours:

* :class:`ColoringProblem` — proper coloring, optionally with a bound on
  the palette (global ``k`` or a per-node bound like ``deg+1``);
* :class:`SLCProblem` — the *strong list-coloring* problem introduced in
  the proof of Theorem 5: every node carries a common degree estimate
  ``Δ̂ ≥ Δ`` and a list ``L(v) ⊆ [1, g(Δ̂)] × [1, Δ̂+1]`` containing at
  least ``deg(v)+1`` pairs per color index; the output must be a proper
  coloring with ``y(v) ∈ L(v)``.

Lists are represented *implicitly* by :class:`ColorList` (full grid minus
a removal set) because materializing ``g(Δ̂)·(Δ̂+1)`` pairs per node would
be quadratic in the degree.
"""

from __future__ import annotations

from .base import Problem, Violation, require_outputs


class ColoringProblem(Problem):
    """Proper vertex coloring with an optional palette restriction.

    Parameters
    ----------
    max_colors:
        ``None`` (properness only), an integer ``k`` (colors must lie in
        ``[1, k]``), or a callable ``(graph, node) -> int`` giving a
        per-node bound (e.g. ``deg(v)+1`` for the Section 5.1 problem).
    """

    def __init__(self, max_colors=None, name=None):
        self.max_colors = max_colors
        if name:
            self.name = name
        elif max_colors is None:
            self.name = "coloring"
        elif callable(max_colors):
            self.name = "coloring[per-node bound]"
        else:
            self.name = f"{max_colors}-coloring"

    def _bound(self, graph, u):
        if self.max_colors is None:
            return None
        if callable(self.max_colors):
            return self.max_colors(graph, u)
        return self.max_colors

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        found = []
        for u in graph.nodes:
            color = outputs[u]
            if not isinstance(color, int):
                found.append(Violation(u, f"non-integer color {color!r}"))
                continue
            bound = self._bound(graph, u)
            if color < 1 or (bound is not None and color > bound):
                found.append(
                    Violation(u, f"color {color} outside [1, {bound}]")
                )
            for v in graph.neighbors(u):
                if outputs.get(v) == color and graph.ident[u] < graph.ident[v]:
                    found.append(
                        Violation((u, v), f"adjacent nodes share color {color}")
                    )
        return found


#: Properness-only coloring (range handled separately when needed).
PROPER_COLORING = ColoringProblem()


def deg_plus_one_coloring():
    """The Section 5.1 target: each node colored within [1, deg(v)+1]."""
    return ColoringProblem(
        max_colors=lambda graph, u: graph.degree(u) + 1,
        name="(deg+1)-coloring",
    )


class ColorList:
    """Implicit list ``[1, width] × [1, copies]`` minus removed pairs.

    ``width`` plays the role of ``g(Δ̂)`` and ``copies`` of ``Δ̂ + 1``;
    the SLC invariant is that at least ``deg(v)+1`` copies of every color
    index remain.
    """

    __slots__ = ("width", "copies", "removed")

    def __init__(self, width, copies, removed=()):
        self.width = int(width)
        self.copies = int(copies)
        self.removed = frozenset(removed)

    def __contains__(self, pair):
        if not (isinstance(pair, tuple) and len(pair) == 2):
            return False
        k, j = pair
        if not (isinstance(k, int) and isinstance(j, int)):
            return False
        return (
            1 <= k <= self.width
            and 1 <= j <= self.copies
            and pair not in self.removed
        )

    def remaining_copies(self, k):
        """Number of surviving pairs with color index ``k``."""
        gone = sum(1 for (kk, _) in self.removed if kk == k)
        return self.copies - gone

    def first_free(self, k):
        """Smallest ``j`` with ``(k, j)`` still in the list (None if none)."""
        for j in range(1, self.copies + 1):
            if (k, j) not in self.removed:
                return j
        return None

    def without(self, pairs):
        """New list with additional pairs removed."""
        return ColorList(self.width, self.copies, self.removed | set(pairs))

    def __eq__(self, other):
        """Structural equality — the SLC pruning equivalence contract
        (DESIGN.md D11) compares rewritten inputs across backends, and
        ``removed`` being a frozenset makes the comparison independent
        of the order removals were collected in."""
        if not isinstance(other, ColorList):
            return NotImplemented
        return (
            self.width == other.width
            and self.copies == other.copies
            and self.removed == other.removed
        )

    def __hash__(self):
        return hash((self.width, self.copies, self.removed))

    def __repr__(self):
        return (
            f"ColorList(width={self.width}, copies={self.copies}, "
            f"removed={len(self.removed)})"
        )


class SLCInput:
    """Per-node SLC input: common degree estimate + implicit color list."""

    __slots__ = ("delta_hat", "colors", "base_color")

    def __init__(self, delta_hat, colors, base_color=None):
        self.delta_hat = int(delta_hat)
        self.colors = colors
        #: initial color (identities qualify; Section 5.2's "m as colors")
        self.base_color = base_color

    def __eq__(self, other):
        if not isinstance(other, SLCInput):
            return NotImplemented
        return (
            self.delta_hat == other.delta_hat
            and self.colors == other.colors
            and self.base_color == other.base_color
        )

    def __hash__(self):
        return hash((self.delta_hat, self.colors, self.base_color))

    def __repr__(self):
        return f"SLCInput(Δ̂={self.delta_hat}, {self.colors!r})"


class SLCProblem(Problem):
    """Verifier for the strong list-coloring problem of Theorem 5."""

    name = "strong-list-coloring"

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        found = []
        inputs = inputs or {}
        for u in graph.nodes:
            x = inputs.get(u)
            if not isinstance(x, SLCInput):
                found.append(Violation(u, "missing SLCInput"))
                continue
            if x.delta_hat < graph.degree(u):
                found.append(
                    Violation(u, f"Δ̂={x.delta_hat} below degree {graph.degree(u)}")
                )
            for k in range(1, x.colors.width + 1):
                if x.colors.remaining_copies(k) < graph.degree(u) + 1:
                    found.append(
                        Violation(
                            u,
                            f"color index {k} has fewer than deg+1 copies",
                        )
                    )
                    break
            y = outputs[u]
            if y not in x.colors:
                found.append(Violation(u, f"output {y!r} not in list"))
            for v in graph.neighbors(u):
                if outputs.get(v) == y and graph.ident[u] < graph.ident[v]:
                    found.append(
                        Violation((u, v), f"adjacent nodes share pair {y!r}")
                    )
        return found


SLC = SLCProblem()
