"""Strong g-coloring with forbidden lists (paper Section 6.3).

The conclusion of the paper proposes studying *strong g-coloring*: each
node ``v`` carries a set ``F(v)`` of forbidden colors and must pick a
color in ``[1, g] \\ F(v)`` such that the result is proper.  The paper
conjectures this is the right formulation to make coloring prunable:
pruning a node with color ``c`` can simply add ``c`` to the surviving
neighbours' forbidden sets, restoring the gluing property that defeats
plain g-coloring.

This module realizes the proposal.  Solvability is maintained by the
*capacity invariant* ``|F(v)| + deg(v) + 1 ≤ g``: pruning one neighbour
adds at most one forbidden color while reducing the degree by one, so
the invariant survives — the exact mechanism the SLC lists of Theorem 5
use, transplanted to the flat-palette setting the paper sketches.
"""

from __future__ import annotations

from .base import Problem, Violation, require_outputs


class ForbiddenInput:
    """Per-node input: palette size ``g`` and the forbidden set."""

    __slots__ = ("g", "forbidden")

    def __init__(self, g, forbidden=()):
        self.g = int(g)
        self.forbidden = frozenset(forbidden)

    def allowed(self, color):
        return (
            isinstance(color, int)
            and 1 <= color <= self.g
            and color not in self.forbidden
        )

    def without(self, colors):
        """New input with additional forbidden colors."""
        return ForbiddenInput(self.g, self.forbidden | set(colors))

    def __repr__(self):
        return f"ForbiddenInput(g={self.g}, |F|={len(self.forbidden)})"


class StrongColoringProblem(Problem):
    """Verifier for the Section 6.3 strong coloring problem."""

    name = "strong-g-coloring"

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        inputs = inputs or {}
        found = []
        for u in graph.nodes:
            x = inputs.get(u)
            if not isinstance(x, ForbiddenInput):
                found.append(Violation(u, "missing ForbiddenInput"))
                continue
            if len(x.forbidden) + graph.degree(u) + 1 > x.g:
                found.append(
                    Violation(u, "capacity invariant |F|+deg+1 ≤ g violated")
                )
            color = outputs[u]
            if not x.allowed(color):
                found.append(
                    Violation(u, f"color {color!r} forbidden or out of range")
                )
            for v in graph.neighbors(u):
                if outputs.get(v) == color and graph.ident[u] < graph.ident[v]:
                    found.append(
                        Violation((u, v), f"adjacent nodes share color {color}")
                    )
        return found


STRONG_COLORING = StrongColoringProblem()


def fresh_inputs(graph, g):
    """Empty-forbidden-set instance with palette ``g`` (must satisfy the
    capacity invariant: ``g ≥ Δ + 1``)."""
    return {u: ForbiddenInput(g) for u in graph.nodes}
