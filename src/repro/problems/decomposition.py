"""H-partition (forest-decomposition) validity.

The Barenboim–Elkin arboricity rows rest on the *H-partition*: classes
``H_1, ..., H_ℓ`` such that every node of ``H_i`` has at most
``threshold`` neighbours in classes ``H_i ∪ H_{i+1} ∪ ...``.  The class
index is what the peeling procedure outputs; this verifier certifies the
degree property the class-by-class MIS relies on.
"""

from __future__ import annotations

from .base import Problem, Violation, require_outputs


class HPartitionProblem(Problem):
    """Verifier for H-partitions with a fixed degree threshold."""

    def __init__(self, threshold):
        self.threshold = threshold
        self.name = f"H-partition(threshold={threshold})"

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        found = []
        for u in graph.nodes:
            cls = outputs[u]
            if not isinstance(cls, int) or cls < 1:
                found.append(Violation(u, f"bad class index {cls!r}"))
                continue
            later = sum(
                1
                for v in graph.neighbors(u)
                if isinstance(outputs.get(v), int) and outputs[v] >= cls
            )
            if later > self.threshold:
                found.append(
                    Violation(
                        u,
                        f"{later} neighbours in same-or-later classes "
                        f"(> {self.threshold})",
                    )
                )
        return found
