"""Maximal independent set (MIS).

Output encoding (paper Section 1.1): a bit ``b(v)`` per node; the set
``S = {v : b(v) = 1}`` must be independent and dominating.  MIS is the
``(2, 1)``-ruling set, but it is used so pervasively that it gets a
dedicated verifier.
"""

from __future__ import annotations

from .base import Problem, Violation, require_outputs


def in_set(value):
    """Canonical truthiness for set-membership outputs (1/True in, else out)."""
    return value in (1, True)


class MISProblem(Problem):
    """Verifier for maximal independent sets."""

    name = "MIS"

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        found = []
        for u in graph.nodes:
            if in_set(outputs[u]):
                for v in graph.neighbors(u):
                    if in_set(outputs[v]) and graph.ident[u] < graph.ident[v]:
                        found.append(
                            Violation((u, v), "two adjacent nodes in the set")
                        )
            else:
                if not any(in_set(outputs[v]) for v in graph.neighbors(u)):
                    found.append(
                        Violation(u, "node outside the set with no neighbor in it")
                    )
        return found


MIS = MISProblem()
