"""Problem interface (paper Section 2, "Problems and instances").

A problem is a collection of triplets ``(G, x, y)`` closed under disjoint
union.  For the reproduction each problem object provides a *centralized
verifier*: given a graph, the input vector and an output vector it
returns the list of violated constraints (empty = the triplet belongs to
the problem).  Benches and the property tests treat a non-empty list as
a hard failure; the pruning algorithms re-implement the *local* flavour
of these checks inside the LOCAL model.
"""

from __future__ import annotations

from ..errors import InvalidInstanceError


class Violation:
    """One violated constraint, attributable to a node or an edge."""

    __slots__ = ("where", "reason")

    def __init__(self, where, reason):
        self.where = where
        self.reason = reason

    def __repr__(self):
        return f"Violation({self.where!r}: {self.reason})"


class Problem:
    """Base class: named problem with a centralized verifier."""

    name = "problem"

    def violations(self, graph, inputs, outputs):
        """Return the list of violated constraints (empty = solution)."""
        raise NotImplementedError

    def is_solution(self, graph, inputs, outputs):
        """True iff ``(G, x, y)`` belongs to the problem."""
        return not self.violations(graph, inputs, outputs)

    def assert_solution(self, graph, inputs, outputs, *, context=""):
        """Raise with a readable digest when the output is not a solution."""
        found = self.violations(graph, inputs, outputs)
        if found:
            sample = "; ".join(repr(v) for v in found[:5])
            raise InvalidInstanceError(
                f"{self.name} violated{' (' + context + ')' if context else ''}: "
                f"{len(found)} violation(s), e.g. {sample}"
            )
        return True


def require_outputs(graph, outputs):
    """Every node must carry an output value (possibly falsy but present)."""
    missing = [u for u in graph.nodes if u not in outputs]
    if missing:
        raise InvalidInstanceError(
            f"outputs missing for {len(missing)} node(s), e.g. "
            f"{sorted(missing, key=repr)[:5]}"
        )
