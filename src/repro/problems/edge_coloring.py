"""Edge coloring, verified on the physical graph.

Edge colorings are produced by vertex-coloring the line graph through the
virtual-node layer; the verifier takes the flattened ``edge -> color``
mapping (edges as ``(u, v)`` with ``ident(u) < ident(v)``, the line-graph
virtual-node convention).
"""

from __future__ import annotations

from .base import Problem, Violation


class EdgeColoringProblem(Problem):
    """Proper edge coloring with an optional global palette bound."""

    def __init__(self, max_colors=None):
        self.max_colors = max_colors
        self.name = (
            f"{max_colors}-edge-coloring" if max_colors else "edge-coloring"
        )

    def violations(self, graph, inputs, edge_colors):
        found = []
        expected = set()
        for u, v in graph.edges():
            key = (u, v) if graph.ident[u] < graph.ident[v] else (v, u)
            expected.add(key)
            if key not in edge_colors:
                found.append(Violation(key, "edge without a color"))
        for key, color in edge_colors.items():
            if key not in expected:
                found.append(Violation(key, "color on a non-edge"))
                continue
            if not isinstance(color, int) or color < 1:
                found.append(Violation(key, f"bad color {color!r}"))
            elif self.max_colors is not None and color > self.max_colors:
                found.append(
                    Violation(key, f"color {color} > {self.max_colors}")
                )
        by_node = {}
        for (u, v), color in edge_colors.items():
            for endpoint in (u, v):
                seen = by_node.setdefault(endpoint, {})
                if color in seen:
                    found.append(
                        Violation(
                            endpoint,
                            f"two incident edges share color {color}",
                        )
                    )
                seen[color] = (u, v)
        return found


EDGE_COLORING = EdgeColoringProblem()
