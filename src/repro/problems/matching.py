"""Maximal matching, in the paper's output encoding.

Section 2: given ``(G, x, y)``, nodes ``u`` and ``v`` are *matched* when
``(u,v) ∈ E``, ``y(u) = y(v)`` and ``y(w) ≠ y(u)`` for every other node
``w`` of ``N(u) ∪ N(v)``.  The MM problem requires each node to be either
matched to a neighbour, or to have all its neighbours matched.

Algorithms internally use the conventional *partner* encoding (partner
identity or ``None``); :func:`partner_to_paper_encoding` converts, giving
matched pairs the shared value ``("M", min_id, max_id)`` and unmatched
nodes the unique value ``("U", Id(v))``.
"""

from __future__ import annotations

from .base import Problem, Violation, require_outputs


def matched_pairs(graph, outputs):
    """Set of matched edges under the paper's encoding."""
    pairs = set()
    for u, v in graph.edges():
        if outputs.get(u) != outputs.get(v):
            continue
        value = outputs[u]
        clean = True
        for w in set(graph.neighbors(u)) | set(graph.neighbors(v)):
            if w in (u, v):
                continue
            if outputs.get(w) == value:
                clean = False
                break
        if clean:
            pairs.add((u, v))
    return pairs


class MaximalMatchingProblem(Problem):
    """Verifier for maximal matching in the paper's encoding."""

    name = "maximal-matching"

    def violations(self, graph, inputs, outputs):
        require_outputs(graph, outputs)
        found = []
        pairs = matched_pairs(graph, outputs)
        matched_nodes = set()
        incident = {u: 0 for u in graph.nodes}
        for u, v in pairs:
            matched_nodes.update((u, v))
            incident[u] += 1
            incident[v] += 1
        for u in graph.nodes:
            if incident[u] > 1:
                found.append(Violation(u, "node matched to two neighbours"))
        for u in graph.nodes:
            if u in matched_nodes:
                continue
            if not all(v in matched_nodes for v in graph.neighbors(u)):
                found.append(
                    Violation(
                        u, "unmatched node with an unmatched neighbour"
                    )
                )
        return found


MAXIMAL_MATCHING = MaximalMatchingProblem()


def partner_to_paper_encoding(graph, partner):
    """Convert partner-identity outputs to the paper's value encoding.

    ``partner[u]`` is the *identity* of u's partner, or ``None``.  The
    conversion is deliberately forgiving: inconsistent partner claims
    simply produce values that fail to form matched pairs, which the
    verifier/pruner then treats as unmatched — mirroring how a tentative
    output vector may be arbitrary garbage.
    """
    values = {}
    for u in graph.nodes:
        p = partner.get(u)
        if p is None:
            values[u] = ("U", graph.ident[u])
        else:
            a, b = sorted((graph.ident[u], p))
            values[u] = ("M", a, b)
    return values
