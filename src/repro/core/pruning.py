"""Pruning algorithms (paper Section 3).

A pruning algorithm ``P`` is a *uniform*, constant-time local algorithm
taking ``(G, x, ŷ)`` — instance plus tentative output — and returning an
instance ``(G', x')`` induced on the non-pruned nodes, subject to:

* **solution detection** — if ``(G, x, ŷ) ∈ Π`` then all nodes are
  pruned;
* **gluing** — any solution ``y'`` of ``(G', x')`` combines with ``ŷ``
  restricted to the pruned set into a solution of ``(G, x)``.

Implementations here:

* :class:`RulingSetPruning` — the paper's ``P_(2,β)`` (Observation 3.2),
  running in ``1 + β`` rounds; ``β = 1`` prunes for MIS.
* :class:`MatchingPruning` — the paper's ``P_MM`` (Observation 3.3),
  running in 3 rounds.  Our implementation pins down a detail the paper
  leaves implicit: gluing is guaranteed provided output values identify
  their emitting node (all our matching algorithms emit
  ``("M", id_u, id_v)`` / ``("U", id_v)`` values, and the default "0" of
  truncated runs can never form a matched pair with them).
* :class:`SLCPruning` — the pruning algorithm for the strong
  list-coloring problem constructed inside the proof of Theorem 5; it is
  the one pruner that modifies inputs (survivors' lists lose the colors
  committed by pruned neighbours).

Monotonicity (Observation 3.1): the first two leave inputs untouched and
are therefore monotone for every non-decreasing parameter; SLC pruning
keeps the degree estimate ``Δ̂`` and is monotone for all non-decreasing
*graph* parameters.
"""

from __future__ import annotations

from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..problems.coloring import SLC, SLCInput
from ..problems.matching import MAXIMAL_MATCHING
from ..problems.mis import in_set
from ..problems.ruling import RulingSetProblem

#: Sentinel output for nodes kept in the instance with unchanged input.
KEEP = ("keep", None)

#: Shared broadcast payloads of the ruling-set pruner (tuples are
#: immutable, so every node can broadcast the same object).
_Y_IN = ("y", True)
_Y_OUT = ("y", False)
_C_ON = ("c", True)
_C_OFF = ("c", False)


class PruneResult:
    """Outcome of one pruning application."""

    __slots__ = ("pruned", "new_inputs", "rounds")

    def __init__(self, pruned, new_inputs, rounds):
        self.pruned = pruned
        self.new_inputs = new_inputs
        self.rounds = rounds

    def __repr__(self):
        return f"PruneResult(pruned={len(self.pruned)}, rounds={self.rounds})"


class PruningAlgorithm:
    """Base class: constant-round uniform pruner for a problem."""

    #: number of rounds the pruner needs (the paper's T0)
    rounds = 0
    name = "pruning"
    #: the problem whose solution-detection/gluing properties hold
    problem = None
    #: human-readable monotonicity note (Observation 3.1)
    monotone = "all non-decreasing parameters"

    def algorithm(self):
        """The pruner as a LOCAL algorithm over inputs ``(x(v), ŷ(v))``.

        Outputs ``("prune", None)`` or ``("keep", new_x)``.
        """
        raise NotImplementedError

    def apply(self, domain, inputs, tentative, *, seed=0, salt="prune"):
        """Run the pruner on a domain; returns a :class:`PruneResult`.

        The constant schedule means no node can miss the deadline; the
        runner raises if one does (which would be an implementation bug,
        not a data condition).
        """
        inputs = inputs or {}
        pair_inputs = {
            u: (inputs.get(u), tentative.get(u)) for u in domain.nodes
        }
        outputs, charged = domain.run_restricted(
            self.algorithm(),
            self.rounds,
            inputs=pair_inputs,
            seed=seed,
            salt=salt,
            default_output=KEEP,
        )
        pruned = set()
        new_inputs = {}
        for u in domain.nodes:
            verdict = outputs[u]
            if not (isinstance(verdict, tuple) and len(verdict) == 2):
                verdict = KEEP
            if verdict[0] == "prune":
                pruned.add(u)
            else:
                new_x = verdict[1]
                new_inputs[u] = new_x if new_x is not None else inputs.get(u)
        return PruneResult(pruned, new_inputs, charged)


# ---------------------------------------------------------------------------
# P_(2, beta): ruling sets and MIS (Observation 3.2)
# ---------------------------------------------------------------------------

class _RulingSetPruneProcess(NodeProcess):
    """1 round of ŷ exchange + β rounds of center-flag flooding."""

    __slots__ = ("beta", "step", "y_hat", "center", "center_near")

    def __init__(self, ctx, beta):
        super().__init__(ctx)
        self.beta = beta
        self.step = 0
        _, self.y_hat = ctx.input if ctx.input else (None, 0)
        self.center = False
        self.center_near = False

    def start(self):
        return Broadcast(_Y_IN if in_set(self.y_hat) else _Y_OUT)

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            center = in_set(self.y_hat)
            if center:
                for payload in inbox.values():
                    if payload and payload[0] == "y" and payload[1]:
                        center = False
                        break
            self.center = center
            return Broadcast(_C_ON if center else _C_OFF)
        # Flooding steps 2 .. beta+1: center within (step-1) hops?
        if not self.center_near:
            for payload in inbox.values():
                if payload and payload[0] == "c" and payload[1]:
                    self.center_near = True
                    break
        if self.step < self.beta + 1:
            return Broadcast(
                _C_ON if (self.center or self.center_near) else _C_OFF
            )
        pruned = self.center or (
            not in_set(self.y_hat) and self.center_near
        )
        self.finish(("prune", None) if pruned else KEEP)
        return None


class RulingSetPruning(PruningAlgorithm):
    """The paper's ``P_(2,β)``: prunes confirmed rulers and their β-balls.

    ``W`` contains nodes ``u`` with (1) ``ŷ(u)=1`` and all neighbours 0
    — *centers* — or (2) ``ŷ(u)=0`` with a center within distance β.
    Runs in ``1 + β`` rounds; leaves inputs unchanged, hence monotone for
    every non-decreasing parameter (Observation 3.1).
    """

    def __init__(self, beta=1):
        if beta < 1:
            raise ValueError("β must be ≥ 1")
        self.beta = beta
        self.rounds = 1 + beta
        self.name = f"P(2,{beta})"
        self.problem = RulingSetProblem(2, beta)

    def algorithm(self):
        beta = self.beta
        return LocalAlgorithm(
            name=self.name,
            process=lambda ctx: _RulingSetPruneProcess(ctx, beta),
        )


def mis_pruning():
    """``P_(2,1)``: the MIS pruner (2 rounds)."""
    return RulingSetPruning(beta=1)


# ---------------------------------------------------------------------------
# P_MM: maximal matching (Observation 3.3)
# ---------------------------------------------------------------------------

class _MatchingPruneProcess(NodeProcess):
    __slots__ = ("step", "y_hat", "neighbour_values", "matched")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.step = 0
        _, self.y_hat = ctx.input if ctx.input else (None, None)
        self.neighbour_values = {}
        self.matched = False

    def start(self):
        return Broadcast(("y", self.y_hat))

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            for port, payload in inbox.items():
                if payload and payload[0] == "y":
                    self.neighbour_values[port] = payload[1]
            # cnt(v) = #{x in N(u)\{v} : ŷ(x) = ŷ(u)}; sent per neighbour.
            sends = {}
            for port in self.neighbour_values:
                count = sum(
                    1
                    for other, value in self.neighbour_values.items()
                    if other != port and value == self.y_hat
                )
                sends[port] = ("cnt", count)
            return sends
        if self.step == 2:
            for port, payload in inbox.items():
                if not (payload and payload[0] == "cnt"):
                    continue
                their_count = payload[1]
                same_value = self.neighbour_values.get(port) == self.y_hat
                my_count = sum(
                    1
                    for other, value in self.neighbour_values.items()
                    if other != port and value == self.y_hat
                )
                if same_value and their_count == 0 and my_count == 0:
                    self.matched = True
            return Broadcast(("m", self.matched))
        neighbour_matched = {
            port: payload[1]
            for port, payload in inbox.items()
            if payload and payload[0] == "m"
        }
        all_matched = all(
            neighbour_matched.get(port, False)
            for port in range(self.ctx.degree)
        )
        pruned = self.matched or all_matched
        self.finish(("prune", None) if pruned else KEEP)
        return None


class MatchingPruning(PruningAlgorithm):
    """The paper's ``P_MM``: prunes matched nodes and saturated nodes.

    3 rounds: exchange values, exchange same-value counts (which decide
    "matched" exactly per the paper's definition), exchange matched
    flags.  ``W = {u : u matched} ∪ {u : all neighbours matched}``.
    """

    rounds = 3
    name = "P_MM"
    problem = MAXIMAL_MATCHING

    def algorithm(self):
        return LocalAlgorithm(
            name=self.name, process=_MatchingPruneProcess
        )


# ---------------------------------------------------------------------------
# P_SLC: strong list coloring (from the proof of Theorem 5)
# ---------------------------------------------------------------------------

class _SLCPruneProcess(NodeProcess):
    __slots__ = ("step", "x", "y_hat", "ok", "used_nearby")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.step = 0
        self.x, self.y_hat = ctx.input if ctx.input else (None, None)
        self.ok = False
        self.used_nearby = []

    def start(self):
        return Broadcast(("y", self.y_hat))

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            neighbour_values = [
                payload[1]
                for payload in inbox.values()
                if payload and payload[0] == "y"
            ]
            in_list = (
                isinstance(self.x, SLCInput) and self.y_hat in self.x.colors
            )
            self.ok = in_list and all(
                value != self.y_hat for value in neighbour_values
            )
            return Broadcast(("ok", self.ok, self.y_hat))
        used = [
            payload[2]
            for payload in inbox.values()
            if payload and payload[0] == "ok" and payload[1]
        ]
        if self.ok:
            self.finish(("prune", None))
            return None
        if isinstance(self.x, SLCInput):
            new_x = SLCInput(
                self.x.delta_hat,
                self.x.colors.without(used),
                self.x.base_color,
            )
        else:
            new_x = self.x
        self.finish(("keep", new_x))
        return None


class SLCPruning(PruningAlgorithm):
    """Pruner for strong list coloring (Theorem 5's proof).

    ``W`` = nodes whose tentative pair is in their list and conflict-free;
    survivors' lists lose the pairs committed by pruned neighbours —
    the one pruner that rewrites inputs, as the definition of pruning
    algorithms allows.  Each pruned neighbour removes at most one pair
    per color index while the degree drops by one, preserving the SLC
    invariant (≥ deg+1 copies per index).  2 rounds.
    """

    rounds = 2
    name = "P_SLC"
    problem = SLC
    monotone = "all non-decreasing graph parameters (Δ̂ is kept)"

    def algorithm(self):
        return LocalAlgorithm(name=self.name, process=_SLCPruneProcess)
