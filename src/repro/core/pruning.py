"""Pruning algorithms (paper Section 3).

A pruning algorithm ``P`` is a *uniform*, constant-time local algorithm
taking ``(G, x, ŷ)`` — instance plus tentative output — and returning an
instance ``(G', x')`` induced on the non-pruned nodes, subject to:

* **solution detection** — if ``(G, x, ŷ) ∈ Π`` then all nodes are
  pruned;
* **gluing** — any solution ``y'`` of ``(G', x')`` combines with ``ŷ``
  restricted to the pruned set into a solution of ``(G, x)``.

Implementations here:

* :class:`RulingSetPruning` — the paper's ``P_(2,β)`` (Observation 3.2),
  running in ``1 + β`` rounds; ``β = 1`` prunes for MIS.
* :class:`MatchingPruning` — the paper's ``P_MM`` (Observation 3.3),
  running in 3 rounds.  Our implementation pins down a detail the paper
  leaves implicit: gluing is guaranteed provided output values identify
  their emitting node (all our matching algorithms emit
  ``("M", id_u, id_v)`` / ``("U", id_v)`` values, and the default "0" of
  truncated runs can never form a matched pair with them).
* :class:`SLCPruning` — the pruning algorithm for the strong
  list-coloring problem constructed inside the proof of Theorem 5; it is
  the one pruner that modifies inputs (survivors' lists lose the colors
  committed by pruned neighbours).

Monotonicity (Observation 3.1): the first two leave inputs untouched and
are therefore monotone for every non-decreasing parameter; SLC pruning
keeps the degree estimate ``Δ̂`` and is monotone for all non-decreasing
*graph* parameters.

Batched execution (DESIGN.md D11): every pruner here registers a batch
kernel on the :class:`~repro.local.algorithm.LocalAlgorithm` it builds,
so an alternation's pruning runs ride the same whole-frontier numpy
path as the guess runs — on physical domains through the compiled
engine's dispatcher, on virtual domains through
:func:`repro.local.virtual.run_virtual_batch`.  The kernels are
bit-identical to the per-node state machines, including the
``PruneResult.new_inputs`` materialization of :class:`SLCPruning` (the
one pruner that rewrites inputs).
"""

from __future__ import annotations

from ..local import batch, jitkernels
from ..local.algorithm import LocalAlgorithm, NodeProcess, capabilities_of
from ..local.message import Broadcast
from ..problems.coloring import SLC, SLCInput
from ..problems.matching import MAXIMAL_MATCHING
from ..problems.mis import in_set
from ..problems.ruling import RulingSetProblem

#: Sentinel output for nodes kept in the instance with unchanged input.
KEEP = ("keep", None)

#: Sentinel output for pruned nodes (fresh tuples compare equal; sharing
#: one object keeps the batch kernels allocation-free on the hot path).
PRUNE = ("prune", None)

#: Shared broadcast payloads of the ruling-set pruner (tuples are
#: immutable, so every node can broadcast the same object).
_Y_IN = ("y", True)
_Y_OUT = ("y", False)
_C_ON = ("c", True)
_C_OFF = ("c", False)


class PruneResult:
    """Outcome of one pruning application."""

    __slots__ = ("pruned", "new_inputs", "rounds")

    def __init__(self, pruned, new_inputs, rounds):
        self.pruned = pruned
        self.new_inputs = new_inputs
        self.rounds = rounds

    def __repr__(self):
        return f"PruneResult(pruned={len(self.pruned)}, rounds={self.rounds})"


class PruningAlgorithm:
    """Base class: constant-round uniform pruner for a problem."""

    #: number of rounds the pruner needs (the paper's T0)
    rounds = 0
    name = "pruning"
    #: the problem whose solution-detection/gluing properties hold
    problem = None
    #: human-readable monotonicity note (Observation 3.1)
    monotone = "all non-decreasing parameters"

    def algorithm(self):
        """The pruner as a LOCAL algorithm over inputs ``(x(v), ŷ(v))``.

        Outputs ``("prune", None)`` or ``("keep", new_x)``.
        """
        raise NotImplementedError

    def capabilities(self):
        """Capability record, same shape as the algorithm registry rows.

        ``kind`` is ``"pruning"``; ``supports_batch``/``domains`` are
        inherited from the LOCAL algorithm the pruner compiles to, so
        :func:`repro.local.algorithm.capabilities_of` covers pruners the
        same way it covers the guess algorithms (the registry's
        ``capability_table`` republishes these per Table-1 row).
        Subclasses without a concrete ``algorithm`` (e.g. wrappers that
        only override ``apply``) report a conservative default.
        """
        caps = {
            "kind": "pruning",
            "rounds": self.rounds,
            "supports_batch": False,
            "supports_shard": False,
            "supports_fuse": False,
            "supports_roundfuse": False,
            "domains": LocalAlgorithm.domains,
            "randomized": False,
            "uniform": True,
        }
        try:
            inner = capabilities_of(self.algorithm())
        except NotImplementedError:
            return caps
        caps["supports_batch"] = inner.get("supports_batch", False)
        caps["supports_shard"] = inner.get("supports_shard", False)
        caps["supports_fuse"] = inner.get("supports_fuse", False)
        caps["supports_roundfuse"] = inner.get("supports_roundfuse", False)
        caps["domains"] = inner.get("domains", caps["domains"])
        return caps

    def apply(self, domain, inputs, tentative, *, seed=0, salt="prune"):
        """Run the pruner on a domain; returns a :class:`PruneResult`.

        The constant schedule means no node can miss the deadline; the
        runner raises if one does (which would be an implementation bug,
        not a data condition).
        """
        inputs = inputs or {}
        pair_inputs = {
            u: (inputs.get(u), tentative.get(u)) for u in domain.nodes
        }
        outputs, charged = domain.run_restricted(
            self.algorithm(),
            self.rounds,
            inputs=pair_inputs,
            seed=seed,
            salt=salt,
            default_output=KEEP,
        )
        pruned = set()
        new_inputs = {}
        for u in domain.nodes:
            verdict = outputs[u]
            if not (isinstance(verdict, tuple) and len(verdict) == 2):
                verdict = KEEP
            if verdict[0] == "prune":
                pruned.add(u)
            else:
                new_x = verdict[1]
                new_inputs[u] = new_x if new_x is not None else inputs.get(u)
        return PruneResult(pruned, new_inputs, charged)


# ---------------------------------------------------------------------------
# P_(2, beta): ruling sets and MIS (Observation 3.2)
# ---------------------------------------------------------------------------

class _RulingSetPruneProcess(NodeProcess):
    """1 round of ŷ exchange + β rounds of center-flag flooding."""

    __slots__ = ("beta", "step", "y_hat", "center", "center_near")

    def __init__(self, ctx, beta):
        super().__init__(ctx)
        self.beta = beta
        self.step = 0
        _, self.y_hat = ctx.input if ctx.input else (None, 0)
        self.center = False
        self.center_near = False

    def start(self):
        return Broadcast(_Y_IN if in_set(self.y_hat) else _Y_OUT)

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            center = in_set(self.y_hat)
            if center:
                for payload in inbox.values():
                    if payload and payload[0] == "y" and payload[1]:
                        center = False
                        break
            self.center = center
            return Broadcast(_C_ON if center else _C_OFF)
        # Flooding steps 2 .. beta+1: center within (step-1) hops?
        if not self.center_near:
            for payload in inbox.values():
                if payload and payload[0] == "c" and payload[1]:
                    self.center_near = True
                    break
        if self.step < self.beta + 1:
            return Broadcast(
                _C_ON if (self.center or self.center_near) else _C_OFF
            )
        pruned = self.center or (
            not in_set(self.y_hat) and self.center_near
        )
        self.finish(("prune", None) if pruned else KEEP)
        return None


def _tentative_of(inputs, labels, default):
    """Per-node ŷ column from the pruner's ``(x, ŷ)`` pair inputs.

    Mirrors the per-node unpacking exactly: a falsy input (a node the
    pair map missed) contributes ``default``.
    """
    out = []
    for label in labels:
        value = inputs.get(label)
        out.append(value[1] if value else default)
    return out


def _value_codes(values):
    """Dense integer codes preserving ``==`` over arbitrary values.

    The matching and SLC pruners compare tentative outputs for
    *equality* only, so any hashable payloads vectorize as int64 codes.
    Returns ``None`` for unhashable values — the factory then declines
    and the run steps per node (where raw ``==`` needs no hashing).
    """
    codes = {}
    out = []
    try:
        for value in values:
            out.append(codes.setdefault(value, len(codes)))
    except TypeError:
        return None
    return out


class RulingSetPruneKernel(batch.LockstepKernel):
    """Whole-frontier ``P_(2,β)``: flag reductions over the edge slab.

    Mirrors :class:`_RulingSetPruneProcess` round for round: one
    ŷ-exchange round computing the center set (in-set nodes with no
    in-set neighbour), then β flooding rounds OR-ing the center flags
    outward one hop at a time.  All nodes are lockstep-active for the
    full ``1 + β`` rounds, so a round is two boolean gathers and one
    scatter — no per-node dispatch.
    """

    __slots__ = ("beta", "y_in", "center", "center_near", "prev_flag")

    def __init__(self, bg, inputs, beta):
        super().__init__(bg, schedule=1 + beta)
        np = batch.numpy_or_none()
        self.beta = beta
        self.y_in = np.array(
            [in_set(y) for y in _tentative_of(inputs, bg.labels, 0)],
            dtype=bool,
        )
        self.center = None
        self.center_near = None
        self.prev_flag = None

    def step(self):
        np = batch.numpy_or_none()
        bg = self.bg
        self.round += 1
        r = self.round
        if r == 1:
            rival = self.y_in[bg.owner] & self.y_in[bg.neigh]
            beaten = batch.row_flags(bg.owner[rival], bg.n)
            self.center = self.y_in & ~beaten
            self.center_near = np.zeros(bg.n, dtype=bool)
            self.prev_flag = self.center
            return [], [], self._broadcast()
        heard = self.prev_flag[bg.neigh]
        self.center_near |= batch.row_flags(bg.owner[heard], bg.n)
        if r < self.beta + 1:
            self.prev_flag = self.center | self.center_near
            return [], [], self._broadcast()
        pruned = self.center | (~self.y_in & self.center_near)
        return self.finish([PRUNE if p else KEEP for p in pruned.tolist()])

    def run_phases(self):
        """Fused center detection + β-flood to fixed point (D17).

        ``center_near`` is monotone and ``prev_flag = center ∪
        center_near``: a flooding round that marks nothing new leaves
        ``prev_flag`` unchanged, so every remaining round is identical
        and the loop may skip to the end of the schedule.
        """
        np = batch.numpy_or_none()
        bg = self.bg
        neigh, owner = bg.neigh, bg.owner
        y_in = self.y_in
        rival = y_in[owner] & y_in[neigh]
        beaten = batch.row_flags(owner[rival], bg.n)
        center = y_in & ~beaten
        jit = jitkernels.flood_loop()
        if jit is not None:
            center_near = jit(bg.offsets, neigh, center, self.beta)
            prev_flag = center | center_near
        else:
            center_near = np.zeros(bg.n, dtype=bool)
            prev_flag = center
            for _ in range(self.beta):
                heard = prev_flag[neigh]
                new_near = center_near | batch.row_flags(owner[heard], bg.n)
                if np.array_equal(new_near, center_near):
                    break
                center_near = new_near
                prev_flag = center | center_near
        self.center = center
        self.center_near = center_near
        self.prev_flag = prev_flag
        self.round = self.beta + 1
        pruned = center | (~y_in & center_near)
        return self.finish([PRUNE if p else KEEP for p in pruned.tolist()])[1]


def _ruling_prune_batch_factory(beta):
    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        return RulingSetPruneKernel(bg, setup.inputs, beta)

    return factory


class RulingSetPruning(PruningAlgorithm):
    """The paper's ``P_(2,β)``: prunes confirmed rulers and their β-balls.

    ``W`` contains nodes ``u`` with (1) ``ŷ(u)=1`` and all neighbours 0
    — *centers* — or (2) ``ŷ(u)=0`` with a center within distance β.
    Runs in ``1 + β`` rounds; leaves inputs unchanged, hence monotone for
    every non-decreasing parameter (Observation 3.1).
    """

    def __init__(self, beta=1):
        if beta < 1:
            raise ValueError("β must be ≥ 1")
        self.beta = beta
        self.rounds = 1 + beta
        self.name = f"P(2,{beta})"
        self.problem = RulingSetProblem(2, beta)

    def algorithm(self):
        beta = self.beta
        return LocalAlgorithm(
            name=self.name,
            process=lambda ctx: _RulingSetPruneProcess(ctx, beta),
            batch=_ruling_prune_batch_factory(beta),
            # Shard-safe (D12): the kernel's state is boolean per-node
            # columns derived from per-label inputs, its reductions are
            # owner-side flag gathers and its messages degree sums.
            shard=True,
            # Round-fuse-safe (D17): fixed 1+β lockstep schedule with
            # full-broadcast rounds; the fused flood has a proven
            # monotone fixed point.
            roundfuse=True,
        )


def mis_pruning():
    """``P_(2,1)``: the MIS pruner (2 rounds)."""
    return RulingSetPruning(beta=1)


# ---------------------------------------------------------------------------
# P_MM: maximal matching (Observation 3.3)
# ---------------------------------------------------------------------------

class _MatchingPruneProcess(NodeProcess):
    __slots__ = ("step", "y_hat", "neighbour_values", "matched")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.step = 0
        _, self.y_hat = ctx.input if ctx.input else (None, None)
        self.neighbour_values = {}
        self.matched = False

    def start(self):
        return Broadcast(("y", self.y_hat))

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            for port, payload in inbox.items():
                if payload and payload[0] == "y":
                    self.neighbour_values[port] = payload[1]
            # cnt(v) = #{x in N(u)\{v} : ŷ(x) = ŷ(u)}; sent per neighbour.
            sends = {}
            for port in self.neighbour_values:
                count = sum(
                    1
                    for other, value in self.neighbour_values.items()
                    if other != port and value == self.y_hat
                )
                sends[port] = ("cnt", count)
            return sends
        if self.step == 2:
            for port, payload in inbox.items():
                if not (payload and payload[0] == "cnt"):
                    continue
                their_count = payload[1]
                same_value = self.neighbour_values.get(port) == self.y_hat
                my_count = sum(
                    1
                    for other, value in self.neighbour_values.items()
                    if other != port and value == self.y_hat
                )
                if same_value and their_count == 0 and my_count == 0:
                    self.matched = True
            return Broadcast(("m", self.matched))
        neighbour_matched = {
            port: payload[1]
            for port, payload in inbox.items()
            if payload and payload[0] == "m"
        }
        all_matched = all(
            neighbour_matched.get(port, False)
            for port in range(self.ctx.degree)
        )
        pruned = self.matched or all_matched
        self.finish(("prune", None) if pruned else KEEP)
        return None


class MatchingPruneKernel(batch.LockstepKernel):
    """Whole-frontier ``P_MM`` over equality codes of the ŷ values.

    The 3-round per-node scan only ever compares tentative outputs for
    equality, so the arbitrary ``("M", u, v)`` / ``("U", v)`` / default
    payloads collapse to int64 codes: round 1 computes each node's
    same-value neighbour count (one bincount over the equal-endpoint
    edges), round 2 evaluates the paper's matched condition edge-wise
    (``cnt`` both sides zero after excluding the shared edge), round 3
    reduces the saturation test ``all neighbours matched``.
    """

    __slots__ = ("y", "same_count", "eq", "matched")

    def __init__(self, bg, codes):
        super().__init__(bg, schedule=3)
        np = batch.numpy_or_none()
        self.y = np.asarray(codes, dtype=np.int64)
        self.same_count = None
        self.eq = None
        self.matched = None

    def step(self):
        np = batch.numpy_or_none()
        bg = self.bg
        own, nb = bg.owner, bg.neigh
        self.round += 1
        r = self.round
        if r == 1:
            self.eq = self.y[own] == self.y[nb]
            self.same_count = np.bincount(own[self.eq], minlength=bg.n)
            # cnt(v) per neighbour is sent as targeted messages — one per
            # port, which is exactly one payload per edge slot.
            return [], [], self._broadcast()
        if r == 2:
            excluded = self.eq.astype(np.int64)
            their_count = self.same_count[nb] - excluded
            my_count = self.same_count[own] - excluded
            hit = self.eq & (their_count == 0) & (my_count == 0)
            self.matched = batch.row_flags(own[hit], bg.n)
            return [], [], self._broadcast()
        matched_neighbours = np.bincount(own[self.matched[nb]], minlength=bg.n)
        all_matched = matched_neighbours == bg.degrees
        pruned = self.matched | all_matched
        return self.finish([PRUNE if p else KEEP for p in pruned.tolist()])


def _matching_prune_batch_factory():
    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        codes = _value_codes(_tentative_of(setup.inputs, bg.labels, None))
        if codes is None:
            return None
        return MatchingPruneKernel(bg, codes)

    return factory


class MatchingPruning(PruningAlgorithm):
    """The paper's ``P_MM``: prunes matched nodes and saturated nodes.

    3 rounds: exchange values, exchange same-value counts (which decide
    "matched" exactly per the paper's definition), exchange matched
    flags.  ``W = {u : u matched} ∪ {u : all neighbours matched}``.
    """

    rounds = 3
    name = "P_MM"
    problem = MAXIMAL_MATCHING

    def algorithm(self):
        return LocalAlgorithm(
            name=self.name,
            process=_MatchingPruneProcess,
            batch=_matching_prune_batch_factory(),
            # Round-fuse-safe (D17): fixed 3-round lockstep schedule
            # with full-broadcast rounds (generic fused phase loop).
            roundfuse=True,
        )


# ---------------------------------------------------------------------------
# P_SLC: strong list coloring (from the proof of Theorem 5)
# ---------------------------------------------------------------------------

class _SLCPruneProcess(NodeProcess):
    __slots__ = ("step", "x", "y_hat", "ok", "used_nearby")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.step = 0
        self.x, self.y_hat = ctx.input if ctx.input else (None, None)
        self.ok = False
        self.used_nearby = []

    def start(self):
        return Broadcast(("y", self.y_hat))

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            neighbour_values = [
                payload[1]
                for payload in inbox.values()
                if payload and payload[0] == "y"
            ]
            in_list = (
                isinstance(self.x, SLCInput) and self.y_hat in self.x.colors
            )
            self.ok = in_list and all(
                value != self.y_hat for value in neighbour_values
            )
            return Broadcast(("ok", self.ok, self.y_hat))
        used = [
            payload[2]
            for payload in inbox.values()
            if payload and payload[0] == "ok" and payload[1]
        ]
        if self.ok:
            self.finish(("prune", None))
            return None
        if isinstance(self.x, SLCInput):
            new_x = SLCInput(
                self.x.delta_hat,
                self.x.colors.without(used),
                self.x.base_color,
            )
        else:
            new_x = self.x
        self.finish(("keep", new_x))
        return None


class SLCPruneKernel(batch.LockstepKernel):
    """Whole-frontier ``P_SLC`` with identical input-rewrite semantics.

    Round 1 vectorizes the conflict test (equal tentative pairs across an
    edge, via the same code trick as the matching kernel) and the
    in-list check; round 2 materializes the survivors' outputs.  The
    list subtraction stays at the Python level — ``ColorList.without``
    takes a *set* of pairs, so collecting each survivor's ok-neighbour
    pairs through one slab slice reproduces the per-node
    ``SLCInput(Δ̂, L \\ used, base)`` object exactly (``removed`` is a
    frozenset: delivery order cannot leak into the result, which is what
    makes the D11 new-inputs contract satisfiable at all).
    """

    __slots__ = ("xs", "ys", "codes", "ok")

    def __init__(self, bg, xs, ys, codes):
        super().__init__(bg, schedule=2)
        np = batch.numpy_or_none()
        self.xs = xs
        self.ys = ys
        self.codes = np.asarray(codes, dtype=np.int64)
        self.ok = None

    def step(self):
        bg = self.bg
        self.round += 1
        if self.round == 1:
            own, nb = bg.owner, bg.neigh
            clash = self.codes[own] == self.codes[nb]
            conflicted = batch.row_flags(own[clash], bg.n)
            np = batch.numpy_or_none()
            in_list = np.array(
                [
                    isinstance(x, SLCInput) and y in x.colors
                    for x, y in zip(self.xs, self.ys)
                ],
                dtype=bool,
            )
            self.ok = in_list & ~conflicted
            return [], [], self._broadcast()
        offsets, neigh = bg.offsets, bg.neigh
        ok = self.ok
        ys = self.ys
        results = []
        for i, pruned in enumerate(ok.tolist()):
            if pruned:
                results.append(PRUNE)
                continue
            x = self.xs[i]
            if isinstance(x, SLCInput):
                row = neigh[offsets[i] : offsets[i + 1]]
                used = [ys[j] for j in row[ok[row]].tolist()]
                x = SLCInput(x.delta_hat, x.colors.without(used), x.base_color)
            results.append(("keep", x))
        return self.finish(results)


def _slc_prune_batch_factory():
    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        inputs = setup.inputs
        xs = []
        ys = []
        for label in bg.labels:
            value = inputs.get(label)
            x, y = value if value else (None, None)
            xs.append(x)
            ys.append(y)
        codes = _value_codes(ys)
        if codes is None:
            return None
        return SLCPruneKernel(bg, xs, ys, codes)

    return factory


class SLCPruning(PruningAlgorithm):
    """Pruner for strong list coloring (Theorem 5's proof).

    ``W`` = nodes whose tentative pair is in their list and conflict-free;
    survivors' lists lose the pairs committed by pruned neighbours —
    the one pruner that rewrites inputs, as the definition of pruning
    algorithms allows.  Each pruned neighbour removes at most one pair
    per color index while the degree drops by one, preserving the SLC
    invariant (≥ deg+1 copies per index).  2 rounds.
    """

    rounds = 2
    name = "P_SLC"
    problem = SLC
    monotone = "all non-decreasing graph parameters (Δ̂ is kept)"

    def algorithm(self):
        return LocalAlgorithm(
            name=self.name,
            process=_SLCPruneProcess,
            batch=_slc_prune_batch_factory(),
            # Round-fuse-safe (D17): fixed 2-round lockstep schedule
            # with full-broadcast rounds (generic fused phase loop).
            roundfuse=True,
        )
