"""Declared runtime bounds and their set-sequences (paper Section 4.2).

Every non-uniform algorithm in the library ships with a *declared runtime
bound*: a non-decreasing function ``f`` of guessed parameters that truly
upper-bounds the implementation's running time whenever the guesses are
good.  The transformers consume nothing but this object — exactly the
paper's interface — through three operations:

* ``value(guesses)`` — evaluate ``f``;
* ``set_sequence(i)`` — a *bounded set-sequence* ``S_f(i)``: a finite set
  of guess vectors such that any ``y`` with ``f(y) ≤ i`` is dominated by
  some member, and every member ``x`` has ``f(x) ≤ c·i``;
* ``sequence_number(i)`` — the sequence-number function ``s_f`` bounding
  ``|S_f(i)|``.

Observation 4.1 gives the two constructions implemented here:

* :class:`AdditiveBound` — ``f = const + Σ f_k(x_k)``: ``s_f ≡ 1`` (a
  single vector of per-coordinate inversions);
* :class:`ProductBound` — ``f = scale · f_1(x_1) · f_2(x_2)`` with
  ``f_1, f_2 ≥ 1`` ascending: ``s_f(i) = ⌈log i⌉ + O(1)`` (a geometric
  grid of inversion pairs).

:class:`MinBound` represents ``min``-shaped bounds, which — as the paper
notes before Theorem 4 — admit *no* sequence-number function; asking it
for a set-sequence raises, and Theorem 4's portfolio construction is the
intended consumer.
"""

from __future__ import annotations

import math

from ..errors import ParameterError
from ..mathutils import ceil_log2, log_star

#: Largest guess value the inverters will return.  Guesses are fed to
#: algorithms as schedule parameters, never materialized as data, so an
#: astronomically large guess is harmless.
GUESS_CAP = 2**96


class Atom:
    """A named, non-negative, non-decreasing scalar function ``f_k(x_k)``."""

    __slots__ = ("param", "fn", "label")

    def __init__(self, param, fn, label):
        self.param = param
        self.fn = fn
        self.label = label

    def __call__(self, value):
        result = self.fn(value)
        if result < 0:
            raise ParameterError(f"atom {self.label} went negative at {value}")
        return result

    def invert(self, budget):
        """Largest integer ``y ≥ 1`` with ``f(y) ≤ budget`` (None if none).

        Exponential search then bisection; capped at :data:`GUESS_CAP`
        for atoms that plateau (``log*`` and friends).
        """
        if self(1) > budget:
            return None
        hi = 1
        while hi < GUESS_CAP and self(hi * 2) <= budget:
            hi *= 2
        if hi >= GUESS_CAP:
            return GUESS_CAP
        lo = hi  # f(lo) <= budget < f(2*lo)
        hi = hi * 2
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self(mid) <= budget:
                lo = mid
            else:
                hi = mid
        return lo

    def __repr__(self):
        return f"Atom({self.label})"


# ---------------------------------------------------------------------------
# atom factories: the vocabulary the paper's bounds are written in
# ---------------------------------------------------------------------------

def linear(param, mult=1.0):
    """``mult · x`` (e.g. the Δ term of O(Δ + log* n))."""
    return Atom(param, lambda x: mult * x, f"{mult}*{param}")


def affine(param, mult=1.0, shift=0.0):
    """``mult · x + shift``."""
    return Atom(param, lambda x: mult * x + shift, f"{mult}*{param}+{shift}")


def log2_of(param, mult=1.0):
    """``mult · ⌈log2(x+1)⌉``."""
    return Atom(
        param,
        lambda x: mult * ceil_log2(x + 1),
        f"{mult}*log2({param})",
    )


def log2_squared(param, mult=1.0):
    """``mult · ⌈log2(x+1)⌉²`` (hash-Luby's declared n-only bound)."""
    return Atom(
        param,
        lambda x: mult * ceil_log2(x + 1) ** 2,
        f"{mult}*log2^2({param})",
    )


def logstar_of(param, mult=1.0):
    """``mult · (log* x + 1)`` — the ubiquitous Linial term."""
    return Atom(
        param,
        lambda x: mult * (log_star(x) + 1),
        f"{mult}*logstar({param})",
    )


def xlog2x(param, mult=1.0):
    """``mult · x · (⌈log2(x+1)⌉ + 1)`` (Kuhn–Wattenhofer reductions)."""
    return Atom(
        param,
        lambda x: mult * x * (ceil_log2(x + 1) + 1),
        f"{mult}*{param}log{param}",
    )


def power_of(param, exponent, mult=1.0):
    """``mult · x^exponent``."""
    return Atom(
        param,
        lambda x: mult * float(x) ** exponent,
        f"{mult}*{param}^{exponent}",
    )


def custom(param, fn, label):
    """Escape hatch for bespoke non-decreasing terms."""
    return Atom(param, fn, label)


# ---------------------------------------------------------------------------
# bounds
# ---------------------------------------------------------------------------

class RuntimeBound:
    """Base class: named-parameter, non-decreasing runtime bound."""

    params = ()

    def value(self, guesses):
        """Evaluate ``f`` on a guess mapping (must cover ``params``)."""
        raise NotImplementedError

    def rounds(self, guesses):
        """``⌈f⌉`` as an integer round count."""
        return int(math.ceil(self.value(guesses)))

    @property
    def bounding_constant(self):
        """The ``c`` with ``f(x) ≤ c·i`` for all ``x ∈ S_f(i)``."""
        raise NotImplementedError

    def set_sequence(self, i):
        """``S_f(i)`` as a list of guess dicts (may be empty)."""
        raise NotImplementedError

    def sequence_number(self, i):
        """``s_f(i)``, an upper bound on ``|S_f(i)|`` (moderately slow)."""
        raise NotImplementedError

    def freeze(self, param, value):
        """Bound obtained by fixing one parameter (Theorem 5 layering)."""
        return FrozenBound(self, {param: value})

    def _require(self, guesses):
        missing = [p for p in self.params if p not in guesses]
        if missing:
            raise ParameterError(f"bound needs parameters {missing}")


class AdditiveBound(RuntimeBound):
    """``f(x) = const + Σ_k f_k(x_k)`` — sequence number 1 (Obs. 4.1).

    The atoms' parameters must be distinct.  ``S_f(i)`` is the single
    vector of coordinate-wise inversions ``x_k = max{y : f_k(y) ≤ i}``
    (empty when some coordinate admits no value).
    """

    def __init__(self, atoms, constant=0.0, label=None):
        self.atoms = tuple(atoms)
        self.constant = float(constant)
        names = [a.param for a in self.atoms]
        if len(set(names)) != len(names):
            raise ParameterError("additive atoms must have distinct parameters")
        self.params = tuple(names)
        self.label = label or " + ".join(
            [a.label for a in self.atoms] + [f"{constant}"]
        )

    def value(self, guesses):
        self._require(guesses)
        return self.constant + sum(a(guesses[a.param]) for a in self.atoms)

    @property
    def bounding_constant(self):
        # Members invert at budget i - const, so
        # f(x) ≤ const + ℓ·(i - const) ≤ max(1, ℓ)·i.
        return max(1, len(self.atoms))

    def set_sequence(self, i):
        budget = i - self.constant
        if budget < 0:
            return []
        vector = {}
        for atom in self.atoms:
            inverted = atom.invert(budget)
            if inverted is None:
                return []
            vector[atom.param] = inverted
        return [vector]

    def sequence_number(self, i):
        return 1

    def __repr__(self):
        return f"AdditiveBound({self.label})"


class ProductBound(RuntimeBound):
    """``f(x) = scale · f_1(x_1) · f_2(x_2)`` with ascending ``f_k ≥ 1``.

    ``S_f(i)``: for ``j ∈ [0, L+1]`` (``L = ⌈log2(i/scale)⌉``) the pair
    ``(max{y: f_1(y) ≤ 2^j}, max{y: f_2(y) ≤ 2^{L-j+1}})``; any ``y``
    with ``f(y) ≤ i`` is dominated by the pair at
    ``j = ⌈log2 f_1(y_1)⌉``, and members satisfy ``f ≤ 4i``.
    """

    def __init__(self, left, right, scale=1.0, label=None):
        if left.param == right.param:
            raise ParameterError("product atoms must have distinct parameters")
        self.left = left
        self.right = right
        self.scale = float(scale)
        self.params = (left.param, right.param)
        self.label = label or f"{scale}*({left.label})*({right.label})"

    def _checked(self, atom, value):
        result = atom(value)
        if result < 1.0:
            raise ParameterError(
                f"product atom {atom.label} must be >= 1 (got {result})"
            )
        return result

    def value(self, guesses):
        self._require(guesses)
        return (
            self.scale
            * self._checked(self.left, guesses[self.left.param])
            * self._checked(self.right, guesses[self.right.param])
        )

    @property
    def bounding_constant(self):
        return 4.0

    def set_sequence(self, i):
        budget = i / self.scale
        if budget < 1.0:
            return []
        level = max(0, math.ceil(math.log2(budget)))
        vectors = []
        for j in range(level + 2):
            x1 = self.left.invert(2.0**j)
            x2 = self.right.invert(2.0 ** (level - j + 1))
            if x1 is None or x2 is None:
                continue
            vectors.append({self.left.param: x1, self.right.param: x2})
        return vectors

    def sequence_number(self, i):
        return max(1, ceil_log2(max(2, i))) + 2

    def __repr__(self):
        return f"ProductBound({self.label})"


class FrozenBound(RuntimeBound):
    """A bound with some parameters fixed to constants (Theorem 5)."""

    def __init__(self, base, fixed):
        self.base = base
        self.fixed = dict(fixed)
        self.params = tuple(p for p in base.params if p not in self.fixed)
        self.label = f"{base!r} | {self.fixed}"

    def value(self, guesses):
        merged = dict(self.fixed)
        merged.update({p: guesses[p] for p in self.params})
        return self.base.value(merged)

    @property
    def bounding_constant(self):
        return self.base.bounding_constant

    def set_sequence(self, i):
        vectors = []
        for vector in self.base.set_sequence(i):
            if all(vector.get(p, 0) >= v for p, v in self.fixed.items()):
                reduced = {p: vector[p] for p in self.params}
                vectors.append(reduced)
        return vectors

    def sequence_number(self, i):
        return self.base.sequence_number(i)


class MinBound(RuntimeBound):
    """``min`` of several bounds: evaluable, but with no set-sequence.

    The paper points out (Section 4.6) that ``min`` admits no bounded
    sequence-number function — Theorem 4's portfolio is the tool for
    these — so :meth:`set_sequence` raises.
    """

    def __init__(self, members, label=None):
        self.members = tuple(members)
        seen = []
        for member in self.members:
            for p in member.params:
                if p not in seen:
                    seen.append(p)
        self.params = tuple(seen)
        self.label = label or "min(" + ", ".join(repr(m) for m in self.members) + ")"

    def value(self, guesses):
        return min(m.value(guesses) for m in self.members)

    @property
    def bounding_constant(self):
        raise ParameterError(
            "min-shaped bounds have no sequence-number function "
            "(paper Section 4.6); use the Theorem 4 portfolio"
        )

    def set_sequence(self, i):
        raise ParameterError(
            "min-shaped bounds have no set-sequence; use the portfolio"
        )

    def sequence_number(self, i):
        raise ParameterError(
            "min-shaped bounds have no sequence-number function"
        )

    def __repr__(self):
        return f"MinBound({self.label})"


def check_set_sequence(bound, i, samples):
    """Test helper: verify the two set-sequence properties at level ``i``.

    ``samples`` is an iterable of guess dicts; for each with
    ``f(y) ≤ i`` some member of ``S_f(i)`` must dominate it, and every
    member must satisfy ``f(x) ≤ c·i``.  Returns the list of failures.
    """
    failures = []
    sequence = bound.set_sequence(i)
    c = bound.bounding_constant
    if len(sequence) > bound.sequence_number(i):
        failures.append(
            f"|S_f({i})| = {len(sequence)} exceeds s_f = {bound.sequence_number(i)}"
        )
    for x in sequence:
        if bound.value(x) > c * i + 1e-9:
            failures.append(f"member {x} has f = {bound.value(x)} > {c}*{i}")
    for y in samples:
        if bound.value(y) <= i:
            dominated = any(
                all(x[p] >= y[p] for p in bound.params) for x in sequence
            )
            if not dominated:
                failures.append(f"sample {y} (f={bound.value(y)}) not dominated")
    return failures
