"""Execution domains: where a transformer runs its black-box algorithm.

The transformers of Theorems 1–5 repeatedly (a) run an algorithm with a
round budget, (b) run a pruning algorithm, and (c) restrict the instance
to the non-pruned nodes.  They do not care whether the nodes are the
physical network's nodes or virtual nodes of a derived graph (line graph,
clique product) — so both are hidden behind a :class:`Domain`:

* :class:`PhysicalDomain` — a :class:`~repro.local.graph.SimGraph` driven
  by the plain synchronous runner;
* :class:`VirtualDomain` — a derived graph executed through
  :mod:`repro.local.virtual`; round budgets are charged at the simulation
  dilation (×2 for line graphs) plus a constant bookkeeping overhead,
  keeping the round ledgers honest about what the physical network pays.

Restriction semantics follow the paper: a budgeted run forces the default
output ("0") on nodes that have not terminated.

Domain runs honour the process-wide runner backend
(:func:`repro.local.runner.use_backend`) and accept the full executor
selection per call (``backend`` / ``rng`` / ``shards`` /
``shard_channel``, resolved once by :func:`_resolve_exec` and forwarded
verbatim) — so a whole transformer pipeline shards, or dispatches to
the persistent worker pool (``shard_channel="mp-pooled"``, DESIGN.md
D13), without the transformers knowing: each alternation step's guess
run *and* pruning run re-dispatch to the scope's warm pool.
Restriction uses the incremental subgraph paths (``SimGraph.subgraph``
/ ``VirtualSpec.restricted``), so one alternation step costs O(pruned
work), not O(steps · n log n).
"""

from __future__ import annotations

from functools import wraps

from ..local.faults import use_faults
from ..local.graph import SimGraph
from ..local.runner import (
    SAFETY_ROUND_CAP,
    batching_requested,
    resolve_execution,
    run,
    run_restricted,
)
from ..local.virtual import (
    VirtualSpec,
    flatten_outputs,
    run_virtual_batch,
    run_virtual_batch_full,
    virtualize,
)

#: Extra physical rounds charged per virtual-domain run for the
#: host-announcement handshake of the virtual layer.
VIRTUAL_OVERHEAD = 3


def _resolve_exec(exec_kwargs):
    """The one dispatch helper behind every domain runner.

    Domains accept the executor-selection flags (``backend``, ``rng``,
    ``shards``, ``shard_channel``) as pass-through keyword arguments —
    the same names, defaults and validation as
    :func:`repro.local.runner.run` — and resolve them exactly once
    here, so backend/batch/shard selection can never drift between
    ``run_restricted`` and ``run_full`` or between domain kinds.
    """
    unknown = set(exec_kwargs) - {"backend", "rng", "shards", "shard_channel"}
    if unknown:
        raise TypeError(
            f"unexpected execution keyword(s) {sorted(unknown)}; "
            "domains accept backend/rng/shards/shard_channel"
        )
    return resolve_execution(
        exec_kwargs.get("backend"),
        exec_kwargs.get("rng"),
        exec_kwargs.get("shards"),
        exec_kwargs.get("shard_channel"),
    )


class Domain:
    """Common interface over physical and derived execution graphs."""

    #: Domain kind matched against an algorithm's advertised ``domains``
    #: capability (see ``LocalAlgorithm.capabilities``).
    kind = "abstract"

    @property
    def nodes(self):
        raise NotImplementedError

    @property
    def n(self):
        return len(self.nodes)

    def ident(self, u):
        raise NotImplementedError

    def degree(self, u):
        raise NotImplementedError

    def neighbors(self, u):
        raise NotImplementedError

    @property
    def max_ident(self):
        values = [self.ident(u) for u in self.nodes]
        return max(values) if values else 0

    @property
    def max_degree(self):
        values = [self.degree(u) for u in self.nodes]
        return max(values) if values else 0

    def run_restricted(self, algorithm, budget, **kwargs):
        """Run with a round budget; returns ``(outputs, rounds_charged)``.

        ``rounds_charged`` is what the physical network pays for the
        budget — the aligned-schedule cost of the paper's sub-iterations
        (the full budget, not the realized rounds, because every node
        must know when the phase ends).
        """
        raise NotImplementedError

    def run_full(self, algorithm, **kwargs):
        """Run to self-termination; returns ``(outputs, rounds_used)``."""
        raise NotImplementedError

    def subgraph(self, keep):
        """Domain induced on the surviving nodes."""
        raise NotImplementedError

    def as_simgraph(self):
        """Materialize the domain's graph for centralized verification."""
        raise NotImplementedError


class PhysicalDomain(Domain):
    """The network itself."""

    kind = "physical"

    def __init__(self, graph):
        if not isinstance(graph, SimGraph):
            raise TypeError("PhysicalDomain wraps a SimGraph")
        self.graph = graph

    @property
    def nodes(self):
        return self.graph.nodes

    def ident(self, u):
        return self.graph.ident[u]

    def degree(self, u):
        return self.graph.degree(u)

    def neighbors(self, u):
        return self.graph.neighbors(u)

    @property
    def max_ident(self):
        return self.graph.max_ident

    @property
    def max_degree(self):
        return self.graph.max_degree

    def run_restricted(
        self,
        algorithm,
        budget,
        *,
        inputs=None,
        guesses=None,
        seed=0,
        salt=0,
        default_output=0,
        **exec_kwargs,
    ):
        _resolve_exec(exec_kwargs)  # validate once, forward verbatim
        result = run_restricted(
            self.graph,
            algorithm,
            budget,
            default_output=default_output,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            **exec_kwargs,
        )
        return result.outputs, budget

    def run_full(
        self,
        algorithm,
        *,
        inputs=None,
        guesses=None,
        seed=0,
        salt=0,
        max_rounds=None,
        **exec_kwargs,
    ):
        _resolve_exec(exec_kwargs)  # validate once, forward verbatim
        result = run(
            self.graph,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            max_rounds=max_rounds,
            **exec_kwargs,
        )
        return result.outputs, result.rounds

    def subgraph(self, keep):
        return PhysicalDomain(self.graph.subgraph(keep))

    def as_simgraph(self):
        return self.graph


def _faultless(fn):
    """Pin the ambient fault plan off for a virtual-domain execution.

    D14 scopes fault injection to *physical* runs: the ambient plan is
    keyed by physical node labels, while a virtual simulation executes
    wrapped host processes whose labels (and message routes) belong to
    the derived graph — injecting there would corrupt the simulation's
    commit protocol rather than model a faulty physical node.
    """

    @wraps(fn)
    def wrapper(*args, **kwargs):
        with use_faults(None):
            return fn(*args, **kwargs)

    return wrapper


class VirtualDomain(Domain):
    """A derived graph simulated on the physical network.

    Budgets are given in *virtual* rounds; the charge is
    ``budget * dilation + VIRTUAL_OVERHEAD`` physical rounds.
    """

    kind = "virtual"

    def __init__(self, physical, spec):
        if not isinstance(spec, VirtualSpec):
            raise TypeError("VirtualDomain wraps a VirtualSpec")
        self.physical = physical
        self.spec = spec

    @property
    def nodes(self):
        return self.spec.virtual_nodes

    def ident(self, u):
        return self.spec.ident[u]

    def degree(self, u):
        return len(self.spec.adj[u])

    def neighbors(self, u):
        return self.spec.adj[u]

    @_faultless
    def run_restricted(
        self,
        algorithm,
        budget,
        *,
        inputs=None,
        guesses=None,
        seed=0,
        salt=0,
        default_output=0,
        **exec_kwargs,
    ):
        backend, rng, shards, shard_channel = _resolve_exec(exec_kwargs)
        physical_budget = budget * self.spec.dilation + VIRTUAL_OVERHEAD
        if backend != "reference" and batching_requested(backend):
            # Batched fast path: the kernel runs on the virtual graph
            # itself (optionally partitioned across shards, D12) and
            # the host commit protocol is replayed from the spec's
            # routing tables — bit-identical domain outputs with no
            # per-virtual-node host simulation (DESIGN.md D10).
            outputs = run_virtual_batch(
                self.spec,
                algorithm,
                self.physical,
                cap=physical_budget,
                virt_inputs=inputs or {},
                guesses=guesses,
                seed=seed,
                salt=salt,
                rng_mode=rng,
                default_output=default_output,
                shards=shards,
                shard_channel=shard_channel,
            )
            if outputs is not None:
                return outputs, physical_budget
        wrapped = virtualize(
            self.spec, algorithm, virt_inputs=inputs or {}, engine=backend
        )
        result = run_restricted(
            self.physical,
            wrapped,
            physical_budget,
            default_output=None,
            inputs=None,
            guesses=guesses,
            seed=seed,
            salt=salt,
            backend=backend,
            rng=rng,
            shards=shards,
            shard_channel=shard_channel,
        )
        outputs = flatten_outputs(
            self.spec, result.outputs, default=default_output
        )
        for virt, value in outputs.items():
            if value is None:
                outputs[virt] = default_output
        return outputs, physical_budget

    @_faultless
    def run_full(
        self,
        algorithm,
        *,
        inputs=None,
        guesses=None,
        seed=0,
        salt=0,
        max_rounds=None,
        **exec_kwargs,
    ):
        backend, rng, shards, shard_channel = _resolve_exec(exec_kwargs)
        if backend != "reference" and batching_requested(backend):
            # Batched full run (D10 closure): step the kernel to its
            # fixed point and replay the host commit rounds — no host
            # simulation, same outputs/rounds.
            got = run_virtual_batch_full(
                self.spec,
                algorithm,
                self.physical,
                cap=max_rounds if max_rounds is not None else SAFETY_ROUND_CAP,
                virt_inputs=inputs or {},
                guesses=guesses,
                seed=seed,
                salt=salt,
                rng_mode=rng,
                shards=shards,
                shard_channel=shard_channel,
            )
            if got is not None:
                return got
        wrapped = virtualize(
            self.spec, algorithm, virt_inputs=inputs or {}, engine=backend
        )
        result = run(
            self.physical,
            wrapped,
            guesses=guesses,
            seed=seed,
            salt=salt,
            max_rounds=max_rounds,
            backend=backend,
            rng=rng,
            shards=shards,
            shard_channel=shard_channel,
        )
        return flatten_outputs(self.spec, result.outputs), result.rounds

    def subgraph(self, keep):
        from ..local.runner import DEFAULT_BACKEND

        if DEFAULT_BACKEND == "reference":
            # Seed-faithful path: rebuild the spec (and its routes) from
            # scratch, as the original implementation did.
            keep = set(keep)
            adj = {
                v: [w for w in self.spec.adj[v] if w in keep]
                for v in self.spec.virtual_nodes
                if v in keep
            }
            host = {v: self.spec.host[v] for v in adj}
            ident = {v: self.spec.ident[v] for v in adj}
            spec = VirtualSpec(host, ident, adj, self.physical)
            return VirtualDomain(self.physical, spec)
        return VirtualDomain(self.physical, self.spec.restricted(keep))

    def as_simgraph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.spec.virtual_nodes)
        for v, neighbours in self.spec.adj.items():
            for w in neighbours:
                graph.add_edge(v, w)
        return SimGraph.from_networkx(graph, idents=self.spec.ident)


def as_domain(graph_or_domain):
    """Coerce a SimGraph into a PhysicalDomain (Domains pass through)."""
    if isinstance(graph_or_domain, Domain):
        return graph_or_domain
    if isinstance(graph_or_domain, SimGraph):
        return PhysicalDomain(graph_or_domain)
    raise TypeError(
        f"expected SimGraph or Domain, got {type(graph_or_domain).__name__}"
    )
