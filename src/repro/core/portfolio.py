"""Theorem 4: run as fast as the fastest of k uniform algorithms.

Given uniform algorithms ``U_1 .. U_k`` whose running times (functions of
*unknown* parameter sets) cannot be compared locally, and a pruning
algorithm monotone for all of them, the interleaving

    iteration i:  (U_1 restricted to 2^i ; P ; ... ; U_k restricted to 2^i ; P)

terminates by iteration ``⌈log f_min⌉`` and costs ``O(f_min)`` overall —
the minimum of the members' bounds, with no knowledge of which member is
best (this is how Corollary 1(i) assembles its ``min{2^O(√log n)},
O(Δ + log* n), f(a, n)}`` MIS).

Members implement ``run_budget(domain, inputs, seed, budget) ->
(outputs, charged)`` with restriction semantics.  Both
:class:`~repro.core.transformer.UniformAlgorithm` (Theorem 1/2/3
products) and plain uniform LOCAL algorithms wrapped in
:class:`LocalMember` qualify — matching the paper, where Theorem 4 is
applied to already-uniformized algorithms.
"""

from __future__ import annotations

from .alternating import AlternatingEngine, AlternationDiverged
from .domain import as_domain


class LocalMember:
    """A plain uniform LOCAL algorithm as a portfolio member."""

    def __init__(self, algorithm, *, default_output=0, name=None):
        if algorithm.requires:
            raise ValueError(
                f"portfolio members must be uniform; {algorithm.name!r} "
                f"requires {algorithm.requires}"
            )
        self.algorithm = algorithm
        self.default_output = default_output
        self.name = name or algorithm.name

    def run_budget(self, domain, inputs, seed, budget):
        outputs, charged = domain.run_restricted(
            self.algorithm,
            budget,
            inputs=inputs,
            seed=seed,
            salt=f"member|{self.name}",
            default_output=self.default_output,
        )
        return outputs, charged


class Portfolio:
    """The Theorem 4 interleaver."""

    def __init__(self, members, pruning, *, name=None, base=2.0,
                 max_iterations=60, default_output=0):
        if not members:
            raise ValueError("portfolio needs at least one member")
        self.members = list(members)
        self.pruning = pruning
        self.base = float(base)
        self.max_iterations = max_iterations
        self.default_output = default_output
        self.name = name or (
            "portfolio[" + ",".join(m.name for m in self.members) + "]"
        )

    @property
    def requires(self):
        return ()

    def run(self, graph, *, inputs=None, seed=0, budget=None):
        domain = as_domain(graph)
        engine = AlternatingEngine(
            domain,
            inputs,
            self.pruning,
            seed=seed,
            default_output=self.default_output,
        )
        for i in range(1, self.max_iterations + 1):
            member_budget = max(1, int(self.base**i))
            for j, member in enumerate(self.members, start=1):

                def runner(dom, ins, salt, member=member):
                    return member.run_budget(
                        dom, ins, f"{seed}|{salt}", member_budget
                    )

                step_cost = member_budget + self.pruning.rounds
                if budget is not None and engine.rounds + step_cost > budget:
                    engine.charge(max(0, budget - engine.rounds))
                    return engine.finalize(self.name, completed=False)
                engine.step_with(
                    runner,
                    label=member.name,
                    iteration=i,
                    index=j,
                    guesses={},
                    budget=member_budget,
                )
                if engine.done:
                    return engine.finalize(self.name)
        raise AlternationDiverged(
            f"{self.name}: nodes remain after {self.max_iterations} iterations"
        )

    def run_budget(self, domain, inputs, seed, budget):
        """Portfolios are themselves uniform: they nest as members."""
        result = self.run(domain, inputs=inputs, seed=seed, budget=budget)
        return result.outputs, budget

    def __repr__(self):
        return f"Portfolio({self.name!r}, members={len(self.members)})"


def theorem4(members, pruning, *, name=None, base=2.0, max_iterations=60,
             default_output=0):
    """Build the Theorem 4 portfolio over uniform members."""
    return Portfolio(
        members,
        pruning,
        name=name,
        base=base,
        max_iterations=max_iterations,
        default_output=default_output,
    )
