"""Theorem 4: run as fast as the fastest of k uniform algorithms.

Given uniform algorithms ``U_1 .. U_k`` whose running times (functions of
*unknown* parameter sets) cannot be compared locally, and a pruning
algorithm monotone for all of them, the interleaving

    iteration i:  (U_1 restricted to 2^i ; P ; ... ; U_k restricted to 2^i ; P)

terminates by iteration ``⌈log f_min⌉`` and costs ``O(f_min)`` overall —
the minimum of the members' bounds, with no knowledge of which member is
best (this is how Corollary 1(i) assembles its ``min{2^O(√log n)},
O(Δ + log* n), f(a, n)}`` MIS).

Members implement ``run_budget(domain, inputs, seed, budget) ->
(outputs, charged)`` with restriction semantics.  Both
:class:`~repro.core.transformer.UniformAlgorithm` (Theorem 1/2/3
products) and plain uniform LOCAL algorithms wrapped in
:class:`LocalMember` qualify — matching the paper, where Theorem 4 is
applied to already-uniformized algorithms.

:func:`speculative_race` is the fused-engine twin (DESIGN.md D16): the
candidate ``(A_i ; P)`` arms of a heat run as *lanes of one
block-diagonal kernel* instead of sequentially, losing lanes are
cancelled the round a winner's output verifies, and budgets still
escalate geometrically — Corollary 1's portfolio at interactive
latency.  The trade against :class:`Portfolio` is scope: racing is
winner-take-all (an arm must solve the whole instance within its
budget; there is no cross-iteration instance shrinking), so it keeps
Theorem 4's certainty-of-correctness but not its per-node progress
accounting.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..local.fused import run_many
from ..local.runner import last_stepping
from .alternating import AlternatingEngine, AlternationDiverged, StepRecord
from .domain import as_domain


class LocalMember:
    """A plain uniform LOCAL algorithm as a portfolio member."""

    def __init__(self, algorithm, *, default_output=0, name=None):
        if algorithm.requires:
            raise ValueError(
                f"portfolio members must be uniform; {algorithm.name!r} "
                f"requires {algorithm.requires}"
            )
        self.algorithm = algorithm
        self.default_output = default_output
        self.name = name or algorithm.name

    def run_budget(self, domain, inputs, seed, budget):
        outputs, charged = domain.run_restricted(
            self.algorithm,
            budget,
            inputs=inputs,
            seed=seed,
            salt=f"member|{self.name}",
            default_output=self.default_output,
        )
        return outputs, charged


class Portfolio:
    """The Theorem 4 interleaver."""

    def __init__(self, members, pruning, *, name=None, base=2.0,
                 max_iterations=60, default_output=0):
        if not members:
            raise ValueError("portfolio needs at least one member")
        self.members = list(members)
        self.pruning = pruning
        self.base = float(base)
        self.max_iterations = max_iterations
        self.default_output = default_output
        self.name = name or (
            "portfolio[" + ",".join(m.name for m in self.members) + "]"
        )

    @property
    def requires(self):
        return ()

    def run(self, graph, *, inputs=None, seed=0, budget=None):
        domain = as_domain(graph)
        engine = AlternatingEngine(
            domain,
            inputs,
            self.pruning,
            seed=seed,
            default_output=self.default_output,
        )
        for i in range(1, self.max_iterations + 1):
            member_budget = max(1, int(self.base**i))
            for j, member in enumerate(self.members, start=1):

                def runner(dom, ins, salt, member=member):
                    return member.run_budget(
                        dom, ins, f"{seed}|{salt}", member_budget
                    )

                step_cost = member_budget + self.pruning.rounds
                if budget is not None and engine.rounds + step_cost > budget:
                    engine.charge(max(0, budget - engine.rounds))
                    return engine.finalize(self.name, completed=False)
                engine.step_with(
                    runner,
                    label=member.name,
                    iteration=i,
                    index=j,
                    guesses={},
                    budget=member_budget,
                )
                if engine.done:
                    return engine.finalize(self.name)
        raise AlternationDiverged(
            f"{self.name}: nodes remain after {self.max_iterations} iterations"
        )

    def run_budget(self, domain, inputs, seed, budget):
        """Portfolios are themselves uniform: they nest as members."""
        result = self.run(domain, inputs=inputs, seed=seed, budget=budget)
        return result.outputs, budget

    def __repr__(self):
        return f"Portfolio({self.name!r}, members={len(self.members)})"


def theorem4(members, pruning, *, name=None, base=2.0, max_iterations=60,
             default_output=0):
    """Build the Theorem 4 portfolio over uniform members."""
    return Portfolio(
        members,
        pruning,
        name=name,
        base=base,
        max_iterations=max_iterations,
        default_output=default_output,
    )


class RaceArm:
    """One candidate arm of a speculative race: algorithm + pinned guesses.

    Unlike Theorem 4 members, arms need not be uniform — the race pins
    each arm's guesses up front (the Corollary-1 candidate pool *is*
    the non-uniform boxes under their guess schedule), and correctness
    never depends on the guesses being right: a wrong-guess arm merely
    fails verification and loses the heat.
    """

    def __init__(self, algorithm, *, guesses=None, name=None):
        self.algorithm = algorithm
        self.guesses = dict(guesses or {})
        missing = [p for p in algorithm.requires if p not in self.guesses]
        if missing:
            raise ParameterError(
                f"race arm {algorithm.name!r} requires guesses for {missing}"
            )
        if name is None:
            tag = ",".join(f"{k}={v}" for k, v in sorted(self.guesses.items()))
            name = f"{algorithm.name}[{tag}]" if tag else algorithm.name
        self.name = name


def _as_arm(candidate):
    if isinstance(candidate, RaceArm):
        return candidate
    if isinstance(candidate, LocalMember):
        return RaceArm(candidate.algorithm, name=candidate.name)
    if isinstance(candidate, (tuple, list)) and len(candidate) == 2:
        return RaceArm(candidate[0], guesses=candidate[1])
    return RaceArm(candidate)


class RaceResult:
    """Outcome of a speculative race (render-compatible with traces).

    Exposes the same ``name/outputs/rounds/steps/completed`` surface as
    :class:`~repro.core.alternating.TransformResult`, so
    :func:`~repro.core.alternating.render_trace` draws heats as boxes
    (tagged ``via fused/...`` when the arms shared a slab), plus the
    race verdict: ``winner``/``winner_index`` and the number of
    ``heats`` run.
    """

    __slots__ = (
        "name", "outputs", "rounds", "steps", "completed", "winner",
        "winner_index", "heats",
    )

    def __init__(self, name, outputs, rounds, steps, winner, winner_index,
                 heats):
        self.name = name
        self.outputs = outputs
        self.rounds = rounds
        self.steps = steps
        self.completed = True
        self.winner = winner
        self.winner_index = winner_index
        self.heats = heats

    def __repr__(self):
        return (
            f"RaceResult({self.name!r}, winner={self.winner!r}, "
            f"heats={self.heats}, rounds={self.rounds})"
        )


def speculative_race(
    graph,
    candidates,
    pruning,
    *,
    inputs=None,
    seed=0,
    base=2.0,
    max_heats=40,
    default_output=0,
    name=None,
    lanes=None,
):
    """Race candidate arms as lanes of one fused run per heat.

    Heat ``i`` submits every arm restricted to ``⌈base^i⌉`` rounds as
    one :func:`~repro.local.fused.run_many` call.  The moment a lane
    commits, its tentative output is *verified* by one application of
    the pruning algorithm (monotone for all arms, as in Theorem 4): if
    ``P`` prunes every node the output is a solution (Observation 3.4
    with a single total prune) — that lane wins and all other lanes
    are cancelled the same round.  Unverified finishers (a
    Monte-Carlo arm's garbage, a truncated prefix) let the heat
    continue; if no arm verifies, the budget doubles and the arms
    re-race — the same geometric escalation as Theorem 4, without the
    sequential ``k·2^i`` cost per iteration.

    The ledger charges, per heat, the rounds actually stepped (the
    winner's finish round, or the full budget) plus ``pruning.rounds``
    per verification attempted.  Raises
    :class:`~repro.core.alternating.AlternationDiverged` when
    ``max_heats`` budgets are exhausted without a verified winner.
    """
    arms = [_as_arm(c) for c in candidates]
    if not arms:
        raise ParameterError("race needs at least one arm")
    domain = as_domain(graph)
    inputs = dict(inputs or {})
    race_name = name or ("race[" + ",".join(a.name for a in arms) + "]")
    jobs = [
        (
            domain.graph,
            arm.algorithm,
            {"guesses": arm.guesses, "salt": f"race|{j}|{arm.name}"},
        )
        for j, arm in enumerate(arms)
    ]
    total_rounds = 0
    steps = []
    for i in range(1, max_heats + 1):
        budget = max(1, int(base**i))
        winner = {}
        verifications = 0
        prune_backend = None

        def verify(lane_index, result):
            nonlocal verifications, prune_backend
            if winner or result is None:
                return ()
            prune = pruning.apply(
                domain,
                inputs,
                result.outputs,
                seed=seed,
                salt=f"race|verify|{i}|{lane_index}",
            )
            verifications += 1
            prune_backend = last_stepping()
            if len(prune.pruned) == domain.n:
                winner["index"] = lane_index
                winner["result"] = result
                return [j for j in range(len(arms)) if j != lane_index]
            return ()

        run_many(
            jobs,
            seeds=seed,
            max_rounds=budget,
            default_output=default_output,
            truncate=True,
            lanes=lanes,
            errors="return",
            on_lane_done=verify,
        )
        algo_backend = last_stepping()
        stepped = winner["result"].rounds if winner else budget
        charged = stepped + pruning.rounds * verifications
        total_rounds += charged
        steps.append(
            StepRecord(
                label=(
                    arms[winner["index"]].name if winner else race_name
                ),
                iteration=i,
                index=1,
                guesses={},
                budget=budget,
                charged=charged,
                nodes_before=domain.n,
                pruned=domain.n if winner else 0,
                backends=(algo_backend, prune_backend),
            )
        )
        if winner:
            return RaceResult(
                race_name,
                dict(winner["result"].outputs),
                total_rounds,
                steps,
                arms[winner["index"]].name,
                winner["index"],
                i,
            )
    raise AlternationDiverged(
        f"{race_name}: no arm verified within {max_heats} heats"
    )
