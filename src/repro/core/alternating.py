"""The alternating-algorithm engine (paper Section 3.3, Figure 1).

An alternating algorithm ``π((A_i), P)`` executes ``B_i = (A_i ; P)`` for
``i = 1, 2, ...`` where each ``A_i`` runs on the instance ``(G_i, x_i)``
left by the previous pruning step.  Observation 3.4: if the alternation
terminates (all nodes pruned), the combined output — each node keeping
the tentative value it was pruned with — solves the problem.

:class:`AlternatingEngine` maintains the evolving ``(G_i, x_i)``, the
combined output vector, and the round ledger.  All sub-iterations of the
paper's Algorithms 1 and 2 have round budgets known to every node in
advance (``c · 2^i``), so phases are globally aligned and the ledger
charges the full budget plus the pruner's constant time — exactly the
accounting of the proofs of Theorems 1 and 2 (deviation D7 in
DESIGN.md).

The engine records a :class:`StepRecord` per ``B`` step; the records
render Figure 1's schematic via :func:`render_trace`.
"""

from __future__ import annotations

from time import perf_counter

from ..errors import ReproError
from ..local.runner import (
    last_faults,
    last_recovery,
    last_stepping,
    note_faults,
    note_recovery,
    note_stepping,
)
from .domain import as_domain


class StepRecord:
    """One ``A_i ; P`` step of an alternation.

    ``backends`` attributes the step's two runs to their stepping
    strategy — ``(algorithm, pruning)``, each ``"batch"``,
    ``"per-node"`` or ``"reference"`` (host orchestrations report the
    stepping of their last inner run; ``None`` when nothing executed).
    A run that survived worker failures carries its recovery trail in
    brackets, e.g. ``"shard-batch[respawn@r3(s1)]"`` (DESIGN.md D15).
    ``seconds`` is the step's wall clock, so traces and benches can
    attribute time per step and per backend.  ``faults`` is the
    description of the fault plan injected into the step's algorithm
    run (DESIGN.md D14), ``None`` for honest steps.
    """

    __slots__ = (
        "label",
        "iteration",
        "index",
        "guesses",
        "budget",
        "charged",
        "nodes_before",
        "pruned",
        "backends",
        "seconds",
        "faults",
    )

    def __init__(
        self,
        label,
        iteration,
        index,
        guesses,
        budget,
        charged,
        nodes_before,
        pruned,
        backends=(None, None),
        seconds=None,
        faults=None,
    ):
        self.label = label
        self.iteration = iteration
        self.index = index
        self.guesses = guesses
        self.budget = budget
        self.charged = charged
        self.nodes_before = nodes_before
        self.pruned = pruned
        self.backends = backends
        self.seconds = seconds
        self.faults = faults

    @property
    def nodes_after(self):
        return self.nodes_before - self.pruned

    def __repr__(self):
        return (
            f"StepRecord(i={self.iteration}, j={self.index}, {self.label}, "
            f"budget={self.budget}, {self.nodes_before}->{self.nodes_after})"
        )


class TransformResult:
    """Final outcome of a transformer run.

    Attributes
    ----------
    outputs:
        Combined output vector (Observation 3.4's gluing of per-step
        tentative outputs over the pruned sets).
    rounds:
        Total rounds charged (aligned-schedule accounting).
    steps:
        List of :class:`StepRecord`.
    completed:
        False when a budget cut the run short (Theorem 4 restriction);
        remaining nodes carry the default output.
    """

    __slots__ = ("name", "outputs", "rounds", "steps", "completed")

    def __init__(self, name, outputs, rounds, steps, completed):
        self.name = name
        self.outputs = outputs
        self.rounds = rounds
        self.steps = steps
        self.completed = completed

    @property
    def iterations(self):
        return max((s.iteration for s in self.steps), default=0)

    def backend_summary(self):
        """Wall clock and step counts grouped by executing backend.

        Returns ``{"algo|prune": {"steps": k, "seconds": s}}`` over the
        recorded :class:`StepRecord` backends — what the throughput
        bench prints to show where an alternation's time actually went
        (e.g. batch guess runs stuck with per-node pruning).
        """
        summary = {}
        for step in self.steps:
            algo, prune = step.backends or (None, None)
            key = f"{algo or '?'}|{prune or '?'}"
            entry = summary.setdefault(key, {"steps": 0, "seconds": 0.0})
            entry["steps"] += 1
            if step.seconds is not None:
                entry["seconds"] += step.seconds
        for entry in summary.values():
            entry["seconds"] = round(entry["seconds"], 6)
        return summary

    def __repr__(self):
        return (
            f"TransformResult({self.name!r}, rounds={self.rounds}, "
            f"steps={len(self.steps)}, completed={self.completed})"
        )


class AlternatingEngine:
    """Mutable state of one alternation: domain, inputs, outputs, ledger."""

    def __init__(self, domain, inputs, pruning, *, seed=0, default_output=0):
        self.domain = as_domain(domain)
        self.inputs = dict(inputs or {})
        self.pruning = pruning
        self.seed = seed
        self.default_output = default_output
        self.outputs = {}
        self.rounds = 0
        self.steps = []

    @property
    def active(self):
        return self.domain.n

    @property
    def done(self):
        return self.domain.n == 0

    def charge(self, rounds):
        """Charge rounds outside a step (e.g. Theorem 5 phase plumbing)."""
        self.rounds += rounds

    def step_with(self, runner, *, label, iteration, index, guesses, budget):
        """One ``B = (A ; P)`` step via a caller-supplied runner.

        ``runner(domain, inputs, salt)`` must return
        ``(tentative_outputs, rounds_charged)`` with every active node
        carrying a tentative value.  Returns the number of pruned nodes.
        """
        if self.done:
            return 0
        salt = f"{label}|{iteration}|{index}"
        started = perf_counter()
        note_stepping(None)
        note_faults(None)
        note_recovery(None)
        tentative, charged = runner(self.domain, self.inputs, salt)
        algo_backend = last_stepping()
        step_faults = last_faults()
        recovery = last_recovery()
        if recovery is not None and algo_backend is not None:
            algo_backend = f"{algo_backend}[{recovery}]"
        self.rounds += charged
        note_stepping(None)
        note_recovery(None)
        prune = self.pruning.apply(
            self.domain,
            self.inputs,
            tentative,
            seed=self.seed,
            salt=f"{salt}|prune",
        )
        prune_backend = last_stepping()
        recovery = last_recovery()
        if recovery is not None and prune_backend is not None:
            prune_backend = f"{prune_backend}[{recovery}]"
        self.rounds += prune.rounds
        for u in prune.pruned:
            self.outputs[u] = tentative[u]
        record = StepRecord(
            label=label,
            iteration=iteration,
            index=index,
            guesses=dict(guesses or {}),
            budget=budget,
            charged=charged + prune.rounds,
            nodes_before=self.domain.n,
            pruned=len(prune.pruned),
            backends=(algo_backend, prune_backend),
            seconds=perf_counter() - started,
            faults=step_faults,
        )
        self.steps.append(record)
        pruned = prune.pruned
        if pruned:
            survivors = [u for u in self.domain.nodes if u not in pruned]
            self.domain = self.domain.subgraph(survivors)
        else:
            survivors = self.domain.nodes
        self.inputs = {u: prune.new_inputs.get(u) for u in survivors}
        return len(pruned)

    def step_algorithm(self, algorithm, *, iteration, index, guesses, budget):
        """Standard step: run ``algorithm`` restricted to ``budget`` rounds.

        Dispatches on the black box's advertised capability record
        (``kind``): ``"node"`` algorithms go through the domain's
        restricted runner, ``"host"`` orchestrations restrict
        themselves.
        """
        from ..local.algorithm import capabilities_of

        host_kind = capabilities_of(algorithm).get("kind") == "host"

        def runner(domain, inputs, salt):
            if host_kind:
                return algorithm.run_restricted(
                    domain,
                    budget,
                    inputs=inputs,
                    guesses=guesses,
                    seed=self.seed,
                    salt=salt,
                    default_output=self.default_output,
                )
            return domain.run_restricted(
                algorithm,
                budget,
                inputs=inputs,
                guesses=guesses,
                seed=self.seed,
                salt=salt,
                default_output=self.default_output,
            )

        return self.step_with(
            runner,
            label=algorithm.name,
            iteration=iteration,
            index=index,
            guesses=guesses,
            budget=budget,
        )

    def finalize(self, name, *, completed=True):
        """Build the result; unpruned nodes get the default output."""
        outputs = dict(self.outputs)
        for u in self.domain.nodes:
            outputs[u] = self.default_output
        return TransformResult(name, outputs, self.rounds, self.steps, completed)


class AlternationDiverged(ReproError):
    """An alternation exhausted its iteration cap without pruning all nodes."""


def render_trace(result, *, max_steps=40):
    """ASCII rendering of Figure 1 for an actual execution.

    Each line is one ``B_i = (A_i ; P)`` box: the instance entering it,
    the guesses used, the budget, and the pruned/surviving split.
    """
    lines = [
        f"alternating trace of {result.name}: total rounds = {result.rounds}",
        "(G1,x1)",
    ]
    for step in result.steps[:max_steps]:
        guess_text = (
            ",".join(f"{k}={v}" for k, v in sorted(step.guesses.items()))
            or "uniform"
        )
        algo_backend, prune_backend = step.backends or (None, None)
        via = ""
        if algo_backend or prune_backend:
            via = f" via {algo_backend or '?'}/{prune_backend or '?'}"
        if getattr(step, "faults", None):
            via += f" !{step.faults}"
        lines.append(
            f"  | B(i={step.iteration},j={step.index}): "
            f"A={step.label} [{guess_text}] restricted to {step.budget} "
            f"rounds ; P prunes {step.pruned}/{step.nodes_before}{via}"
        )
        lines.append(
            f"  v (G,x) with {step.nodes_after} node(s), "
            f"{step.charged} round(s) charged"
        )
    if len(result.steps) > max_steps:
        lines.append(f"  ... {len(result.steps) - max_steps} more steps")
    lines.append(
        "(∅,∅) — all nodes pruned; combined output is a solution "
        "(Observation 3.4)"
        if result.completed
        else "budget exhausted before termination"
    )
    return "\n".join(lines)
