"""Theorem 2: weak Monte-Carlo → uniform Las Vegas (Algorithm 2).

Algorithm 2 (``τ``) wraps Algorithm 1's iteration blocks in an outer
retry loop: Iteration ``i`` of ``τ`` re-runs iterations ``1..i`` of
``π`` with fresh random bits.  Once ``2^j ≥ f*``, each inner block ``j``
independently succeeds with probability at least the guarantee ρ, so the
number of outer iterations beyond ``s = ⌈log f*⌉`` is dominated by a
geometrically-decaying tail and the expected total time stays
``O(f* · s_f(f*))`` (the paper's proof uses ρ = 1/2; any fixed ρ > 0
gives the same asymptotics).

Correctness is Las Vegas: the combined output is only ever assembled
from pruned (verified-and-gluable) pieces, so *whenever τ terminates its
output is certain to be a solution* — randomness affects the running
time only.
"""

from __future__ import annotations

from .alternating import AlternatingEngine, AlternationDiverged
from .domain import as_domain
from .transformer import UniformAlgorithm


class UniformLasVegas(UniformAlgorithm):
    """The uniform Las Vegas algorithm τ produced by Theorem 2."""

    def run(self, graph, *, inputs=None, seed=0, budget=None):
        domain = as_domain(graph)
        engine = AlternatingEngine(
            domain,
            inputs,
            self.pruning,
            seed=seed,
            default_output=self.nonuniform.default_output,
        )
        bound = self.nonuniform.bound
        c = bound.bounding_constant
        for i in range(1, self.max_iterations + 1):
            for j in range(1, i + 1):
                level = int(self.base**j)
                if level < 1:
                    continue
                vectors = bound.set_sequence(level)
                sub_budget = max(1, int(c * level))
                for k, guesses in enumerate(vectors, start=1):
                    step_cost = sub_budget + self.pruning.rounds
                    if budget is not None and engine.rounds + step_cost > budget:
                        engine.charge(max(0, budget - engine.rounds))
                        return engine.finalize(self.name, completed=False)
                    # Salting with (outer, inner, vector) gives each
                    # execution fresh independent coins.
                    engine.step_algorithm(
                        self.nonuniform.algorithm,
                        iteration=i,
                        index=(j - 1) * 1000 + k,
                        guesses=guesses,
                        budget=sub_budget,
                    )
                    if engine.done:
                        return engine.finalize(self.name)
                if engine.done:
                    return engine.finalize(self.name)
        raise AlternationDiverged(
            f"{self.name}: not all nodes pruned after {self.max_iterations} "
            "outer iterations — astronomically unlikely unless the declared "
            "guarantee or bound is wrong"
        )


def theorem2(nonuniform, pruning, *, name=None, base=2.0, max_iterations=40):
    """Build the Theorem 2 transformer output (uniform Las Vegas).

    ``nonuniform.kind`` must be ``"weak-monte-carlo"``: correctness with
    probability ≥ ``guarantee`` *by* the declared bound, with no promise
    at all otherwise — the weakest class the paper handles.
    """
    if nonuniform.kind != "weak-monte-carlo":
        raise ValueError("Theorem 2 takes weak Monte-Carlo algorithms")
    return UniformLasVegas(
        nonuniform,
        pruning,
        name=name or f"lasvegas[{nonuniform.name}]",
        base=base,
        max_iterations=max_iterations,
    )
