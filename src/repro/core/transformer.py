"""Theorem 1: the deterministic uniformization transformer (Algorithm 1).

Given a non-uniform deterministic algorithm ``A_Γ`` whose running time is
bounded by ``f`` (with a sequence-number function ``s_f``) and a
Γ-monotone pruning algorithm ``P``, Algorithm 1 produces a uniform
algorithm ``π``:

    for i = 1, 2, ...:
        S_i = S_f(2^i)
        for each guess vector x^j in S_i:
            run A_Γ with guesses x^j restricted to c·2^i rounds
            run P; continue on the non-pruned subgraph

Once ``2^i`` reaches ``f* = f(Γ*)``, some vector of ``S_i`` dominates
the correct parameters, that sub-iteration's execution is both *correct*
and *complete within its budget*, and the pruner removes every remaining
node.  Total time ``O(f* · s_f(f*))``.

:func:`theorem1` packages this as a :class:`UniformAlgorithm` — an
object with no parameter requirements whose ``run`` executes the loop on
any graph or domain.  ``run(budget=...)`` realizes the *restriction* of
the uniform algorithm (used by Theorem 4's portfolio): the loop stops
before exceeding the budget and unfinished nodes take the default
output.
"""

from __future__ import annotations

from ..local.algorithm import capabilities_of
from .alternating import AlternatingEngine, AlternationDiverged
from .domain import as_domain


class NonUniform:
    """A non-uniform algorithm packaged for the transformers.

    Parameters
    ----------
    algorithm:
        The black box; ``algorithm.requires`` is the paper's Γ.
    bound:
        Declared :class:`~repro.core.bounds.RuntimeBound` (a true upper
        bound under good guesses).  For Theorem 1 its parameters must
        cover Γ.
    kind:
        ``"deterministic"`` or ``"weak-monte-carlo"``.
    guarantee:
        Success probability ρ for weak Monte-Carlo algorithms.
    default_output:
        The arbitrary value forced by round restriction (paper: "0").
    """

    __slots__ = ("algorithm", "bound", "kind", "guarantee", "default_output", "name")

    def __init__(
        self,
        algorithm,
        bound,
        *,
        kind="deterministic",
        guarantee=1.0,
        default_output=0,
        name=None,
        validate=True,
    ):
        if capabilities_of(algorithm).get("kind") not in ("node", "host"):
            raise TypeError(
                "NonUniform wraps a LocalAlgorithm or HostAlgorithm"
            )
        if validate:
            missing = [p for p in algorithm.requires if p not in bound.params]
            if missing:
                raise ValueError(
                    "bound must cover the algorithm's parameters; missing "
                    f"{missing} (use theorem3 with domination witnesses when "
                    "Γ is larger than Λ)"
                )
        self.algorithm = algorithm
        self.bound = bound
        self.kind = kind
        self.guarantee = guarantee
        self.default_output = default_output
        self.name = name or algorithm.name

    def expected_time(self, actual_params):
        """``f* = f(Γ*)`` for reporting/assertions."""
        return self.bound.value(actual_params)


class UniformAlgorithm:
    """The uniform algorithm π produced by Theorem 1.

    Uniform by construction: ``run`` consumes no parameter guesses; all
    global values it ever feeds the black box come from the bound's
    set-sequences.
    """

    def __init__(
        self,
        nonuniform,
        pruning,
        *,
        name=None,
        base=2.0,
        max_iterations=60,
    ):
        self.nonuniform = nonuniform
        self.pruning = pruning
        self.base = float(base)
        self.max_iterations = max_iterations
        self.name = name or f"uniform[{nonuniform.name}]"

    @property
    def requires(self):
        return ()

    def run(self, graph, *, inputs=None, seed=0, budget=None):
        """Execute π; returns a :class:`TransformResult`.

        With ``budget`` set, realizes π *restricted to budget rounds*
        (stops before over-charging; unfinished nodes get the default).
        """
        domain = as_domain(graph)
        engine = AlternatingEngine(
            domain,
            inputs,
            self.pruning,
            seed=seed,
            default_output=self.nonuniform.default_output,
        )
        bound = self.nonuniform.bound
        c = bound.bounding_constant
        for i in range(1, self.max_iterations + 1):
            level = int(self.base**i)
            if level < 1:
                continue
            vectors = bound.set_sequence(level)
            sub_budget = max(1, int(c * level))
            for j, guesses in enumerate(vectors, start=1):
                step_cost = sub_budget + self.pruning.rounds
                if budget is not None and engine.rounds + step_cost > budget:
                    engine.charge(max(0, budget - engine.rounds))
                    return engine.finalize(self.name, completed=False)
                engine.step_algorithm(
                    self.nonuniform.algorithm,
                    iteration=i,
                    index=j,
                    guesses=guesses,
                    budget=sub_budget,
                )
                if engine.done:
                    return engine.finalize(self.name)
            if engine.done:
                return engine.finalize(self.name)
        raise AlternationDiverged(
            f"{self.name}: {engine.active} node(s) never pruned after "
            f"{self.max_iterations} iterations — declared bound or pruner "
            "is wrong"
        )

    def run_budget(self, domain, inputs, seed, budget):
        """Theorem 4 member protocol: restricted run on a domain."""
        result = self.run(domain, inputs=inputs, seed=seed, budget=budget)
        return result.outputs, budget

    def __repr__(self):
        return f"UniformAlgorithm({self.name!r})"


def theorem1(nonuniform, pruning, *, name=None, base=2.0, max_iterations=60):
    """Build the Theorem 1 transformer output.

    Parameters
    ----------
    nonuniform:
        :class:`NonUniform` with ``kind="deterministic"``.
    pruning:
        A Γ-monotone :class:`~repro.core.pruning.PruningAlgorithm` for
        the same problem.
    base:
        Budget growth base (the paper's 2; exposed for the ablation
        study E11).
    """
    if nonuniform.kind != "deterministic":
        raise ValueError(
            "Theorem 1 takes deterministic algorithms; use theorem2 for "
            "weak Monte-Carlo ones"
        )
    return UniformAlgorithm(
        nonuniform,
        pruning,
        name=name,
        base=base,
        max_iterations=max_iterations,
    )
