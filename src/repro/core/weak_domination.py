"""Theorem 3: uniformization when correctness and runtime parameters differ.

The situation (paper Section 4.5): correctness of ``A_Γ`` needs good
guesses for Γ, but the declared bound ``f`` is a function of a different
set Λ — e.g. the Barenboim–Elkin MIS needs both the arboricity ``a`` and
``n``, yet runs in time depending on ``n`` alone.  When Γ is
*weakly-dominated* by Λ (each ``p ∈ Γ\\Λ`` has an ascending witness
``g`` with ``g(p) ≤ q`` for some ``q ∈ Λ``), the proof extends every
set-sequence vector with derived guesses ``p̃ = g⁻¹(q̃)`` and runs
Theorem 1 (or 2) unchanged.

We use the safe monotone inverse ``g⁻¹(q̃) = max{y : g(y) ≤ q̃}``: when
``q̃ ≥ q`` is a good guess, ``g(p) ≤ q ≤ q̃`` gives ``p ≤ p̃``, so the
derived guess is good too.
"""

from __future__ import annotations

from ..errors import ParameterError
from .bounds import Atom, RuntimeBound
from .randomized import theorem2
from .transformer import theorem1


class DominationWitness:
    """``g(param) ≤ via`` for every instance, with ``g`` ascending.

    Parameters
    ----------
    param:
        The Γ-parameter missing from the bound (e.g. ``"a"``).
    via:
        The Λ-parameter dominating it (e.g. ``"n"``).
    g:
        The ascending witness; identity by default (``a ≤ n``).
    """

    __slots__ = ("param", "via", "_atom")

    def __init__(self, param, via, g=None):
        self.param = param
        self.via = via
        fn = g if g is not None else (lambda x: x)
        self._atom = Atom(param, fn, f"g[{param}<={via}]")

    def derive(self, via_value):
        """``max{y : g(y) ≤ via_value}`` — the safe derived guess."""
        value = self._atom.invert(via_value)
        if value is None:
            raise ParameterError(
                f"witness g for {self.param} admits no guess at "
                f"{self.via}={via_value}"
            )
        return value

    def __repr__(self):
        return f"DominationWitness({self.param} ≼ {self.via})"


class ExtendedBound(RuntimeBound):
    """The paper's ``f'``: base bound over Λ with derived Γ\\Λ guesses.

    Evaluation delegates to the base ``f`` (the derived coordinates do
    not change the value by construction); set-sequence vectors carry
    the extra coordinates so the transformer can feed Γ in full.  Both
    the bounding constant and the sequence-number function are inherited
    — exactly the assertion proved in Theorem 3.
    """

    def __init__(self, base, witnesses):
        self.base = base
        self.witnesses = tuple(witnesses)
        for witness in self.witnesses:
            if witness.via not in base.params:
                raise ParameterError(
                    f"witness {witness!r} references {witness.via!r}, which "
                    f"is not a bound parameter {base.params}"
                )
        self.params = base.params

    def value(self, guesses):
        return self.base.value(guesses)

    @property
    def bounding_constant(self):
        return self.base.bounding_constant

    def set_sequence(self, i):
        extended = []
        for vector in self.base.set_sequence(i):
            enriched = dict(vector)
            for witness in self.witnesses:
                enriched[witness.param] = witness.derive(vector[witness.via])
            extended.append(enriched)
        return extended

    def sequence_number(self, i):
        return self.base.sequence_number(i)

    def __repr__(self):
        extra = ",".join(w.param for w in self.witnesses)
        return f"ExtendedBound({self.base!r} + derived {extra})"


def extend_nonuniform(nonuniform, witnesses):
    """A copy of ``nonuniform`` whose bound derives the missing guesses."""
    from .transformer import NonUniform

    covered = set(nonuniform.bound.params) | {w.param for w in witnesses}
    missing = [p for p in nonuniform.algorithm.requires if p not in covered]
    if missing:
        raise ParameterError(
            f"algorithm parameters {missing} neither bounded nor dominated"
        )
    return NonUniform(
        nonuniform.algorithm,
        ExtendedBound(nonuniform.bound, witnesses),
        kind=nonuniform.kind,
        guarantee=nonuniform.guarantee,
        default_output=nonuniform.default_output,
        name=f"{nonuniform.name}+dominated",
        validate=False,
    )


def theorem3(nonuniform, pruning, witnesses, *, name=None, base=2.0,
             max_iterations=60):
    """Uniformize with weakly-dominated correctness parameters.

    Dispatches to Theorem 1 or Theorem 2 according to the algorithm's
    kind, exactly as the paper's statement covers both.
    """
    extended = extend_nonuniform(nonuniform, witnesses)
    if extended.kind == "deterministic":
        return theorem1(
            extended, pruning, name=name, base=base, max_iterations=max_iterations
        )
    return theorem2(
        extended, pruning, name=name, base=base, max_iterations=max_iterations
    )
