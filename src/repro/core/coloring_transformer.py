"""Theorem 5: the uniform coloring transformer.

No efficient pruning algorithm is known for plain ``g(Δ)``-coloring (the
paper explains why: range-checking needs Δ, and gluing fails when pruned
colors block neighbours).  Theorem 5 routes around both obstacles:

1. **Strong list coloring (SLC).**  Nodes carry a common degree estimate
   ``Δ̂`` and a list ``L(v) ⊆ [1, g(Δ̂)] × [1, Δ̂+1]`` with at least
   ``deg(v)+1`` copies per color index.  SLC *does* admit a pruning
   algorithm (:class:`~repro.core.pruning.SLCPruning`): survivors' lists
   drop the pairs committed by pruned neighbours, which restores gluing.

2. **Degree layers.**  ``D_1 = 1``, ``D_{i+1} = min{ℓ : g(ℓ) ≥ 2g(D_i)}``;
   a node joins layer ``i`` when ``deg ∈ [D_i, D_{i+1}-1]`` — computable
   from its own degree.  Layers get disjoint color ranges (the doubling
   of ``g`` makes ``[g(D_{i+1})+1, 2g(D_{i+1})]`` pairwise disjoint), so
   the layers run **in parallel** on disjoint induced subgraphs and
   inter-layer edges are properly colored for free.

3. **Phase 1** uniformizes, per layer, the SLC-wrapped base algorithm
   (Δ̃ := Δ̂ comes from the input; only ``m̃`` is guessed, via the
   Theorem 1 machinery with the Δ-coordinate of the bound frozen).
   **Phase 2** re-runs the base algorithm non-uniformly but with *locally
   computable, provably good* guesses (``Δ̃ = D_{i+1}``,
   ``m̃ = g(D_{i+1})·(D_{i+1}+1)``, the phase-1 colors serving as
   identities), compressing each layer into ``g(D_{i+1})`` colors.

Total: ``O(g(Δ))`` colors in ``O(f(Λ*) · s_f(f(Λ*)))`` rounds, with ``g``
moderately-fast and the ``m``-dependence of ``f`` polylogarithmic —
Theorem 5's hypotheses, carried here by :class:`GrowthFunction` and the
declared bound.
"""

from __future__ import annotations

from ..errors import BoundViolationError, ParameterError
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.context import NodeContext
from ..problems.coloring import ColorList, SLCInput
from .alternating import AlternatingEngine
from .domain import as_domain
from .pruning import SLCPruning


class _SLCWrapProcess(NodeProcess):
    """The paper's ``B^{Γ'}``: run ``A_Γ`` with Δ̃ := Δ̂ from the input,
    then map the color ``c`` to the pair ``(c, min{s : (c,s) ∈ L(v)})``.
    """

    __slots__ = ("inner",)

    def __init__(self, ctx, base_algorithm):
        super().__init__(ctx)
        x = ctx.input
        if not isinstance(x, SLCInput):
            raise ParameterError("SLC wrapper needs SLCInput inputs")
        guesses = dict(ctx.guesses)
        guesses["Delta"] = x.delta_hat
        # Share the outer node's random source, lazily: the inner
        # algorithm may never draw, and the scheme tag must propagate so
        # nested layers derive sub-streams consistently.
        inner_ctx = NodeContext(
            node=ctx.node,
            ident=ctx.ident,
            degree=ctx.degree,
            input=None,
            guesses=guesses,
            rng_factory=lambda _ident: ctx.rng,
            rng_mode=ctx.rng_mode,
        )
        self.inner = base_algorithm.make(inner_ctx)

    def _check(self, outgoing):
        if self.inner.done:
            color = self.inner.result
            x = self.ctx.input
            pair = None
            if isinstance(color, int) and 1 <= color <= x.colors.width:
                j = x.colors.first_free(color)
                if j is not None:
                    pair = (color, j)
            self.finish(pair if pair is not None else ("invalid", color))
        return outgoing

    def start(self):
        return self._check(self.inner.start())

    def receive(self, inbox):
        return self._check(self.inner.receive(inbox))


def slc_wrap(base_algorithm):
    """Wrap a ``{m, Delta}``-coloring algorithm into an SLC algorithm.

    The result requires only ``m`` (Δ̂ is read from the SLC input), which
    is the Γ' of the theorem's proof.
    """
    requires = tuple(p for p in base_algorithm.requires if p != "Delta")
    return LocalAlgorithm(
        name=f"slc[{base_algorithm.name}]",
        process=lambda ctx: _SLCWrapProcess(ctx, base_algorithm),
        requires=requires,
        randomized=base_algorithm.randomized,
    )


class LayerReport:
    """Bookkeeping for one degree layer."""

    __slots__ = (
        "index",
        "d_low",
        "d_high",
        "nodes",
        "phase1_rounds",
        "phase2_rounds",
        "color_base",
        "colors",
    )

    def __init__(self, index, d_low, d_high, nodes):
        self.index = index
        self.d_low = d_low
        self.d_high = d_high
        self.nodes = nodes
        self.phase1_rounds = 0
        self.phase2_rounds = 0
        self.color_base = 0
        self.colors = 0

    def __repr__(self):
        return (
            f"Layer(i={self.index}, deg∈[{self.d_low},{self.d_high}], "
            f"n={self.nodes}, rounds={self.phase1_rounds}+{self.phase2_rounds})"
        )


class ColoringResult:
    """Outcome of a uniform coloring run."""

    __slots__ = ("name", "outputs", "rounds", "layers", "colors_used")

    def __init__(self, name, outputs, rounds, layers, colors_used):
        self.name = name
        self.outputs = outputs
        self.rounds = rounds
        self.layers = layers
        self.colors_used = colors_used

    def __repr__(self):
        return (
            f"ColoringResult({self.name!r}, rounds={self.rounds}, "
            f"colors={self.colors_used})"
        )


class UniformColoring:
    """The uniform ``O(g(Δ))``-coloring algorithm produced by Theorem 5."""

    def __init__(self, base_algorithm, bound, g, *, name=None, base=2.0,
                 max_iterations=60):
        unknown = [p for p in base_algorithm.requires if p not in ("m", "Delta")]
        if unknown:
            raise ParameterError(
                f"Theorem 5 requires Γ ⊆ {{Δ, m}}; got extra {unknown}"
            )
        self.base_algorithm = base_algorithm
        self.bound = bound
        self.g = g
        self.base = base
        self.max_iterations = max_iterations
        self.name = name or f"uniform-coloring[{base_algorithm.name}, g={g.name}]"

    @property
    def requires(self):
        return ()

    # -- phase 1: uniform SLC per layer ---------------------------------
    def _phase1(self, layer_domain, delta_hat, seed, layer_index):
        width = self.g(delta_hat)
        copies = delta_hat + 1
        inputs = {
            u: SLCInput(delta_hat, ColorList(width, copies))
            for u in layer_domain.nodes
        }
        engine = AlternatingEngine(
            layer_domain,
            inputs,
            SLCPruning(),
            seed=seed,
            default_output=0,
        )
        wrapped = slc_wrap(self.base_algorithm)
        layer_bound = self.bound.freeze("Delta", delta_hat)
        c = layer_bound.bounding_constant
        for i in range(1, self.max_iterations + 1):
            level = int(self.base**i)
            vectors = layer_bound.set_sequence(level)
            sub_budget = max(1, int(c * level))
            for j, guesses in enumerate(vectors, start=1):
                engine.step_algorithm(
                    wrapped,
                    iteration=i,
                    index=j,
                    guesses=guesses,
                    budget=sub_budget,
                )
                if engine.done:
                    return engine.finalize(f"slc-layer{layer_index}")
            if engine.done:
                return engine.finalize(f"slc-layer{layer_index}")
        raise BoundViolationError(
            f"{self.name}: layer {layer_index} SLC phase never completed"
        )

    # -- phase 2: non-uniform recoloring with locally-good guesses -------
    def _phase2(self, layer_domain, delta_hat, pairs, seed, layer_index):
        width = self.g(delta_hat)
        copies = delta_hat + 1
        m_tilde = width * copies
        inputs = {}
        for u in layer_domain.nodes:
            k, j = pairs[u]
            inputs[u] = {"color": (k - 1) * copies + j}
        guesses = {"m": m_tilde, "Delta": delta_hat}
        budget = self.bound.rounds(guesses)
        outputs, charged = layer_domain.run_restricted(
            self.base_algorithm,
            budget,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=f"t5-phase2-{layer_index}",
            default_output=None,
        )
        for u, color in outputs.items():
            if color is None:
                raise BoundViolationError(
                    f"{self.name}: phase 2 exceeded the declared bound "
                    f"({budget} rounds) on layer {layer_index}"
                )
            if not (isinstance(color, int) and 1 <= color <= width):
                raise BoundViolationError(
                    f"{self.name}: phase 2 produced color {color!r} outside "
                    f"[1, {width}] under good guesses"
                )
        return outputs, charged

    def run(self, graph, *, inputs=None, seed=0):
        """Color the graph; returns a :class:`ColoringResult`.

        The ``inputs`` argument is accepted for interface uniformity but
        unused: the coloring input is the identity assignment itself.
        """
        domain = as_domain(graph)
        if domain.n == 0:
            return ColoringResult(self.name, {}, 0, [], 0)
        boundaries = self.g.layer_boundaries(domain.max_degree)
        layer_nodes = {}
        for u in domain.nodes:
            layer = self.g.layer_of(domain.degree(u))
            layer_nodes.setdefault(layer, []).append(u)

        colors = {}
        layers = []
        phase1_rounds = 0
        phase2_rounds = 0
        colors_used = set()
        for layer, members in sorted(layer_nodes.items()):
            delta_hat = boundaries[layer]
            report = LayerReport(
                layer, boundaries[layer - 1], delta_hat - 1, len(members)
            )
            sub = domain.subgraph(members)
            phase1 = self._phase1(sub, delta_hat, seed, layer)
            report.phase1_rounds = phase1.rounds
            pairs = phase1.outputs
            final, charged = self._phase2(sub, delta_hat, pairs, seed, layer)
            report.phase2_rounds = charged
            offset = self.g(delta_hat)
            report.color_base = offset
            for u in members:
                colors[u] = offset + final[u]
                colors_used.add(colors[u])
            report.colors = len({colors[u] for u in members})
            layers.append(report)
            phase1_rounds = max(phase1_rounds, report.phase1_rounds)
            phase2_rounds = max(phase2_rounds, report.phase2_rounds)

        # +1: one exchange for nodes to learn which neighbours share
        # their layer (the induced-subgraph membership round).
        total = phase1_rounds + phase2_rounds + 1
        return ColoringResult(self.name, colors, total, layers, len(colors_used))


def theorem5(base_algorithm, bound, g, *, name=None, base=2.0,
             max_iterations=60):
    """Build the Theorem 5 uniform coloring transformer.

    Parameters
    ----------
    base_algorithm:
        Non-uniform ``g(Δ̃)``-coloring algorithm with Γ ⊆ {m, Δ}; must
        accept an initial coloring through ``ctx.input["color"]``
        (falling back to the identity) — the "identities as colors"
        convention of Section 5.2.
    bound:
        Declared bound over (m, Δ) with polylogarithmic m-dependence and
        moderately-slow Δ-dependence.
    g:
        A :class:`~repro.core.functions.GrowthFunction` (moderately-fast).
    """
    return UniformColoring(
        base_algorithm, bound, g, name=name, base=base,
        max_iterations=max_iterations
    )
