"""Function classes of Section 2: moderately slow / increasing / fast.

The paper's definitions:

* ``f`` is *moderately-slow* when it is non-decreasing and there is an
  integer α with ``α·f(i) ≥ f(2i)`` for all integers ``i ≥ 2``
  (equivalently ``f(c·i) = O(f(i))``);
* ``f`` is *moderately-increasing* when additionally
  ``f(α·i) ≥ 2·f(i)``;
* ``f`` is *moderately-fast* when it is moderately-increasing and
  polynomially bounded with ``x < f(x)``.

Theorem 5 requires the coloring-size function ``g`` to be
moderately-fast; :class:`GrowthFunction` packages such a ``g`` with the
inversions the layering construction needs, and the ``certify_*``
helpers check the definitions empirically on a sampled domain (used by
the test suite and by :class:`GrowthFunction` at construction time).
"""

from __future__ import annotations

from ..errors import ParameterError


def certify_non_decreasing(fn, domain):
    """Empirically check monotonicity on a sorted sample of the domain."""
    values = [fn(x) for x in domain]
    return all(b >= a for a, b in zip(values, values[1:]))


def certify_moderately_slow(fn, alpha, domain):
    """Check ``α·f(i) ≥ f(2i)`` on the sample (and monotonicity)."""
    if not certify_non_decreasing(fn, domain):
        return False
    return all(alpha * fn(i) >= fn(2 * i) for i in domain if i >= 2)


def certify_moderately_increasing(fn, alpha, domain):
    """moderately-slow plus ``f(α·i) ≥ 2·f(i)`` on the sample."""
    if not certify_moderately_slow(fn, alpha, domain):
        return False
    return all(fn(alpha * i) >= 2 * fn(i) for i in domain if i >= 2)


def certify_moderately_fast(fn, alpha, domain, poly_degree=8):
    """moderately-increasing plus ``x < f(x) < x^poly_degree + C``."""
    if not certify_moderately_increasing(fn, alpha, domain):
        return False
    return all(x < fn(x) <= x**poly_degree + fn(1) for x in domain)


DEFAULT_DOMAIN = tuple(list(range(1, 40)) + [64, 128, 256, 1024, 4096])


class GrowthFunction:
    """A moderately-fast color-count function ``g`` for Theorem 5.

    Parameters
    ----------
    fn:
        Integer-valued non-decreasing callable with ``fn(x) > x``.
    alpha:
        The witness constant of the moderately-increasing property.
    name:
        Display name (appears in reports and bench rows).

    The constructor certifies the moderately-fast definition on a sample
    domain so misuse fails loudly at build time rather than deep inside
    the transformer.
    """

    __slots__ = ("fn", "alpha", "name")

    def __init__(self, fn, alpha, name, domain=DEFAULT_DOMAIN):
        if not certify_moderately_fast(fn, alpha, domain):
            raise ParameterError(
                f"g={name} is not moderately-fast with alpha={alpha} "
                "on the certification domain"
            )
        self.fn = fn
        self.alpha = alpha
        self.name = name

    def __call__(self, x):
        return int(self.fn(x))

    def invert_doubling(self, target):
        """``min{ℓ : g(ℓ) ≥ target}`` — the layer boundaries D_{i+1}.

        Exists for any target ≤ g(GUESS range) because g tends to
        infinity; search is exponential + bisection.
        """
        if self(1) >= target:
            return 1
        hi = 1
        while self(hi * 2) < target:
            hi *= 2
        lo, hi = hi, hi * 2  # g(lo) < target <= g(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self(mid) >= target:
                hi = mid
            else:
                lo = mid
        return hi

    def layer_boundaries(self, max_degree):
        """The D-sequence of Theorem 5: D_1 = 1, g(D_{i+1}) ≥ 2·g(D_i).

        Returns boundaries ``[D_1, D_2, ...]`` extending one step past
        ``max_degree`` so every node's degree falls in some
        ``[D_i, D_{i+1} - 1]``.
        """
        boundaries = [1]
        while boundaries[-1] <= max_degree:
            nxt = self.invert_doubling(2 * self(boundaries[-1]))
            if nxt <= boundaries[-1]:
                nxt = boundaries[-1] + 1  # safety: g certified increasing
            boundaries.append(nxt)
        return boundaries

    def layer_of(self, degree, boundaries=None):
        """Index ``i ≥ 1`` with ``degree ∈ [D_i, D_{i+1} - 1]``.

        A node computes this from its own degree alone — no global
        knowledge involved (degree 0 nodes join layer 1).
        """
        d = max(1, degree)
        i = 1
        boundary = 1
        while True:
            nxt = self.invert_doubling(2 * self(boundary))
            if nxt <= boundary:
                nxt = boundary + 1
            if d < nxt:
                return i
            boundary = nxt
            i += 1

    def __repr__(self):
        return f"GrowthFunction({self.name})"


def g_linear(lam):
    """``g(x) = λ(x+1)`` for λ ≥ 2 — the λ(Δ+1)-coloring target."""
    if lam < 2:
        raise ParameterError("g_linear needs λ ≥ 2 so that g(x) > x")
    return GrowthFunction(lambda x: lam * (x + 1), alpha=4, name=f"{lam}(Δ+1)")


def g_quadratic():
    """``g(x) = (x+1)²`` — the O(Δ²)-coloring target (Corollary 1(iii))."""
    return GrowthFunction(lambda x: (x + 1) ** 2, alpha=4, name="(Δ+1)^2")


def g_power(exponent, mult=1):
    """``g(x) = ⌈mult · (x+1)^exponent⌉`` for exponent > 1."""
    if exponent <= 1.0 and mult <= 1:
        raise ParameterError("g_power needs growth strictly above x")
    return GrowthFunction(
        lambda x: int(mult * (x + 1) ** exponent) + 1,
        alpha=8,
        name=f"{mult}(Δ+1)^{exponent}",
    )
