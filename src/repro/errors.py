"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NonTerminationError(ReproError):
    """An algorithm exceeded its round cap without every node terminating.

    Raised only when the caller did not request truncation (i.e. gave no
    ``default_output``).  The paper's *restriction to i rounds* operator
    (Section 2) is the truncating variant and never raises.
    """

    def __init__(self, algorithm_name, rounds, unfinished):
        self.algorithm_name = algorithm_name
        self.rounds = rounds
        self.unfinished = tuple(unfinished)
        message = (
            f"algorithm {algorithm_name!r} did not terminate within "
            f"{rounds} rounds; {len(self.unfinished)} node(s) unfinished"
        )
        super().__init__(message)


class ParameterError(ReproError):
    """A required global-parameter guess is missing or malformed."""


class InvalidInstanceError(ReproError):
    """An instance violates the preconditions of a problem or algorithm."""


class BoundViolationError(ReproError):
    """A declared runtime bound was exceeded by an actual execution.

    Declared bounds must be true upper bounds for our implementations;
    tests and the transformer harness raise this error when they are not,
    because every theorem in the paper silently assumes the declared ``f``
    really bounds the running time under good guesses.
    """
