"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NonTerminationError(ReproError):
    """An algorithm exceeded its round cap without every node terminating.

    Raised only when the caller did not request truncation (i.e. gave no
    ``default_output``).  The paper's *restriction to i rounds* operator
    (Section 2) is the truncating variant and never raises.

    ``shard_counts`` is populated by the sharded engine: a mapping
    ``shard index -> unfinished node count`` so a partitioned run's
    diagnostics show *where* the stragglers live, not just how many.
    """

    def __init__(self, algorithm_name, rounds, unfinished, shard_counts=None):
        self.algorithm_name = algorithm_name
        self.rounds = rounds
        self.unfinished = tuple(unfinished)
        self.shard_counts = dict(shard_counts) if shard_counts else None
        message = (
            f"algorithm {algorithm_name!r} did not terminate within "
            f"{rounds} rounds; {len(self.unfinished)} node(s) unfinished"
        )
        if self.shard_counts:
            per_shard = ", ".join(
                f"shard {s}: {count}"
                for s, count in sorted(self.shard_counts.items())
            )
            message += f" ({per_shard})"
        super().__init__(message)


class ParameterError(ReproError, ValueError):
    """A required global-parameter guess is missing or malformed.

    Subclasses :class:`ValueError` so eager argument validation (fault
    probabilities outside ``[0, 1]``, negative crash rounds, unknown
    fault-plan labels) reads as the standard library convention to
    callers that never import the library's error hierarchy.
    """


class FaultError(ReproError):
    """Base class of the fault-injection / resilience error family (D14).

    Covers both *modelled* faults (a malformed :class:`FaultPlan`) and
    *infrastructure* faults of the sharded channels (a worker process
    that hung or died).  The sharded retry ladder only retries
    subclasses flagged ``retryable`` — a worker's real exception is a
    bug to surface, not an outage to paper over.
    """

    #: Whether the sharded run may re-dispatch after this failure.
    retryable = False


class WorkerTimeoutError(FaultError):
    """A shard worker failed to report within the per-round timeout.

    The parent-side receive loop polls with a deadline instead of
    blocking forever, so a hung (or SIGSTOPped, or livelocked) worker
    surfaces as this error with the shard index and round attached —
    and the run retries once before degrading to the inline channel.
    """

    retryable = True

    def __init__(self, shard, round_no, timeout):
        self.shard = shard
        self.round_no = round_no
        self.timeout = timeout
        super().__init__(
            f"sharded worker {shard} did not report round {round_no} "
            f"within {timeout:.1f}s"
        )


class WorkerDiedError(FaultError, RuntimeError):
    """A shard worker died without reporting (EOF / broken pipe).

    Subclasses :class:`RuntimeError` for compatibility with callers that
    matched the pre-D14 generic failure; the message is kept verbatim.
    """

    retryable = True

    def __init__(self, message="sharded worker died without reporting",
                 shard=None, round_no=None):
        self.shard = shard
        self.round_no = round_no
        if shard is not None:
            message = f"{message} (shard {shard}, round {round_no})"
        super().__init__(message)


class RecoveryExhaustedError(FaultError):
    """Surgical shard recovery ran out of its per-run retry budget.

    Raised by a channel when ``REPRO_SHARD_MAX_RETRIES`` respawn
    attempts were consumed without completing the failed round.  Still
    ``retryable``: the run-level ladder may re-dispatch the whole run on
    the inline channel as a last resort.
    """

    retryable = True

    def __init__(self, shard, round_no, attempts, cause=None):
        self.shard = shard
        self.round_no = round_no
        self.attempts = attempts
        self.cause = cause
        message = (
            f"shard {shard} could not be recovered at round {round_no} "
            f"after {attempts} respawn attempt(s)"
        )
        if cause is not None:
            message += f" (last cause: {cause})"
        super().__init__(message)


class CheckpointCorruptError(ReproError):
    """A spilled checkpoint file failed validation (magic/CRC/unpickle).

    Resuming from a torn or tampered journal would silently break the
    bit-identity contract, so the journal refuses it loudly instead.
    """


class ResilienceWarning(UserWarning):
    """A run degraded or recovered instead of failing.

    Emitted whenever the resilience machinery silently changes how a
    run executes — a worker respawn, a pool rebuild, a fallback from
    mp-pooled/mp to inline, a shared-memory halo overflow, or a
    numpy-free degradation — carrying shard/round/cause context so the
    degradation is observable without failing the run.
    """


class LaneCancelled(ReproError):
    """A fused lane was cancelled before completion (DESIGN.md D16).

    Never raised by :func:`~repro.local.fused.run_many` itself: the
    only way a lane gets cancelled is through the caller's own
    ``on_lane_done`` hook (speculative racing), so the exception object
    is placed in the lane's result slot for the caller to recognise.
    """

    def __init__(self, lane, winner=None):
        self.lane = lane
        self.winner = winner
        message = f"lane {lane} cancelled"
        if winner is not None:
            message += f" after lane {winner} won"
        super().__init__(message)


class InvalidInstanceError(ReproError):
    """An instance violates the preconditions of a problem or algorithm."""


class BoundViolationError(ReproError):
    """A declared runtime bound was exceeded by an actual execution.

    Declared bounds must be true upper bounds for our implementations;
    tests and the transformer harness raise this error when they are not,
    because every theorem in the paper silently assumes the declared ``f``
    really bounds the running time under good guesses.
    """
