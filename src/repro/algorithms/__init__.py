"""Implementations of the non-uniform algorithms of Table 1."""

from .arboricity import (
    ArbMIS,
    arb_mis,
    arb_mis_nonly_bound,
    arb_mis_nonuniform_nonly,
    arb_mis_nonuniform_product,
    arb_mis_product_bound,
    h_partition,
    peel_rounds,
    sqrt_log_witness,
)
from .color_reduction import (
    KWReducer,
    kw_schedule,
    kw_total_rounds,
    sequential_reduce_rounds,
)
from .coloring_via_mis import CliqueProductColoring, encode_coloring_as_mis
from .edge_coloring import (
    decode_edge_colors,
    edge_color_count,
    edge_coloring_domain,
)
from .forbidden_coloring import (
    ForbiddenPruning,
    forbidden_coloring,
    forbidden_coloring_bound,
    forbidden_coloring_nonuniform,
)
from .fast_coloring import (
    fast_coloring,
    fast_coloring_bound,
    fast_coloring_nonuniform,
    fast_coloring_rounds,
)
from .fast_mis import (
    fast_mis,
    fast_mis_bound,
    fast_mis_nonuniform,
    fast_mis_rounds,
)
from .greedy import (
    greedy_coloring,
    greedy_edge_coloring,
    greedy_matching,
    greedy_mis,
)
from .hash_luby import hash_luby_bound, hash_luby_mis, hash_luby_nonuniform
from .lambda_coloring import (
    lambda_coloring,
    lambda_coloring_bound,
    lambda_coloring_nonuniform,
    lambda_coloring_rounds,
    lambda_colors_bound,
    linial_scheme,
)
from .linial import (
    linial_coloring,
    linial_fixpoint_palette,
    linial_schedule,
    linial_steps_upper,
)
from .luby import luby_mc, luby_mc_bound, luby_mc_nonuniform, luby_mis
from .matching import (
    line_matching_bound,
    line_matching_nonuniform,
    line_mis_matching,
)
from .registry import (
    TABLE1,
    TableRow,
    capability_table,
    corollary1_portfolio,
    row_capabilities,
)
from .ruling_sets import (
    bitwise_beta,
    bitwise_ruling_set,
    sw_phases,
    sw_ruling_set,
    sw_ruling_set_bound,
    sw_ruling_set_nonuniform,
)

__all__ = [
    "ArbMIS",
    "CliqueProductColoring",
    "KWReducer",
    "TABLE1",
    "capability_table",
    "row_capabilities",
    "TableRow",
    "arb_mis",
    "arb_mis_nonly_bound",
    "arb_mis_nonuniform_nonly",
    "arb_mis_nonuniform_product",
    "arb_mis_product_bound",
    "bitwise_beta",
    "bitwise_ruling_set",
    "corollary1_portfolio",
    "decode_edge_colors",
    "edge_color_count",
    "edge_coloring_domain",
    "encode_coloring_as_mis",
    "fast_coloring",
    "fast_coloring_bound",
    "fast_coloring_nonuniform",
    "fast_coloring_rounds",
    "fast_mis",
    "fast_mis_bound",
    "fast_mis_nonuniform",
    "fast_mis_rounds",
    "ForbiddenPruning",
    "forbidden_coloring",
    "forbidden_coloring_bound",
    "forbidden_coloring_nonuniform",
    "greedy_coloring",
    "greedy_edge_coloring",
    "greedy_matching",
    "greedy_mis",
    "h_partition",
    "hash_luby_bound",
    "hash_luby_mis",
    "hash_luby_nonuniform",
    "kw_schedule",
    "kw_total_rounds",
    "lambda_coloring",
    "lambda_coloring_bound",
    "lambda_coloring_nonuniform",
    "lambda_coloring_rounds",
    "lambda_colors_bound",
    "line_matching_bound",
    "line_matching_nonuniform",
    "line_mis_matching",
    "linial_coloring",
    "linial_fixpoint_palette",
    "linial_schedule",
    "linial_scheme",
    "linial_steps_upper",
    "luby_mc",
    "luby_mc_bound",
    "luby_mc_nonuniform",
    "luby_mis",
    "peel_rounds",
    "sequential_reduce_rounds",
    "sqrt_log_witness",
    "sw_phases",
    "sw_ruling_set",
    "sw_ruling_set_bound",
    "sw_ruling_set_nonuniform",
]
