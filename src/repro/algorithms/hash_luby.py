"""Hash-Luby: the n-only deterministic-given-IDs MIS (substitution D2).

Stands in for Panconesi–Srinivasan's ``2^O(√log n)`` network-decomposition
MIS in Table 1 row 2.  Priorities are *deterministic* hashes of
``(identity, phase)``, so the algorithm consumes no random bits and — like
PS96 — its code uses only a guess for ``n`` (for its self-truncation
schedule).  Under the library's identity schemes the hashed priorities
behave like fresh randomness and the algorithm decides every node within
``O(log n)`` phases; the declared bound is the deliberately generous
``O(log² ñ)``.

What this substitution keeps and loses is spelled out in DESIGN.md (D2).
The essential safety property: if an adversarial identity assignment ever
defeated the hash, the output would merely be an incorrect tentative
vector — the pruning loop detects it and iterates, so every *uniform*
algorithm built from this box remains correct with certainty.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from ..core.bounds import AdditiveBound, log2_squared
from ..core.transformer import NonUniform
from ..local import batch
from ..local.algorithm import LocalAlgorithm
from .luby import NOT_IN_SET, LubyProcess, _luby_batch_factory


@lru_cache(maxsize=65536)
def _hash_bits(ident, phase):
    material = f"{ident}|{phase}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _hash_priority(ctx, phase):
    # Pure in (ident, phase) and recomputed with identical arguments at
    # every alternation step, so the digest is memoized.
    return _hash_bits(ctx.ident, phase)


#: Phase schedule: ⌈log2 ñ⌉² phases is far beyond the observed O(log n).
HL_PHASE_FACTOR = 2
HL_PHASE_CONSTANT = 8


@lru_cache(maxsize=1024)
def hl_phases(n_guess):
    bits = max(1, (max(1, int(n_guess))).bit_length())
    return HL_PHASE_FACTOR * bits * bits + HL_PHASE_CONSTANT


def _hash_priorities(bg, setup):
    """Frontier-draw hook: deterministic ``(identity, phase)`` hashes.

    The digest itself is not expressible as array arithmetic, but one
    memoized blake2b per frontier node is orders of magnitude cheaper
    than the per-node process dispatch the kernel replaces.
    """
    np = batch.numpy_or_none()
    idents = bg.idents

    def draws(idx, phase):
        return np.array(
            [_hash_bits(idents[i], phase) for i in idx.tolist()],
            dtype=np.uint64,
        )

    return draws


def hash_luby_mis():
    """The n-only MIS box: deterministic given identities."""

    def process(ctx):
        return LubyProcess(
            ctx, _hash_priority, phase_budget=hl_phases(ctx.guess("n"))
        )

    return LocalAlgorithm(
        name="hash-luby-mis",
        process=process,
        requires=("n",),
        randomized=False,
        batch=_luby_batch_factory(
            budget_of=lambda g: hl_phases(g["n"]),
            priorities=_hash_priorities,
        ),
        shard=True,
        fault_batch=True,
        fuse=True,
        # Round-fuse-safe (D17) via the Luby kernel's fixed-point
        # driver (hash priorities plug into the same draw seam).
        roundfuse=True,
    )


def hash_luby_bound():
    """Declared bound ``O(log² ñ)`` (2 rounds per phase + slack)."""
    return AdditiveBound(
        [log2_squared("n", 2 * HL_PHASE_FACTOR)],
        constant=2 * HL_PHASE_CONSTANT + 4,
        label="hash-luby rounds",
    )


def hash_luby_nonuniform():
    """Theorem 1 input for Table 1 row 2 (n-only deterministic MIS)."""
    return NonUniform(
        hash_luby_mis(),
        hash_luby_bound(),
        kind="deterministic",
        default_output=NOT_IN_SET,
        name="hash-luby-mis",
    )
