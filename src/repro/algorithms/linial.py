"""Linial's set-system color reduction (the ``O(Δ²)``-coloring engine).

One reduction round maps an ``m``-coloring to a ``q²``-coloring: colors
are degree-``d`` polynomials over ``F_q`` (``q^{d+1} ≥ m`` so the map is
injective, ``q ≥ Δd + 1`` so a node's polynomial graph cannot be covered
by its ≤ Δ neighbours); a node picks a point ``(x, p(x))`` not on any
neighbour's polynomial.  Iterating reaches the fixpoint palette
``next_prime(Δ+1)² = O(Δ²)`` after ``log* m + O(1)`` rounds — Linial's
theorem, and the engine behind every deterministic coloring row of
Table 1.

The whole schedule (the sequence of ``(q, d)`` systems) is a pure
function of the guesses ``(m̃, Δ̃)``, so all nodes compute it identically
— this is precisely the non-uniformity the paper's transformers remove.
Under bad guesses the arithmetic still runs (colors are clamped into
range) but the output may be improper: exactly the "arbitrary result"
the paper permits and the pruning loop cleans up.

Initial colors: ``ctx.input["color"]`` when provided (Section 5.2's
"identities as colors" convention, required by Theorem 5's phase 2),
else the identity.
"""

from __future__ import annotations

from functools import lru_cache

from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import int_nthroot_ceil, log_star, next_prime


def best_system(m_cur, delta):
    """Cheapest ``(q, d)`` cover-free system for ``m_cur`` colors.

    Minimizes the field size over degrees ``d``, subject to
    ``q ≥ Δd + 1`` and ``q^{d+1} ≥ m_cur``.  The prime is only probed at
    the arg-min lower bound (prime gaps are negligible against the
    schedule's geometry, and probing every degree would mean primality
    tests on values as large as ``m_cur``).
    """
    delta = max(1, delta)
    best_lower = None
    best_d = None
    for d in range(1, 121):
        lower = max(delta * d + 1, int_nthroot_ceil(m_cur, d + 1), 2)
        if best_lower is None or lower < best_lower:
            best_lower = lower
            best_d = d
        if delta * d + 1 > best_lower:
            break
    return next_prime(best_lower), best_d


@lru_cache(maxsize=1024)
def linial_schedule(m_guess, delta_guess):
    """The deterministic reduction schedule for guesses ``(m̃, Δ̃)``.

    Returns ``(steps, final_palette)`` where steps is a tuple of
    ``(q, d)`` and the final palette is the fixpoint ``≤
    next_prime(Δ̃+1)²`` (or ``m̃`` itself when already small).

    The schedule is a pure function of the guesses and every node of a
    run computes it with identical arguments, so it is memoized — one
    derivation per (m̃, Δ̃) instead of one per node.
    """
    m_cur = max(2, int(m_guess))
    steps = []
    while True:
        q, d = best_system(m_cur, delta_guess)
        if q * q >= m_cur:
            return tuple(steps), m_cur
        steps.append((q, d))
        m_cur = q * q


def linial_fixpoint_palette(delta_guess):
    """Upper bound ``next_prime(2Δ̃+1)² = O(Δ̃²)`` on the final palette.

    The schedule stalls at palette ``K`` only when no admissible system
    beats it; the degree-2 system ``q = next_prime(2Δ̃+1)`` handles any
    ``K ≤ q³`` at cost ``q²``, so no schedule can stall above ``q²``
    (and schedules starting below it never exceed their start).
    """
    q = next_prime(max(2, 2 * delta_guess + 1))
    return q * q


def linial_steps_upper(m_guess):
    """Calibrated upper bound on the schedule length: ``log* m̃ + 4``.

    Each reduction takes the palette from ``m`` to roughly
    ``(Δ log_Δ m)²``, a log-type shrink, giving log*-many steps; the +4
    absorbs the tail where the palette crawls to the fixpoint.  Enforced
    empirically by the test suite over wide (m̃, Δ̃) grids.
    """
    return log_star(max(2, m_guess)) + 4


@lru_cache(maxsize=65536)
def _digits(value, base, count):
    out = []
    v = value
    for _ in range(count):
        out.append(v % base)
        v //= base
    return tuple(out)


@lru_cache(maxsize=65536)
def _poly_eval(coeffs, x, q):
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % q
    return acc


def reduce_color(color, neighbour_colors, q, d):
    """One Linial step at one node (0-based colors).

    Returns the new color in ``[0, q²)``.  Neighbours sharing our exact
    color (impossible under a proper input coloring) are ignored — the
    output is then garbage-by-construction, as permitted for bad guesses.
    """
    space = q ** (d + 1)
    mine = _digits(color % space, q, d + 1)
    rivals = [
        _digits(c % space, q, d + 1)
        for c in neighbour_colors
        if c % space != color % space
    ]
    for x in range(q):
        value = _poly_eval(mine, x, q)
        if all(_poly_eval(r, x, q) != value for r in rivals):
            return x * q + value
    return _poly_eval(mine, 0, q)


def initial_color(ctx):
    """Input color when provided, else the identity (both ≥ 1)."""
    if isinstance(ctx.input, dict) and "color" in ctx.input:
        return int(ctx.input["color"])
    return ctx.ident


class LinialProcess(NodeProcess):
    """Pure Linial reduction to the fixpoint palette (standalone use).

    Output: final color, 1-based, in ``[1, final_palette]``.
    """

    __slots__ = ("steps", "color", "index")

    def __init__(self, ctx):
        super().__init__(ctx)
        m_guess = ctx.guess("m")
        delta_guess = ctx.guess("Delta")
        self.steps, _ = linial_schedule(m_guess, delta_guess)
        self.color = initial_color(ctx) - 1
        self.index = 0

    def start(self):
        if not self.steps:
            self.finish(self.color + 1)
            return None
        return Broadcast(("lc", self.color))

    def receive(self, inbox):
        q, d = self.steps[self.index]
        neighbour_colors = [
            payload[1]
            for payload in inbox.values()
            if payload and payload[0] == "lc"
        ]
        self.color = reduce_color(self.color, neighbour_colors, q, d)
        self.index += 1
        if self.index == len(self.steps):
            self.finish(self.color + 1)
            return None
        return Broadcast(("lc", self.color))


def linial_coloring():
    """Linial's ``O(Δ̃²)``-coloring in ``log* m̃ + O(1)`` rounds."""
    return LocalAlgorithm(
        name="linial", process=LinialProcess, requires=("m", "Delta")
    )
