"""A non-uniform algorithm and pruner for strong g-coloring (§6.3).

Realizes the research direction the paper closes with: make coloring
prunable by carrying forbidden lists in the inputs.

* :class:`ForbiddenPruning` — 2 rounds: prune nodes whose tentative
  color is allowed and conflict-free; survivors add the pruned
  neighbours' colors to their forbidden sets.  Solution detection and
  gluing hold by the capacity invariant (one forbidden color per lost
  neighbour), mirroring Theorem 5's SLC pruner on a flat palette.

* :func:`forbidden_coloring` — the non-uniform box: a Linial-ordered
  greedy sweep.  First Linial reduces initial colors to the fixpoint
  palette (needs m̃, Δ̃); then color classes choose, in slot order, the
  smallest allowed color not taken by a neighbour.  With good guesses
  this uses ``O(Δ̃² + log* m̃)`` rounds — deliberately simple; the point
  of the module is the *pruner*, which is what the paper said was
  missing.

Together with Theorem 1 this yields a **uniform strong-coloring
algorithm** — the artifact Section 6.3 asks for (see
``tests/test_forbidden_coloring.py``).
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.pruning import KEEP, PruningAlgorithm
from ..core.transformer import NonUniform
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..problems.forbidden import ForbiddenInput, STRONG_COLORING
from .linial import (
    initial_color,
    linial_fixpoint_palette,
    linial_schedule,
    linial_steps_upper,
    reduce_color,
)


class _ForbiddenPruneProcess(NodeProcess):
    __slots__ = ("step", "x", "y_hat", "ok")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.step = 0
        self.x, self.y_hat = ctx.input if ctx.input else (None, None)
        self.ok = False

    def start(self):
        return Broadcast(("y", self.y_hat))

    def receive(self, inbox):
        self.step += 1
        if self.step == 1:
            neighbour_values = [
                p[1] for p in inbox.values() if p and p[0] == "y"
            ]
            allowed = isinstance(self.x, ForbiddenInput) and self.x.allowed(
                self.y_hat
            )
            self.ok = allowed and all(
                v != self.y_hat for v in neighbour_values
            )
            return Broadcast(("ok", self.ok, self.y_hat))
        used = [
            p[2]
            for p in inbox.values()
            if p and p[0] == "ok" and p[1]
        ]
        if self.ok:
            self.finish(("prune", None))
            return None
        if isinstance(self.x, ForbiddenInput):
            self.finish(("keep", self.x.without(used)))
        else:
            self.finish(KEEP)
        return None


class ForbiddenPruning(PruningAlgorithm):
    """The Section 6.3 pruner: freeze safe colors, forbid them around.

    2 rounds.  Monotone for all non-decreasing graph parameters (the
    palette bound ``g`` is input data and unchanged).
    """

    rounds = 2
    name = "P_forbidden"
    problem = STRONG_COLORING
    monotone = "all non-decreasing graph parameters (g is kept)"

    def algorithm(self):
        return LocalAlgorithm(name=self.name, process=_ForbiddenPruneProcess)


class ForbiddenColoringProcess(NodeProcess):
    """Linial ordering then slot-wise greedy allowed-color choice."""

    __slots__ = ("steps", "index", "color", "slot", "taken", "x")

    def __init__(self, ctx):
        super().__init__(ctx)
        m_guess = ctx.guess("m")
        delta_guess = max(0, int(ctx.guess("Delta")))
        self.x = ctx.input if isinstance(ctx.input, ForbiddenInput) else ForbiddenInput(delta_guess + 1)
        self.steps, _ = linial_schedule(m_guess, delta_guess)
        self.index = 0
        self.color = initial_color(ctx) - 1
        self.slot = None
        self.taken = set()

    def start(self):
        if self.steps:
            return Broadcast(("lc", self.color))
        self.slot = 0
        return None

    def receive(self, inbox):
        if self.slot is None:
            q, d = self.steps[self.index]
            neighbour_colors = [
                p[1] for p in inbox.values() if p and p[0] == "lc"
            ]
            self.color = reduce_color(self.color, neighbour_colors, q, d)
            self.index += 1
            if self.index < len(self.steps):
                return Broadcast(("lc", self.color))
            self.slot = 0
            return None
        for payload in inbox.values():
            if payload and payload[0] == "pick":
                self.taken.add(payload[1])
        if self.slot == self.color:
            choice = None
            for candidate in range(1, self.x.g + 1):
                if candidate in self.taken:
                    continue
                if candidate in self.x.forbidden:
                    continue
                choice = candidate
                break
            if choice is None:
                choice = 1  # capacity violated only under bad guesses
            self.finish(choice)
            return Broadcast(("pick", choice))
        self.slot += 1
        return None


def forbidden_coloring():
    """The non-uniform strong-coloring box (requires m̃, Δ̃)."""
    return LocalAlgorithm(
        name="forbidden-coloring",
        process=ForbiddenColoringProcess,
        requires=("m", "Delta"),
    )


def forbidden_coloring_bound():
    """Declared ``O(Δ̃² + log* m̃)`` bound (Linial + one slot sweep)."""
    return AdditiveBound(
        [
            custom(
                "Delta",
                lambda d: linial_fixpoint_palette(max(0, int(d))) + 2,
                "K0(Delta)+2",
            ),
            custom(
                "m", lambda m: 2 * linial_steps_upper(m), "2*(logstar m + 4)"
            ),
        ],
        constant=2,
        label="forbidden-coloring rounds",
    )


def forbidden_coloring_nonuniform():
    """Theorem 1 input for the Section 6.3 uniform strong coloring."""
    return NonUniform(
        forbidden_coloring(),
        forbidden_coloring_bound(),
        kind="deterministic",
        default_output=0,
        name="forbidden-coloring",
    )
