"""Catalogue wiring every Table-1 row to its reproduction pipeline.

Each :class:`TableRow` packages: the paper's citation and stated bound,
our non-uniform black box with its declared bound, the pruning
algorithm, the transformer that uniformizes it, and the verifying
problem.  The benches (``benchmarks/``) and EXPERIMENTS.md are generated
from this table, so it is the single source of truth for "what does row
X mean in this codebase".
"""

from __future__ import annotations

from ..core.portfolio import theorem4
from ..core.pruning import MatchingPruning, RulingSetPruning, mis_pruning
from ..core.randomized import theorem2
from ..core.transformer import theorem1
from ..core.weak_domination import theorem3
from ..problems.matching import MAXIMAL_MATCHING
from ..problems.mis import MIS
from ..problems.ruling import RulingSetProblem
from .arboricity import (
    arb_mis_nonuniform_nonly,
    arb_mis_nonuniform_product,
    sqrt_log_witness,
)
from .fast_mis import fast_mis_nonuniform
from .hash_luby import hash_luby_nonuniform
from .luby import luby_mc_nonuniform, luby_mis
from .matching import line_matching_nonuniform
from .ruling_sets import sw_ruling_set_nonuniform


class TableRow:
    """One row of Table 1 as an executable reproduction pipeline."""

    __slots__ = (
        "row_id",
        "paper_citation",
        "paper_bound",
        "parameters",
        "problem",
        "make_nonuniform",
        "make_pruning",
        "make_uniform",
        "notes",
    )

    def __init__(
        self,
        row_id,
        paper_citation,
        paper_bound,
        parameters,
        problem,
        make_nonuniform,
        make_pruning,
        make_uniform,
        notes="",
    ):
        self.row_id = row_id
        self.paper_citation = paper_citation
        self.paper_bound = paper_bound
        self.parameters = parameters
        self.problem = problem
        self.make_nonuniform = make_nonuniform
        self.make_pruning = make_pruning
        self.make_uniform = make_uniform
        self.notes = notes

    def build(self):
        """Instantiate ``(nonuniform, pruning, uniform)`` fresh."""
        nonuniform = self.make_nonuniform()
        pruning = self.make_pruning()
        uniform = self.make_uniform(nonuniform, pruning)
        return nonuniform, pruning, uniform

    def __repr__(self):
        return f"TableRow({self.row_id!r}: {self.paper_bound})"


def _rows():
    rows = [
        TableRow(
            row_id="mis-fast",
            paper_citation="Barenboim-Elkin '09 / Kuhn '09 [4,22]",
            paper_bound="O(Δ + log* n)",
            parameters=("Delta", "m"),
            problem=MIS,
            make_nonuniform=fast_mis_nonuniform,
            make_pruning=mis_pruning,
            make_uniform=lambda nu, p: theorem1(nu, p),
            notes="D1: ours is O(Δ log Δ + log* m) via Linial + KW halving",
        ),
        TableRow(
            row_id="mis-nonly",
            paper_citation="Panconesi-Srinivasan '96 [34]",
            paper_bound="2^O(√log n)",
            parameters=("n",),
            problem=MIS,
            make_nonuniform=hash_luby_nonuniform,
            make_pruning=mis_pruning,
            make_uniform=lambda nu, p: theorem1(nu, p),
            notes="D2: hash-Luby stand-in with declared O(log² ñ)",
        ),
        TableRow(
            row_id="mis-arb-product",
            paper_citation="Barenboim-Elkin '10 [6] (Corollary 3 regime)",
            paper_bound="O(a) .. O(a^ε log n)",
            parameters=("a", "n"),
            problem=MIS,
            make_nonuniform=arb_mis_nonuniform_product,
            make_pruning=mis_pruning,
            make_uniform=lambda nu, p: theorem1(nu, p),
            notes="H-partition + nested uniform MIS; product bound, s_f=O(log)",
        ),
        TableRow(
            row_id="mis-arb-nonly",
            paper_citation="Barenboim-Elkin '10 [6] (Corollary 4 regime)",
            paper_bound="O(log n / log log n) for a = O(log^(1/2-δ) n)",
            parameters=("n",),
            problem=MIS,
            make_nonuniform=arb_mis_nonuniform_nonly,
            make_pruning=mis_pruning,
            make_uniform=lambda nu, p: theorem3(nu, p, [sqrt_log_witness()]),
            notes="Theorem 3 with family witness g(a)=2^(a²) ≤ n",
        ),
        TableRow(
            row_id="matching",
            paper_citation="Hańćkowiak-Karoński-Panconesi '01 [19]",
            paper_bound="O(log⁴ n)",
            parameters=("Delta", "m"),
            problem=MAXIMAL_MATCHING,
            make_nonuniform=line_matching_nonuniform,
            make_pruning=MatchingPruning,
            make_uniform=lambda nu, p: theorem1(nu, p),
            notes="D5: MIS on L(G) instead of HKP splitters",
        ),
        TableRow(
            row_id="ruling-c1",
            paper_citation="Schneider-Wattenhofer '10 [36], c=1",
            paper_bound="O(2^c log^(1/c) n), (2,4)-ruling",
            parameters=("n",),
            problem=RulingSetProblem(2, 4),
            make_nonuniform=lambda: sw_ruling_set_nonuniform(1),
            make_pruning=lambda: RulingSetPruning(beta=4),
            make_uniform=lambda nu, p: theorem2(nu, p),
            notes="D6: truncated-Luby cascade; Theorem 2 → Las Vegas",
        ),
        TableRow(
            row_id="ruling-c2",
            paper_citation="Schneider-Wattenhofer '10 [36], c=2",
            paper_bound="O(2^c log^(1/c) n), (2,6)-ruling",
            parameters=("n",),
            problem=RulingSetProblem(2, 6),
            make_nonuniform=lambda: sw_ruling_set_nonuniform(2),
            make_pruning=lambda: RulingSetPruning(beta=6),
            make_uniform=lambda nu, p: theorem2(nu, p),
            notes="D6",
        ),
        TableRow(
            row_id="luby",
            paper_citation="Luby '86 / Alon-Babai-Itai '86 [1,30]",
            paper_bound="O(log n) expected, already uniform",
            parameters=(),
            problem=MIS,
            make_nonuniform=luby_mc_nonuniform,
            make_pruning=mis_pruning,
            make_uniform=lambda nu, p: theorem2(nu, p),
            notes="baseline row; also exercises MC→LV on a classical box",
        ),
    ]
    return {row.row_id: row for row in rows}


TABLE1 = _rows()


def row_capabilities(row_id):
    """Capability record of one row's black box (and its inner engine).

    Built from the algorithms' own :meth:`capabilities` declarations, so
    the runner/transformer dispatch and this catalogue can never drift
    apart: ``kind`` ("node" per-node processes / "host" orchestration),
    ``supports_batch`` (a frontier kernel is registered — the compiled
    engine auto-selects the batched path), ``supports_shard`` (the
    kernel is certified for partitioned execution — the sharded engine
    runs it on sub-CSRs with halo exchange, D12; uncertified boxes
    shard per node), ``domains`` (where the box may execute).  Host
    orchestrations may additionally report ``inner_supports_batch`` for
    the engine they drive internally (see
    ``LineMISMatching.capabilities``).

    The record also carries the row's *pruning* side under ``"pruning"``
    — the other half of every alternation step ``B_i = (A_i ; P)``,
    with its own ``kind`` (``"pruning"``), ``rounds`` and
    ``supports_batch`` — so backend selection covers the pruners
    explicitly instead of leaving them on the implicit per-node default.
    """
    from ..local.algorithm import capabilities_of

    row = TABLE1[row_id]
    box = row.make_nonuniform().algorithm
    caps = capabilities_of(box)
    caps["name"] = box.name
    pruner = row.make_pruning()
    prune_caps = capabilities_of(pruner)
    prune_caps["name"] = pruner.name
    caps["pruning"] = prune_caps
    return caps


def capability_table():
    """``row_id -> capability record`` for every Table-1 row.

    Benches and the backend-selection tests consume this instead of
    probing classes with ``isinstance`` — the record travels with the
    algorithm objects themselves.  Each row includes its pruner's record
    under ``"pruning"``.
    """
    return {row_id: row_capabilities(row_id) for row_id in TABLE1}


def corollary1_portfolio(*, base=2.0):
    """Corollary 1(i): min{2^O(√log n), O(Δ+log* n), f(a,n)} via Theorem 4.

    Members are the three *already uniformized* MIS algorithms — exactly
    how the paper assembles the corollary from Theorems 1/3 plus
    Theorem 4.
    """
    members = [
        theorem1(fast_mis_nonuniform(), mis_pruning(), base=base),
        theorem1(hash_luby_nonuniform(), mis_pruning(), base=base),
        theorem3(
            arb_mis_nonuniform_nonly(),
            mis_pruning(),
            [sqrt_log_witness()],
            base=base,
        ),
    ]
    return theorem4(members, mis_pruning(), name="corollary1(i)-mis", base=base)


def uniform_luby_baseline():
    """Row 10's uniform Las Vegas Luby, as a plain algorithm."""
    return luby_mis()
