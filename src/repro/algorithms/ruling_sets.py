"""Ruling-set algorithms (Table 1 row 9 and the AGLP primitive).

Two algorithms:

* :func:`bitwise_ruling_set` — the classic deterministic ``(2, b)``-
  ruling set over ``b``-bit identities (the primitive inside
  AGLP/Panconesi–Srinivasan network decompositions): process identity
  bits MSB→LSB, keeping 1-side candidates only when no 0-side candidate
  is adjacent; adjacent survivors would need equal identities, and each
  phase moves the dominating set by at most one hop.  ``b = bitlen(m̃)``
  rounds; requires ``m̃``.

* :func:`sw_ruling_set` — the Table-1 row: a (2, 2(c+1))-ruling set in
  SW'10's running-time *shape* ``O(2^c (log ñ)^{1/c})``.  Our
  substitution (DESIGN.md D6): Luby's MIS *self-truncated* at that
  budget.  Independence holds deterministically (only decided-in nodes
  join); only domination can fail, and only for nodes whose whole
  neighbourhood stayed undecided — the event whose probability shrinks
  with the β-slack.  This is an honest *weak Monte-Carlo* algorithm,
  exactly the class Theorem 2 turns into a uniform Las Vegas one
  (Corollary 1(vii)).
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.transformer import NonUniform
from ..local import batch, jitkernels
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import ceil_log2
from .luby import LubyProcess, _luby_batch_factory, _random_priority


class BitwiseRulingProcess(NodeProcess):
    """(2, b)-ruling set by MSB→LSB candidate filtering."""

    __slots__ = ("bits", "step", "candidate")

    def __init__(self, ctx):
        super().__init__(ctx)
        m_guess = max(1, int(ctx.guess("m")))
        self.bits = m_guess.bit_length()
        self.step = 0
        self.candidate = True

    def _bit(self, index):
        return (self.ctx.ident >> index) & 1

    def start(self):
        if self.bits == 0:
            self.finish(1)
            return None
        bit = self._bit(self.bits - 1)
        return Broadcast(("rb", self.candidate, bit))

    def receive(self, inbox):
        index = self.bits - 1 - self.step
        if self.candidate and self._bit(index) == 1:
            zero_neighbour = any(
                p[1] and p[2] == 0
                for p in inbox.values()
                if p and p[0] == "rb"
            )
            if zero_neighbour:
                self.candidate = False
        self.step += 1
        if self.step == self.bits:
            self.finish(1 if self.candidate else 0)
            return None
        bit = self._bit(self.bits - 1 - self.step)
        return Broadcast(("rb", self.candidate, bit))


#: Guess bit-lengths beyond this decline batching (an absurd m̃ would
#: otherwise spend thousands of column sweeps on a garbage run).
_BATCH_BITS_LIMIT = 4096


class BitwiseRulingKernel(batch.LockstepKernel):
    """Whole-frontier MSB→LSB candidate filtering as column sweeps.

    The schedule is a pure function of ``bitlen(m̃)`` and every node
    walks it in lockstep, so the per-round work is one boolean gather
    over the edge slab: a 1-side candidate drops out when some neighbour
    was still a candidate last round and shows a 0 bit at the round's
    index.  Identities may exceed 64 bits (derived-graph encodings), so
    each round's bit column is peeled with Python big-int arithmetic —
    lazily, one column per step, since every column is read exactly
    once.
    """

    __slots__ = ("bits", "cand", "prev_cand")

    def __init__(self, bg, bits):
        super().__init__(bg, schedule=bits)
        np = batch.numpy_or_none()
        self.bits = bits
        self.cand = np.ones(bg.n, dtype=bool)
        self.prev_cand = self.cand

    def _column(self):
        """Everyone's bit at index ``bits - round`` (MSB first)."""
        np = batch.numpy_or_none()
        shift = self.bits - self.round
        return np.array(
            [(ident >> shift) & 1 for ident in self.bg.idents], dtype=bool
        )

    def step(self):
        bg = self.bg
        self.round += 1
        column = self._column()
        zero_rival = self.prev_cand[bg.neigh] & ~column[bg.neigh]
        blocked = batch.row_flags(bg.owner[zero_rival], bg.n)
        self.cand = self.cand & ~(column & blocked)
        if self.round < self.bits:
            self.prev_cand = self.cand
            return [], [], self._broadcast()
        return self.finish([1 if c else 0 for c in self.cand.tolist()])

    def _column_matrix(self):
        """All ``bits`` columns in round order as one (n, bits) matrix.

        One big-int pass (``to_bytes`` per identity) replaces the
        per-round O(n) Python column peel: ``unpackbits`` emits each
        identity's masked bits MSB-first, which *is* the round order
        (round r reads bit index ``bits - r``).
        """
        np = batch.numpy_or_none()
        bits = self.bits
        nbytes = (bits + 7) // 8
        mask = (1 << bits) - 1
        packed = b"".join(
            (ident & mask).to_bytes(nbytes, "big") for ident in self.bg.idents
        )
        flat = np.frombuffer(packed, dtype=np.uint8).reshape(self.bg.n, nbytes)
        return np.unpackbits(flat, axis=1)[:, nbytes * 8 - bits :]

    def run_phases(self):
        """Fused MSB→LSB cascade over the precomputed bit matrix (D17).

        No fixed point exists here (every round reads a different
        column), so the win is hoisting the per-round Python column
        build and ledger bookkeeping out of the ``bits``-long loop.
        """
        bg = self.bg
        colmat = self._column_matrix().astype(bool)
        jit = jitkernels.bitwise_loop()
        if jit is not None:
            cand = jit(bg.offsets, bg.neigh, colmat, self.cand)
        else:
            neigh, owner = bg.neigh, bg.owner
            cand = self.cand
            prev_cand = self.prev_cand
            for r in range(self.bits):
                column = colmat[:, r]
                zero_rival = prev_cand[neigh] & ~column[neigh]
                blocked = batch.row_flags(owner[zero_rival], bg.n)
                cand = cand & ~(column & blocked)
                prev_cand = cand
            self.prev_cand = prev_cand
        self.cand = cand
        self.round = self.bits
        return self.finish([1 if c else 0 for c in cand.tolist()])[1]


def _bitwise_batch_factory():
    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        bits = max(1, int(setup.guesses["m"])).bit_length()
        if bits > _BATCH_BITS_LIMIT:
            return None
        return BitwiseRulingKernel(bg, bits)

    return factory


def bitwise_ruling_set():
    """Deterministic (2, bitlen(m̃))-ruling set in bitlen(m̃) rounds.

    Identities above ``m̃`` make the run garbage (bits beyond the
    schedule are never examined) — the usual bad-guess behaviour.
    """
    return LocalAlgorithm(
        name="bitwise-ruling-set",
        process=BitwiseRulingProcess,
        requires=("m",),
        batch=_bitwise_batch_factory(),
        # Round-fuse-safe (D17): fixed bitlen(m̃) lockstep schedule with
        # full-broadcast rounds; the fused cascade precomputes all bit
        # columns in one pass.
        roundfuse=True,
    )


def bitwise_beta(m_value):
    """The domination radius achieved: the bit-length of m."""
    return max(1, int(m_value).bit_length())


# ---------------------------------------------------------------------------
# SW-style randomized ruling set (weak Monte-Carlo)
# ---------------------------------------------------------------------------

SW_PHASE_FACTOR = 3
SW_PHASE_CONSTANT = 4


def sw_phases(c, n_guess):
    """Phase budget ``⌈3 · 2^c · (log2 ñ)^{1/c}⌉ + 2^c + 4``."""
    bits = max(1, ceil_log2(max(2, n_guess)))
    return (
        int(SW_PHASE_FACTOR * (2**c) * (bits ** (1.0 / c))) + 2**c
        + SW_PHASE_CONSTANT
    )


def sw_ruling_set(c):
    """(2, 2(c+1))-ruling set, weak Monte-Carlo, requires ñ."""
    if c < 1:
        raise ValueError("c must be ≥ 1")

    def process(ctx):
        return LubyProcess(
            ctx, _random_priority, phase_budget=sw_phases(c, ctx.guess("n"))
        )

    return LocalAlgorithm(
        name=f"sw-ruling-set(c={c})",
        process=process,
        requires=("n",),
        randomized=True,
        batch=_luby_batch_factory(budget_of=lambda g: sw_phases(c, g["n"])),
        shard=True,
        # Round-fuse-safe (D17) through the Luby kernel's fixed-point
        # driver (the phase budget self-terminates inside it).
        roundfuse=True,
    )


def sw_ruling_set_bound(c):
    """Declared ``O(2^c (log ñ)^{1/c})`` bound (2 rounds per phase)."""
    return AdditiveBound(
        [
            custom(
                "n",
                lambda n: 2.0 * sw_phases(c, n),
                f"2*phases(c={c}, n)",
            )
        ],
        constant=4,
        label=f"sw-ruling-set(c={c}) rounds",
    )


def sw_ruling_set_nonuniform(c):
    """Theorem 2 input for Table 1 row 9."""
    return NonUniform(
        sw_ruling_set(c),
        sw_ruling_set_bound(c),
        kind="weak-monte-carlo",
        guarantee=0.5,
        default_output=0,
        name=f"sw-ruling-set(c={c})",
    )
