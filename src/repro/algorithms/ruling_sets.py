"""Ruling-set algorithms (Table 1 row 9 and the AGLP primitive).

Two algorithms:

* :func:`bitwise_ruling_set` — the classic deterministic ``(2, b)``-
  ruling set over ``b``-bit identities (the primitive inside
  AGLP/Panconesi–Srinivasan network decompositions): process identity
  bits MSB→LSB, keeping 1-side candidates only when no 0-side candidate
  is adjacent; adjacent survivors would need equal identities, and each
  phase moves the dominating set by at most one hop.  ``b = bitlen(m̃)``
  rounds; requires ``m̃``.

* :func:`sw_ruling_set` — the Table-1 row: a (2, 2(c+1))-ruling set in
  SW'10's running-time *shape* ``O(2^c (log ñ)^{1/c})``.  Our
  substitution (DESIGN.md D6): Luby's MIS *self-truncated* at that
  budget.  Independence holds deterministically (only decided-in nodes
  join); only domination can fail, and only for nodes whose whole
  neighbourhood stayed undecided — the event whose probability shrinks
  with the β-slack.  This is an honest *weak Monte-Carlo* algorithm,
  exactly the class Theorem 2 turns into a uniform Las Vegas one
  (Corollary 1(vii)).
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.transformer import NonUniform
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import ceil_log2
from .luby import LubyProcess, _random_priority


class BitwiseRulingProcess(NodeProcess):
    """(2, b)-ruling set by MSB→LSB candidate filtering."""

    __slots__ = ("bits", "step", "candidate")

    def __init__(self, ctx):
        super().__init__(ctx)
        m_guess = max(1, int(ctx.guess("m")))
        self.bits = m_guess.bit_length()
        self.step = 0
        self.candidate = True

    def _bit(self, index):
        return (self.ctx.ident >> index) & 1

    def start(self):
        if self.bits == 0:
            self.finish(1)
            return None
        bit = self._bit(self.bits - 1)
        return Broadcast(("rb", self.candidate, bit))

    def receive(self, inbox):
        index = self.bits - 1 - self.step
        if self.candidate and self._bit(index) == 1:
            zero_neighbour = any(
                p[1] and p[2] == 0
                for p in inbox.values()
                if p and p[0] == "rb"
            )
            if zero_neighbour:
                self.candidate = False
        self.step += 1
        if self.step == self.bits:
            self.finish(1 if self.candidate else 0)
            return None
        bit = self._bit(self.bits - 1 - self.step)
        return Broadcast(("rb", self.candidate, bit))


def bitwise_ruling_set():
    """Deterministic (2, bitlen(m̃))-ruling set in bitlen(m̃) rounds.

    Identities above ``m̃`` make the run garbage (bits beyond the
    schedule are never examined) — the usual bad-guess behaviour.
    """
    return LocalAlgorithm(
        name="bitwise-ruling-set",
        process=BitwiseRulingProcess,
        requires=("m",),
    )


def bitwise_beta(m_value):
    """The domination radius achieved: the bit-length of m."""
    return max(1, int(m_value).bit_length())


# ---------------------------------------------------------------------------
# SW-style randomized ruling set (weak Monte-Carlo)
# ---------------------------------------------------------------------------

SW_PHASE_FACTOR = 3
SW_PHASE_CONSTANT = 4


def sw_phases(c, n_guess):
    """Phase budget ``⌈3 · 2^c · (log2 ñ)^{1/c}⌉ + 2^c + 4``."""
    bits = max(1, ceil_log2(max(2, n_guess)))
    return (
        int(SW_PHASE_FACTOR * (2**c) * (bits ** (1.0 / c))) + 2**c
        + SW_PHASE_CONSTANT
    )


def sw_ruling_set(c):
    """(2, 2(c+1))-ruling set, weak Monte-Carlo, requires ñ."""
    if c < 1:
        raise ValueError("c must be ≥ 1")

    def process(ctx):
        return LubyProcess(
            ctx, _random_priority, phase_budget=sw_phases(c, ctx.guess("n"))
        )

    return LocalAlgorithm(
        name=f"sw-ruling-set(c={c})",
        process=process,
        requires=("n",),
        randomized=True,
    )


def sw_ruling_set_bound(c):
    """Declared ``O(2^c (log ñ)^{1/c})`` bound (2 rounds per phase)."""
    return AdditiveBound(
        [
            custom(
                "n",
                lambda n: 2.0 * sw_phases(c, n),
                f"2*phases(c={c}, n)",
            )
        ],
        constant=4,
        label=f"sw-ruling-set(c={c}) rounds",
    )


def sw_ruling_set_nonuniform(c):
    """Theorem 2 input for Table 1 row 9."""
    return NonUniform(
        sw_ruling_set(c),
        sw_ruling_set_bound(c),
        kind="weak-monte-carlo",
        guarantee=0.5,
        default_output=0,
        name=f"sw-ruling-set(c={c})",
    )
