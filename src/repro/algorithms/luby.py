"""Luby's randomized MIS (Table 1's uniform baseline, rows [1, 30]).

The random-priority variant: each phase (two rounds) every undecided
node draws a fresh random priority, joins the MIS when it beats all
undecided neighbours, and retires its neighbours.  The algorithm is
**uniform** — no global knowledge whatsoever — and Las Vegas: a node
terminates exactly when its membership is settled, after O(log n) rounds
in expectation and with high probability.

Phase protocol (ties broken by identity, so priorities are totally
ordered):

* bid round — undecided nodes broadcast ``(bid, r, Id)``;
* decision round — a node beating every received bid joins, broadcasts
  ``(win,)`` and terminates with output 1; nodes hearing a ``win`` from a
  neighbour terminate with output 0; the rest bid again.

A node's set of *undecided* neighbours is exactly the set of bids it
received this phase, so no explicit liveness tracking is needed.

:func:`luby_mc` packages the self-truncating variant: run for
``rounds(ñ)`` rounds and output 0 when still undecided — a *weak
Monte-Carlo* algorithm in the paper's sense (Section 2), the input class
of Theorem 2.  Its priorities come from ``ctx.rng``; see
:mod:`repro.algorithms.hash_luby` for the deterministic-given-IDs twin.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.bounds import AdditiveBound, log2_of
from ..core.transformer import NonUniform
from ..local import batch
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast

#: Default output forced on undecided nodes by truncation.
NOT_IN_SET = 0


class LubyProcess(NodeProcess):
    """One node of the random-priority MIS."""

    __slots__ = ("priority_source", "phase_budget", "phases", "bidding", "bid")

    def __init__(self, ctx, priority_source, phase_budget=None):
        super().__init__(ctx)
        self.priority_source = priority_source
        self.phase_budget = phase_budget
        self.phases = 0
        self.bidding = True
        self.bid = None

    def _draw(self):
        self.phases += 1
        priority = self.priority_source(self.ctx, self.phases)
        ident = self.ctx.ident
        self.bid = (priority, ident)
        return Broadcast(("bid", priority, ident))

    def start(self):
        if self.ctx.degree == 0:
            self.finish(1)
            return None
        return self._draw()

    def receive(self, inbox):
        if self.bidding:
            bid = self.bid
            for payload in inbox.values():
                if payload and payload[0] == "bid" and (payload[1], payload[2]) <= bid:
                    # A rival (strictly ordered by the ident tie-break)
                    # beats us; sit out the decision round.
                    self.bidding = False
                    return None
            self.finish(1)
            return Broadcast(("win",))
        # decision round
        for payload in inbox.values():
            if payload and payload[0] == "win":
                self.finish(0)
                return None
        if self.phase_budget is not None and self.phases >= self.phase_budget:
            self.finish(NOT_IN_SET)
            return None
        self.bidding = True
        return self._draw()


def _random_priority(ctx, phase):
    return ctx.rng.getrandbits(62)


class LubyBatchKernel:
    """Whole-frontier Luby phases as array steps over the CSR slab.

    Mirrors :class:`LubyProcess` exactly — same phase structure, same
    message counts, same termination rounds — with the per-node state
    held in numpy arrays.  Priority ties break on the node *index*,
    which equals the identity order of the per-node machines
    (``BatchGraph`` node order is identity order, and identities are
    unique, so ``(priority, index)`` and ``(priority, ident)`` induce
    the same comparisons).

    Engine-round layout (identical to the scalar machine): round 0
    wake-up bids; odd rounds decide winners (local priority minima
    finish with 1 and broadcast the win); even rounds retire their
    neighbours (finish 0), apply the Monte-Carlo phase budget, and
    redraw bids for the survivors.

    Fault injection (DESIGN.md D14, ``faults`` a
    :class:`~repro.local.faults.BatchFaults` view or ``None``): crashed
    nodes are force-finished before the round's logic, silenced/dropped
    bids and wins are masked out of the rival/heard relations via
    ``tainted_in`` (garbles too — a garbled payload fails the tag
    check), and message counts use the sender-side ``delivered_out``
    mask.  ``bidders`` snapshots aliveness at each bid round because the
    honest path's ``alive[nb]`` proxy breaks when a bidder crashes at
    the decision round — its already-sent bid must still beat its
    neighbours.  The honest branches below are the pre-D14 code
    verbatim.
    """

    __slots__ = (
        "bg",
        "draws",
        "budget",
        "alive",
        "prio",
        "phase",
        "winners",
        "deciding",
        "done",
        "rounds",
        "bidders",
        "faults",
    )

    def __init__(self, bg, draws, budget, faults=None):
        np = batch.numpy_or_none()
        self.bg = bg
        self.draws = draws
        self.budget = budget
        self.alive = bg.degrees > 0
        self.prio = np.zeros(bg.n, dtype=np.uint64)
        self.phase = 0
        self.winners = None
        self.deciding = True
        self.done = False
        self.rounds = 0
        self.bidders = None
        self.faults = faults

    def undone_indices(self):
        np = batch.numpy_or_none()
        return np.flatnonzero(self.alive).tolist()

    def _draw_bids(self):
        """Draw fresh priorities for the survivors; returns messages sent."""
        np = batch.numpy_or_none()
        self.phase += 1
        idx = np.flatnonzero(self.alive)
        self.prio[idx] = self.draws(idx, self.phase)
        if self.faults is None:
            return self.bg.charge(idx)
        self.bidders = self.alive.copy()
        delivered = self.faults.delivered_out(self.rounds)
        return int((delivered & self.alive[self.bg.owner]).sum())

    def _apply_crashes(self):
        """Force-finish nodes crashing this round, before any logic.

        Returns ``(finished indices, results)`` — empty when no active
        node crashes at the current round.
        """
        np = batch.numpy_or_none()
        crashed = self.faults.crashed_at(self.rounds)
        if crashed is None:
            return [], []
        crashed = crashed & self.alive
        idx = np.flatnonzero(crashed).tolist()
        if idx:
            self.alive = self.alive & ~crashed
        crash_out = self.faults.crash_out
        return idx, [crash_out[i] for i in idx]

    def start(self):
        np = batch.numpy_or_none()
        if self.faults is not None:
            finished, results = self._apply_crashes()
            isolated = np.flatnonzero(
                ~self.alive & (self.bg.degrees == 0)
            ).tolist()
            if self.faults.has_crash:
                crashed0 = self.faults.crashed_at(0)
                if crashed0 is not None:
                    isolated = [i for i in isolated if not crashed0[i]]
            finished.extend(isolated)
            results.extend([1] * len(isolated))
            if not self.alive.any():
                self.done = True
                return finished, results, 0
            return finished, results, self._draw_bids()
        isolated = np.flatnonzero(~self.alive).tolist()
        if not self.alive.any():
            self.done = True
            return isolated, [1] * len(isolated), 0
        messages = self._draw_bids()
        return isolated, [1] * len(isolated), messages

    def step(self):
        np = batch.numpy_or_none()
        bg = self.bg
        self.rounds += 1
        faults = self.faults
        crashed_idx, crashed_results = (
            self._apply_crashes() if faults is not None else ([], [])
        )
        alive = self.alive
        if self.deciding:
            # Decision round: a bidder beating every live rival joins.
            own, nb = bg.owner, bg.neigh
            po, pn = self.prio[own], self.prio[nb]
            if faults is None:
                rival = alive[own] & alive[nb]
            else:
                rival = (
                    alive[own]
                    & self.bidders[nb]
                    & ~faults.tainted_in(self.rounds - 1)
                )
            rival &= (pn < po) | ((pn == po) & (nb < own))
            beaten = batch.row_flags(own[rival], bg.n)
            winners = alive & ~beaten
            self.alive = alive & beaten
            self.winners = winners
            self.deciding = False
            self.done = not bool(self.alive.any())
            finished = crashed_idx + np.flatnonzero(winners).tolist()
            results = crashed_results + [1] * (len(finished) - len(crashed_idx))
            if faults is None:
                messages = bg.charge(winners)
            else:
                messages = int(
                    (faults.delivered_out(self.rounds) & winners[bg.owner]).sum()
                )
            return finished, results, messages
        # Retirement round: losers hear the wins, survivors rebid.
        if faults is None:
            heard = self.winners[bg.neigh] & alive[bg.owner]
        else:
            heard = (
                self.winners[bg.neigh]
                & ~faults.tainted_in(self.rounds - 1)
                & alive[bg.owner]
            )
        retired = alive & batch.row_flags(bg.owner[heard], bg.n)
        alive = alive & ~retired
        finished = crashed_idx + np.flatnonzero(retired).tolist()
        results = crashed_results + [0] * (len(finished) - len(crashed_idx))
        if self.budget is not None and self.phase >= self.budget:
            cut = np.flatnonzero(alive).tolist()
            finished.extend(cut)
            results.extend([NOT_IN_SET] * len(cut))
            alive[:] = False
        self.alive = alive
        self.deciding = True
        messages = 0
        if alive.any():
            messages = self._draw_bids()
        else:
            self.done = True
        return finished, results, messages


    def run_fixedpoint(self, cap):
        """Frontier-to-fixed-point drive for the round-fused tier (D17).

        Executes the whole decide/retire phase alternation inside one
        call with the hot-loop locals hoisted (CSR slabs, priority
        array, budget) and no per-round ledger bookkeeping; the driver
        settles the returned ``(round, finished, results)`` events
        afterwards.  The divergence cap is enforced in here — at most
        ``cap`` rounds execute, and a mid-phase exit leaves the kernel
        state exactly where the per-round loop would have left it
        (``undone_indices`` reads ``alive``).  Honest runs only: an
        injected kernel steps through the generic per-round loop, which
        the engine's fault gate guarantees structurally — the guard
        below is belt and braces.
        """
        np = batch.numpy_or_none()
        events = []
        finished, results, messages = self.start()
        if finished:
            events.append((0, finished, results))
        rounds = 0
        if self.faults is not None:  # pragma: no cover - engine-gated
            while not self.done and rounds < cap:
                rounds += 1
                finished, results, sent = self.step()
                messages += sent
                if finished:
                    events.append((rounds, finished, results))
            self.rounds = rounds
            return events, rounds, messages
        bg = self.bg
        own, nb = bg.owner, bg.neigh
        n = bg.n
        charge = bg.charge
        flags = batch.row_flags
        flatnonzero = np.flatnonzero
        prio = self.prio
        budget = self.budget
        alive = self.alive
        while not self.done and rounds < cap:
            # Decision round: a bidder beating every live rival joins.
            rounds += 1
            po, pn = prio[own], prio[nb]
            rival = alive[own] & alive[nb]
            rival &= (pn < po) | ((pn == po) & (nb < own))
            beaten = flags(own[rival], n)
            winners = alive & ~beaten
            alive = alive & beaten
            self.alive = alive
            self.winners = winners
            self.deciding = False
            self.done = not bool(alive.any())
            joined = flatnonzero(winners).tolist()
            messages += charge(winners)
            if joined:
                events.append((rounds, joined, [1] * len(joined)))
            if self.done or rounds >= cap:
                break
            # Retirement round: losers hear the wins, survivors rebid.
            rounds += 1
            heard = winners[nb] & alive[own]
            retired = alive & flags(own[heard], n)
            alive = alive & ~retired
            finished = flatnonzero(retired).tolist()
            results = [0] * len(finished)
            if budget is not None and self.phase >= budget:
                cut = flatnonzero(alive).tolist()
                finished.extend(cut)
                results.extend([NOT_IN_SET] * len(cut))
                alive = alive & False
            self.alive = alive
            self.deciding = True
            if alive.any():
                self.rounds = rounds
                messages += self._draw_bids()
            else:
                self.done = True
            if finished:
                events.append((rounds, finished, results))
        self.rounds = rounds
        return events, rounds, messages


def _luby_batch_factory(budget_of=None, priorities=None):
    """Batch-kernel factory for a Luby-family algorithm.

    ``budget_of(guesses)`` derives the Monte-Carlo phase budget (``None``
    for the Las Vegas variant); ``priorities(bg, setup)`` builds the
    per-phase draw callable (``None`` uses the node's private rng
    stream, i.e. one ``getrandbits(62)`` per phase).
    """

    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        if priorities is not None:
            draws = priorities(bg, setup)
        else:
            draws = setup.draw_source(62).draws
        budget = budget_of(setup.guesses) if budget_of is not None else None
        return LubyBatchKernel(bg, draws, budget, faults=setup.faults)

    return factory


def luby_mis():
    """The uniform Las Vegas MIS (no parameters, certain correctness)."""
    return LocalAlgorithm(
        name="luby-mis",
        process=lambda ctx: LubyProcess(ctx, _random_priority),
        requires=(),
        randomized=True,
        batch=_luby_batch_factory(),
        shard=True,
        fault_batch=True,
        fuse=True,
        # Round-fuse-safe (D17): self-terminating frontier kernel with
        # a dedicated fixed-point driver (honest runs only — the fault
        # gate routes injected runs to the per-round loop).
        roundfuse=True,
    )


#: Phase budget multiplier for the Monte-Carlo truncation; calibrated so
#: that the 1/2 guarantee holds with room to spare on the test suite.
MC_PHASE_FACTOR = 4
MC_PHASE_CONSTANT = 6


@lru_cache(maxsize=1024)
def mc_phases(n_guess):
    """Phase budget of the truncated variant for a guess ñ."""
    bits = max(1, (max(1, int(n_guess))).bit_length())
    return MC_PHASE_FACTOR * bits + MC_PHASE_CONSTANT


def luby_mc():
    """Self-truncating Luby: a weak Monte-Carlo MIS requiring ñ.

    Runs ``mc_phases(ñ)`` phases; undecided nodes output 0, so with
    probability ≥ 1/2 (when ñ ≥ n) the output is a MIS and otherwise it
    is near-miss garbage for the pruner to sort out.
    """

    def process(ctx):
        return LubyProcess(
            ctx, _random_priority, phase_budget=mc_phases(ctx.guess("n"))
        )

    return LocalAlgorithm(
        name="luby-mc",
        process=process,
        requires=("n",),
        randomized=True,
        batch=_luby_batch_factory(budget_of=lambda g: mc_phases(g["n"])),
        shard=True,
        fault_batch=True,
        fuse=True,
        # Round-fuse-safe (D17): see luby_mis — the phase budget
        # self-terminates inside the fixed-point driver.
        roundfuse=True,
    )


def luby_mc_bound():
    """Declared bound: 2 rounds per phase plus the decision round."""
    return AdditiveBound(
        [log2_of("n", 2 * MC_PHASE_FACTOR)],
        constant=2 * MC_PHASE_CONSTANT + 4,
        label="luby-mc rounds",
    )


def luby_mc_nonuniform():
    """Theorem 2 input: the truncated Luby as a packaged weak MC box."""
    return NonUniform(
        luby_mc(),
        luby_mc_bound(),
        kind="weak-monte-carlo",
        guarantee=0.5,
        default_output=NOT_IN_SET,
        name="luby-mc",
    )
