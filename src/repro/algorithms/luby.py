"""Luby's randomized MIS (Table 1's uniform baseline, rows [1, 30]).

The random-priority variant: each phase (two rounds) every undecided
node draws a fresh random priority, joins the MIS when it beats all
undecided neighbours, and retires its neighbours.  The algorithm is
**uniform** — no global knowledge whatsoever — and Las Vegas: a node
terminates exactly when its membership is settled, after O(log n) rounds
in expectation and with high probability.

Phase protocol (ties broken by identity, so priorities are totally
ordered):

* bid round — undecided nodes broadcast ``(bid, r, Id)``;
* decision round — a node beating every received bid joins, broadcasts
  ``(win,)`` and terminates with output 1; nodes hearing a ``win`` from a
  neighbour terminate with output 0; the rest bid again.

A node's set of *undecided* neighbours is exactly the set of bids it
received this phase, so no explicit liveness tracking is needed.

:func:`luby_mc` packages the self-truncating variant: run for
``rounds(ñ)`` rounds and output 0 when still undecided — a *weak
Monte-Carlo* algorithm in the paper's sense (Section 2), the input class
of Theorem 2.  Its priorities come from ``ctx.rng``; see
:mod:`repro.algorithms.hash_luby` for the deterministic-given-IDs twin.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.bounds import AdditiveBound, log2_of
from ..core.transformer import NonUniform
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast

#: Default output forced on undecided nodes by truncation.
NOT_IN_SET = 0


class LubyProcess(NodeProcess):
    """One node of the random-priority MIS."""

    __slots__ = ("priority_source", "phase_budget", "phases", "bidding", "bid")

    def __init__(self, ctx, priority_source, phase_budget=None):
        super().__init__(ctx)
        self.priority_source = priority_source
        self.phase_budget = phase_budget
        self.phases = 0
        self.bidding = True
        self.bid = None

    def _draw(self):
        self.phases += 1
        priority = self.priority_source(self.ctx, self.phases)
        ident = self.ctx.ident
        self.bid = (priority, ident)
        return Broadcast(("bid", priority, ident))

    def start(self):
        if self.ctx.degree == 0:
            self.finish(1)
            return None
        return self._draw()

    def receive(self, inbox):
        if self.bidding:
            bid = self.bid
            for payload in inbox.values():
                if payload and payload[0] == "bid" and (payload[1], payload[2]) <= bid:
                    # A rival (strictly ordered by the ident tie-break)
                    # beats us; sit out the decision round.
                    self.bidding = False
                    return None
            self.finish(1)
            return Broadcast(("win",))
        # decision round
        for payload in inbox.values():
            if payload and payload[0] == "win":
                self.finish(0)
                return None
        if self.phase_budget is not None and self.phases >= self.phase_budget:
            self.finish(NOT_IN_SET)
            return None
        self.bidding = True
        return self._draw()


def _random_priority(ctx, phase):
    return ctx.rng.getrandbits(62)


def luby_mis():
    """The uniform Las Vegas MIS (no parameters, certain correctness)."""
    return LocalAlgorithm(
        name="luby-mis",
        process=lambda ctx: LubyProcess(ctx, _random_priority),
        requires=(),
        randomized=True,
    )


#: Phase budget multiplier for the Monte-Carlo truncation; calibrated so
#: that the 1/2 guarantee holds with room to spare on the test suite.
MC_PHASE_FACTOR = 4
MC_PHASE_CONSTANT = 6


@lru_cache(maxsize=1024)
def mc_phases(n_guess):
    """Phase budget of the truncated variant for a guess ñ."""
    bits = max(1, (max(1, int(n_guess))).bit_length())
    return MC_PHASE_FACTOR * bits + MC_PHASE_CONSTANT


def luby_mc():
    """Self-truncating Luby: a weak Monte-Carlo MIS requiring ñ.

    Runs ``mc_phases(ñ)`` phases; undecided nodes output 0, so with
    probability ≥ 1/2 (when ñ ≥ n) the output is a MIS and otherwise it
    is near-miss garbage for the pruner to sort out.
    """

    def process(ctx):
        return LubyProcess(
            ctx, _random_priority, phase_budget=mc_phases(ctx.guess("n"))
        )

    return LocalAlgorithm(
        name="luby-mc",
        process=process,
        requires=("n",),
        randomized=True,
    )


def luby_mc_bound():
    """Declared bound: 2 rounds per phase plus the decision round."""
    return AdditiveBound(
        [log2_of("n", 2 * MC_PHASE_FACTOR)],
        constant=2 * MC_PHASE_CONSTANT + 4,
        label="luby-mc rounds",
    )


def luby_mc_nonuniform():
    """Theorem 2 input: the truncated Luby as a packaged weak MC box."""
    return NonUniform(
        luby_mc(),
        luby_mc_bound(),
        kind="weak-monte-carlo",
        guarantee=0.5,
        default_output=NOT_IN_SET,
        name="luby-mc",
    )
