"""Arboricity-dependent MIS (Table 1 rows 3–4, Corollaries 3 and 4).

The Barenboim–Elkin route: an *H-partition* peels the graph into
``O(log ñ)`` classes such that every node has at most ``4ã`` neighbours
in its own-or-later classes (possible whenever ``ã ≥ a`` because every
subgraph of an arboricity-``a`` graph has average degree ≤ 2a, so
degree-``> 4ã`` nodes are always a minority); then the classes are
processed lowest-first, each through a MIS on a ``≤ 4ã``-degree
subgraph.

The inner per-class MIS is this library's own *Theorem-1-uniformized*
fast MIS — the framework eating its own dog food, and not a gimmick:
the inner algorithm adapts to each class's *actual* maximum degree and
identity space, which keeps the outer running time governed by the real
arboricity rather than by the guess ``ã``.  That independence is exactly
what lets the n-only declared bound of Corollary 4 hold (Theorem 3 with
the family witness ``g(a) = 2^{a²} ≤ n`` on graphs with ``a ≤ √log n``).

Costs charged (aligned phases): peeling ``⌈log2 ñ⌉ + 2`` rounds, then
per class the nested transformer's rounds plus one domination round.
"""

from __future__ import annotations

import math

from ..core.bounds import AdditiveBound, ProductBound, custom
from ..core.pruning import RulingSetPruning
from ..core.transformer import NonUniform, theorem1
from ..core.weak_domination import DominationWitness
from ..local import batch, jitkernels
from ..local.algorithm import HostAlgorithm, LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import ceil_log2
from .fast_mis import fast_mis_bound, fast_mis_nonuniform

#: Peeling threshold multiplier: nodes with residual degree ≤ PEEL_FACTOR·ã
#: are peeled; 4 guarantees at least half the residual nodes peel per
#: round when ã ≥ a.
PEEL_FACTOR = 4


def peel_rounds(n_guess):
    """Rounds of the peeling stage: ⌈log2 ñ⌉ + 2 (halving argument)."""
    return ceil_log2(max(2, n_guess)) + 2


class HPartitionProcess(NodeProcess):
    """Synchronous peeling into classes 1..R (0 = failed to peel)."""

    __slots__ = ("threshold", "phases", "step", "cls")

    def __init__(self, ctx):
        super().__init__(ctx)
        a_guess = max(1, int(ctx.guess("a")))
        self.threshold = PEEL_FACTOR * a_guess
        self.phases = peel_rounds(ctx.guess("n")) - 1
        self.step = 0
        self.cls = 0

    def start(self):
        return Broadcast(("st", False))

    def receive(self, inbox):
        self.step += 1
        alive = sum(
            1 for p in inbox.values() if p and p[0] == "st" and not p[1]
        )
        if self.cls == 0 and alive <= self.threshold:
            self.cls = self.step
        if self.step >= self.phases:
            self.finish(self.cls)
            return None
        return Broadcast(("st", self.cls != 0))


class HPartitionKernel(batch.LockstepKernel):
    """Whole-frontier degree-threshold peeling as bincount sweeps.

    Mirrors :class:`HPartitionProcess` round for round: every node is
    lockstep-active for the full ``peel_rounds(ñ) - 1`` phases, so a
    round is one bincount of the still-unpeeled neighbours over the edge
    slab plus one threshold compare — the arboricity orchestration's
    peeling stage stops paying one Python ``receive`` per node.
    """

    __slots__ = ("threshold", "phases", "cls", "prev_peeled")

    def __init__(self, bg, threshold, phases):
        super().__init__(bg, schedule=phases)
        np = batch.numpy_or_none()
        self.threshold = threshold
        self.phases = phases
        self.cls = np.zeros(bg.n, dtype=np.int64)
        self.prev_peeled = np.zeros(bg.n, dtype=bool)

    def step(self):
        np = batch.numpy_or_none()
        bg = self.bg
        self.round += 1
        peeled_neighbours = np.bincount(
            bg.owner[self.prev_peeled[bg.neigh]], minlength=bg.n
        )
        alive = bg.degrees - peeled_neighbours
        fresh = (self.cls == 0) & (alive <= self.threshold)
        self.cls[fresh] = self.round
        if self.round < self.phases:
            self.prev_peeled = self.cls != 0
            return [], [], self._broadcast()
        return self.finish([int(c) for c in self.cls.tolist()])

    def run_phases(self):
        """Fused peeling to fixed point (D17).

        The recurrence reads only the previous round's peel set: a
        round that peels nothing leaves ``cls`` and ``prev_peeled``
        unchanged, so every remaining round is identical and the loop
        may skip straight to the end of the schedule.  Results record
        the round each node peeled at, which the early exit never
        changes.
        """
        np = batch.numpy_or_none()
        bg = self.bg
        jit = jitkernels.peeling_loop()
        if jit is not None:
            cls = jit(
                bg.offsets, bg.neigh, bg.degrees, self.cls,
                self.threshold, self.phases,
            )
        else:
            neigh, owner, degrees = bg.neigh, bg.owner, bg.degrees
            threshold = self.threshold
            cls = self.cls
            prev_peeled = self.prev_peeled
            for r in range(1, self.phases + 1):
                peeled_neighbours = np.bincount(
                    owner[prev_peeled[neigh]], minlength=bg.n
                )
                fresh = (cls == 0) & (
                    degrees - peeled_neighbours <= threshold
                )
                if not fresh.any():
                    break
                cls[fresh] = r
                prev_peeled = cls != 0
        self.round = self.phases
        self.prev_peeled = cls != 0
        return self.finish([int(c) for c in cls.tolist()])[1]


def _h_partition_batch_factory():
    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        a_guess = max(1, int(setup.guesses["a"]))
        phases = peel_rounds(setup.guesses["n"]) - 1
        return HPartitionKernel(bg, PEEL_FACTOR * a_guess, phases)

    return factory


def h_partition():
    """The peeling stage as a LOCAL algorithm (requires ã, ñ)."""
    return LocalAlgorithm(
        name="h-partition",
        process=HPartitionProcess,
        requires=("a", "n"),
        batch=_h_partition_batch_factory(),
        # Round-fuse-safe (D17): fixed lockstep schedule, full-broadcast
        # rounds, and a fused peeling loop with a proven fixed point.
        roundfuse=True,
    )


class ArbMIS(HostAlgorithm):
    """H-partition peeling + nested uniform MIS per class."""

    name = "arb-mis"
    requires = ("a", "n")
    randomized = False

    def __init__(self):
        self._inner = theorem1(
            fast_mis_nonuniform(), RulingSetPruning(beta=1),
            name="inner-uniform-fast-mis",
        )

    def run_restricted(
        self, domain, budget, *, inputs, guesses, seed, salt, default_output
    ):
        used = 0
        outputs = {u: default_output for u in domain.nodes}
        rounds_peel = peel_rounds(guesses["n"])
        if used + rounds_peel > budget:
            return outputs, budget
        classes, charged = domain.run_restricted(
            h_partition(),
            rounds_peel,
            inputs=None,
            guesses=guesses,
            seed=seed,
            salt=f"{salt}|peel",
            default_output=0,
        )
        used += charged
        max_class = max((c for c in classes.values() if isinstance(c, int)), default=0)
        dominated = set()
        decided = set()
        for cls in range(1, max_class + 1):
            members = [
                u
                for u in domain.nodes
                if classes.get(u) == cls and u not in dominated
            ]
            if not members:
                continue
            remaining = budget - used - 1
            if remaining <= 4:
                break
            sub = domain.subgraph(members)
            result = self._inner.run(
                sub, seed=f"{seed}|{salt}|cls{cls}", budget=remaining
            )
            used += result.rounds + 1  # +1: winners announce to neighbours
            if not result.completed:
                break
            for u in members:
                if result.outputs.get(u) == 1:
                    outputs[u] = 1
                    decided.add(u)
                    for v in domain.neighbors(u):
                        if v not in decided:
                            dominated.add(v)
                            outputs[v] = 0
                else:
                    outputs[u] = 0
                    decided.add(u)
        return outputs, budget


def arb_mis():
    """The non-uniform arboricity MIS box."""
    return ArbMIS()


# ---------------------------------------------------------------------------
# declared bounds
# ---------------------------------------------------------------------------

#: Overhead factor of the nested Theorem-1 loop: budgets 2^1..2^s with
#: bounding constant 2 sum to < 8·f*; pruning adds 2 per step.
_INNER_OVERHEAD = 8
_INNER_SLACK = 40


def _inner_cost(delta_cap):
    """Upper bound on the nested uniform MIS cost on a ≤ delta_cap class.

    The inner log* m term is bounded by log*(GUESS_CAP³) ≤ 7, absorbed
    in the slack (identities are poly(n) by assumption D8).
    """
    base = fast_mis_bound().value({"Delta": delta_cap, "m": 2})
    return _INNER_OVERHEAD * (base + 16) + _INNER_SLACK


def arb_mis_product_bound():
    """Product-form bound ``f(ã, ñ) = A(ã) · N(ñ)`` (Theorem 1 path).

    ``A(ã)`` covers one class's nested MIS at degree ``4ã``; ``N(ñ)``
    covers the ``O(log ñ)`` classes plus peeling.  Exercises the
    product/set-sequence machinery of Observation 4.1 (s_f = O(log i)).
    """
    return ProductBound(
        custom("a", lambda a: _inner_cost(PEEL_FACTOR * max(1, int(a))), "A(a)"),
        custom("n", lambda n: ceil_log2(max(2, n)) + 4.0, "log2 n + 4"),
        scale=1.0,
        label="arb-mis product bound",
    )


def sqrt_log_witness():
    """Family witness for Corollary 4: ``g(a) = 2^(a²) ≤ n``.

    Valid on the family of graphs with ``a ≤ √log2 n``; the derived
    guess is ``ã = ⌊√log2 ñ⌋``, which is both good and small — the
    mechanism that makes the n-only bound below true.
    """
    return DominationWitness("a", "n", g=lambda y: 2 ** (y * y))


def arb_mis_nonly_bound():
    """n-only bound for the ``a ≤ √log n`` family (Theorem 3 path).

    peel + (#classes)·(inner cost at degree 4·⌊√log2 ñ⌋): all a function
    of ñ alone, matching Corollary 4's ``f(n)``-style running times.
    """

    def fn(n):
        bits = ceil_log2(max(2, n))
        a_derived = int(math.isqrt(max(1, bits)))
        classes = bits + 2
        return (bits + 4) + classes * (_inner_cost(PEEL_FACTOR * a_derived) + 2)

    return AdditiveBound(
        [custom("n", fn, "arb n-only cost")],
        constant=2,
        label="arb-mis n-only bound",
    )


def arb_mis_nonuniform_product():
    """Theorem 1 input: Γ = {a, n} guessed via the product set-sequence."""
    return NonUniform(
        arb_mis(),
        arb_mis_product_bound(),
        kind="deterministic",
        default_output=0,
        name="arb-mis",
    )


def arb_mis_nonuniform_nonly():
    """Theorem 3 input: Λ = {n}, with ``a`` derived through the family
    witness (Corollary 4's regime)."""
    return NonUniform(
        arb_mis(),
        arb_mis_nonly_bound(),
        kind="deterministic",
        default_output=0,
        name="arb-mis-nonly",
        validate=False,  # Γ = {a, n} ⊄ {n}: the witness supplies ã
    )
