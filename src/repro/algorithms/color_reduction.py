"""Kuhn–Wattenhofer parallel color reduction.

Reduces a proper ``K``-coloring to a ``(Δ+1)``-coloring in
``O(Δ log(K/Δ))`` rounds: partition the palette into groups of
``2(Δ+1)`` colors; within each group — in parallel across groups — run
one greedy sweep (one round per in-group rank) recoloring into a
``(Δ+1)``-color target palette private to the group.  Each phase halves
the palette; iterate until ``Δ+1`` colors remain.

This is the reduction the library uses in place of the linear-in-Δ
machinery of Barenboim–Elkin '09 (DESIGN.md D1): one ``log Δ`` factor
more, structurally identical interface.
"""

from __future__ import annotations

from functools import lru_cache

from ..mathutils import int_ceil_div


@lru_cache(maxsize=4096)
def _kw_schedule_cached(palette, delta):
    target = max(1, delta + 1)
    group_size = 2 * target
    phases = []
    k = max(1, palette)
    while k > target:
        phases.append(k)
        k = int_ceil_div(k, group_size) * target
    return tuple(phases)


def kw_schedule(palette, delta):
    """Entering palette sizes of each halving phase.

    Each phase costs ``2*(delta+1)`` rounds; after the last phase the
    palette is ``delta+1``.  Pure in ``(palette, delta)`` and identical
    at every node of a run, so the derivation is memoized (callers get a
    fresh list).
    """
    return list(_kw_schedule_cached(palette, delta))


def kw_total_rounds(palette, delta):
    """Total rounds of the reduction from ``palette`` to ``delta+1``."""
    return len(kw_schedule(palette, delta)) * 2 * (delta + 1)


class KWReducer:
    """Per-node state machine for the reduction (0-based colors).

    Drive it with one call per round: ``announce = step(messages)`` where
    ``messages`` is the list of ``(group, value)`` announcements received
    this round and ``announce`` is ``None`` or the pair to broadcast.
    ``done`` flips after the last phase; ``color`` then holds the final
    color in ``[0, delta]``.

    The node's group and rank are frozen at phase entry (the color
    mutates mid-phase when the node announces).
    """

    __slots__ = (
        "delta",
        "phases",
        "phase_index",
        "phase_round",
        "color",
        "taken",
        "group",
        "rank",
        "announced",
        "done",
    )

    def __init__(self, palette, delta, color):
        self.delta = max(0, delta)
        self.phases = kw_schedule(palette, self.delta)
        self.phase_index = 0
        self.color = color
        self.done = not self.phases
        self._enter_phase()

    @property
    def rounds_total(self):
        return len(self.phases) * 2 * (self.delta + 1)

    def _enter_phase(self):
        self.phase_round = 0
        self.taken = set()
        self.announced = False
        group_size = 2 * (self.delta + 1)
        self.group = self.color // group_size
        self.rank = self.color % group_size

    def step(self, messages):
        """Advance one round; returns the announcement or ``None``."""
        if self.done:
            return None
        for other_group, value in messages:
            if other_group == self.group:
                self.taken.add(value)
        announce = None
        if self.phase_round == self.rank and not self.announced:
            value = 0
            while value in self.taken and value <= self.delta:
                value += 1
            if value > self.delta:
                value = 0  # bad guesses: garbage, the pruner's job
            self.color = self.group * (self.delta + 1) + value
            self.announced = True
            announce = (self.group, value)
        self.phase_round += 1
        if self.phase_round == 2 * (self.delta + 1):
            self.phase_index += 1
            if self.phase_index == len(self.phases):
                self.done = True
            else:
                self._enter_phase()
        return announce


def sequential_reduce_rounds(palette, delta):
    """Reference cost of the naive one-color-per-round reduction.

    Used by benches as the "no KW" ablation: ``palette - (delta+1)``
    rounds instead of ``O(Δ log(K/Δ))``.
    """
    return max(0, palette - (delta + 1))
