"""Centralized greedy baselines (test oracles and sanity cross-checks).

None of these are distributed algorithms; they provide known-correct
solutions to compare verifier behaviour against, and quick feasibility
witnesses in tests and benches.
"""

from __future__ import annotations


def greedy_mis(graph, order=None):
    """Greedy MIS by identity order; returns the 0/1 output vector."""
    order = order or sorted(graph.nodes, key=lambda u: graph.ident[u])
    chosen = set()
    blocked = set()
    for u in order:
        if u in blocked:
            continue
        chosen.add(u)
        blocked.update(graph.neighbors(u))
    return {u: 1 if u in chosen else 0 for u in graph.nodes}


def greedy_coloring(graph, order=None):
    """Greedy (deg+1)-coloring by identity order (colors ≥ 1)."""
    order = order or sorted(graph.nodes, key=lambda u: graph.ident[u])
    colors = {}
    for u in order:
        used = {colors[v] for v in graph.neighbors(u) if v in colors}
        color = 1
        while color in used:
            color += 1
        colors[u] = color
    return colors


def greedy_matching(graph):
    """Greedy maximal matching; returns the paper's value encoding."""
    matched = {}
    for u, v in sorted(
        graph.edges(), key=lambda e: (graph.ident[e[0]], graph.ident[e[1]])
    ):
        if u not in matched and v not in matched:
            matched[u] = v
            matched[v] = u
    outputs = {}
    for u in graph.nodes:
        if u in matched:
            a, b = sorted((graph.ident[u], graph.ident[matched[u]]))
            outputs[u] = ("M", a, b)
        else:
            outputs[u] = ("U", graph.ident[u])
    return outputs


def greedy_edge_coloring(graph):
    """Greedy proper edge coloring (≤ 2Δ-1 colors)."""
    colors = {}
    for u, v in sorted(
        graph.edges(), key=lambda e: (graph.ident[e[0]], graph.ident[e[1]])
    ):
        used = set()
        for w in (u, v):
            for x in graph.neighbors(w):
                key = (w, x) if graph.ident[w] < graph.ident[x] else (x, w)
                if key in colors:
                    used.add(colors[key])
        color = 1
        while color in used:
            color += 1
        key = (u, v) if graph.ident[u] < graph.ident[v] else (v, u)
        colors[key] = color
    return colors
