"""λ(Δ+1)-coloring: the time/colors tradeoff (Table 1 row 5).

From Linial's ``O(Δ̃²)`` palette, a *single* parallel group-reduction
phase with λ groups compresses to ``≤ λ(Δ̃+1)`` colors in
``⌈K/λ⌉ = O(Δ̃²/λ)`` rounds: more colors → proportionally less time.
When ``λ(Δ̃+1)`` already exceeds the Linial palette the reduction is
skipped and the tradeoff's fast endpoint is pure Linial — the uniform
``O(Δ²)``-coloring in ``O(log* n)`` of Corollary 1(iii).

Deviation D3 (DESIGN.md): Kuhn '09 reaches ``O(Δ/λ + log* n)`` through
defective colorings; our reduction gives ``O(Δ²/λ + log* m)``.  The
tradeoff direction and the λ = Θ(Δ) endpoint match the paper exactly.

These algorithms are the base boxes for Theorem 5 (they accept initial
colors through ``ctx.input["color"]`` and treat ``m̃`` as a bound on the
color space, the Section 5.2 convention).
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.functions import GrowthFunction
from ..core.transformer import NonUniform
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import int_ceil_div
from .linial import (
    initial_color,
    linial_fixpoint_palette,
    linial_schedule,
    linial_steps_upper,
    reduce_color,
)


class LambdaColoringProcess(NodeProcess):
    """Linial stages, then one λ-group greedy compression phase."""

    __slots__ = (
        "lam",
        "delta",
        "steps",
        "palette",
        "color",
        "index",
        "group",
        "rank",
        "slot",
        "taken",
        "group_count",
    )

    def __init__(self, ctx, lam):
        super().__init__(ctx)
        self.lam = lam
        m_guess = ctx.guess("m")
        self.delta = max(0, int(ctx.guess("Delta")))
        self.steps, self.palette = linial_schedule(m_guess, self.delta)
        self.color = initial_color(ctx) - 1
        self.index = 0
        self.group = None
        self.rank = None
        self.slot = 0
        self.taken = set()
        self.group_count = None

    def _reduction_needed(self):
        return self.lam * (self.delta + 1) < self.palette

    def _enter_reduction(self):
        if not self._reduction_needed():
            self.finish(self.color + 1)
            return
        group_size = int_ceil_div(self.palette, self.lam)
        self.group = self.color // group_size
        self.rank = self.color % group_size
        self.group_count = group_size
        self.slot = 0

    def start(self):
        if self.steps:
            return Broadcast(("lc", self.color))
        self._enter_reduction()
        return None

    def receive(self, inbox):
        if self.index < len(self.steps):
            q, d = self.steps[self.index]
            neighbour_colors = [
                p[1] for p in inbox.values() if p and p[0] == "lc"
            ]
            self.color = reduce_color(self.color, neighbour_colors, q, d)
            self.index += 1
            if self.index < len(self.steps):
                return Broadcast(("lc", self.color))
            self._enter_reduction()
            return None
        for payload in inbox.values():
            if payload and payload[0] == "gr" and payload[1] == self.group:
                self.taken.add(payload[2])
        if self.slot == self.rank:
            value = 0
            while value in self.taken and value <= self.delta:
                value += 1
            if value > self.delta:
                value = 0  # bad guesses: arbitrary output
            self.finish(self.group * (self.delta + 1) + value + 1)
            return Broadcast(("gr", self.group, value))
        self.slot += 1
        return None


def lambda_coloring(lam):
    """λ(Δ̃+1)-coloring algorithm (λ ≥ 1 fixed, requires m̃ and Δ̃)."""
    if lam < 1:
        raise ValueError("λ must be ≥ 1")
    return LocalAlgorithm(
        name=f"lambda{lam}-coloring",
        process=lambda ctx: LambdaColoringProcess(ctx, lam),
        requires=("m", "Delta"),
    )


def lambda_coloring_rounds(lam, m_guess, delta_guess):
    """Exact schedule length for given guesses."""
    steps, palette = linial_schedule(m_guess, delta_guess)
    if lam * (delta_guess + 1) >= palette:
        return len(steps)
    return len(steps) + int_ceil_div(palette, lam)


def lambda_coloring_bound(lam):
    """Declared ``O(Δ̃²/λ) + O(log* m̃)`` bound (additive, s_f = 1)."""
    return AdditiveBound(
        [
            custom(
                "Delta",
                lambda d: int_ceil_div(
                    linial_fixpoint_palette(max(0, int(d))), lam
                )
                + 2,
                f"ceil(K0/λ={lam})",
            ),
            custom(
                "m", lambda m: 2 * linial_steps_upper(m), "2*(logstar m + 4)"
            ),
        ],
        constant=2,
        label=f"lambda{lam}-coloring rounds",
    )


def lambda_colors_bound(lam):
    """g(Δ) for Theorem 5: ``min(λ(Δ+1), Linial fixpoint palette)``."""
    return GrowthFunction(
        lambda x: min(lam * (x + 1), linial_fixpoint_palette(x)),
        alpha=24,
        name=f"min({lam}(Δ+1), O(Δ²))",
    )


def lambda_coloring_nonuniform(lam):
    """Theorem 1 / Theorem 5 input for the λ(Δ+1)-coloring row."""
    return NonUniform(
        lambda_coloring(lam),
        lambda_coloring_bound(lam),
        kind="deterministic",
        default_output=0,
        name=f"lambda{lam}-coloring",
    )


def linial_scheme():
    """The pure-Linial endpoint packaged for Theorem 5.

    Returns ``(algorithm, bound, g)`` with ``g(Δ) = O(Δ²)`` — the
    Corollary 1(iii) headline: a uniform O(Δ²)-coloring in O(log* n).
    """
    from .linial import linial_coloring

    bound = AdditiveBound(
        [
            custom("Delta", lambda d: 2.0, "O(1) in Delta"),
            custom(
                "m", lambda m: 2 * linial_steps_upper(m), "2*(logstar m + 4)"
            ),
        ],
        constant=2,
        label="linial rounds",
    )
    g = GrowthFunction(
        lambda x: linial_fixpoint_palette(x), alpha=24, name="O(Δ²) palette"
    )
    return linial_coloring(), bound, g
