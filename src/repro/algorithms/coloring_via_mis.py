"""(deg+1)-coloring from MIS on the clique product (paper Section 5.1).

The paper's reduction: build ``G'`` (a clique ``C_u`` of size
``deg(u)+1`` per node plus ``(u_i, v_i)`` cross edges), compute a MIS of
``G'``, and read the color of ``u`` off the index of the unique chosen
node of ``C_u``.  Both directions of the correspondence are implemented
(the decoding here, the encoding in tests), and the construction runs
through the virtual-node layer at dilation 1 — the paper's "can be
constructed by a local algorithm without using any global parameter".

Combined with a *uniform* MIS (e.g. Corollary 1(i)'s portfolio), this
yields Corollary 1(ii): a uniform (Δ+1)-coloring with the same running
time, with every node's color even within its own degree + 1.
"""

from __future__ import annotations

from ..core.domain import VirtualDomain, as_domain
from ..graphs.transforms import clique_product_spec, coloring_from_mis
from ..problems.mis import in_set


class CliqueProductColoring:
    """Uniform (deg+1)-coloring built on a uniform MIS runnable.

    ``mis_uniform`` must expose ``run(domain, *, seed, budget=None)``
    returning an object with ``outputs`` — Theorem 1/2 products and
    Theorem 4 portfolios qualify.
    """

    def __init__(self, mis_uniform, *, name=None):
        self.mis_uniform = mis_uniform
        self.name = name or f"coloring-via[{mis_uniform.name}]"

    @property
    def requires(self):
        return ()

    def run(self, graph, *, seed=0):
        """Returns ``(colors, rounds, mis_result)``.

        ``colors[u] ∈ [1, deg(u)+1]``; rounds are physical (the clique
        product has dilation 1, so virtual rounds = physical rounds, plus
        the virtual layer's constant handshake).
        """
        domain = as_domain(graph)
        spec = clique_product_spec(domain.graph)
        product_domain = VirtualDomain(domain.graph, spec)
        result = self.mis_uniform.run(product_domain, seed=seed)
        mis_bits = {
            virt: 1 if in_set(value) else 0
            for virt, value in result.outputs.items()
        }
        colors = coloring_from_mis(domain.graph, spec, mis_bits)
        return colors, result.rounds, result


def encode_coloring_as_mis(graph, spec, colors):
    """The inverse correspondence (used by tests): coloring → MIS of G'.

    ``X = {u_i : c(u) = i}`` — the paper's proof that the map is onto.
    """
    outputs = {virt: 0 for virt in spec.virtual_nodes}
    for u in graph.nodes:
        index = colors[u] - 1
        outputs[(u, index)] = 1
    return outputs
