"""Edge coloring via line-graph vertex coloring (Table 1 rows 6–7).

The paper itself obtains its edge-coloring results by running a
vertex-coloring algorithm on the line graph and transforming *that* with
Theorem 5 for the family of line graphs (Section 5.2's closing remark).
We do exactly the same: :func:`edge_coloring_domain` materializes
``L(G)`` as an execution domain; any of the coloring boxes (Linial,
λ(Δ+1), fast coloring) and the Theorem 5 transformer run on it
unchanged, and :func:`decode_edge_colors` maps the result back to
physical edges.

Useful palette facts surfaced for the benches: ``Δ(L(G)) ≤ 2Δ(G) - 2``,
so λ(Δ_L+1)-coloring of the line graph gives ``≤ 2λΔ`` edge colors —
the ``O(Δ)``/``O(Δ^{1+ε})`` shapes of the BE'11 rows at our running
times (deviation D4).
"""

from __future__ import annotations

from ..core.domain import VirtualDomain, as_domain
from ..graphs.transforms import line_graph_spec


def edge_coloring_domain(graph):
    """``L(G)`` as a :class:`~repro.core.domain.VirtualDomain`."""
    domain = as_domain(graph)
    spec = line_graph_spec(domain.graph)
    return VirtualDomain(domain.graph, spec)


def decode_edge_colors(outputs):
    """Line-graph outputs → ``{(u, v): color}`` (virts are edge pairs)."""
    return dict(outputs)


def edge_color_count(outputs):
    """Number of distinct edge colors used."""
    return len(set(outputs.values()))
