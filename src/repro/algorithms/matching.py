"""Maximal matching via MIS on the line graph (Table 1 row 8).

A maximal independent set of ``L(G)`` *is* a maximal matching of ``G``;
the virtual-node layer executes our fast MIS on ``L(G)`` at dilation 2.
This replaces the Hańćkowiak–Karoński–Panconesi ``O(log⁴ n)`` splitter
machinery (deviation D5 in DESIGN.md) while preserving the row's
reproducible content: a *uniform* maximal matching at no asymptotic
overhead over the same non-uniform black box.

Outputs use the paper's value encoding (Section 2): matched pairs share
``("M", id_u, id_v)``; unmatched nodes carry the unique ``("U", id)``.
Every emitted value contains the emitting node's own identity — the
invariant under which the gluing property of ``P_MM`` is airtight (see
:mod:`repro.core.pruning`).

Line-graph parameters are derived from the physical guesses inside the
box: ``Δ_L ≤ 2Δ̃ - 2`` and ``m_L ≤ (m̃ + 2)²``, so the black box's Γ
stays ``{Δ, m}`` of the *physical* graph, exactly how the paper words
the row ("n or Δ").
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.domain import VIRTUAL_OVERHEAD, VirtualDomain
from ..core.transformer import NonUniform
from ..errors import InvalidInstanceError
from ..graphs.transforms import line_graph_spec
from ..local.algorithm import HostAlgorithm
from .fast_mis import fast_mis, fast_mis_bound
from .linial import linial_steps_upper


def _line_guesses(guesses):
    delta = max(0, int(guesses["Delta"]))
    m = max(1, int(guesses["m"]))
    return {"Delta": max(1, 2 * delta - 2), "m": (m + 2) * (m + 2)}


class LineMISMatching(HostAlgorithm):
    """Maximal matching as fast MIS on ``L(G)`` through virtualization."""

    name = "line-mis-matching"
    requires = ("Delta", "m")
    randomized = False
    domains = ("physical",)

    def capabilities(self):
        """Host record plus whether the inner line-graph engine batches.

        Declared here — next to the ``fast_mis`` call below — so the
        registry's capability table can never drift from the
        orchestration's actual inner engine.
        """
        caps = super().capabilities()
        from ..local.algorithm import capabilities_of

        caps["inner_supports_batch"] = capabilities_of(fast_mis()).get(
            "supports_batch", False
        )
        return caps

    def run_restricted(
        self, domain, budget, *, inputs, guesses, seed, salt, default_output
    ):
        if domain.kind not in self.domains:
            raise InvalidInstanceError(
                "line-graph matching runs on physical domains"
            )
        graph = domain.graph
        outputs = {u: ("U", graph.ident[u]) for u in graph.nodes}
        spec = line_graph_spec(graph)
        if not spec.virtual_nodes:
            return outputs, budget
        line_domain = VirtualDomain(graph, spec)
        virtual_budget = max(
            1, (budget - VIRTUAL_OVERHEAD) // spec.dilation
        )
        mis_outputs, _ = line_domain.run_restricted(
            fast_mis(),
            virtual_budget,
            inputs=None,
            guesses=_line_guesses(guesses),
            seed=seed,
            salt=f"{salt}|line",
            default_output=0,
        )
        partner = {}
        conflicted = set()
        for virt, value in mis_outputs.items():
            if value != 1:
                continue
            u, v = virt
            for endpoint in (u, v):
                if endpoint in partner:
                    conflicted.add(endpoint)
            partner.setdefault(u, v)
            partner.setdefault(v, u)
        for u, v in partner.items():
            if u in conflicted or v in conflicted:
                continue  # garbage under bad guesses: leave unmatched
            if partner.get(v) != u:
                continue
            a, b = sorted((graph.ident[u], graph.ident[v]))
            outputs[u] = ("M", a, b)
        return outputs, budget


def line_mis_matching():
    """The non-uniform maximal-matching box."""
    return LineMISMatching()


def line_matching_bound():
    """Declared bound: dilation-2 fast-MIS on L(G) plus plumbing.

    ``2 · f_mis(2Δ̃, (m̃+2)²) + O(1)`` — still additive in (Δ̃, m̃), so
    the sequence number stays 1.
    """
    inner = fast_mis_bound()

    def delta_atom(d):
        return 2.0 * inner.value({"Delta": max(1, 2 * int(d) - 2), "m": 2})

    def m_atom(m):
        big = (max(1, int(m)) + 2) ** 2
        return 4.0 * linial_steps_upper(big)

    return AdditiveBound(
        [
            custom("Delta", delta_atom, "2*mis(2Δ)"),
            custom("m", m_atom, "4*(logstar m² + 4)"),
        ],
        constant=VIRTUAL_OVERHEAD + 6,
        label="line-matching rounds",
    )


def line_matching_nonuniform():
    """Theorem 1 input for Table 1 row 8 (uniform maximal matching)."""
    return NonUniform(
        line_mis_matching(),
        line_matching_bound(),
        kind="deterministic",
        default_output=0,
        name="line-mis-matching",
    )
