"""(Δ+1)-coloring: Linial reduction followed by Kuhn–Wattenhofer halving.

The library's stand-in for the Barenboim–Elkin '09 / Kuhn '09
``O(Δ + log* n)`` algorithms (Table 1 row 1; deviation D1 in DESIGN.md):
``O(Δ̃ log Δ̃ + log* m̃)`` rounds, colors in ``[1, Δ̃+1]``.

Everything about the execution — the Linial schedule, the number of
halving phases, the per-phase slot structure — is a pure function of the
guesses ``(m̃, Δ̃)``, which is what makes the algorithm *non-uniform* and
a Theorem 1 input.  Under good guesses the run is proper and within the
declared bound; under bad guesses it produces arbitrary output on
schedule, as the paper's model allows.
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.transformer import NonUniform
from ..local import batch
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import log_star
from .color_reduction import KWReducer, kw_schedule, kw_total_rounds
from .linial import (
    initial_color,
    linial_fixpoint_palette,
    linial_schedule,
    linial_steps_upper,
    reduce_color,
)


class FastColoringProcess(NodeProcess):
    """Linial stage then KW stage, one master round counter."""

    __slots__ = ("steps", "color", "index", "reducer", "palette", "delta")

    def __init__(self, ctx):
        super().__init__(ctx)
        m_guess = ctx.guess("m")
        self.delta = max(0, int(ctx.guess("Delta")))
        self.steps, self.palette = linial_schedule(m_guess, self.delta)
        self.color = initial_color(ctx) - 1
        self.index = 0
        self.reducer = None

    def _enter_kw(self):
        self.reducer = KWReducer(self.palette, self.delta, self.color)
        if self.reducer.done:
            self._finish_with_color()

    def _finish_with_color(self):
        final = self.reducer.color if self.reducer else self.color
        self.finish(final + 1)

    def start(self):
        if self.steps:
            return Broadcast(("lc", self.color))
        # No Linial stage: KW round 1 happens at the first receive.
        self._enter_kw()
        return None

    def receive(self, inbox):
        if self.index < len(self.steps):
            q, d = self.steps[self.index]
            neighbour_colors = [
                p[1] for p in inbox.values() if p and p[0] == "lc"
            ]
            self.color = reduce_color(self.color, neighbour_colors, q, d)
            self.index += 1
            if self.index < len(self.steps):
                return Broadcast(("lc", self.color))
            self._enter_kw()
            return None
        messages = [
            (p[1], p[2]) for p in inbox.values() if p and p[0] == "kw"
        ]
        announce = self.reducer.step(messages)
        if self.reducer.done:
            self._finish_with_color()
        if announce is not None:
            return Broadcast(("kw",) + announce)
        return None


#: Batch-kernel safety bounds: the Linial point matrix is ``n × q`` and
#: the KW taken matrix ``n × (Δ̃+1)``; configurations beyond these fall
#: back to per-node stepping rather than allocate absurd scratch.
_BATCH_Q_LIMIT = 2048
_BATCH_DELTA_LIMIT = 4096
#: Colors must fit comfortably in int64 for the vectorized KW phase
#: arithmetic; bigger initial colors only occur with an empty Linial
#: schedule under huge identity spaces.
_BATCH_COLOR_LIMIT = 1 << 62


class ColoringBatchKernel:
    """Whole-frontier Linial + Kuhn–Wattenhofer schedule as array steps.

    The entire round layout of :class:`FastColoringProcess` is a pure
    function of the guesses, and every node walks it in lockstep — so
    one global round counter replaces n per-node stage pointers and each
    round is a handful of numpy operations over the CSR slab:

    * rounds ``1..L`` — Linial reductions: digit-decompose the colors,
      evaluate every node's polynomial at all of ``F_q`` (one Horner
      sweep over an ``n × q`` matrix), cover-check against rival
      neighbours through a per-row OR over the edge slab;
    * rounds ``L+1..L+K`` — KW halving: the announcer set of a round is
      ``rank == phase_round``, announcements scatter into per-node
      ``taken`` rows, chosen values are per-row first-free scans.

    Identities can exceed 64 bits on derived graphs, so the *first*
    digit decomposition runs in Python big-int arithmetic when the color
    space demands it; every later palette is tiny.  Bit-identity with
    the per-node machines is asserted by the equivalence suite.

    Shard certification (D12/D13)
    -----------------------------
    The kernel is shard-safe: every slab reduction is owner-side (rival
    cover checks and ``taken`` scatters index through the owner column,
    which in a partition sub-CSR contains only owned rows), message
    counts are degree sums (ghost rows are empty), and the cross-round
    state is exactly the arrays named by :data:`SHARD_SYNC` — canonical
    per-node value codes (colors, group/rank codes, taken rows,
    announcement values), never local index permutations.  Derived
    per-phase structures (``rank_order``/``rank_sorted``/``same_own``/
    ``same_nb``) are *not* synced: they are computed lazily on first
    use, i.e. after the halo exchange has overwritten the ghost entries
    of the arrays they derive from, so each shard reconstructs them
    from authoritative values.  Big-integer color spaces cannot live in
    the int64 sync plane, so the factory declines those configurations
    under sharding (``setup.sharded``) and the run shards per node.
    """

    #: Per-node state arrays exchanged by the sharded halo sync — the
    #: D12 contract's introspection is replaced by this explicit list
    #: because the kernel also keeps length-n *derived* arrays (sorted
    #: orders) whose values are local positions, not per-node state.
    SHARD_SYNC = (
        "colors",
        "group",
        "rank",
        "taken",
        "ann_mask",
        "ann_group",
        "ann_value",
    )

    __slots__ = (
        "bg",
        "delta",
        "steps",
        "kw_phases",
        "L",
        "K",
        "round",
        "colors_obj",
        "colors",
        "kw_index",
        "group",
        "rank",
        "rank_order",
        "rank_sorted",
        "taken",
        "same_own",
        "same_nb",
        "fresh_phase",
        "ann_mask",
        "ann_group",
        "ann_value",
        "in_sweep",
        "done",
        "_undone",
    )

    def __init__(self, bg, setup, steps, palette, delta):
        np = batch.numpy_or_none()
        self.bg = bg
        self.delta = delta
        self.steps = steps
        self.kw_phases = kw_schedule(palette, delta)
        self.L = len(steps)
        self.K = len(self.kw_phases) * 2 * (delta + 1)
        self.round = 0
        inputs = setup.inputs
        colors = []
        for label, ident in zip(bg.labels, bg.idents):
            value = inputs.get(label)
            if isinstance(value, dict) and "color" in value:
                colors.append(int(value["color"]) - 1)
            else:
                colors.append(ident - 1)
        if all(0 <= c < _BATCH_COLOR_LIMIT for c in colors):
            # Machine-word color space: keep the whole schedule in int64
            # arrays (this is also what the sharded halo sync exchanges).
            self.colors = np.asarray(colors, dtype=np.int64)
            self.colors_obj = None
        else:
            # Big-integer identities: peel the first reduction with
            # Python ints, enter machine words at _enter_kw.  The
            # factory declines this configuration under sharding.
            self.colors = None
            self.colors_obj = colors
        self.kw_index = 0
        self.ann_mask = None
        self.in_sweep = False
        self.done = False
        self._undone = None

    def undone_indices(self):
        # The schedule is lockstep: until it completes, every node runs
        # (cached — the MIS subclass bypasses the cache mid-sweep).
        undone = self._undone
        if undone is None:
            undone = self._undone = list(range(self.bg.n))
        return undone

    def run_fixedpoint(self, cap):
        """Round-fused drive (D17) through the generic fixed-point loop.

        The coloring schedule's per-round message counts vary (group-
        local traffic, announcement rows), so arithmetic phase
        accounting does not apply; the win is hoisting the driver's
        per-round ledger bookkeeping.
        """
        return batch.generic_fixedpoint(self, cap)

    # -- stage transitions ----------------------------------------------
    def _enter_kw(self):
        """Freeze colors into the KW reducer state; may finish at once."""
        np = batch.numpy_or_none()
        if self.colors is None:
            # Big-int Linial stage: values are tiny after one reduction.
            self.colors = np.asarray(self.colors_obj, dtype=np.int64)
            self.colors_obj = None
        if not self.kw_phases:
            return self._complete()
        self._enter_phase()
        return [], []

    def _enter_phase(self):
        np = batch.numpy_or_none()
        bg = self.bg
        group_size = 2 * (self.delta + 1)
        self.group = self.colors // group_size
        self.rank = self.colors % group_size
        self.taken = np.zeros((bg.n, self.delta + 1), dtype=bool)
        # Group and rank are frozen for the whole phase; the structures
        # derived from them — the same-group edge set whose
        # announcements can ever land in a taken set, and the sorted
        # announcer schedule — are computed lazily on first use in
        # _kw_step, so that under sharding the halo sync has refreshed
        # the ghost entries of group/rank first (phase entry happens at
        # the end of a round, one sync before the derived values are
        # read).  Rounds then cost O(group-local traffic), not
        # O(edge slab), exactly as before.
        self.same_own = None
        self.same_nb = None
        self.rank_order = None
        self.rank_sorted = None
        # The first round of a phase may still receive announcements
        # made under the *previous* phase's groups; only that round
        # needs the general cross-group filter.
        self.fresh_phase = True

    def _complete(self):
        """Schedule exhausted: commit final colors (1-based)."""
        self.done = True
        return list(range(self.bg.n)), [int(c) + 1 for c in self.colors]

    # -- round steps ----------------------------------------------------
    def start(self):
        if self.L:
            return [], [], self.bg.charge()
        finished, results = self._enter_kw()
        return finished, results, 0

    def step(self):
        self.round += 1
        r = self.round
        if self.in_sweep:
            return self._sweep_step(r - self.L - self.K)
        if r <= self.L:
            self._linial_step(*self.steps[r - 1])
            if r < self.L:
                return [], [], self.bg.charge()
            finished, results = self._enter_kw()
            return finished, results, 0
        return self._kw_step(r - self.L)

    def _linial_step(self, q, d):
        np = batch.numpy_or_none()
        bg = self.bg
        n = bg.n
        space = q ** (d + 1)
        digits = np.empty((n, d + 1), dtype=np.int32)
        if self.colors is not None:
            # Machine-word colors: when the evaluation space exceeds the
            # color range the modulo is the identity, so the peel stays
            # in int64 either way.
            value = self.colors % space if space < _BATCH_COLOR_LIMIT else self.colors.copy()
            for j in range(d + 1):
                digits[:, j] = value % q
                value //= q
        else:
            # First reduction of a huge identity space: peel digits with
            # Python big ints where even the reduced space overflows,
            # then stay in machine words forever after.
            reduced = [c % space for c in self.colors_obj]
            if space < _BATCH_COLOR_LIMIT:
                value = np.asarray(reduced, dtype=np.int64)
                for j in range(d + 1):
                    digits[:, j] = value % q
                    value //= q
            else:
                for i, value in enumerate(reduced):
                    for j in range(d + 1):
                        digits[i, j] = value % q
                        value //= q
        # P[u, x] = p_u(x) over F_q for every evaluation point at once
        # (values < q ≤ 2048, so int32 holds the Horner intermediates).
        xs = np.arange(q, dtype=np.int32)
        points = np.zeros((n, q), dtype=np.int32)
        for j in range(d, -1, -1):
            points = (points * xs + digits[:, j : j + 1]) % q
        # Rivals: neighbours with a different reduced color (digit rows
        # uniquely encode values below the space).
        rival = np.flatnonzero(~(digits[bg.owner] == digits[bg.neigh]).all(axis=1))
        # First-free-point scan, one evaluation column at a time with
        # early exit: a random-like collision pattern frees almost every
        # node at x = 0, so the expected work is O(edges), not O(edges·q)
        # — mirroring the scalar machine's first-hit loop.
        new_colors = np.empty(n, dtype=np.int64)
        searching = np.ones(n, dtype=bool)
        r_own = bg.owner[rival]
        r_nb = bg.neigh[rival]
        for x in range(q):
            col = points[:, x]
            hits = r_own[(col[r_nb] == col[r_own]) & searching[r_own]]
            covered = batch.row_flags(hits, n)
            settled = searching & ~covered
            idx = np.flatnonzero(settled)
            if len(idx):
                new_colors[idx] = np.int64(x) * q + col[idx]
                searching &= covered
                if not searching.any():
                    break
            if len(r_own) and searching.any():
                keep = searching[r_own]
                r_own = r_own[keep]
                r_nb = r_nb[keep]
        idx = np.flatnonzero(searching)
        if len(idx):
            # Every point covered: the scalar fallback is p(0).
            new_colors[idx] = points[idx, 0]
        # Reduced colors always fit machine words (< q² + q), so even a
        # big-integer start promotes to the int64 array after one step.
        self.colors = new_colors
        self.colors_obj = None

    def _kw_step(self, j):
        np = batch.numpy_or_none()
        bg = self.bg
        group_size = 2 * (self.delta + 1)
        phase_round = (j - 1) % group_size
        if self.ann_mask is not None:
            if self.fresh_phase:
                # Cross-boundary absorb: announcements carry the group
                # they were made under, receivers filter on their new one.
                own, nb = bg.owner, bg.neigh
                hits = self.ann_mask[nb] & (self.ann_group[nb] == self.group[own])
                self.taken[own[hits], self.ann_value[nb[hits]]] = True
            else:
                if self.same_own is None:
                    same = self.group[bg.owner] == self.group[bg.neigh]
                    self.same_own = bg.owner[same]
                    self.same_nb = bg.neigh[same]
                sel = self.ann_mask[self.same_nb]
                self.taken[self.same_own[sel], self.ann_value[self.same_nb[sel]]] = True
        self.fresh_phase = False
        if self.rank_order is None:
            self.rank_order = np.argsort(self.rank, kind="stable")
            self.rank_sorted = self.rank[self.rank_order]
        lo = np.searchsorted(self.rank_sorted, phase_round, "left")
        hi = np.searchsorted(self.rank_sorted, phase_round, "right")
        rows = self.rank_order[lo:hi]
        messages = 0
        if len(rows):
            free = ~self.taken[rows]
            has_free = free.any(axis=1)
            value = np.where(has_free, free.argmax(axis=1), 0)
            self.colors[rows] = self.group[rows] * (self.delta + 1) + value
            ann_mask = np.zeros(bg.n, dtype=bool)
            ann_mask[rows] = True
            ann_value = np.zeros(bg.n, dtype=np.int64)
            ann_value[rows] = value
            self.ann_mask = ann_mask
            self.ann_group = self.group
            self.ann_value = ann_value
            messages = bg.charge(rows)
        else:
            self.ann_mask = None
        finished, results = [], []
        if j % group_size == 0:
            self.kw_index += 1
            if self.kw_index == len(self.kw_phases):
                finished, results = self._complete()
            else:
                self._enter_phase()
        return finished, results, messages

    def _sweep_step(self, s):
        raise NotImplementedError("sweep belongs to the MIS kernel")


def _coloring_batch_factory(kernel_cls=ColoringBatchKernel):
    """Eligibility-checked factory shared by the coloring/MIS kernels."""

    def factory(bg, setup):
        if batch.numpy_or_none() is None:
            return None
        delta = max(0, int(setup.guesses["Delta"]))
        steps, palette = linial_schedule(setup.guesses["m"], delta)
        if delta + 1 > _BATCH_DELTA_LIMIT:
            return None
        if any(q > _BATCH_Q_LIMIT for q, _ in steps):
            return None
        if not steps or getattr(setup, "sharded", False):
            # Without a Linial stage the colors feed the KW arithmetic
            # unreduced; under sharding (D13) they must additionally
            # live in the int64 halo-sync plane from round one.  Either
            # way, decline when the identity/input space cannot live in
            # int64 (the run falls back per node, which is always exact).
            for label, ident in zip(bg.labels, bg.idents):
                value = setup.inputs.get(label)
                color = (
                    int(value["color"])
                    if isinstance(value, dict) and "color" in value
                    else ident
                )
                if color >= _BATCH_COLOR_LIMIT:
                    return None
        return kernel_cls(bg, setup, steps, palette, delta)

    return factory


def fast_coloring():
    """The non-uniform (Δ̃+1)-coloring algorithm (requires m̃, Δ̃)."""
    return LocalAlgorithm(
        name="fast-coloring",
        process=FastColoringProcess,
        requires=("m", "Delta"),
        batch=_coloring_batch_factory(),
        shard=True,
        fuse=True,
        # Round-fuse-safe (D17): self-terminating schedule driven
        # through the generic fixed-point loop (variable per-round
        # message counts rule out arithmetic phase accounting).
        roundfuse=True,
    )


def fast_coloring_rounds(m_guess, delta_guess):
    """Exact round count of the schedule for given guesses."""
    steps, palette = linial_schedule(m_guess, delta_guess)
    return len(steps) + kw_total_rounds(palette, max(0, delta_guess))


def _kw_atom_value(delta):
    delta = max(0, int(delta))
    return kw_total_rounds(linial_fixpoint_palette(delta), delta) + 2


def fast_coloring_bound():
    """Declared bound ``O(Δ̃ log Δ̃) + O(log* m̃)`` (additive, s_f = 1).

    The Δ atom is the exact worst-case KW cost from the fixpoint
    palette; the m atom doubles the calibrated Linial-schedule length.
    """
    return AdditiveBound(
        [
            custom("Delta", _kw_atom_value, "kw-rounds(Delta)"),
            custom(
                "m",
                lambda m: 2 * linial_steps_upper(m),
                "2*(logstar m + 4)",
            ),
        ],
        constant=2,
        label="fast-coloring rounds",
    )


def fast_coloring_nonuniform():
    """Theorem 1 input for the (Δ+1)-coloring rows."""
    return NonUniform(
        fast_coloring(),
        fast_coloring_bound(),
        kind="deterministic",
        default_output=0,
        name="fast-coloring",
    )


def logstar_value(x):
    """Re-export of ``log*`` for reporting convenience."""
    return log_star(x)
