"""(Δ+1)-coloring: Linial reduction followed by Kuhn–Wattenhofer halving.

The library's stand-in for the Barenboim–Elkin '09 / Kuhn '09
``O(Δ + log* n)`` algorithms (Table 1 row 1; deviation D1 in DESIGN.md):
``O(Δ̃ log Δ̃ + log* m̃)`` rounds, colors in ``[1, Δ̃+1]``.

Everything about the execution — the Linial schedule, the number of
halving phases, the per-phase slot structure — is a pure function of the
guesses ``(m̃, Δ̃)``, which is what makes the algorithm *non-uniform* and
a Theorem 1 input.  Under good guesses the run is proper and within the
declared bound; under bad guesses it produces arbitrary output on
schedule, as the paper's model allows.
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.transformer import NonUniform
from ..local.algorithm import LocalAlgorithm, NodeProcess
from ..local.message import Broadcast
from ..mathutils import log_star
from .color_reduction import KWReducer, kw_total_rounds
from .linial import (
    initial_color,
    linial_fixpoint_palette,
    linial_schedule,
    linial_steps_upper,
    reduce_color,
)


class FastColoringProcess(NodeProcess):
    """Linial stage then KW stage, one master round counter."""

    __slots__ = ("steps", "color", "index", "reducer", "palette", "delta")

    def __init__(self, ctx):
        super().__init__(ctx)
        m_guess = ctx.guess("m")
        self.delta = max(0, int(ctx.guess("Delta")))
        self.steps, self.palette = linial_schedule(m_guess, self.delta)
        self.color = initial_color(ctx) - 1
        self.index = 0
        self.reducer = None

    def _enter_kw(self):
        self.reducer = KWReducer(self.palette, self.delta, self.color)
        if self.reducer.done:
            self._finish_with_color()

    def _finish_with_color(self):
        final = self.reducer.color if self.reducer else self.color
        self.finish(final + 1)

    def start(self):
        if self.steps:
            return Broadcast(("lc", self.color))
        # No Linial stage: KW round 1 happens at the first receive.
        self._enter_kw()
        return None

    def receive(self, inbox):
        if self.index < len(self.steps):
            q, d = self.steps[self.index]
            neighbour_colors = [
                p[1] for p in inbox.values() if p and p[0] == "lc"
            ]
            self.color = reduce_color(self.color, neighbour_colors, q, d)
            self.index += 1
            if self.index < len(self.steps):
                return Broadcast(("lc", self.color))
            self._enter_kw()
            return None
        messages = [
            (p[1], p[2]) for p in inbox.values() if p and p[0] == "kw"
        ]
        announce = self.reducer.step(messages)
        if self.reducer.done:
            self._finish_with_color()
        if announce is not None:
            return Broadcast(("kw",) + announce)
        return None


def fast_coloring():
    """The non-uniform (Δ̃+1)-coloring algorithm (requires m̃, Δ̃)."""
    return LocalAlgorithm(
        name="fast-coloring",
        process=FastColoringProcess,
        requires=("m", "Delta"),
    )


def fast_coloring_rounds(m_guess, delta_guess):
    """Exact round count of the schedule for given guesses."""
    steps, palette = linial_schedule(m_guess, delta_guess)
    return len(steps) + kw_total_rounds(palette, max(0, delta_guess))


def _kw_atom_value(delta):
    delta = max(0, int(delta))
    return kw_total_rounds(linial_fixpoint_palette(delta), delta) + 2


def fast_coloring_bound():
    """Declared bound ``O(Δ̃ log Δ̃) + O(log* m̃)`` (additive, s_f = 1).

    The Δ atom is the exact worst-case KW cost from the fixpoint
    palette; the m atom doubles the calibrated Linial-schedule length.
    """
    return AdditiveBound(
        [
            custom("Delta", _kw_atom_value, "kw-rounds(Delta)"),
            custom(
                "m",
                lambda m: 2 * linial_steps_upper(m),
                "2*(logstar m + 4)",
            ),
        ],
        constant=2,
        label="fast-coloring rounds",
    )


def fast_coloring_nonuniform():
    """Theorem 1 input for the (Δ+1)-coloring rows."""
    return NonUniform(
        fast_coloring(),
        fast_coloring_bound(),
        kind="deterministic",
        default_output=0,
        name="fast-coloring",
    )


def logstar_value(x):
    """Re-export of ``log*`` for reporting convenience."""
    return log_star(x)
