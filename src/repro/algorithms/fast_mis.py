"""MIS in ``O(Δ̃ log Δ̃ + log* m̃)``: fast coloring plus a color-class sweep.

The classic coloring→MIS reduction used by both Barenboim–Elkin '09 and
Kuhn '09 (Table 1 row 1): after a ``(Δ̃+1)``-coloring, sweep the color
classes — class ``t`` decides in sweep round ``t``, joining when no
neighbour has joined yet.  The sweep adds ``Δ̃+1`` rounds, dominated by
the coloring itself.

This algorithm is also the *inner* engine of the arboricity rows: its
Theorem-1 uniformization adapts to the actual (Δ, m) of each H-partition
class, which is what keeps the outer bounds independent of the guessed
arboricity (see :mod:`repro.algorithms.arboricity`).
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.transformer import NonUniform
from ..local.algorithm import LocalAlgorithm
from ..local.message import Broadcast
from .fast_coloring import (
    FastColoringProcess,
    _kw_atom_value,
    fast_coloring_rounds,
)
from .linial import linial_steps_upper


class FastMISProcess(FastColoringProcess):
    """Fast coloring, then sweep color classes lowest-first."""

    __slots__ = ("sweep_round", "blocked")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.sweep_round = 0
        self.blocked = False

    # The coloring stages call finish() when the color is final; we
    # intercept that and run the sweep instead.
    def _finish_with_color(self):
        final = self.reducer.color if self.reducer else self.color
        self.color = final  # 0-based final color in [0, delta]
        self.sweep_round = 1

    def receive(self, inbox):
        if self.sweep_round == 0:
            outgoing = super().receive(inbox)
            if self.sweep_round == 0 or outgoing is not None:
                # Still coloring, or carrying the last KW announcement
                # (sweep decisions start strictly after it).
                return outgoing
            return None
        if any(p and p[0] == "mis" for p in inbox.values()):
            self.blocked = True
        my_slot = self.color + 1  # colors are 0-based, slots 1-based
        if self.sweep_round == my_slot:
            if self.blocked:
                self.finish(0)
                return None
            self.finish(1)
            return Broadcast(("mis",))
        self.sweep_round += 1
        return None


def fast_mis():
    """The non-uniform MIS (requires m̃, Δ̃)."""
    return LocalAlgorithm(
        name="fast-mis", process=FastMISProcess, requires=("m", "Delta")
    )


def fast_mis_rounds(m_guess, delta_guess):
    """Exact schedule length: coloring + Δ̃+1 sweep slots."""
    return fast_coloring_rounds(m_guess, delta_guess) + delta_guess + 1


def fast_mis_bound():
    """Declared ``O(Δ̃ log Δ̃) + O(log* m̃)`` bound (additive, s_f = 1)."""
    return AdditiveBound(
        [
            custom(
                "Delta",
                lambda d: _kw_atom_value(d) + max(0, int(d)) + 2,
                "kw+sweep(Delta)",
            ),
            custom(
                "m", lambda m: 2 * linial_steps_upper(m), "2*(logstar m + 4)"
            ),
        ],
        constant=3,
        label="fast-mis rounds",
    )


def fast_mis_nonuniform():
    """Theorem 1 input for Table 1 row 1 (MIS in O(Δ + log* n))."""
    return NonUniform(
        fast_mis(),
        fast_mis_bound(),
        kind="deterministic",
        default_output=0,
        name="fast-mis",
    )
