"""MIS in ``O(Δ̃ log Δ̃ + log* m̃)``: fast coloring plus a color-class sweep.

The classic coloring→MIS reduction used by both Barenboim–Elkin '09 and
Kuhn '09 (Table 1 row 1): after a ``(Δ̃+1)``-coloring, sweep the color
classes — class ``t`` decides in sweep round ``t``, joining when no
neighbour has joined yet.  The sweep adds ``Δ̃+1`` rounds, dominated by
the coloring itself.

This algorithm is also the *inner* engine of the arboricity rows: its
Theorem-1 uniformization adapts to the actual (Δ, m) of each H-partition
class, which is what keeps the outer bounds independent of the guessed
arboricity (see :mod:`repro.algorithms.arboricity`).
"""

from __future__ import annotations

from ..core.bounds import AdditiveBound, custom
from ..core.transformer import NonUniform
from ..local import batch
from ..local.algorithm import LocalAlgorithm
from ..local.message import Broadcast
from .fast_coloring import (
    ColoringBatchKernel,
    FastColoringProcess,
    _coloring_batch_factory,
    _kw_atom_value,
    fast_coloring_rounds,
)
from .linial import linial_steps_upper


class FastMISProcess(FastColoringProcess):
    """Fast coloring, then sweep color classes lowest-first."""

    __slots__ = ("sweep_round", "blocked")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.sweep_round = 0
        self.blocked = False

    # The coloring stages call finish() when the color is final; we
    # intercept that and run the sweep instead.
    def _finish_with_color(self):
        final = self.reducer.color if self.reducer else self.color
        self.color = final  # 0-based final color in [0, delta]
        self.sweep_round = 1

    def receive(self, inbox):
        if self.sweep_round == 0:
            outgoing = super().receive(inbox)
            if self.sweep_round == 0 or outgoing is not None:
                # Still coloring, or carrying the last KW announcement
                # (sweep decisions start strictly after it).
                return outgoing
            return None
        if any(p and p[0] == "mis" for p in inbox.values()):
            self.blocked = True
        my_slot = self.color + 1  # colors are 0-based, slots 1-based
        if self.sweep_round == my_slot:
            if self.blocked:
                self.finish(0)
                return None
            self.finish(1)
            return Broadcast(("mis",))
        self.sweep_round += 1
        return None


class MISBatchKernel(ColoringBatchKernel):
    """Coloring kernel plus the vectorized color-class sweep.

    Instead of finishing with the final colors, schedule completion
    opens the sweep: in sweep slot ``s`` every undecided node of color
    ``s-1`` joins unless a neighbour joined in an earlier slot.  Slots
    are indexed through a sorted color order and blocking gathers over
    the *deciders'* adjacency rows (each node decides exactly once, so
    the whole sweep costs O(n log n + edges)); empty slots (gapped
    garbage colors under bad guesses) cost O(1) instead of a frontier
    scan.

    Shard certification (D12/D13): the blocking test is an owned-row
    gather — a decider reads the ``in_mis`` flags of its neighbours —
    instead of the previous joiner-side scatter into neighbour rows,
    which would have missed cross-shard neighbours (ghost rows are
    empty, so a remote joiner's scatter never reaches the owner's
    ``blocked`` entry).  ``in_mis`` is per-node state carried by the
    halo sync; the sweep schedule (``sweep_order``/``slots_sorted``) is
    derived lazily at the first sweep round, after the sync has
    replaced stale ghost colors from the final KW round.
    """

    __slots__ = ("in_mis", "sweep_order", "slots_sorted", "sweep_ptr")

    SHARD_SYNC = ColoringBatchKernel.SHARD_SYNC + ("in_mis",)

    def _complete(self):
        np = batch.numpy_or_none()
        self.sweep_order = None
        self.slots_sorted = None
        self.sweep_ptr = 0
        self.in_mis = np.zeros(self.bg.n, dtype=bool)
        self.in_sweep = True
        return [], []

    def undone_indices(self):
        np = batch.numpy_or_none()
        if self.in_sweep and self.sweep_order is not None:
            # Dynamic during the sweep — never served from the cache.
            return np.sort(self.sweep_order[self.sweep_ptr :]).tolist()
        return super().undone_indices()

    def _sweep_step(self, s):
        np = batch.numpy_or_none()
        bg = self.bg
        if self.sweep_order is None:
            slots = self.colors + 1  # colors are 0-based, slots 1-based
            self.sweep_order = np.argsort(slots, kind="stable")
            self.slots_sorted = slots[self.sweep_order]
        hi = np.searchsorted(self.slots_sorted, s, "right")
        deciders = self.sweep_order[self.sweep_ptr : hi]
        self.sweep_ptr = hi
        if len(deciders):
            # Gather each decider's row: blocked iff any neighbour
            # already joined.  Rows are walked as one flat fancy index
            # (O(Σ degree of deciders); every node decides once).
            starts = bg.offsets[deciders]
            lens = bg.degrees[deciders]
            total = int(lens.sum())
            if total:
                rows = np.repeat(np.arange(len(deciders)), lens)
                edge = np.arange(total) - np.repeat(
                    np.cumsum(lens) - lens, lens
                )
                hit = self.in_mis[bg.neigh[np.repeat(starts, lens) + edge]]
                blocked = np.bincount(
                    rows, weights=hit, minlength=len(deciders)
                ) > 0
            else:
                blocked = np.zeros(len(deciders), dtype=bool)
        else:
            blocked = np.zeros(0, dtype=bool)
        joiners = deciders[~blocked]
        self.in_mis[joiners] = True
        finished = joiners.tolist()
        results = [1] * len(finished)
        lost = deciders[blocked].tolist()
        finished.extend(lost)
        results.extend([0] * len(lost))
        self.done = self.sweep_ptr == bg.n
        return finished, results, bg.charge(joiners)


def fast_mis():
    """The non-uniform MIS (requires m̃, Δ̃)."""
    return LocalAlgorithm(
        name="fast-mis",
        process=FastMISProcess,
        requires=("m", "Delta"),
        batch=_coloring_batch_factory(MISBatchKernel),
        shard=True,
        fuse=True,
        # Round-fuse-safe (D17): see fast_coloring — the sweep
        # self-terminates inside the generic fixed-point loop.
        roundfuse=True,
    )


def fast_mis_rounds(m_guess, delta_guess):
    """Exact schedule length: coloring + Δ̃+1 sweep slots."""
    return fast_coloring_rounds(m_guess, delta_guess) + delta_guess + 1


def fast_mis_bound():
    """Declared ``O(Δ̃ log Δ̃) + O(log* m̃)`` bound (additive, s_f = 1)."""
    return AdditiveBound(
        [
            custom(
                "Delta",
                lambda d: _kw_atom_value(d) + max(0, int(d)) + 2,
                "kw+sweep(Delta)",
            ),
            custom(
                "m", lambda m: 2 * linial_steps_upper(m), "2*(logstar m + 4)"
            ),
        ],
        constant=3,
        label="fast-mis rounds",
    )


def fast_mis_nonuniform():
    """Theorem 1 input for Table 1 row 1 (MIS in O(Δ + log* n))."""
    return NonUniform(
        fast_mis(),
        fast_mis_bound(),
        kind="deterministic",
        default_output=0,
        name="fast-mis",
    )
