"""LOCAL-model simulation substrate.

This package implements the synchronous message-passing model of the
paper (Section 2): :class:`SimGraph` adjacency views, per-node processes,
the synchronous runner with exact round accounting, the restriction
operator, wake-up patterns with the α synchronizer, sequential
composition (Observation 2.1), and the virtual-node layer used for line
graphs and clique products (Sections 5.1–5.2).
"""

from .algorithm import (
    FunctionProcess,
    HostAlgorithm,
    LocalAlgorithm,
    NodeProcess,
    zero_round_algorithm,
)
from .msgsize import estimate_bits
from .composition import Chain, default_carry
from .context import CounterRNG, NodeContext, make_rng
from .engine import CompiledGraph, Partition
from .faults import (
    GARBLED,
    FaultPlan,
    byzantine_silent,
    crash_at,
    drop,
    garble,
    honest,
    sample_plan,
    set_default_faults,
    use_faults,
)
from .fused import run_many, slab_cache_stats
from .graph import GraphDelta, SimGraph
from .message import Broadcast
from .service import SimulationSession, open_session
from .runner import (
    RunResult,
    last_faults,
    run,
    run_restricted,
    set_batch_enabled,
    set_default_backend,
    set_jit_enabled,
    set_roundfuse_enabled,
    use_backend,
    use_batch,
    use_jit,
    use_roundfuse,
)
from .virtual import (
    VirtualSpec,
    flatten_outputs,
    run_virtual_batch,
    run_virtual_batch_full,
    virtualize,
)
from .wakeup import run_with_wakeup, running_time, termination_times

__all__ = [
    "Broadcast",
    "Chain",
    "CompiledGraph",
    "CounterRNG",
    "FaultPlan",
    "FunctionProcess",
    "GARBLED",
    "GraphDelta",
    "HostAlgorithm",
    "LocalAlgorithm",
    "Partition",
    "byzantine_silent",
    "crash_at",
    "drop",
    "estimate_bits",
    "garble",
    "honest",
    "last_faults",
    "NodeContext",
    "NodeProcess",
    "RunResult",
    "SimGraph",
    "SimulationSession",
    "VirtualSpec",
    "default_carry",
    "flatten_outputs",
    "make_rng",
    "open_session",
    "run",
    "run_many",
    "run_restricted",
    "sample_plan",
    "slab_cache_stats",
    "set_default_faults",
    "use_faults",
    "run_virtual_batch",
    "run_virtual_batch_full",
    "set_batch_enabled",
    "run_with_wakeup",
    "running_time",
    "set_default_backend",
    "set_jit_enabled",
    "set_roundfuse_enabled",
    "termination_times",
    "use_backend",
    "use_batch",
    "use_jit",
    "use_roundfuse",
    "virtualize",
    "zero_round_algorithm",
]
