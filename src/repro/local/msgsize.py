"""Message-size accounting (paper Section 6.2).

The LOCAL model ignores message size, but the paper's conclusion
discusses when uniformization preserves *short* (O(log n)-bit) messages:
algorithms whose payloads carry only identifiers, colors or degrees —
not the guessed bounds themselves — keep their message size under the
transformation.  This module estimates payload sizes so experiments can
check which of our algorithms are in that regime.

``estimate_bits`` is a structural size measure: integers cost their bit
length, containers cost the sum of their parts plus a small per-element
framing overhead.  It is deliberately simple — the interesting quantity
is the *growth* of the maximum payload with n and Δ, not absolute bytes.
"""

from __future__ import annotations

#: framing overhead charged per container element
FRAME_BITS = 2


def estimate_bits(payload):
    """Structural bit-size estimate of a message payload."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1  # sign/flag bit
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(estimate_bits(item) + FRAME_BITS for item in payload) + FRAME_BITS
    if isinstance(payload, dict):
        return (
            sum(
                estimate_bits(k) + estimate_bits(v) + FRAME_BITS
                for k, v in payload.items()
            )
            + FRAME_BITS
        )
    # unknown object: charge by repr as a conservative fallback
    return 8 * len(repr(payload))
