"""Message-size accounting (paper Section 6.2).

The LOCAL model ignores message size, but the paper's conclusion
discusses when uniformization preserves *short* (O(log n)-bit) messages:
algorithms whose payloads carry only identifiers, colors or degrees —
not the guessed bounds themselves — keep their message size under the
transformation.  This module estimates payload sizes so experiments can
check which of our algorithms are in that regime.

``estimate_bits`` is a structural size measure: integers cost their bit
length, containers cost the sum of their parts plus a small per-element
framing overhead.  It is deliberately simple — the interesting quantity
is the *growth* of the maximum payload with n and Δ, not absolute bytes.

Guards and memoization
----------------------
Recursion is bounded by :data:`MAX_DEPTH`; beyond it a payload is
charged by its ``repr`` length (conservative), so adversarial or
accidentally self-nesting payloads cannot blow the stack.  Flat tuples
whose elements are all exactly ``int`` or ``str`` — the dominant
payload shape (``("bid", priority, ident)``-style records) — are
memoized, so a ``track_bits=True`` run stops re-walking the identical
broadcast payload once per edge and once per round.  The memo is
restricted to that shape because within it Python equality implies an
identical estimate; broader value-keyed caching would collapse
numerically-equal payloads of different types (``1`` / ``1.0`` /
``True``) into one entry and return wrong sizes.
"""

from __future__ import annotations

#: framing overhead charged per container element
FRAME_BITS = 2

#: recursion ceiling; deeper payloads fall back to a repr-based charge
MAX_DEPTH = 64

#: memo for int/str-only tuples, cleared wholesale when full
_MEMO_MAX = 4096
_memo = {}


def _memo_safe(payload):
    """True when equality implies an identical estimate (exact int/str)."""
    for item in payload:
        if type(item) is not int and type(item) is not str:
            return False
    return True


def estimate_bits(payload, _depth=0):
    """Structural bit-size estimate of a message payload."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1  # sign/flag bit
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, tuple) and _memo_safe(payload):
        cached = _memo.get(payload)
        if cached is not None:
            return cached
        bits = (
            sum(estimate_bits(item, _depth + 1) + FRAME_BITS for item in payload)
            + FRAME_BITS
        )
        if len(_memo) >= _MEMO_MAX:
            _memo.clear()
        _memo[payload] = bits
        return bits
    if isinstance(payload, (tuple, list, set, frozenset)):
        if _depth >= MAX_DEPTH:
            return 8 * len(repr(payload))
        return (
            sum(estimate_bits(item, _depth + 1) + FRAME_BITS for item in payload)
            + FRAME_BITS
        )
    if isinstance(payload, dict):
        if _depth >= MAX_DEPTH:
            return 8 * len(repr(payload))
        return (
            sum(
                estimate_bits(k, _depth + 1) + estimate_bits(v, _depth + 1) + FRAME_BITS
                for k, v in payload.items()
            )
            + FRAME_BITS
        )
    # unknown object: charge by repr as a conservative fallback
    return 8 * len(repr(payload))
