"""Algorithm and node-process abstractions.

A LOCAL algorithm is described by a :class:`LocalAlgorithm`: metadata (its
name and the collection Γ of global parameters its code consumes) plus a
factory that builds one :class:`NodeProcess` per node.  The process runs
the node's state machine:

* :meth:`NodeProcess.start` is called once when the node wakes up and
  returns the messages of the node's first round;
* :meth:`NodeProcess.receive` is called once per subsequent round with
  the inbox (a dict ``port -> payload``) and returns the round's outgoing
  messages;
* the process calls :meth:`NodeProcess.finish` to commit its final output
  ``y(v)``; messages returned by the finishing call are still delivered,
  after which the node is inert.

The *restriction to i rounds* of the paper (Section 2) is obtained by
running with ``max_rounds=i`` and a default output; see
:func:`repro.local.runner.run`.
"""

from __future__ import annotations


class NodeProcess:
    """Base class for the per-node state machine of a LOCAL algorithm."""

    __slots__ = ("ctx", "done", "result")

    def __init__(self, ctx):
        self.ctx = ctx
        self.done = False
        self.result = None

    # -- lifecycle ------------------------------------------------------
    def start(self):
        """First activation; return the messages of the node's round 1."""
        return None

    def receive(self, inbox):
        """Process one round's inbox; return the next outgoing messages."""
        raise NotImplementedError

    def finish(self, result):
        """Commit the node's final output and stop participating."""
        self.done = True
        self.result = result


class LocalAlgorithm:
    """Declarative description of a LOCAL algorithm.

    Parameters
    ----------
    name:
        Human-readable identifier used in errors, traces and reports.
    process:
        Callable ``NodeContext -> NodeProcess``.
    requires:
        Names of the global parameters Γ the code consumes through
        ``ctx.guess`` (empty tuple -> the algorithm is *uniform*).
    randomized:
        Whether the algorithm consumes random bits (``ctx.rng``).
    batch:
        Optional batched-step kernel factory
        ``(BatchGraph, BatchSetup) -> kernel | None`` (DESIGN.md D10).
        When present, the compiled engine steps the whole active
        frontier per round through the kernel instead of dispatching
        ``receive`` per node; a factory may return ``None`` to decline a
        configuration it cannot reproduce bit-identically, in which case
        the engine falls back to per-node stepping.
    shard:
        Whether the batch kernel is certified *shard-safe* (DESIGN.md
        D12): slab reductions are owner-side only, message counts are
        degree-weighted, per-node state lives in introspectable
        length-n arrays, and stepping past a locally-exhausted frontier
        is a no-op.  Only then may the sharded engine run the kernel on
        partition sub-CSRs with halo exchange; uncertified algorithms
        shard through the (always-exact) per-node stepping instead.
    fuse:
        Whether the batch kernel is certified *fuse-safe* (DESIGN.md
        D16): all cross-node reads follow CSR edges or compare by
        value, global round/phase counters advance in lockstep for
        every node, and every message-ledger contribution flows through
        ``BatchGraph.charge``.  Only then may the fused engine run the
        kernel on a block-diagonal multi-run slab; uncertified
        algorithms run each lane solo instead.
    roundfuse:
        Whether the batch kernel is certified *round-fuse-safe*
        (DESIGN.md D17): the kernel either runs a fixed schedule known
        at construction (``LockstepKernel`` subclasses exposing
        ``run_phases``, whose message total settles arithmetically as
        ``schedule × degrees.sum()``) or self-terminates and exposes a
        ``run_fixedpoint`` driver whose per-round events replay the
        exact ``start``/``step`` outcomes.  Only then may the engine
        execute the whole round schedule inside one driver call;
        uncertified kernels keep today's per-round stepping.
    """

    __slots__ = (
        "name", "process", "requires", "randomized", "batch", "shard",
        "fault_batch", "fuse", "roundfuse",
    )

    #: Domain kinds a per-node algorithm runs on (capability record).
    domains = ("physical", "virtual")

    def __init__(
        self, name, process, requires=(), randomized=False, batch=None,
        shard=False, fault_batch=False, fuse=False, roundfuse=False,
    ):
        self.name = name
        self.process = process
        self.requires = tuple(requires)
        self.randomized = bool(randomized)
        self.batch = batch
        self.shard = bool(shard)
        self.fault_batch = bool(fault_batch)
        self.fuse = bool(fuse)
        self.roundfuse = bool(roundfuse)

    @property
    def uniform(self):
        """True when the algorithm needs no global-parameter guesses."""
        return not self.requires

    def capabilities(self):
        """Capability record driving runner/transformer dispatch.

        ``kind`` selects the execution style (``"node"``: per-node
        processes through the runner; ``"host"``: self-restricting
        orchestration), ``supports_batch`` whether a frontier kernel is
        registered, ``supports_shard`` whether that kernel is certified
        for partitioned execution (D12),
        ``supports_faulted_batch`` whether it additionally consumes
        fault-injection masks (D14 — uncertified kernels fall back to
        the always-exact per-node stepping under an active plan),
        ``supports_fuse`` whether the kernel may step several
        independent runs as lanes of one block-diagonal slab (D16),
        ``supports_roundfuse`` whether the kernel's whole round
        schedule may execute inside one driver call (D17),
        ``domains`` where the algorithm may execute.  The registry
        (``repro.algorithms.registry``) aggregates these per Table-1
        row.
        """
        return {
            "kind": "node",
            "supports_batch": self.batch is not None,
            "supports_shard": self.shard and self.batch is not None,
            "supports_faulted_batch": self.fault_batch
            and self.batch is not None,
            "supports_fuse": self.fuse and self.batch is not None,
            "supports_roundfuse": self.roundfuse and self.batch is not None,
            "domains": self.domains,
            "randomized": self.randomized,
            "uniform": self.uniform,
        }

    def make(self, ctx):
        """Instantiate the node process for one node."""
        return self.process(ctx)

    def __repr__(self):
        kind = "randomized" if self.randomized else "deterministic"
        gamma = ",".join(self.requires) if self.requires else "uniform"
        return f"LocalAlgorithm({self.name!r}, {kind}, Γ=({gamma}))"


class HostAlgorithm:
    """An algorithm realized as a host-level orchestration.

    Some of the paper's black boxes are themselves compositions of local
    algorithms with data-dependent stage lengths (e.g. the
    Barenboim–Elkin arboricity MIS processes H-partition classes
    sequentially, each through a nested uniform MIS).  Such boxes
    implement ``run_restricted`` directly against a
    :class:`~repro.core.domain.Domain`: the orchestration executes its
    stages as aligned phases, charges the full budget (the paper's
    sub-iteration accounting) and forces the default output on nodes it
    could not finish — identical restriction semantics to a plain
    :class:`LocalAlgorithm`.

    Subclasses define ``name``, ``requires``, ``randomized`` and
    ``run_restricted(domain, budget, *, inputs, guesses, seed, salt,
    default_output) -> (outputs, rounds_charged)``.
    """

    name = "host-algorithm"
    requires = ()
    randomized = False
    #: Domain kinds the orchestration accepts (capability record).
    domains = ("physical",)

    def run_restricted(
        self, domain, budget, *, inputs, guesses, seed, salt, default_output
    ):
        raise NotImplementedError

    @property
    def uniform(self):
        return not self.requires

    def capabilities(self):
        """Capability record; see :meth:`LocalAlgorithm.capabilities`."""
        return {
            "kind": "host",
            "supports_batch": False,
            "supports_shard": False,
            "supports_faulted_batch": False,
            "supports_fuse": False,
            "supports_roundfuse": False,
            "domains": self.domains,
            "randomized": self.randomized,
            "uniform": self.uniform,
        }

    def __repr__(self):
        gamma = ",".join(self.requires) if self.requires else "uniform"
        return f"HostAlgorithm({self.name!r}, Γ=({gamma}))"


class FunctionProcess(NodeProcess):
    """Single-shot process computing its output from the context alone.

    Useful for zero-round algorithms (e.g. assigning layer indices from
    the node's own degree in Theorem 5's layering).
    """

    __slots__ = ("fn",)

    def __init__(self, ctx, fn):
        super().__init__(ctx)
        self.fn = fn

    def start(self):
        self.finish(self.fn(self.ctx))
        return None

    def receive(self, inbox):
        return None


def zero_round_algorithm(name, fn):
    """Build an algorithm whose output is a pure function of the context."""
    return LocalAlgorithm(
        name=name, process=lambda ctx: FunctionProcess(ctx, fn), requires=()
    )


def capabilities_of(algorithm):
    """Capability record of any black box (``{}`` when undeclared).

    The runner and the transformers dispatch on this record instead of
    concrete classes, so third-party boxes participate by advertising
    capabilities rather than by inheritance.
    """
    probe = getattr(algorithm, "capabilities", None)
    return probe() if callable(probe) else {}
