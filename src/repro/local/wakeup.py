"""Non-simultaneous wake-up and the α-synchronizer (paper Section 2).

The paper defines, for executions in which nodes wake at different times:

* a node *terminates in time t* if it terminates at most ``t`` rounds
  after all nodes in ``B_G(u, t)`` have woken up;
* the *termination time* of ``u`` is the least such ``t``;
* the *running time* of an algorithm is the maximum termination time over
  all nodes and wake-up patterns.

It then observes that an algorithm designed for simultaneous wake-up can
be emulated with the simple α synchronizer at no asymptotic cost: a node
performs round ``i`` once all its neighbours have performed round
``i-1``.  :func:`run_with_wakeup` implements exactly this emulation.

Simulation note: the synchronizer's bookkeeping (neighbours' progress
counters) is read directly from the previous tick's state instead of
being carried in explicit piggybacked status messages.  The information
and its timing are identical to what the real protocol delivers, so round
counts are unaffected; this is a standard simulation shortcut.
"""

from __future__ import annotations

from ..errors import NonTerminationError, ParameterError
from .algorithm import LocalAlgorithm
from .context import NodeContext, rng_source
from .message import Broadcast, normalize_outgoing
from .runner import SAFETY_ROUND_CAP, RunResult, resolve_backend


def run_with_wakeup(
    graph,
    algorithm,
    wake,
    *,
    inputs=None,
    guesses=None,
    seed=0,
    salt=0,
    max_ticks=None,
    rng=None,
):
    """Run ``algorithm`` under a wake-up pattern with the α synchronizer.

    Parameters
    ----------
    wake:
        Mapping node -> global wake-up tick (non-negative int).
    rng:
        Per-node random-source scheme (``"counter"`` or ``"mt"``);
        ``None`` resolves exactly like :func:`repro.local.runner.run`'s
        default, so an all-zero wake pattern reproduces the synchronous
        run bit for bit — including for randomized algorithms.

    Returns a :class:`~repro.local.runner.RunResult` whose
    ``finish_round`` records *global* finish ticks; use
    :func:`termination_times` to convert to the paper's per-node
    termination times.
    """
    if not isinstance(algorithm, LocalAlgorithm):
        raise TypeError(f"expected LocalAlgorithm, got {type(algorithm).__name__}")
    guesses = dict(guesses or {})
    missing = [p for p in algorithm.requires if p not in guesses]
    if missing:
        raise ParameterError(
            f"algorithm {algorithm.name!r} requires guesses for {missing}"
        )
    inputs = inputs or {}
    wake = {u: int(wake.get(u, 0)) for u in graph.nodes}
    if any(t < 0 for t in wake.values()):
        raise ParameterError("wake-up times must be non-negative")
    cap = SAFETY_ROUND_CAP if max_ticks is None else max_ticks
    _, rng_mode = resolve_backend(None, rng)
    make_gen = rng_source(rng_mode, seed, salt)

    processes = {}
    for u in graph.nodes:
        ctx = NodeContext(
            node=u,
            ident=graph.ident[u],
            degree=graph.degree(u),
            input=inputs.get(u),
            guesses=guesses,
            rng=make_gen(graph.ident[u]),
            rng_mode=rng_mode,
        )
        processes[u] = algorithm.make(ctx)

    # steps_done[u]: local steps performed (step 0 is `start`); -1 = asleep.
    steps_done = {u: -1 for u in graph.nodes}
    finished = {u: False for u in graph.nodes}
    outputs = {}
    finish_tick = {}
    messages = 0
    # payload sent by u at its local step j, for the neighbour on port q of u.
    sent = {u: [] for u in graph.nodes}  # list indexed by step -> outgoing spec

    def record(u, outgoing):
        nonlocal messages
        outgoing = normalize_outgoing(outgoing, graph.degree(u))
        sent[u].append(outgoing)
        if outgoing is None:
            return
        if isinstance(outgoing, Broadcast):
            messages += graph.degree(u)
        else:
            messages += len(outgoing)

    def payload_for(v, step, u_port_on_v):
        """Payload node v sent at local step ``step`` toward node u.

        Targeted dicts are keyed by the *sender's* ports, so the lookup
        key is u's port in v's numbering.
        """
        if step >= len(sent[v]):
            return _NOTHING
        outgoing = sent[v][step]
        if outgoing is None:
            return _NOTHING
        if isinstance(outgoing, Broadcast):
            return outgoing.payload
        if u_port_on_v in outgoing:
            return outgoing[u_port_on_v]
        return _NOTHING

    remaining = set(graph.nodes)
    tick = 0
    while remaining:
        if tick > cap:
            raise NonTerminationError(algorithm.name, cap, sorted(remaining, key=repr))
        progress_snapshot = dict(steps_done)
        finished_snapshot = dict(finished)
        for u in graph.nodes:
            if finished[u] or tick < wake[u]:
                continue
            if steps_done[u] == -1:
                # Wake up: perform local step 0 (the `start` computation).
                process = processes[u]
                record(u, process.start())
                steps_done[u] = 0
            else:
                next_step = steps_done[u] + 1
                ready = True
                for _, v, _ in graph.adj[u]:
                    if finished_snapshot[v]:
                        continue
                    if progress_snapshot[v] < next_step - 1:
                        ready = False
                        break
                if not ready:
                    continue
                inbox = {}
                for port, v, reverse_port in graph.adj[u]:
                    payload = payload_for(v, next_step - 1, reverse_port)
                    if payload is not _NOTHING:
                        inbox[port] = payload
                process = processes[u]
                record(u, process.receive(inbox))
                steps_done[u] = next_step
            process = processes[u]
            if process.done:
                finished[u] = True
                outputs[u] = process.result
                finish_tick[u] = tick
                remaining.discard(u)
        tick += 1

    rounds = max(finish_tick.values()) if finish_tick else 0
    return RunResult(outputs, finish_tick, rounds, messages, frozenset())


class _Nothing:
    __slots__ = ()


_NOTHING = _Nothing()


def termination_times(graph, wake, finish_tick):
    """Per-node termination times as defined in the paper (Section 2).

    ``t(u)`` is the least ``t`` such that ``finish_tick[u] <= t +
    max(wake(v) for v in B(u, t))``.
    """
    wake = {u: int(wake.get(u, 0)) for u in graph.nodes}
    times = {}
    for u in graph.nodes:
        target = finish_tick[u]
        # Grow the ball layer by layer, tracking the latest wake-up in it.
        seen = {u}
        frontier = [u]
        max_wake = wake[u]
        t = 0
        while target > t + max_wake:
            t += 1
            next_frontier = []
            for w in frontier:
                for _, v, _ in graph.adj[w]:
                    if v not in seen:
                        seen.add(v)
                        next_frontier.append(v)
                        if wake[v] > max_wake:
                            max_wake = wake[v]
            frontier = next_frontier
            if not frontier and target > t + max_wake:
                # Ball saturated the component; remaining slack is pure time.
                t = target - max_wake
                break
        times[u] = t
    return times


def running_time(graph, wake, finish_tick):
    """The paper's running time: maximum termination time over nodes."""
    times = termination_times(graph, wake, finish_tick)
    return max(times.values()) if times else 0
