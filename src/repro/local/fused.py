"""Fused multi-run engine: b independent runs as one kernel (D16).

The production workloads of this reproduction are rarely one huge graph
— they are *fleets* of independent small runs: Table-1 seed sweeps,
Corollary-1 portfolio arms, per-user matchmaking instances.  Each solo
run pays the full per-round Python dispatch cost alone; this module
packs ``b`` independent ``(graph, algorithm, seed)`` instances into one
**block-diagonal CSR slab** and steps them as *lanes* of a single batch
kernel, amortizing the dispatch cost ``1/b``.

Why the certified kernels run unchanged
---------------------------------------
A fused slab has no cross-lane edges, so every edge-slab reduction a
kernel performs (rival checks, taken scatters, blocking gathers) only
ever combines nodes of the same lane; global round/phase counters stay
aligned because lanes of one slab share the exact same schedule (same
algorithm object, same guesses — grouping is by that key).  Random
draws stay bit-identical to each lane's solo run because per-node
streams are pure functions of ``(run key, identity)`` (the D9 purity
argument): the fused draw source simply derives each lane's keys from
*that lane's* ``(seed, salt)`` — a lane-offset derivation, not a shared
slab-global stream.  The one thing a kernel cannot decompose by itself
is its *message ledger* (a single per-round total), so every honest
kernel routes its counts through ``BatchGraph.charge`` and
:class:`FusedBatchGraph` splits them per lane as a side effect.  A
kernel is only ever fused when its algorithm is certified ``fuse=True``
(capability ``supports_fuse``); everything else runs each lane solo
through :func:`~repro.local.runner.run`, which is trivially
bit-identical.

Per-lane termination is tracked by the driver (a lane's result is
committed the round its last node finishes); a settled lane's edges are
retired from the shared slab the same round, and a chunk whose lanes
are all done or cancelled leaves the stepping loop — stragglers don't
pay for the fleet.  Cancellation is exposed through the
``on_lane_done`` hook, which is what :mod:`repro.core.portfolio` uses
for speculative racing.
"""

from __future__ import annotations

import weakref

from ..errors import LaneCancelled, NonTerminationError, ParameterError, ReproError
from . import batch, runner as _runner
from .algorithm import capabilities_of
from .context import make_rng, run_key
from .faults import resolve_faults
from .runner import (
    SAFETY_ROUND_CAP,
    RunResult,
    batching_requested,
    note_stepping,
    resolve_backend,
    run,
)


class FusedBatchGraph(batch.BatchGraph):
    """Block-diagonal slab over member graphs, with lane attribution.

    ``lane_of[i]`` is the lane (chunk position) of slab node ``i``;
    ``lane_bounds`` are the node-offset boundaries per lane (length
    ``lane_count + 1``).  Labels are ``(lane, original label)`` so
    member graphs may carry colliding labels and identities.

    The :meth:`charge` override is the per-lane message ledger: every
    honest kernel's counts flow through this one seam, so the exact
    split is a by-product of the existing accounting, not a parallel
    re-derivation.
    """

    __slots__ = (
        "lane_of",
        "lane_bounds",
        "lane_count",
        "_fdegrees",
        "_lane_degrees",
        "_lane_sent",
        "_draw_cache",
        "_full_owner",
        "_full_neigh",
        "_edge_bounds",
        "_live",
    )

    def __init__(self, labels, idents, offsets, neigh, lane_of, lane_bounds):
        super().__init__(labels, idents, offsets, neigh)
        np = batch.numpy_or_none()
        self.lane_of = lane_of
        self.lane_bounds = lane_bounds
        self.lane_count = len(lane_bounds) - 1
        # float64 degree sums are exact below 2^53; slabs are far
        # smaller, and keeping everything float avoids an astype copy
        # on every charge.
        self._fdegrees = self.degrees.astype(np.float64)
        self._lane_degrees = np.bincount(
            lane_of, weights=self._fdegrees, minlength=self.lane_count
        )
        self._lane_sent = np.zeros(self.lane_count, dtype=np.float64)
        self._draw_cache = {}
        # Edge slab is lane-contiguous (owner indices ascend), so the
        # live window below is a concatenation of per-lane segments.
        self._full_owner = self.owner
        self._full_neigh = self.neigh
        self._edge_bounds = np.zeros(self.lane_count + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(lane_of[self.owner], minlength=self.lane_count),
            out=self._edge_bounds[1:],
        )
        self._live = np.ones(self.lane_count, dtype=bool)

    def fork(self):
        """A twin sharing the immutable slab arrays but owning the
        per-run mutable state (edge window, charge accumulator).

        Chunks stepped concurrently by one ``_drive`` may hash to the
        same cached slab (a seed sweep over one graph chunked by lane
        width does); each needs its own window and ledger, or one
        chunk's retirements would shrink the slab under the others.
        The draw cache *is* shared — its entries are keyed by per-lane
        run keys, which never collide across chunks.
        """
        np = batch.numpy_or_none()
        twin = FusedBatchGraph.__new__(FusedBatchGraph)
        for name in (
            "labels", "idents", "n", "offsets", "degrees",
            "lane_of", "lane_bounds", "lane_count",
            "_fdegrees", "_lane_degrees", "_draw_cache",
            "_full_owner", "_full_neigh", "_edge_bounds",
        ):
            setattr(twin, name, getattr(self, name))
        twin.owner = self._full_owner
        twin.neigh = self._full_neigh
        twin._lane_sent = np.zeros(self.lane_count, dtype=np.float64)
        twin._live = np.ones(self.lane_count, dtype=bool)
        return twin

    def reset_window(self):
        """Restore the full edge slab (cached slabs are reused across runs)."""
        if not self._live.all():
            self._live[:] = True
            self.owner = self._full_owner
            self.neigh = self._full_neigh

    def retire_lanes(self, positions):
        """Drop settled lanes' edges from ``owner``/``neigh``.

        Kernels re-read both arrays every step, so edge-slab work for
        retired lanes vanishes — finished lanes drop out of the active
        set and stragglers don't pay for the fleet.  Block-diagonality
        makes the shrunken view invisible to surviving lanes: a retired
        lane's edges only ever connect that lane's own (terminated)
        nodes, and every per-node reduction is index-based against the
        unchanged node arrays.
        """
        np = batch.numpy_or_none()
        self._live[positions] = False
        bounds = self._edge_bounds
        segments = [
            (int(bounds[k]), int(bounds[k + 1]))
            for k in np.flatnonzero(self._live).tolist()
        ]
        self.owner = np.concatenate(
            [self._full_owner[lo:hi] for lo, hi in segments]
        ) if segments else self._full_owner[:0]
        self.neigh = np.concatenate(
            [self._full_neigh[lo:hi] for lo, hi in segments]
        ) if segments else self._full_neigh[:0]

    def charge(self, senders=None):
        np = batch.numpy_or_none()
        if senders is None:
            self._lane_sent += self._lane_degrees
            return int(self._lane_degrees.sum())
        per_lane = np.bincount(
            self.lane_of[senders],
            weights=self._fdegrees[senders],
            minlength=self.lane_count,
        )
        self._lane_sent += per_lane
        return int(per_lane.sum())

    def take_lane_sent(self):
        """This round's per-lane message counts; resets the accumulator."""
        np = batch.numpy_or_none()
        out = self._lane_sent
        self._lane_sent = np.zeros(self.lane_count, dtype=np.float64)
        return out


#: ``tuple(id(cg) for member cgs) -> FusedBatchGraph``, evicted by
#: weakref finalizers when any member ``CompiledGraph`` is collected.
#: Keyed by object identity (not content): a seed sweep reuses the same
#: compiled graphs, which is the case the cache exists for.
_SLAB_CACHE = {}
_SLAB_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def slab_cache_stats():
    """Copy of the fused-slab cache counters (tests assert cache hits)."""
    return dict(_SLAB_STATS)


def _evict_slab(key):
    if _SLAB_CACHE.pop(key, None) is not None:
        _SLAB_STATS["evictions"] += 1


def release_slabs_of(cg):
    """Deterministically evict every cached slab that includes ``cg``.

    The weakref finalizers already evict entries when a member graph is
    collected, but a long-lived session (D18) cannot lean on collection
    timing — user code may still hold the pre-mutation graph — so
    ``SimulationSession.mutate``/``close`` call this to guarantee a
    retired topology never serves another slab, no matter who still
    references it.
    """
    target = id(cg)
    for key in [key for key in _SLAB_CACHE if target in key]:
        _evict_slab(key)


def fused_slab_of(cgs):
    """The (cached) block-diagonal slab over compiled member graphs."""
    key = tuple(id(cg) for cg in cgs)
    slab = _SLAB_CACHE.get(key)
    if slab is not None:
        _SLAB_STATS["hits"] += 1
        return slab
    _SLAB_STATS["misses"] += 1
    np = batch.numpy_or_none()
    bgs = [batch.batch_graph_of(cg) for cg in cgs]
    labels = [(lane, u) for lane, bg in enumerate(bgs) for u in bg.labels]
    idents = [ident for bg in bgs for ident in bg.idents]
    counts = [bg.n for bg in bgs]
    lane_bounds = np.zeros(len(bgs) + 1, dtype=np.int64)
    np.cumsum(counts, out=lane_bounds[1:])
    edge_base = 0
    offset_parts = [np.zeros(1, dtype=np.int64)]
    neigh_parts = []
    for lane, bg in enumerate(bgs):
        offset_parts.append(bg.offsets[1:] + edge_base)
        neigh_parts.append(bg.neigh + lane_bounds[lane])
        edge_base += int(bg.offsets[-1])
    offsets = np.concatenate(offset_parts)
    neigh = (
        np.concatenate(neigh_parts)
        if neigh_parts
        else np.zeros(0, dtype=np.int64)
    )
    lane_of = np.repeat(np.arange(len(bgs), dtype=np.int64), counts)
    slab = FusedBatchGraph(labels, idents, offsets, neigh, lane_of, lane_bounds)
    _SLAB_CACHE[key] = slab
    for cg in {id(c): c for c in cgs}.values():
        weakref.finalize(cg, _evict_slab, key)
    return slab


class _FusedMtFactory:
    """``slab index -> random.Random`` seeded from the *lane's* material.

    The mt twin of the lane-offset counter derivation: node ``i`` of
    lane ``k`` gets exactly the generator its solo run would build from
    ``(seed_k, salt_k, ident_i)``.
    """

    __slots__ = ("lane_of", "idents", "seeds", "salts")

    def __init__(self, lane_of, idents, seeds, salts):
        self.lane_of = lane_of
        self.idents = idents
        self.seeds = seeds
        self.salts = salts

    def __call__(self, i):
        k = int(self.lane_of[i])
        return make_rng(self.seeds[k], self.salts[k], self.idents[i])


def _fused_draw_builder(bg, rng_mode, seeds, salts):
    """Per-lane draw derivation: each lane's streams match its solo run.

    Counter scheme: concatenate per-lane ``stream_keys`` derived from
    that lane's ``run_key(seed, salt)`` — the closed per-draw form then
    yields bit-identical values because a node's draw index (its phase)
    advances exactly as in the solo run (lanes share the schedule).
    """

    def build(bits):
        np = batch.numpy_or_none()
        if rng_mode == "counter":
            run_keys = tuple(
                run_key(seeds[k], salts[k]) for k in range(bg.lane_count)
            )
            # Key derivation is a pure function of the per-lane run
            # keys, so a repeated sweep (or a race re-running its arms
            # at a doubled budget) reuses the concatenated key slab.
            keys = bg._draw_cache.get(run_keys)
            if keys is None:
                if len(bg._draw_cache) >= 8:
                    bg._draw_cache.clear()
                keys = np.concatenate(
                    [
                        batch.stream_keys(
                            run_keys[k],
                            bg.idents[
                                bg.lane_bounds[k] : bg.lane_bounds[k + 1]
                            ],
                        )
                        for k in range(bg.lane_count)
                    ]
                )
                bg._draw_cache[run_keys] = keys
            return batch.CounterDraws(keys, bits)
        return batch.SequentialDraws(
            _FusedMtFactory(bg.lane_of, bg.idents, seeds, salts), bg.n, bits
        )

    return build


class _Lane:
    """Per-run bookkeeping of one ``run_many`` job."""

    __slots__ = (
        "index",
        "graph",
        "algorithm",
        "guesses",
        "inputs",
        "seed",
        "salt",
        "labels",
        "messages",
        "remaining",
        "result",
        "error",
        "cancelled",
    )

    def __init__(self, index, graph, algorithm, guesses, inputs, seed, salt):
        self.index = index
        self.graph = graph
        self.algorithm = algorithm
        self.guesses = guesses
        self.inputs = inputs
        self.seed = seed
        self.salt = salt
        self.labels = None
        self.messages = 0
        self.remaining = 0
        self.result = None
        self.error = None
        self.cancelled = False

    @property
    def settled(self):
        return self.result is not None or self.error is not None


class _Chunk:
    """One fused kernel: a slab, its kernel and its member lanes.

    ``value_of``/``round_of`` are slab-wide per-node result and finish
    round accumulators, filled by vectorized scatters each round and
    only materialized into the per-lane dicts a lane's
    :class:`RunResult` needs at the moment that lane completes — the
    per-node Python work is two ``dict(zip(...))`` passes per lane, not
    a per-node loop per round.
    """

    __slots__ = ("bg", "kernel", "lanes", "value_of", "round_of")

    def __init__(self, bg, kernel, lanes):
        np = batch.numpy_or_none()
        self.bg = bg
        self.kernel = kernel
        self.lanes = lanes
        self.value_of = np.empty(bg.n, dtype=object)
        self.round_of = np.zeros(bg.n, dtype=np.int64)

    def live(self):
        return any(not lane.settled for lane in self.lanes)

    def refresh_window(self):
        """Retire any newly settled lanes from the shared edge slab."""
        bg = self.bg
        newly = [
            pos
            for pos, lane in enumerate(self.lanes)
            if lane.settled and bg._live[pos]
        ]
        if newly:
            bg.retire_lanes(newly)

    def materialize(self, pos, lane):
        """Commit lane ``pos``'s result from the slab accumulators."""
        lo = int(self.bg.lane_bounds[pos])
        hi = int(self.bg.lane_bounds[pos + 1])
        values = self.value_of[lo:hi].tolist()
        rounds_arr = self.round_of[lo:hi]
        rounds = rounds_arr.tolist()
        lane.result = RunResult(
            dict(zip(lane.labels, values)),
            dict(zip(lane.labels, rounds)),
            int(rounds_arr.max()) if hi > lo else 0,
            lane.messages,
            frozenset(),
            None,
        )


def _per_lane(value, count, name):
    if isinstance(value, (list, tuple)):
        if len(value) != count:
            raise ParameterError(
                f"{name} has {len(value)} entries for {count} jobs"
            )
        return list(value)
    return [value] * count


def _cancel(lanes_list, cancels, winner):
    for idx in cancels or ():
        lane = lanes_list[idx]
        if not lane.settled and not lane.cancelled:
            lane.cancelled = True
            lane.error = LaneCancelled(idx, winner=winner)


def _notify(on_lane_done, lane, lanes_list):
    if on_lane_done is None:
        return
    _cancel(lanes_list, on_lane_done(lane.index, lane.result), lane.index)


def run_many(
    jobs,
    *,
    seeds=0,
    salts=0,
    guesses=None,
    inputs=None,
    max_rounds=None,
    default_output=None,
    truncate=False,
    backend=None,
    rng=None,
    lanes=None,
    errors="raise",
    on_lane_done=None,
):
    """Execute independent runs, fusing certified ones into shared slabs.

    Parameters
    ----------
    jobs:
        Iterable of ``(graph, algorithm)`` or ``(graph, algorithm,
        opts)`` where ``opts`` may override ``guesses``, ``inputs``,
        ``seed`` and ``salt`` per job.
    seeds, salts:
        Scalar (applied to every lane) or one-per-job sequences.
    guesses, inputs:
        Call-wide bases merged under each job's own overrides.
    max_rounds, default_output, truncate:
        Round restriction, applied to every lane with the exact
        semantics of :func:`~repro.local.runner.run`.
    backend, rng:
        Resolved like a solo run.  Lanes fuse when the resolved
        backend is batch-capable (not ``"reference"``/``"sharded"``)
        and the algorithm is certified ``supports_fuse``; everything
        else — including every lane when numpy is missing or a fault
        plan is ambient — runs solo, bit-identically.
    lanes:
        Maximum lane width per slab (defaults to
        ``DEFAULT_FUSE_LANES``, pinned by ``use_backend("fused",
        lanes=b)``).
    errors:
        ``"raise"`` raises the lowest-index lane's
        :class:`NonTerminationError` after all lanes settle;
        ``"return"`` places exception objects in the result list.
    on_lane_done:
        Optional hook ``(lane_index, result) -> cancel_indices`` called
        the moment a lane commits; returned lanes are cancelled (their
        slot becomes a :class:`~repro.errors.LaneCancelled`, never
        raised) — the speculative-racing primitive.

    Returns the per-job list of :class:`~repro.local.runner.RunResult`
    (or exception objects under ``errors="return"``), each
    field-for-field identical to the job's solo ``run``.
    """
    if errors not in ("raise", "return"):
        raise ParameterError(f"errors must be 'raise' or 'return', got {errors!r}")
    jobs = list(jobs)
    count = len(jobs)
    seed_list = _per_lane(seeds, count, "seeds")
    salt_list = _per_lane(salts, count, "salts")
    base_guesses = dict(guesses or {})
    base_inputs = dict(inputs or {})
    lanes_list = []
    for k, job in enumerate(jobs):
        if not isinstance(job, (tuple, list)) or len(job) not in (2, 3):
            raise ParameterError(
                "each job must be (graph, algorithm) or (graph, algorithm, opts)"
            )
        graph, algorithm = job[0], job[1]
        opts = dict(job[2]) if len(job) == 3 else {}
        unknown = set(opts) - {"guesses", "inputs", "seed", "salt"}
        if unknown:
            raise ParameterError(f"unknown job option(s) {sorted(unknown)}")
        if capabilities_of(algorithm).get("kind") != "node":
            raise TypeError(
                f"expected LocalAlgorithm, got {type(algorithm).__name__}"
            )
        lane_guesses = dict(base_guesses)
        lane_guesses.update(opts.get("guesses") or {})
        missing = [p for p in algorithm.requires if p not in lane_guesses]
        if missing:
            raise ParameterError(
                f"algorithm {algorithm.name!r} requires guesses for {missing}"
            )
        lane_inputs = dict(base_inputs)
        lane_inputs.update(opts.get("inputs") or {})
        lanes_list.append(
            _Lane(
                k,
                graph,
                algorithm,
                lane_guesses,
                lane_inputs,
                opts.get("seed", seed_list[k]),
                opts.get("salt", salt_list[k]),
            )
        )
    truncating = truncate or default_output is not None
    if max_rounds is None:
        if truncating:
            raise ParameterError("truncation requires an explicit max_rounds")
        cap = SAFETY_ROUND_CAP
    else:
        cap = max_rounds
    backend_name, rng_mode = resolve_backend(backend, rng)
    width = int(lanes) if lanes is not None else _runner.DEFAULT_FUSE_LANES
    if width < 1:
        raise ParameterError(f"lanes must be >= 1, got {lanes}")
    fuse_ok = (
        batch.numpy_or_none() is not None
        and not resolve_faults(None)
        and backend_name not in ("reference", "sharded")
        and batching_requested(backend_name)
    )
    solo, chunks = [], []
    if fuse_ok:
        groups = {}
        for lane in lanes_list:
            caps = capabilities_of(lane.algorithm)
            cg = lane.graph.compiled()
            if not caps.get("supports_fuse") or cg.n == 0:
                solo.append(lane)
                continue
            try:
                # Lanes only share a slab under one schedule: the same
                # algorithm object AND the same guesses (round layouts
                # of the certified kernels are pure in the guesses).
                gkey = tuple(sorted(lane.guesses.items()))
            except TypeError:
                solo.append(lane)
                continue
            groups.setdefault((id(lane.algorithm), gkey), []).append(lane)
        claimed = set()
        for members in groups.values():
            for at in range(0, len(members), width):
                chunk_lanes = members[at : at + width]
                chunk = _build_chunk(chunk_lanes, rng_mode, claimed)
                if chunk is None:
                    solo.extend(chunk_lanes)
                else:
                    chunks.append(chunk)
    else:
        solo = list(lanes_list)
    # Solo lanes run first (their cancellations can still skip later
    # solo lanes); the fused drive then leaves last_stepping()=="fused"
    # whenever any lane actually fused.
    for lane in solo:
        if lane.settled:
            continue
        try:
            lane.result = run(
                lane.graph,
                lane.algorithm,
                inputs=lane.inputs,
                guesses=lane.guesses,
                seed=lane.seed,
                salt=lane.salt,
                max_rounds=max_rounds,
                default_output=default_output,
                truncate=truncate,
                backend=backend_name,
                rng=rng_mode,
            )
        except NonTerminationError as exc:
            lane.error = exc
            continue
        _notify(on_lane_done, lane, lanes_list)
    if chunks:
        _drive(
            chunks,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            on_lane_done=on_lane_done,
            lanes_list=lanes_list,
        )
        # Noted after the drive so runs launched from on_lane_done hooks
        # (e.g. racing's pruner verifications) don't mask the tag.
        note_stepping("fused")
    if errors == "raise":
        for lane in lanes_list:
            if lane.error is not None and not lane.cancelled:
                raise lane.error
    return [
        lane.result if lane.result is not None else lane.error
        for lane in lanes_list
    ]


def _build_chunk(chunk_lanes, rng_mode, claimed):
    """Slab + kernel for one group chunk (``None``: factory declined).

    ``claimed`` holds the slab ids already handed to earlier chunks of
    this call; a collision gets a :meth:`FusedBatchGraph.fork` so the
    concurrently-stepped chunks don't share mutable window state.
    """
    algorithm = chunk_lanes[0].algorithm
    cgs = tuple(lane.graph.compiled() for lane in chunk_lanes)
    bg = fused_slab_of(cgs)
    if id(bg) in claimed:
        bg = bg.fork()
    else:
        claimed.add(id(bg))
    fused_inputs = {}
    for pos, lane in enumerate(chunk_lanes):
        lane.remaining = cgs[pos].n
        lane.labels = cgs[pos].labels
        for u, x in lane.inputs.items():
            fused_inputs[(pos, u)] = x
    setup = batch.BatchSetup(
        fused_inputs,
        dict(chunk_lanes[0].guesses),
        rng_mode,
        _fused_draw_builder(
            bg,
            rng_mode,
            [lane.seed for lane in chunk_lanes],
            [lane.salt for lane in chunk_lanes],
        ),
    )
    kernel = algorithm.batch(bg, setup)
    if kernel is None:
        return None
    # A stale accumulator (or a shrunken edge window left by an aborted
    # drive) would corrupt the first round on a cache-hit slab.
    bg.take_lane_sent()
    bg.reset_window()
    return _Chunk(bg, kernel, chunk_lanes)


def _drive(chunks, *, cap, truncating, default_output, on_lane_done, lanes_list):
    """The fused round loop: ``run_batch``'s ledger, kept per lane.

    All chunks advance in lockstep engine rounds (a racing winner at
    round r cancels losers before their round r+1, even across
    chunks).  A chunk leaves the loop when its kernel is done *or* all
    its lanes are settled — cancelled fleets stop paying immediately.
    """
    pending = []
    for chunk in chunks:
        finished, results, sent = chunk.kernel.start()
        _distribute(chunk, finished, results, 0, sent, on_lane_done, lanes_list)
        if not chunk.kernel.done and chunk.live():
            chunk.refresh_window()
            pending.append(chunk)
    rounds = 0
    while pending:
        if rounds >= cap:
            for chunk in pending:
                _cut(chunk, cap, truncating, default_output, on_lane_done, lanes_list)
            return
        rounds += 1
        still = []
        for chunk in pending:
            if not chunk.live():
                continue
            finished, results, sent = chunk.kernel.step()
            _distribute(
                chunk, finished, results, rounds, sent, on_lane_done, lanes_list
            )
            if not chunk.kernel.done and chunk.live():
                still.append(chunk)
        # Settlements this round (completions anywhere, cancellations
        # across chunks) retire their lanes' edges before the next step.
        for chunk in still:
            chunk.refresh_window()
        pending = still


def _distribute(chunk, finished, results, round_no, sent, on_lane_done, lanes_list):
    """Credit one engine round to the chunk's lanes (vectorized)."""
    np = batch.numpy_or_none()
    bg = chunk.bg
    lane_sent = bg.take_lane_sent()
    attributed = int(lane_sent.sum())
    if attributed != sent:
        raise ReproError(
            f"fused message attribution mismatch for "
            f"{chunk.lanes[0].algorithm.name!r} at round {round_no}: kernel "
            f"reported {sent}, lanes account for {attributed} — the kernel "
            "bypasses BatchGraph.charge and must not be certified fuse=True"
        )
    for pos, lane in enumerate(chunk.lanes):
        lane.messages += int(lane_sent[pos])
    if not len(finished):
        return
    fin = np.asarray(finished, dtype=np.int64)
    chunk.value_of[fin] = results
    chunk.round_of[fin] = round_no
    counts = np.bincount(bg.lane_of[fin], minlength=len(chunk.lanes))
    for pos in np.flatnonzero(counts).tolist():
        lane = chunk.lanes[pos]
        lane.remaining -= int(counts[pos])
        if lane.remaining == 0 and not lane.settled:
            chunk.materialize(pos, lane)
            _notify(on_lane_done, lane, lanes_list)


def _cut(chunk, cap, truncating, default_output, on_lane_done, lanes_list):
    """Round cap reached: truncate or fail each unfinished lane.

    Mirrors ``run_batch`` exactly — truncated lanes report
    ``rounds == cap`` with the forced nodes in ``truncated``; without
    truncation the lane's slot becomes a :class:`NonTerminationError`
    (other lanes' results stand, per the ``errors`` policy).
    """
    np = batch.numpy_or_none()
    bg = chunk.bg
    undone = chunk.kernel.undone_indices()
    undone_by_lane = {}
    for i in undone:
        undone_by_lane.setdefault(int(bg.lane_of[i]), []).append(
            bg.labels[i][1]
        )
    if truncating and undone:
        idx = np.asarray(undone, dtype=np.int64)
        chunk.value_of[idx] = default_output
        chunk.round_of[idx] = cap
    for pos, lane in enumerate(chunk.lanes):
        if lane.settled:
            continue
        stragglers = undone_by_lane.get(pos, [])
        if not truncating:
            lane.error = NonTerminationError(
                lane.algorithm.name, cap, stragglers
            )
            continue
        chunk.materialize(pos, lane)
        lane.result = RunResult(
            lane.result.outputs, lane.result.finish_round, cap,
            lane.messages, frozenset(stragglers), None,
        )
        _notify(on_lane_done, lane, lanes_list)
