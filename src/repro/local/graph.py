"""Simulation-graph representation used by the LOCAL runner.

A :class:`SimGraph` is an immutable adjacency view of a network together
with the unique node identities the paper assumes (Section 2: "each node
v is provided with a unique integer Id(v)").  Ports are assigned per node
in increasing order of neighbour identity, which gives deterministic
simulations.

Induced subgraphs — the ``(G_i, x_i)`` instances of the alternating
algorithm (Figure 1) — are produced by :meth:`SimGraph.subgraph`.
"""

from __future__ import annotations

import networkx as nx

from ..errors import InvalidInstanceError, ParameterError


class GraphDelta:
    """A validated batch of topology edits for :meth:`SimGraph.apply_delta`.

    Deltas are the unit of mutation for the live-graph session service
    (:mod:`repro.local.service`, DESIGN.md D18).  One delta may insert
    and delete both edges and nodes; application order is fixed and
    documented: edge deletions, then node deletions (taking their
    incident edges with them), then node insertions, then edge
    insertions — so inserted edges may touch inserted nodes, and a
    deleted edge must exist in the *pre*-delta graph.

    Validation is eager and total (mirroring ``FaultPlan``): every
    structural error — a self-loop, a duplicate within the delta, an
    ident that is not a positive integer — raises
    :class:`~repro.errors.ParameterError` at construction, and every
    graph-relative error — deleting a nonexistent edge, inserting a
    duplicate edge, touching an unknown node label, an identity
    collision — raises at :meth:`validate` time, before any state
    changes.  A delta either applies exactly or not at all.
    """

    __slots__ = ("add_nodes", "del_nodes", "add_edges", "del_edges")

    def __init__(self, *, add_nodes=(), del_nodes=(), add_edges=(),
                 del_edges=()):
        if isinstance(add_nodes, dict):
            add_nodes = add_nodes.items()
        self.add_nodes = tuple((u, ident) for u, ident in add_nodes)
        self.del_nodes = tuple(del_nodes)
        self.add_edges = tuple((u, v) for u, v in add_edges)
        self.del_edges = tuple((u, v) for u, v in del_edges)

        added_labels = set()
        for u, ident in self.add_nodes:
            if isinstance(ident, bool) or not isinstance(ident, int) or ident < 1:
                raise ParameterError(
                    f"added node {u!r}: identities must be positive integers "
                    f"(paper Section 2), got {ident!r}"
                )
            if u in added_labels:
                raise ParameterError(f"node {u!r} added twice in one delta")
            added_labels.add(u)
        added_idents = [ident for _, ident in self.add_nodes]
        if len(set(added_idents)) != len(added_idents):
            raise ParameterError("added identities collide within the delta")
        deleted = set()
        for u in self.del_nodes:
            if u in deleted:
                raise ParameterError(f"node {u!r} deleted twice in one delta")
            deleted.add(u)
        both = added_labels & deleted
        if both:
            raise ParameterError(
                f"labels both added and deleted in one delta: "
                f"{sorted(both, key=repr)[:5]} (split into two deltas)"
            )
        for kind, edges in (("added", self.add_edges),
                            ("deleted", self.del_edges)):
            seen = set()
            for u, v in edges:
                if u == v:
                    raise ParameterError(f"{kind} edge ({u!r}, {v!r}) is a self-loop")
                key = frozenset((u, v))
                if key in seen:
                    raise ParameterError(
                        f"edge ({u!r}, {v!r}) {kind} twice in one delta"
                    )
                seen.add(key)
        overlap = (
            {frozenset(e) for e in self.add_edges}
            & {frozenset(e) for e in self.del_edges}
        )
        if overlap:
            pair = sorted(next(iter(overlap)), key=repr)
            raise ParameterError(
                f"edge {tuple(pair)!r} both added and deleted in one delta "
                f"(split into two deltas)"
            )
        for u, v in self.add_edges:
            if u in deleted or v in deleted:
                raise ParameterError(
                    f"added edge ({u!r}, {v!r}) touches a node deleted by "
                    f"the same delta"
                )

    def is_empty(self):
        """True when applying this delta is the identity."""
        return not (self.add_nodes or self.del_nodes
                    or self.add_edges or self.del_edges)

    def __bool__(self):
        return not self.is_empty()

    def validate(self, graph):
        """Check this delta against ``graph``; raise ParameterError early.

        Pure — never touches graph state.  All graph-relative edge cases
        live here: unknown labels, nonexistent deleted edges, duplicate
        inserted edges, identity collisions with surviving nodes.
        """
        node_set = graph._node_set
        for u in self.del_nodes:
            if u not in node_set:
                raise ParameterError(f"cannot delete unknown node {u!r}")
        deleted = set(self.del_nodes)
        for u, v in self.del_edges:
            if u not in node_set or v not in node_set:
                missing = u if u not in node_set else v
                raise ParameterError(
                    f"deleted edge ({u!r}, {v!r}) touches unknown node "
                    f"{missing!r}"
                )
            if not graph.has_edge(u, v):
                raise ParameterError(
                    f"cannot delete nonexistent edge ({u!r}, {v!r})"
                )
        added_labels = {u for u, _ in self.add_nodes}
        for u, ident in self.add_nodes:
            if u in node_set:
                raise ParameterError(
                    f"cannot add node {u!r}: label already in the graph"
                )
        surviving_idents = {
            graph.ident[u] for u in graph.nodes if u not in deleted
        }
        for u, ident in self.add_nodes:
            if ident in surviving_idents:
                raise ParameterError(
                    f"added node {u!r}: identity {ident} collides with a "
                    f"surviving node"
                )
        final = (node_set - deleted) | added_labels
        dropped = {frozenset(e) for e in self.del_edges}
        for u, v in self.add_edges:
            if u not in final or v not in final:
                missing = u if u not in final else v
                raise ParameterError(
                    f"added edge ({u!r}, {v!r}) touches unknown node "
                    f"{missing!r}"
                )
            if (
                u in node_set
                and v in node_set
                and graph.has_edge(u, v)
                and frozenset((u, v)) not in dropped
            ):
                raise ParameterError(
                    f"cannot add duplicate edge ({u!r}, {v!r})"
                )

    def __repr__(self):
        return (
            f"GraphDelta(+{len(self.add_nodes)}n/-{len(self.del_nodes)}n, "
            f"+{len(self.add_edges)}e/-{len(self.del_edges)}e)"
        )


class SimGraph:
    """Static adjacency + identity view of a network.

    Attributes
    ----------
    nodes:
        Tuple of node labels, sorted by identity.
    ident:
        Mapping node label -> unique integer identity.
    adj:
        Mapping node -> tuple of ``(port, neighbour, reverse_port)``
        triples where ``reverse_port`` is the port of *node* in
        *neighbour*'s own numbering.
    """

    __slots__ = ("nodes", "ident", "_adj", "_degree", "_node_set", "_compiled")

    def __init__(self, nodes, ident, adj):
        self.nodes = tuple(nodes)
        self.ident = dict(ident)
        # ``adj`` may be None for graphs born from a CSR restriction
        # (repro.local.engine.CompiledGraph.restrict); the dict view is
        # then derived lazily from the CSR on first access, so graphs
        # that only ever run on the compiled engine never build it.
        self._adj = adj
        self._degree = (
            None if adj is None else {u: len(adj[u]) for u in self.nodes}
        )
        self._node_set = frozenset(self.nodes)
        #: Lazily built CSR view (repro.local.engine.CompiledGraph).
        self._compiled = None

    @property
    def adj(self):
        view = self._adj
        if view is None:
            cg = self._compiled
            if cg is None:
                raise InvalidInstanceError(
                    "SimGraph built with adj=None but no compiled CSR "
                    "attached; adj=None is reserved for "
                    "CompiledGraph.restrict children"
                )
            labels = cg.labels
            offsets, neigh, rev = cg.offsets, cg.neigh, cg.rev
            view = {}
            start = 0
            for j, u in enumerate(labels):
                end = offsets[j + 1]
                view[u] = tuple(
                    (p, labels[vi], rp)
                    for p, (vi, rp) in enumerate(
                        zip(neigh[start:end], rev[start:end])
                    )
                )
                start = end
            self._adj = view
        return view

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph, idents=None):
        """Build a :class:`SimGraph` from an undirected networkx graph.

        Parameters
        ----------
        graph:
            Undirected simple graph.  Self-loops are rejected.
        idents:
            Optional mapping node -> unique integer identity.  Defaults to
            the node labels themselves when they are integers, else to an
            enumeration in sorted-label order.
        """
        if graph.is_directed():
            raise InvalidInstanceError("LOCAL networks are undirected")
        if any(u == v for u, v in graph.edges()):
            raise InvalidInstanceError("self-loops are not allowed")
        if idents is None:
            labels = list(graph.nodes())
            if all(isinstance(u, int) for u in labels):
                # The paper's identities are positive integers; shift
                # 0-based integer labels up by one.
                idents = {u: u + 1 for u in labels}
            else:
                idents = {u: i + 1 for i, u in enumerate(sorted(labels, key=repr))}
        else:
            idents = dict(idents)
            missing = [u for u in graph.nodes() if u not in idents]
            if missing:
                raise InvalidInstanceError(
                    f"identities missing for {len(missing)} node(s)"
                )
        values = list(idents[u] for u in graph.nodes())
        if len(set(values)) != len(values):
            raise InvalidInstanceError("identities must be unique")
        if any((not isinstance(x, int)) or x < 1 for x in values):
            raise InvalidInstanceError(
                "identities must be positive integers (paper Section 2)"
            )
        return cls._build(list(graph.nodes()), idents, graph.adj)

    @classmethod
    def _build(cls, labels, idents, neighbour_view):
        nodes = sorted(labels, key=lambda u: idents[u])
        order = {}
        for u in nodes:
            neighbours = sorted(
                (v for v in neighbour_view[u] if v in idents and v != u),
                key=lambda v: idents[v],
            )
            order[u] = neighbours
        port_of = {
            u: {v: p for p, v in enumerate(order[u])} for u in nodes
        }
        adj = {}
        for u in nodes:
            adj[u] = tuple(
                (p, v, port_of[v][u]) for p, v in enumerate(order[u])
            )
        return cls(nodes, idents, adj)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n(self):
        """Number of nodes."""
        return len(self.nodes)

    @property
    def _degrees(self):
        table = self._degree
        if table is None:
            cg = self._compiled
            if cg is None:
                raise InvalidInstanceError(
                    "SimGraph built with adj=None but no compiled CSR "
                    "attached; adj=None is reserved for "
                    "CompiledGraph.restrict children"
                )
            table = self._degree = dict(zip(cg.labels, cg.degrees))
        return table

    @property
    def max_degree(self):
        """Maximum degree Δ (0 for the empty graph)."""
        if not self.nodes:
            return 0
        return max(self._degrees.values())

    @property
    def max_ident(self):
        """Largest identity m (0 for the empty graph)."""
        if not self.nodes:
            return 0
        return max(self.ident.values())

    def degree(self, u):
        """Degree of node ``u``."""
        return self._degrees[u]

    def neighbors(self, u):
        """Neighbour labels of ``u`` in port order."""
        return tuple(v for _, v, _ in self.adj[u])

    def has_node(self, u):
        return u in self._node_set

    def has_edge(self, u, v):
        """Edge membership in O(log deg), without materializing ``adj``.

        Delta validation (:meth:`GraphDelta.validate`) probes edges on
        every session mutate; going through the dict view would rebuild
        the O(m) adjacency on each CSR-born child and erase the
        incremental win, so this bisects the CSR row directly.
        """
        if self._adj is not None:
            return any(w == v for _, w, _ in self._adj[u])
        from bisect import bisect_left

        cg = self.compiled()
        i, j = cg.index[u], cg.index[v]
        lo, hi = cg.offsets[i], cg.offsets[i + 1]
        k = bisect_left(cg.neigh, j, lo, hi)
        return k < hi and cg.neigh[k] == j

    def edge_count(self):
        """Number of edges."""
        return sum(self._degrees.values()) // 2

    def edges(self):
        """Iterate over edges as (u, v) with ident(u) < ident(v)."""
        for u in self.nodes:
            iu = self.ident[u]
            for _, v, _ in self.adj[u]:
                if iu < self.ident[v]:
                    yield (u, v)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def compiled(self):
        """The cached CSR view of this graph (built on first use)."""
        view = self._compiled
        if view is None:
            from .engine import CompiledGraph

            view = self._compiled = CompiledGraph(self)
        return view

    def partition(self, k):
        """Edge-cut plan of the CSR into ``k`` shards (cached per count).

        The plan backs the sharded round loop
        (:mod:`repro.local.sharded`, ``run(graph, algo, shards=k)``):
        contiguous identity-ordered shards with halo/ghost tables.
        Restriction children carry their own CSR, so every alternation
        instance partitions without recompiling structure.
        """
        return self.compiled().partition(k)

    def subgraph(self, keep):
        """Induced subgraph on ``keep`` with fresh port numbering.

        This realizes the instances ``(G_{i+1}, x_{i+1})`` produced by a
        pruning algorithm: pruned nodes leave the network entirely and the
        survivors renumber their ports among themselves.

        Incremental path: ``self.nodes`` and every adjacency row are
        already sorted by identity, and restriction preserves that order,
        so survivor ports renumber by a rank scan in O(surviving-degree)
        via :meth:`CompiledGraph.restrict <repro.local.engine.
        CompiledGraph.restrict>` — no re-sorting of identities, no global
        re-porting (the ``subgraph_rebuild`` reference path does the full
        sort-and-re-port rebuild and is kept as the executable
        specification).  The child inherits a ready-made CSR, so an
        alternation never recompiles surviving structure.

        Under the reference backend (``use_backend("reference")``) the
        rebuild path is used instead, keeping that backend a faithful
        end-to-end reproduction of the seed execution stack; both paths
        produce identical graphs (asserted by the equivalence suite).
        """
        from .runner import DEFAULT_BACKEND

        if DEFAULT_BACKEND == "reference":
            return self.subgraph_rebuild(keep)
        keep_set = keep if isinstance(keep, frozenset) else frozenset(keep)
        unknown = keep_set - self._node_set
        if unknown:
            raise InvalidInstanceError(
                f"subgraph nodes not in graph: {sorted(unknown, key=repr)[:5]}"
            )
        if len(keep_set) == len(self.nodes):
            return self
        return self.compiled().restrict(keep_set)

    def subgraph_rebuild(self, keep):
        """Reference restriction path: full sort-and-re-port rebuild.

        Kept as the executable specification that the incremental
        :meth:`subgraph` is tested against (DESIGN.md, backend
        equivalence contract).
        """
        keep_set = set(keep)
        unknown = keep_set - self._node_set
        if unknown:
            raise InvalidInstanceError(
                f"subgraph nodes not in graph: {sorted(unknown, key=repr)[:5]}"
            )
        idents = {u: self.ident[u] for u in keep_set}
        neighbour_view = {
            u: [v for _, v, _ in self.adj[u] if v in keep_set]
            for u in keep_set
        }
        return SimGraph._build(list(keep_set), idents, neighbour_view)

    def apply_delta(self, delta):
        """Apply a :class:`GraphDelta`, returning a **new** SimGraph.

        Application is functional: the receiver is never mutated, so
        every cache keyed by object identity (``CompiledGraph._batch``,
        partition plans, the fused slab cache) stays trivially coherent
        — a mutated topology is a different object with empty caches,
        not a patched one with stale entries (DESIGN.md D18).

        The result is bit-identical to rebuilding from scratch: the
        CSR layout is a pure function of the (labels, identities, edge
        set) triple — nodes in identity order, rows sorted by neighbour
        identity, ports equal to ranks — and the incremental patch
        produces exactly that canonical form (asserted by the
        differential harness in ``tests/test_service.py``).

        Under the reference backend the full sort-and-re-port rebuild
        path (:meth:`apply_delta_rebuild`) is used instead, mirroring
        :meth:`subgraph`; both paths produce identical graphs.

        An empty delta returns ``self`` unchanged (no-op identity).
        """
        from .runner import DEFAULT_BACKEND

        if not isinstance(delta, GraphDelta):
            raise ParameterError(
                f"apply_delta expects a GraphDelta, got {type(delta).__name__}"
            )
        delta.validate(self)
        if delta.is_empty():
            return self
        if DEFAULT_BACKEND == "reference":
            return self.apply_delta_rebuild(delta)
        return self.compiled().apply_delta(delta)

    def apply_delta_rebuild(self, delta):
        """Reference delta path: full sort-and-re-port rebuild.

        The executable specification the incremental
        :meth:`CompiledGraph.apply_delta <repro.local.engine.
        CompiledGraph.apply_delta>` patch is tested against — same role
        :meth:`subgraph_rebuild` plays for :meth:`subgraph`.
        """
        delta.validate(self)
        if delta.is_empty():
            return self
        dead = set(delta.del_nodes)
        dropped = {frozenset(e) for e in delta.del_edges}
        idents = {u: self.ident[u] for u in self.nodes if u not in dead}
        view = {
            u: [
                v
                for _, v, _ in self.adj[u]
                if v not in dead and frozenset((u, v)) not in dropped
            ]
            for u in self.nodes
            if u not in dead
        }
        for u, ident in delta.add_nodes:
            idents[u] = ident
            view[u] = []
        for u, v in delta.add_edges:
            view[u].append(v)
            view[v].append(u)
        return SimGraph._build(list(idents), idents, view)

    def to_networkx(self):
        """Export to a networkx graph (identities as node attribute)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges())
        nx.set_node_attributes(graph, self.ident, "ident")
        return graph

    def __repr__(self):
        return f"SimGraph(n={self.n}, m={self.edge_count()}, Δ={self.max_degree})"
