"""Simulation-graph representation used by the LOCAL runner.

A :class:`SimGraph` is an immutable adjacency view of a network together
with the unique node identities the paper assumes (Section 2: "each node
v is provided with a unique integer Id(v)").  Ports are assigned per node
in increasing order of neighbour identity, which gives deterministic
simulations.

Induced subgraphs — the ``(G_i, x_i)`` instances of the alternating
algorithm (Figure 1) — are produced by :meth:`SimGraph.subgraph`.
"""

from __future__ import annotations

import networkx as nx

from ..errors import InvalidInstanceError


class SimGraph:
    """Static adjacency + identity view of a network.

    Attributes
    ----------
    nodes:
        Tuple of node labels, sorted by identity.
    ident:
        Mapping node label -> unique integer identity.
    adj:
        Mapping node -> tuple of ``(port, neighbour, reverse_port)``
        triples where ``reverse_port`` is the port of *node* in
        *neighbour*'s own numbering.
    """

    __slots__ = ("nodes", "ident", "_adj", "_degree", "_node_set", "_compiled")

    def __init__(self, nodes, ident, adj):
        self.nodes = tuple(nodes)
        self.ident = dict(ident)
        # ``adj`` may be None for graphs born from a CSR restriction
        # (repro.local.engine.CompiledGraph.restrict); the dict view is
        # then derived lazily from the CSR on first access, so graphs
        # that only ever run on the compiled engine never build it.
        self._adj = adj
        self._degree = (
            None if adj is None else {u: len(adj[u]) for u in self.nodes}
        )
        self._node_set = frozenset(self.nodes)
        #: Lazily built CSR view (repro.local.engine.CompiledGraph).
        self._compiled = None

    @property
    def adj(self):
        view = self._adj
        if view is None:
            cg = self._compiled
            if cg is None:
                raise InvalidInstanceError(
                    "SimGraph built with adj=None but no compiled CSR "
                    "attached; adj=None is reserved for "
                    "CompiledGraph.restrict children"
                )
            labels = cg.labels
            offsets, neigh, rev = cg.offsets, cg.neigh, cg.rev
            view = {}
            start = 0
            for j, u in enumerate(labels):
                end = offsets[j + 1]
                view[u] = tuple(
                    (p, labels[vi], rp)
                    for p, (vi, rp) in enumerate(
                        zip(neigh[start:end], rev[start:end])
                    )
                )
                start = end
            self._adj = view
        return view

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph, idents=None):
        """Build a :class:`SimGraph` from an undirected networkx graph.

        Parameters
        ----------
        graph:
            Undirected simple graph.  Self-loops are rejected.
        idents:
            Optional mapping node -> unique integer identity.  Defaults to
            the node labels themselves when they are integers, else to an
            enumeration in sorted-label order.
        """
        if graph.is_directed():
            raise InvalidInstanceError("LOCAL networks are undirected")
        if any(u == v for u, v in graph.edges()):
            raise InvalidInstanceError("self-loops are not allowed")
        if idents is None:
            labels = list(graph.nodes())
            if all(isinstance(u, int) for u in labels):
                # The paper's identities are positive integers; shift
                # 0-based integer labels up by one.
                idents = {u: u + 1 for u in labels}
            else:
                idents = {u: i + 1 for i, u in enumerate(sorted(labels, key=repr))}
        else:
            idents = dict(idents)
            missing = [u for u in graph.nodes() if u not in idents]
            if missing:
                raise InvalidInstanceError(
                    f"identities missing for {len(missing)} node(s)"
                )
        values = list(idents[u] for u in graph.nodes())
        if len(set(values)) != len(values):
            raise InvalidInstanceError("identities must be unique")
        if any((not isinstance(x, int)) or x < 1 for x in values):
            raise InvalidInstanceError(
                "identities must be positive integers (paper Section 2)"
            )
        return cls._build(list(graph.nodes()), idents, graph.adj)

    @classmethod
    def _build(cls, labels, idents, neighbour_view):
        nodes = sorted(labels, key=lambda u: idents[u])
        order = {}
        for u in nodes:
            neighbours = sorted(
                (v for v in neighbour_view[u] if v in idents and v != u),
                key=lambda v: idents[v],
            )
            order[u] = neighbours
        port_of = {
            u: {v: p for p, v in enumerate(order[u])} for u in nodes
        }
        adj = {}
        for u in nodes:
            adj[u] = tuple(
                (p, v, port_of[v][u]) for p, v in enumerate(order[u])
            )
        return cls(nodes, idents, adj)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n(self):
        """Number of nodes."""
        return len(self.nodes)

    @property
    def _degrees(self):
        table = self._degree
        if table is None:
            cg = self._compiled
            if cg is None:
                raise InvalidInstanceError(
                    "SimGraph built with adj=None but no compiled CSR "
                    "attached; adj=None is reserved for "
                    "CompiledGraph.restrict children"
                )
            table = self._degree = dict(zip(cg.labels, cg.degrees))
        return table

    @property
    def max_degree(self):
        """Maximum degree Δ (0 for the empty graph)."""
        if not self.nodes:
            return 0
        return max(self._degrees.values())

    @property
    def max_ident(self):
        """Largest identity m (0 for the empty graph)."""
        if not self.nodes:
            return 0
        return max(self.ident.values())

    def degree(self, u):
        """Degree of node ``u``."""
        return self._degrees[u]

    def neighbors(self, u):
        """Neighbour labels of ``u`` in port order."""
        return tuple(v for _, v, _ in self.adj[u])

    def has_node(self, u):
        return u in self._node_set

    def edge_count(self):
        """Number of edges."""
        return sum(self._degrees.values()) // 2

    def edges(self):
        """Iterate over edges as (u, v) with ident(u) < ident(v)."""
        for u in self.nodes:
            iu = self.ident[u]
            for _, v, _ in self.adj[u]:
                if iu < self.ident[v]:
                    yield (u, v)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def compiled(self):
        """The cached CSR view of this graph (built on first use)."""
        view = self._compiled
        if view is None:
            from .engine import CompiledGraph

            view = self._compiled = CompiledGraph(self)
        return view

    def partition(self, k):
        """Edge-cut plan of the CSR into ``k`` shards (cached per count).

        The plan backs the sharded round loop
        (:mod:`repro.local.sharded`, ``run(graph, algo, shards=k)``):
        contiguous identity-ordered shards with halo/ghost tables.
        Restriction children carry their own CSR, so every alternation
        instance partitions without recompiling structure.
        """
        return self.compiled().partition(k)

    def subgraph(self, keep):
        """Induced subgraph on ``keep`` with fresh port numbering.

        This realizes the instances ``(G_{i+1}, x_{i+1})`` produced by a
        pruning algorithm: pruned nodes leave the network entirely and the
        survivors renumber their ports among themselves.

        Incremental path: ``self.nodes`` and every adjacency row are
        already sorted by identity, and restriction preserves that order,
        so survivor ports renumber by a rank scan in O(surviving-degree)
        via :meth:`CompiledGraph.restrict <repro.local.engine.
        CompiledGraph.restrict>` — no re-sorting of identities, no global
        re-porting (the ``subgraph_rebuild`` reference path does the full
        sort-and-re-port rebuild and is kept as the executable
        specification).  The child inherits a ready-made CSR, so an
        alternation never recompiles surviving structure.

        Under the reference backend (``use_backend("reference")``) the
        rebuild path is used instead, keeping that backend a faithful
        end-to-end reproduction of the seed execution stack; both paths
        produce identical graphs (asserted by the equivalence suite).
        """
        from .runner import DEFAULT_BACKEND

        if DEFAULT_BACKEND == "reference":
            return self.subgraph_rebuild(keep)
        keep_set = keep if isinstance(keep, frozenset) else frozenset(keep)
        unknown = keep_set - self._node_set
        if unknown:
            raise InvalidInstanceError(
                f"subgraph nodes not in graph: {sorted(unknown, key=repr)[:5]}"
            )
        if len(keep_set) == len(self.nodes):
            return self
        return self.compiled().restrict(keep_set)

    def subgraph_rebuild(self, keep):
        """Reference restriction path: full sort-and-re-port rebuild.

        Kept as the executable specification that the incremental
        :meth:`subgraph` is tested against (DESIGN.md, backend
        equivalence contract).
        """
        keep_set = set(keep)
        unknown = keep_set - self._node_set
        if unknown:
            raise InvalidInstanceError(
                f"subgraph nodes not in graph: {sorted(unknown, key=repr)[:5]}"
            )
        idents = {u: self.ident[u] for u in keep_set}
        neighbour_view = {
            u: [v for _, v, _ in self.adj[u] if v in keep_set]
            for u in keep_set
        }
        return SimGraph._build(list(keep_set), idents, neighbour_view)

    def to_networkx(self):
        """Export to a networkx graph (identities as node attribute)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges())
        nx.set_node_attributes(graph, self.ident, "ident")
        return graph

    def __repr__(self):
        return f"SimGraph(n={self.n}, m={self.edge_count()}, Δ={self.max_degree})"
