"""Deterministic fault injection: adversarial node profiles (D14).

The paper's alternation ``B_i = (A_i ; P)`` is a safety net against bad
guesses — the pruner ``P`` keeps the combined output correct even when
the guess-fed algorithm misbehaves (Theorem 2).  This module supplies
the *adversarial conditions* that guarantee is worth exercising under:
per-node fault profiles compiled into a :class:`FaultPlan` the runner
injects at message-delivery time.

Profiles
--------
``honest()``
    No interference (the implicit default for unlisted nodes).
``crash_at(round, output=None)``
    The node stops participating at ``round`` (0 = before wake-up): it
    is force-finished with ``output``, sends nothing and receives
    nothing from then on.  Rounds are per *run* — in an alternation the
    node crashes at that round of every guess run and every pruner run.
``byzantine_silent()``
    The node executes its protocol faithfully but none of its messages
    are ever delivered — the classic send-omission adversary.  Unlike a
    crash it keeps running (and may terminate with a locally-consistent
    but globally-wrong output).
``drop(p)``
    Each outgoing message is dropped independently with probability
    ``p`` (per directed edge, per round).  Dropped messages are not
    counted in ``RunResult.messages``.
``garble(p)``
    Each outgoing message is independently replaced by the
    :data:`GARBLED` sentinel with probability ``p``.  Garbled messages
    *are* counted (the bytes travelled); tag-checking receive loops —
    every algorithm and pruner in this repository — ignore the payload.

Determinism contract
--------------------
An injected run is a pure function of ``(graph, algorithm, inputs,
guesses, seed, salt, plan)``.  Drop/garble decisions come from the
identity-keyed counter RNG (:class:`~repro.local.context.CounterRNG`):
the decision for the message ``u -> v`` sent at round ``r`` is a closed
form of ``(fault key, Id(u), Id(v), r)``, evaluable from either
endpoint of the edge and therefore identical no matter which backend —
reference loop, compiled per-node loop, batch kernel, or any shard of a
partitioned run — asks the question.  The fault stream is keyed
separately from the algorithm's random streams (same seed material,
distinct salt domain), so injection never perturbs the algorithm's own
draws.  ``tests/test_faults.py`` pins the resulting bit-identity across
all four stacks and every shard channel.

Scope: fault injection applies to physical-domain runs.  Virtual
domains (line graphs, clique products) pin faults off — a virtual
node's messages have no 1:1 physical transmission for a per-edge
adversary to act on (documented limit, DESIGN.md D14).
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import ParameterError
from .context import _IDENT_MIX, _MASK64, _SPLITMIX_GAMMA, run_key

#: Sentinel payload substituted for garbled messages.  A tuple whose
#: tag matches no protocol, so every tag-checking receive loop ignores
#: it without crashing; algorithms may match it explicitly to count
#: corruption.
GARBLED = ("garbled",)

#: Per-edge decision outcomes of :meth:`CompiledFaults.decide`.
DELIVER, DROP, GARBLE = 0, 1, 2

#: Odd 64-bit multiplier decorrelating the *receiver* identity from the
#: sender's :data:`~repro.local.context._IDENT_MIX` stream, so the
#: directed edges ``u -> v`` and ``v -> u`` draw from independent
#: fault streams.
_RECV_MIX = 0xA24BAED4963EE407

#: ``silence_from`` value of nodes that are never silenced.
_NEVER = 1 << 62


class Profile:
    """One node's fault behaviour.  Build via the module constructors."""

    __slots__ = ("kind", "crash_round", "crash_output", "p")

    def __init__(self, kind, crash_round=None, crash_output=None, p=0.0):
        self.kind = kind
        self.crash_round = crash_round
        self.crash_output = crash_output
        self.p = p

    def __repr__(self):
        if self.kind == "crash":
            return f"crash_at({self.crash_round})"
        if self.kind in ("drop", "garble"):
            return f"{self.kind}({self.p})"
        return self.kind


def honest():
    """The no-interference profile (same as not listing the node)."""
    return Profile("honest")


def crash_at(round, output=None):
    """Crash-stop at ``round`` (0 = before wake-up), forced to ``output``."""
    if int(round) < 0:
        raise ParameterError(f"crash round must be >= 0, got {round}")
    return Profile("crash", crash_round=int(round), crash_output=output)


def byzantine_silent():
    """Send-omission adversary: runs faithfully, delivers nothing."""
    return Profile("byzantine-silent")


def drop(p):
    """Drop each outgoing message independently with probability ``p``."""
    return Profile("drop", p=_check_p(p))


def garble(p):
    """Garble each outgoing message independently with probability ``p``."""
    return Profile("garble", p=_check_p(p))


def _check_p(p):
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"fault probability must be in [0, 1], got {p}")
    return p


def _threshold_m1(p):
    """``thr - 1`` for the 64-bit draw comparison, or ``None`` for never.

    The effect applies iff ``draw <= thr - 1`` where ``thr = p * 2**64``
    — exact for ``p = 1.0`` (threshold ``2**64 - 1`` admits every draw)
    and never firing for ``p = 0`` (no entry at all), identically in
    Python big-int and numpy uint64 arithmetic.
    """
    thr = int(p * (1 << 64))
    if thr <= 0:
        return None
    return min(thr, 1 << 64) - 1


class FaultPlan:
    """Immutable per-run fault assignment: node label -> :class:`Profile`.

    ``salt`` decorrelates the drop/garble streams of otherwise identical
    plans (sweeps vary it to resample the adversary); the plan is inert
    for nodes it does not mention and for labels absent from the graph.
    Pass ``nodes`` (any iterable of labels, e.g. ``graph.nodes``) to
    instead *reject* profiles for unknown labels at build time — the
    eager check that catches a typo'd label before it silently no-ops
    through an entire sweep.
    """

    __slots__ = ("profiles", "salt")

    def __init__(self, profiles, salt=0, nodes=None):
        cleaned = {}
        for label, profile in dict(profiles or {}).items():
            if not isinstance(profile, Profile):
                raise ParameterError(
                    f"fault profile for {label!r} must be a Profile, "
                    f"got {type(profile).__name__}"
                )
            if profile.kind != "honest":
                cleaned[label] = profile
        if nodes is not None:
            known = set(nodes)
            unknown = sorted(
                (repr(label) for label in cleaned if label not in known)
            )
            if unknown:
                raise ParameterError(
                    f"fault plan names {len(unknown)} unknown node "
                    f"label(s): {', '.join(unknown[:5])}"
                    + (", ..." if len(unknown) > 5 else "")
                )
        self.profiles = cleaned
        self.salt = salt

    def __bool__(self):
        return bool(self.profiles)

    def __len__(self):
        return len(self.profiles)

    def describe(self):
        """Short human-readable summary for traces and bench records."""
        kinds = {}
        for profile in self.profiles.values():
            kinds[profile.kind] = kinds.get(profile.kind, 0) + 1
        inner = ",".join(f"{k}:{kinds[k]}" for k in sorted(kinds))
        return f"faults[{inner or 'none'}]"

    def fault_key(self, seed, salt):
        """64-bit key of the run's fault stream.

        Same seed material as the algorithm's rng derivation but a
        distinct salt domain, so fault decisions are reproducible with
        the run yet independent of the algorithm's own draws.
        """
        return run_key(seed, ("faults", self.salt, salt))

    def compile(self, labels, idents, seed, salt):
        """Per-run scalar view over a graph's ``(labels, idents)``.

        Returns ``None`` when no listed node is present — the engines
        then take their unfaulted hot paths.
        """
        present = set(labels) & set(self.profiles)
        if not present:
            return None
        silence = {}
        crash = {}
        edge = {}
        for label in present:
            profile = self.profiles[label]
            if profile.kind == "crash":
                crash[label] = (profile.crash_round, profile.crash_output)
                silence[label] = profile.crash_round
            elif profile.kind == "byzantine-silent":
                silence[label] = 0
            else:  # drop / garble
                thr_m1 = _threshold_m1(profile.p)
                if thr_m1 is not None:
                    effect = DROP if profile.kind == "drop" else GARBLE
                    edge[label] = (effect, thr_m1)
        if not (silence or crash or edge):
            return None
        return CompiledFaults(
            self.fault_key(seed, salt), silence, crash, edge
        )

    def __repr__(self):
        return f"FaultPlan({self.describe()}, salt={self.salt!r})"


class CompiledFaults:
    """Scalar per-run fault view (pure Python — no numpy required).

    Used directly by the per-node execution paths (reference loop,
    compiled loop, per-node shards); :meth:`batch_view` derives the
    vectorized twin for fault-certified batch kernels.
    """

    __slots__ = ("fkey", "silence", "crash", "edge")

    def __init__(self, fkey, silence, crash, edge):
        self.fkey = fkey
        #: label -> first silenced round (byzantine: 0; crash: its round)
        self.silence = silence
        #: label -> (crash round, forced output)
        self.crash = crash
        #: label -> (effect, threshold - 1) for drop/garble senders
        self.edge = edge

    def silenced(self, label, round_no):
        first = self.silence.get(label)
        return first is not None and round_no >= first

    def crash_of(self, label):
        """``(round, output)`` of a crash-stop node, else ``None``."""
        return self.crash.get(label)

    def decide(self, sender_label, sender_ident, receiver_ident, round_no):
        """Fate of the message ``sender -> receiver`` sent at ``round_no``.

        The closed form of the counter scheme: the edge stream's key is
        ``fkey ^ mix1(Id(u)) ^ mix2(Id(v))`` and the round's draw is the
        fmix64 finalizer of ``key + (round + 1) * gamma`` — exactly what
        :meth:`CounterRNG.random_batch` computes, so the vectorized view
        agrees bit for bit.  Identities may exceed 64 bits; mixing is
        big-int then narrowed, matching ``stream_keys``.
        """
        entry = self.edge.get(sender_label)
        if entry is None:
            return DELIVER
        effect, thr_m1 = entry
        key = (
            self.fkey
            ^ ((sender_ident * _IDENT_MIX) & _MASK64)
            ^ ((receiver_ident * _RECV_MIX) & _MASK64)
        )
        s = (key + ((round_no + 1) * _SPLITMIX_GAMMA)) & _MASK64
        z = ((s ^ (s >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
        value = z ^ (z >> 33)
        return effect if value <= thr_m1 else DELIVER

    def batch_view(self, bg):
        """Vectorized view over a :class:`~repro.local.batch.BatchGraph`.

        Valid for shard sub-CSRs too: labels/identities stay global
        under partitioning, so every shard derives the same per-edge
        decisions the single-process kernel would (D12/D14).
        """
        return BatchFaults(self, bg)


class BatchFaults:
    """Numpy fault view a fault-certified batch kernel consumes.

    Per-node arrays are in the ``bg``'s node order; per-slot arrays
    parallel the CSR slab.  ``keys_out[k]`` keys the message the slot's
    *owner* sends through it, ``keys_in[k]`` the message the slot's
    *neighbour* sends back along the same edge — the two views of one
    directed message agree by construction, which is what lets a shard
    count a boundary message on the sender side and taint it on the
    receiver side without exchanging any fault state.
    """

    __slots__ = (
        "n",
        "silence_from",
        "crash_round",
        "crash_out",
        "has_crash",
        "eff",
        "thr_m1",
        "keys_out",
        "keys_in",
        "_owner",
        "_neigh",
    )

    def __init__(self, compiled, bg):
        from .batch import numpy_or_none

        np = numpy_or_none()
        n = bg.n
        self.n = n
        silence_from = np.full(n, _NEVER, dtype=np.int64)
        crash_round = np.full(n, -1, dtype=np.int64)
        crash_out = [None] * n
        eff = np.zeros(n, dtype=np.int8)
        thr_m1 = np.zeros(n, dtype=np.uint64)
        silence = compiled.silence
        crash = compiled.crash
        edge = compiled.edge
        for i, label in enumerate(bg.labels):
            first = silence.get(label)
            if first is not None:
                silence_from[i] = first
            entry = crash.get(label)
            if entry is not None:
                crash_round[i] = entry[0]
                crash_out[i] = entry[1]
            entry = edge.get(label)
            if entry is not None:
                eff[i] = entry[0]
                thr_m1[i] = entry[1]
        self.silence_from = silence_from
        self.crash_round = crash_round
        self.crash_out = crash_out
        self.has_crash = bool((crash_round >= 0).any())
        self.eff = eff
        self.thr_m1 = thr_m1
        # Big-int identity mixing before narrowing (idents may exceed
        # 64 bits), matching stream_keys / CompiledFaults.decide.
        fkey = compiled.fkey
        m1 = np.array(
            [fkey ^ ((ident * _IDENT_MIX) & _MASK64) for ident in bg.idents],
            dtype=np.uint64,
        )
        m2 = np.array(
            [(ident * _RECV_MIX) & _MASK64 for ident in bg.idents],
            dtype=np.uint64,
        )
        self.keys_out = m1[bg.owner] ^ m2[bg.neigh]
        self.keys_in = m1[bg.neigh] ^ m2[bg.owner]
        self._owner = bg.owner
        self._neigh = bg.neigh

    def _hits(self, keys, senders, round_no):
        """Per-slot drop/garble flags for messages sent at ``round_no``."""
        from .context import CounterRNG

        eff = self.eff[senders]
        value = CounterRNG.random_batch(keys, round_no + 1, 64)
        hit = (eff > 0) & (value <= self.thr_m1[senders])
        return hit, eff

    def silenced_at(self, round_no):
        """Per-node flags: sends at ``round_no`` are suppressed."""
        return self.silence_from <= round_no

    def crashed_at(self, round_no):
        """Per-node flags: the node crash-stops at exactly ``round_no``."""
        if not self.has_crash:
            return None
        return self.crash_round == round_no

    def delivered_out(self, round_no):
        """Per-slot flags: the owner's send through the slot is counted.

        Garbled messages count (the bytes travelled); dropped and
        silenced ones do not — the sender-side view that keeps
        degree-weighted message totals identical to the per-node paths.
        """
        hit, eff = self._hits(self.keys_out, self._owner, round_no)
        dropped = hit & (eff == DROP)
        return ~dropped & ~self.silenced_at(round_no)[self._owner]

    def tainted_in(self, round_no):
        """Per-slot flags: the neighbour's send along the slot's edge at
        ``round_no`` does not arrive as a valid payload (silenced,
        dropped, or garbled) — the receiver-side gather mask."""
        hit, _eff = self._hits(self.keys_in, self._neigh, round_no)
        return hit | self.silenced_at(round_no)[self._neigh]


# ---------------------------------------------------------------------------
# ambient plan (process-wide default, scoped by use_faults)
# ---------------------------------------------------------------------------

#: Process-wide fault plan applied to runs that pass ``faults=None``;
#: ``None`` (or an empty plan) injects nothing.
DEFAULT_FAULTS = None


def set_default_faults(plan):
    """Set the process-wide fault plan; returns the previous one."""
    global DEFAULT_FAULTS
    if plan is not None and not isinstance(plan, FaultPlan):
        raise ParameterError(
            f"expected a FaultPlan or None, got {type(plan).__name__}"
        )
    previous = DEFAULT_FAULTS
    DEFAULT_FAULTS = plan
    return previous


@contextmanager
def use_faults(plan):
    """Temporarily pin the ambient fault plan (``None`` pins faults off).

    Whole pipelines inject without threading ``faults=`` through every
    call site: every run inside the scope — each guess run *and* pruner
    run of an alternation — resolves the plan, exactly like
    ``use_backend`` scopes the executor.
    """
    previous = set_default_faults(plan)
    try:
        yield
    finally:
        set_default_faults(previous)


def resolve_faults(faults):
    """Per-call plan, falling back to the ambient default; ``None`` when
    the winning plan is absent or empty."""
    plan = faults if faults is not None else DEFAULT_FAULTS
    if plan is not None and not isinstance(plan, FaultPlan):
        raise ParameterError(
            f"expected a FaultPlan or None, got {type(plan).__name__}"
        )
    return plan if plan else None


def sample_plan(graph, profile, fraction, *, seed=0, salt=0):
    """Deterministically assign ``profile`` to ~``fraction`` of the nodes.

    Selection draws one 64-bit value per node from a counter stream
    keyed by ``(seed, salt, identity)`` — a pure function of the graph
    and the parameters, so bench sweeps and tests rebuild the exact
    same adversary on every backend and every machine.
    """
    fraction = _check_p(fraction)
    thr_m1 = _threshold_m1(fraction)
    if thr_m1 is None:
        return FaultPlan({}, salt=salt)
    key = run_key(seed, ("fault-sample", salt))
    profiles = {}
    for label in graph.nodes:
        ident = graph.ident[label]
        node_key = key ^ ((ident * _IDENT_MIX) & _MASK64)
        s = (node_key + _SPLITMIX_GAMMA) & _MASK64
        z = ((s ^ (s >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
        if (z ^ (z >> 33)) <= thr_m1:
            profiles[label] = profile
    return FaultPlan(profiles, salt=salt)
