"""Round-fused execution drivers (DESIGN.md, D17).

Every backend so far returns to the interpreter once per simulated
round, so round-dominated workloads — the paper's pruning protocols and
Theorem-2 alternations, where each ``B_i = (A_i ; P)`` step is many
cheap fixed-schedule rounds — pay a per-round Python floor that
vectorization cannot amortize.  This module removes that floor for
certified kernels by executing the *whole* round schedule inside one
driver call:

* **Phase-fused** (:func:`run_phase_fused`) — ``LockstepKernel``
  subclasses declare their schedule at construction, every node stays
  active until the final round, and each non-final round broadcasts one
  payload per edge slot.  The message total therefore settles
  arithmetically (``schedule × degrees.sum()``), termination times are
  all ``schedule``, and the kernel's :meth:`run_phases` runs the state
  recurrence without any per-round ledger bookkeeping (and may
  early-exit once the recurrence provably reaches a fixed point).
* **Fixed-point** (:func:`run_fixed_point`) — self-terminating frontier
  kernels (the Luby family) expose :meth:`run_fixedpoint`, which steps
  frontier-to-fixed-point inside one call with the per-round list
  building, trace sampling and termination checks hoisted out of the
  hot loop, and returns the per-round finish events for the driver to
  settle into the ledger afterwards.  The divergence cap is enforced
  inside the driver, identical to :func:`repro.local.engine.run_batch`.

Eligibility is capability-gated (``supports_roundfuse``) with the exact
fallback discipline of D10–D16: an active fault plan, ``track_bits``,
sharded or fused execution, an uncertified algorithm, or the
``REPRO_ROUNDFUSE=0`` kill-switch each degrade to the per-round batch
path, bit-identical.  The optional JIT tier (``backend="jit"`` /
``REPRO_JIT``, :mod:`repro.local.jitkernels`) compiles the hottest
inner loops via numba *iff importable* — numba absent simply means the
pure-numpy fused tier runs instead, same results bit for bit.
"""

from __future__ import annotations

from ..errors import NonTerminationError


def try_drive(
    kernel, cg, algorithm, *, cap, truncating, default_output, result_cls
):
    """Round-fuse one honest engine run, or return ``None`` to decline.

    The caller (:func:`repro.local.engine.run_compiled`) has already
    built the batch kernel and gated faults/``track_bits``; this helper
    adds the D17 gates — capability record, runner kill-switch, and a
    driver that actually fits the configuration.  Declining is always
    safe: the per-round :func:`~repro.local.engine.run_batch` loop is
    the exact same state machine, one round at a time.
    """
    from .algorithm import capabilities_of
    from .runner import note_stepping, use_roundfuse_now

    if not use_roundfuse_now():
        return None
    if not capabilities_of(algorithm).get("supports_roundfuse"):
        return None
    driven = drive_kernel(kernel, cap)
    if driven is None:
        return None
    note_stepping(stepping_tag())
    return settle(
        driven,
        kernel,
        cg.labels,
        algorithm,
        cap=cap,
        truncating=truncating,
        default_output=default_output,
        result_cls=result_cls,
    )


def drive_kernel(kernel, cap):
    """Run a fresh kernel's whole schedule fused; ``None`` to decline.

    Returns ``(events, rounds, messages)``: ``events`` is the list of
    ``(round, finished_indices, results)`` commits the per-round loop
    would have produced, ``rounds`` how many ``step()`` rounds executed
    (``rounds == cap`` with ``kernel.done`` false means the cap bit —
    truncation or :class:`NonTerminationError` — is the caller's to
    settle, exactly as in ``run_batch``).  Shared by the engine driver
    and the virtual-domain batch loops; sharded loop objects lack both
    seams and fall through automatically.
    """
    if kernel.done or getattr(kernel, "round", 0):
        return None  # only fresh kernels: the fused drivers replay round 0
    schedule = getattr(kernel, "schedule", None)
    if schedule is not None and hasattr(kernel, "run_phases"):
        if cap < schedule:
            # The schedule cannot complete under this cap; the generic
            # loop's round-by-round truncation semantics must apply.
            return None
        charge = kernel.bg.charge()
        kernel.start()
        results = kernel.run_phases()
        events = [(schedule, list(range(kernel.bg.n)), results)]
        return events, schedule, schedule * charge
    run_fixedpoint = getattr(kernel, "run_fixedpoint", None)
    if run_fixedpoint is not None:
        return run_fixedpoint(cap)
    return None


def settle(
    driven, kernel, labels, algorithm, *, cap, truncating, default_output,
    result_cls,
):
    """Fold a fused drive's events into the LOCAL-model ledger.

    Field-for-field identical to what the per-round ``run_batch`` loop
    commits: outputs and termination times from the finish events,
    truncation forcing the default output at the cap, non-termination
    raising with the undone labels.
    """
    events, rounds, messages = driven
    outputs = {}
    finish_round = {}
    for rnd, finished, results in events:
        for i, value in zip(finished, results):
            label = labels[i]
            outputs[label] = value
            finish_round[label] = rnd
    if not kernel.done:
        undone = kernel.undone_indices()
        if truncating:
            for i in undone:
                label = labels[i]
                outputs[label] = default_output
                finish_round[label] = cap
            return result_cls(
                outputs,
                finish_round,
                cap,
                messages,
                frozenset(labels[i] for i in undone),
                None,
            )
        raise NonTerminationError(
            algorithm.name, cap, [labels[i] for i in undone]
        )
    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs, finish_round, total, messages, frozenset(), None
    )


def stepping_tag():
    """The step-record tag for a fused drive (``"rf"`` or ``"jit"``)."""
    from . import jitkernels

    return "jit" if jitkernels.active() else "rf"
