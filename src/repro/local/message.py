"""Message-passing primitives for the LOCAL model.

The LOCAL model (Peleg, 2000; paper Section 2) places no bound on message
size, so messages are arbitrary Python objects.  A node addresses its
neighbours through *ports* ``0 .. degree-1``; the port numbering is fixed
for the lifetime of a simulation graph.

Outgoing message specifications returned by a node process:

* ``None`` — send nothing this round;
* a :class:`Broadcast` — the same payload to every neighbour;
* a ``dict`` mapping ports to payloads — targeted messages.
"""

from __future__ import annotations


class Broadcast:
    """Send the same payload to every neighbour this round.

    The LOCAL model's unbounded message size makes broadcast the most
    common primitive: almost every algorithm in the paper exchanges full
    local state with all neighbours each round.
    """

    __slots__ = ("payload",)

    def __init__(self, payload):
        self.payload = payload

    def __repr__(self):
        return f"Broadcast({self.payload!r})"

    def __eq__(self, other):
        return isinstance(other, Broadcast) and self.payload == other.payload

    def __hash__(self):
        return hash(("Broadcast", repr(self.payload)))


def normalize_outgoing(outgoing, degree):
    """Validate an outgoing-message specification.

    Returns the specification unchanged when valid.  Raises ``TypeError``
    or ``ValueError`` for malformed specifications so that algorithm bugs
    surface at the offending node rather than at a confused receiver.
    """
    if outgoing is None or isinstance(outgoing, Broadcast):
        return outgoing
    if isinstance(outgoing, dict):
        for port in outgoing:
            if not isinstance(port, int):
                raise TypeError(f"message port must be int, got {port!r}")
            if port < 0 or port >= degree:
                raise ValueError(
                    f"port {port} out of range for degree {degree}"
                )
        return outgoing
    raise TypeError(
        "outgoing messages must be None, Broadcast, or a dict port->payload; "
        f"got {type(outgoing).__name__}"
    )
