"""Virtual-node simulation: run a LOCAL algorithm on a derived graph.

Two constructions in the paper execute an algorithm on a graph derived
from the network rather than on the network itself:

* Section 5.1 builds the *clique product* ``G'`` (one clique ``C_u`` of
  size ``deg(u)+1`` per node, with ``(u_i, v_i)`` edges across each
  physical edge) and computes a MIS of ``G'`` to obtain a
  ``(deg+1)``-coloring of ``G``;
* Section 5.2 / the edge-coloring rows color the *line graph* ``L(G)``.

Both derived graphs can be simulated on the physical network: each
physical node *hosts* a set of virtual nodes, and every virtual edge maps
to a path of length ≤ 2 in ``G`` (internal to a host, a physical edge, or
a two-hop route through a shared physical neighbour).  One virtual round
therefore costs ``dilation`` ∈ {1, 2} physical rounds.  The paper notes
such derived graphs "can be constructed by a local algorithm without
using any global parameter"; we precompute the mapping host-side, which
stands in for that constant-round construction.

Termination: a physical node may serve as a *relay* for virtual edges
between other hosts, so it cannot stop when its own virtual nodes finish.
Hosts broadcast a one-off "all my virtual nodes are done" announcement;
a relay terminates once its own virtual nodes and all its client hosts
have announced.  This adds O(1) physical rounds, absorbed in the declared
bounds of the algorithms built on this layer.

Restriction semantics: when a run of the wrapped algorithm is truncated
(the paper's *restriction to i rounds*), hosts that have not committed
their output dict yet contribute the default output for all their hosted
virtual nodes — a valid instance of the paper's "arbitrary output".

Host engines: two interchangeable host-process implementations exist,
mirroring the runner backends.  The *reference* host is the seed's
dict-driven implementation; the *compiled* host keeps an explicit list of
undone virtual processes, a done-counter instead of all()-scans, and
pre-resolved per-port route tables.  Under a pinned rng scheme the two
are bit-identical (asserted by the equivalence suite).

Incremental restriction: :meth:`VirtualSpec.restricted` produces the spec
induced on surviving virtual nodes in O(Σ surviving old-degree) by
filtering the already-computed routing plans — the physical graph is
unchanged by virtual pruning, so surviving pairs keep their routes and
nothing is re-derived.  ``VirtualSpec(host, ident, adj, physical)`` (the
full rebuild) remains the specification path it is tested against.
"""

from __future__ import annotations

from ..errors import InvalidInstanceError, NonTerminationError, ParameterError
from .algorithm import LocalAlgorithm, NodeProcess, capabilities_of
from .batch import (
    BatchSetup,
    available as batch_available,
    batch_graph_of_spec,
    make_shard_kernels,
    virtual_draw_builder,
)
from .context import NodeContext, sub_rng
from .message import Broadcast


class VirtualSpec:
    """Hosting and routing data for a derived (virtual) graph.

    Attributes
    ----------
    host:
        Mapping virtual node -> physical node.
    ident:
        Mapping virtual node -> unique integer identity.
    adj:
        Mapping virtual node -> tuple of neighbour virtual nodes (virtual
        ports follow this order).
    dilation:
        Physical rounds per virtual round (1 without relays, else 2).
    routes:
        Mapping virtual node -> tuple, one entry per virtual port, of
        ``(neighbour, reverse_port, plan)`` — the pre-resolved dispatch
        table the host processes iterate.
    """

    __slots__ = (
        "host",
        "ident",
        "adj",
        "dilation",
        "hosted",
        "send_plan",
        "forward_plan",
        "recv_port",
        "relay_client_ports",
        "_routes",
        "_batch",
        "_partitions",
    )

    def __init__(self, host, ident, adj, physical_graph):
        self.host = dict(host)
        self.ident = dict(ident)
        self.adj = {v: tuple(neigh) for v, neigh in adj.items()}
        if len(set(self.ident.values())) != len(self.ident):
            raise InvalidInstanceError("virtual identities must be unique")
        self.hosted = {}
        for virt, p in self.host.items():
            self.hosted.setdefault(p, []).append(virt)
        for p in self.hosted:
            self.hosted[p].sort(key=lambda v: self.ident[v])
        self.recv_port = {}
        for virt, neighbours in self.adj.items():
            for port, other in enumerate(neighbours):
                self.recv_port[(other, virt)] = port
        self._build_routes(physical_graph)
        self._routes = None
        #: Lazily built numpy mirror / edge-cut plans (by shard count),
        #: shared by a step's guess and pruner runs.
        self._batch = None
        self._partitions = None

    def _build_routes(self, graph):
        port_to = {u: {v: p for p, v, _ in graph.adj[u]} for u in graph.nodes}
        neighbour_sets = {
            u: frozenset(v for _, v, _ in graph.adj[u]) for u in graph.nodes
        }
        self.send_plan = {}
        self.forward_plan = {}
        relay_clients = {}
        needs_relay = False
        for virt, neighbours in self.adj.items():
            p = self.host[virt]
            for other in neighbours:
                q = self.host[other]
                if (other, virt) not in self.recv_port:
                    raise InvalidInstanceError(
                        f"virtual adjacency not symmetric: {virt}->{other}"
                    )
                if p == q:
                    self.send_plan[(virt, other)] = ("internal",)
                elif q in port_to[p]:
                    self.send_plan[(virt, other)] = ("direct", port_to[p][q])
                else:
                    shared = neighbour_sets[p] & neighbour_sets[q]
                    if not shared:
                        raise InvalidInstanceError(
                            f"virtual edge ({virt},{other}) has no physical "
                            "route of length <= 2"
                        )
                    relay = min(shared, key=lambda r: graph.ident[r])
                    # Relay plans carry everything restriction needs to
                    # reconstruct forwarding without re-deriving routes:
                    # (kind, sender's port to relay, relay node, relay's
                    # port to the destination host, relay's port back to
                    # the sending host).
                    self.send_plan[(virt, other)] = (
                        "relay",
                        port_to[p][relay],
                        relay,
                        port_to[relay][q],
                        port_to[relay][p],
                    )
                    self.forward_plan.setdefault(relay, {})[other] = (
                        port_to[relay][q]
                    )
                    relay_clients.setdefault(relay, set()).add(p)
                    needs_relay = True
        self.dilation = 2 if needs_relay else 1
        # Ports (at the relay) of the hosts whose traffic routes through it.
        self.relay_client_ports = {}
        for relay, clients in relay_clients.items():
            ports = {port_to[relay][p] for p in clients}
            self.relay_client_ports[relay] = frozenset(ports)

    @property
    def routes(self):
        """Pre-zipped host dispatch tables, built on first use.

        Only the host-process engines walk these; the batched virtual
        driver reads the plans directly, so runs that never fall back to
        host simulation never pay for the indexing.
        """
        table = self._routes
        if table is None:
            recv_port = self.recv_port
            send_plan = self.send_plan
            table = self._routes = {
                virt: tuple(
                    (other, recv_port[(virt, other)], send_plan[(virt, other)])
                    for other in neighbours
                )
                for virt, neighbours in self.adj.items()
            }
        return table

    def restricted(self, keep):
        """Spec induced on the surviving virtual nodes (incremental).

        The physical graph is untouched by virtual pruning, so surviving
        pairs keep the routing plans they already have; only the virtual
        port numbering and the relay bookkeeping are re-derived, in
        O(Σ surviving old-degree).  Produces the same spec as a full
        ``VirtualSpec(host', ident', adj', physical)`` rebuild.
        """
        keep = keep if isinstance(keep, frozenset) else frozenset(keep)
        spec = object.__new__(VirtualSpec)
        spec.adj = {
            v: tuple(w for w in neighbours if w in keep)
            for v, neighbours in self.adj.items()
            if v in keep
        }
        spec.host = {v: self.host[v] for v in spec.adj}
        spec.ident = {v: self.ident[v] for v in spec.adj}
        spec.hosted = {}
        for p, virts in self.hosted.items():
            survivors = [v for v in virts if v in keep]
            if survivors:
                spec.hosted[p] = survivors
        spec.recv_port = {}
        for virt, neighbours in spec.adj.items():
            for port, other in enumerate(neighbours):
                spec.recv_port[(other, virt)] = port
        send_plan = {}
        forward_plan = {}
        relay_client_ports = {}
        needs_relay = False
        old_plan = self.send_plan
        for virt, neighbours in spec.adj.items():
            for other in neighbours:
                plan = old_plan[(virt, other)]
                send_plan[(virt, other)] = plan
                if plan[0] == "relay":
                    needs_relay = True
                    relay = plan[2]
                    forward_plan.setdefault(relay, {})[other] = plan[3]
                    relay_client_ports.setdefault(relay, set()).add(plan[4])
        spec.send_plan = send_plan
        spec.forward_plan = forward_plan
        spec.dilation = 2 if needs_relay else 1
        spec.relay_client_ports = {
            relay: frozenset(ports)
            for relay, ports in relay_client_ports.items()
        }
        spec._routes = None
        spec._batch = None
        spec._partitions = None
        return spec

    @property
    def virtual_nodes(self):
        return tuple(self.adj.keys())


class _VirtualHostProcess(NodeProcess):
    """Physical-node process simulating all hosted virtual processes.

    The reference host engine — dict-driven, kept as the seed wrote it
    (modulo the pluggable rng scheme) to serve as the specification for
    :class:`_CompiledHostProcess`.
    """

    __slots__ = (
        "spec",
        "algorithm",
        "virt_inputs",
        "subs",
        "phase",
        "virt_round_inbox",
        "outputs",
        "announced",
        "announced_ports",
        "client_ports",
    )

    def __init__(self, ctx, spec, algorithm, virt_inputs):
        super().__init__(ctx)
        self.spec = spec
        self.algorithm = algorithm
        self.virt_inputs = virt_inputs
        base = ctx.rng.getrandbits(64)
        mode = ctx.rng_mode
        self.subs = {}
        self.outputs = {}
        self.virt_round_inbox = {}
        self.phase = 0
        self.announced = False
        self.announced_ports = set()
        self.client_ports = spec.relay_client_ports.get(ctx.node, frozenset())
        for virt in spec.hosted.get(ctx.node, ()):
            sub_ctx = NodeContext(
                node=virt,
                ident=spec.ident[virt],
                degree=len(spec.adj[virt]),
                input=virt_inputs.get(virt),
                guesses=ctx.guesses,
                rng=sub_rng(mode, base, spec.ident[virt]),
                rng_mode=mode,
            )
            self.subs[virt] = self.algorithm.make(sub_ctx)

    # -- virtual round plumbing -----------------------------------------
    def _virts_all_done(self):
        return all(sub.done for sub in self.subs.values())

    def _dispatch(self, virt, outgoing, sends):
        spec = self.spec
        neighbours = spec.adj[virt]
        if outgoing is None:
            return
        if isinstance(outgoing, Broadcast):
            items = [(p, outgoing.payload) for p in range(len(neighbours))]
        else:
            items = list(outgoing.items())
        for vport, payload in items:
            other = neighbours[vport]
            rport = spec.recv_port[(virt, other)]
            plan = spec.send_plan[(virt, other)]
            if plan[0] == "internal":
                self.virt_round_inbox.setdefault(other, {})[rport] = payload
            elif plan[0] == "direct":
                sends.setdefault(plan[1], []).append(("dlv", other, rport, payload))
            else:
                sends.setdefault(plan[1], []).append(("rly", other, rport, payload))

    def _advance(self, starting, sends):
        # Swap buffers so internal (same-host) messages dispatched during
        # this virtual round land in the *next* round's inbox — exactly
        # the one-round latency a real edge has.
        current = self.virt_round_inbox
        self.virt_round_inbox = {}
        for virt in self.spec.hosted.get(self.ctx.node, ()):
            sub = self.subs[virt]
            if sub.done:
                continue
            if starting:
                outgoing = sub.start()
            else:
                outgoing = sub.receive(current.get(virt, {}))
            self._dispatch(virt, outgoing, sends)
            if sub.done:
                self.outputs[virt] = sub.result

    def _absorb(self, inbox, sends):
        table = self.spec.forward_plan.get(self.ctx.node, {})
        for port, message in inbox.items():
            if not (isinstance(message, tuple) and message and message[0] == "vmsg"):
                continue
            _, payloads, fin = message
            if fin:
                self.announced_ports.add(port)
            for kind, virt, rport, payload in payloads:
                if kind == "dlv":
                    self.virt_round_inbox.setdefault(virt, {})[rport] = payload
                else:
                    out_port = table[virt]
                    sends.setdefault(out_port, []).append(
                        ("dlv", virt, rport, payload)
                    )

    def _emit(self, sends, fin):
        """Build the per-port physical messages; fin goes to every port."""
        if fin:
            return {
                port: ("vmsg", tuple(sends.get(port, ())), True)
                for port in range(self.ctx.degree)
            }
        if not sends:
            return None
        return {
            port: ("vmsg", tuple(payloads), False)
            for port, payloads in sends.items()
        }

    def _maybe_finish(self):
        if self._virts_all_done() and self.client_ports <= self.announced_ports:
            self.finish(dict(self.outputs))

    # -- NodeProcess API --------------------------------------------------
    def start(self):
        sends = {}
        fin = False
        if self.subs:
            self._advance(starting=True, sends=sends)
        if self._virts_all_done() and not self.announced:
            self.announced = True
            fin = True
        self._maybe_finish()
        return self._emit(sends, fin)

    def receive(self, inbox):
        sends = {}
        self._absorb(inbox, sends)
        self.phase += 1
        relay_only = self.spec.dilation == 2 and self.phase % 2 == 1
        if not relay_only and not self._virts_all_done():
            self._advance(starting=False, sends=sends)
        fin = False
        if self._virts_all_done() and not self.announced:
            self.announced = True
            fin = True
        self._maybe_finish()
        return self._emit(sends, fin)


class _CompiledHostProcess(NodeProcess):
    """Compiled host engine: same protocol, O(undone + traffic) rounds.

    Bit-identical to :class:`_VirtualHostProcess` under a pinned rng
    scheme (equivalence suite), but:

    * hosted virtual processes that finished leave the ``pending`` list,
      so a round costs O(undone), not O(hosted);
    * ``undone`` is a counter — no all()-scan over sub-processes at every
      decision point;
    * dispatch walks the spec's pre-resolved ``routes`` table: one tuple
      unpack per virtual payload instead of three dict lookups.
    """

    __slots__ = (
        "spec",
        "outputs",
        "subs",
        "pending",
        "undone",
        "phase",
        "virt_round_inbox",
        "announced",
        "announced_ports",
        "client_ports",
        "forward_table",
        "relay_only_parity",
    )

    def __init__(self, ctx, spec, algorithm, virt_inputs):
        super().__init__(ctx)
        self.spec = spec
        base = ctx.rng.getrandbits(64)
        mode = ctx.rng_mode
        self.outputs = {}
        self.virt_round_inbox = {}
        self.phase = 0
        self.announced = False
        self.announced_ports = set()
        self.client_ports = spec.relay_client_ports.get(ctx.node, frozenset())
        self.forward_table = spec.forward_plan.get(ctx.node, {})
        self.relay_only_parity = spec.dilation == 2
        make = algorithm.make
        get_input = virt_inputs.get
        ident_of = spec.ident
        adj = spec.adj
        guesses = ctx.guesses
        factory = lambda ident: sub_rng(mode, base, ident)
        pending = []
        subs = {}
        for virt in spec.hosted.get(ctx.node, ()):
            sub = make(
                NodeContext(
                    virt,
                    ident_of[virt],
                    len(adj[virt]),
                    get_input(virt),
                    guesses,
                    None,
                    factory,
                    mode,
                )
            )
            subs[virt] = sub
            pending.append((virt, sub))
        self.subs = subs
        self.pending = pending
        self.undone = len(pending)

    # -- virtual round plumbing -----------------------------------------
    def _advance(self, starting, sends):
        # Same buffer swap as the reference host: internal messages land
        # in the *next* virtual round's inbox.
        current = self.virt_round_inbox
        self.virt_round_inbox = {}
        routes = self.spec.routes
        inbox_get = current.get
        survivors = []
        keep = survivors.append
        for virt, sub in self.pending:
            outgoing = sub.start() if starting else sub.receive(inbox_get(virt, {}))
            if outgoing is not None:
                route = routes[virt]
                if isinstance(outgoing, Broadcast):
                    # Bind under a name the consuming loop never rebinds:
                    # the generator reads it lazily at each yield.
                    bp = outgoing.payload
                    items = (
                        (entry, bp) for entry in route
                    )
                else:
                    items = (
                        (route[vport], payload)
                        for vport, payload in outgoing.items()
                    )
                for (other, rport, plan), payload in items:
                    kind = plan[0]
                    if kind == "internal":
                        box = self.virt_round_inbox.get(other)
                        if box is None:
                            box = self.virt_round_inbox[other] = {}
                        box[rport] = payload
                    elif kind == "direct":
                        bucket = sends.get(plan[1])
                        if bucket is None:
                            bucket = sends[plan[1]] = []
                        bucket.append(("dlv", other, rport, payload))
                    else:
                        bucket = sends.get(plan[1])
                        if bucket is None:
                            bucket = sends[plan[1]] = []
                        bucket.append(("rly", other, rport, payload))
            if sub.done:
                self.outputs[virt] = sub.result
                self.undone -= 1
            else:
                keep((virt, sub))
        self.pending = survivors

    def _absorb(self, inbox, sends):
        table = self.forward_table
        inbox_acc = self.virt_round_inbox
        for port, message in inbox.items():
            if not (isinstance(message, tuple) and message and message[0] == "vmsg"):
                continue
            _, payloads, fin = message
            if fin:
                self.announced_ports.add(port)
            for kind, virt, rport, payload in payloads:
                if kind == "dlv":
                    box = inbox_acc.get(virt)
                    if box is None:
                        box = inbox_acc[virt] = {}
                    box[rport] = payload
                else:
                    out_port = table[virt]
                    bucket = sends.get(out_port)
                    if bucket is None:
                        bucket = sends[out_port] = []
                    bucket.append(("dlv", virt, rport, payload))

    def _emit(self, sends, fin):
        if fin:
            get = sends.get
            return {
                port: ("vmsg", tuple(get(port, ())), True)
                for port in range(self.ctx.degree)
            }
        if not sends:
            return None
        return {
            port: ("vmsg", tuple(payloads), False)
            for port, payloads in sends.items()
        }

    def _maybe_finish(self):
        if self.undone == 0 and self.client_ports <= self.announced_ports:
            self.finish(dict(self.outputs))

    # -- NodeProcess API --------------------------------------------------
    def start(self):
        sends = {}
        fin = False
        if self.subs:
            self._advance(starting=True, sends=sends)
        if self.undone == 0 and not self.announced:
            self.announced = True
            fin = True
        self._maybe_finish()
        return self._emit(sends, fin)

    def receive(self, inbox):
        sends = {}
        self._absorb(inbox, sends)
        self.phase += 1
        relay_only = self.relay_only_parity and self.phase % 2 == 1
        if not relay_only and self.undone:
            self._advance(starting=False, sends=sends)
        fin = False
        if self.undone == 0 and not self.announced:
            self.announced = True
            fin = True
        self._maybe_finish()
        return self._emit(sends, fin)


def virtualize(spec, algorithm, *, virt_inputs=None, name=None, engine=None):
    """Wrap ``algorithm`` (for the derived graph) as a physical algorithm.

    The wrapped algorithm's output at a physical node is the dict
    ``virtual node -> output``; use :func:`flatten_outputs` to merge the
    per-host dicts into a single mapping over virtual nodes.

    ``engine`` selects the host-process implementation (``"compiled"`` or
    ``"reference"``); ``None`` follows the process-wide runner backend at
    process-construction time, so domain runs stay internally consistent.
    """
    virt_inputs = virt_inputs or {}

    def process(ctx):
        kind = engine
        if kind is None:
            from .runner import DEFAULT_BACKEND

            kind = DEFAULT_BACKEND
        host_cls = (
            _VirtualHostProcess if kind == "reference" else _CompiledHostProcess
        )
        return host_cls(ctx, spec, algorithm, virt_inputs)

    return LocalAlgorithm(
        name=name or f"virtual[{algorithm.name}]",
        process=process,
        requires=algorithm.requires,
        randomized=algorithm.randomized,
    )


def _virtual_kernel(
    spec,
    algorithm,
    physical,
    *,
    virt_inputs,
    guesses,
    seed,
    salt,
    rng_mode,
    shards,
    shard_channel,
    bg,
):
    """Build the virtual run's kernel: sharded ensemble or plain.

    With a shard count > 1 and a shard-certified kernel (D12), the
    virtual graph's CSR is partitioned exactly like a physical one —
    the nested host→sub rng derivation is a pure function of
    ``(host identity, virtual identity)``, so per-shard draw sources
    reproduce the single-kernel streams for every shard count.  Falls
    back to one kernel when ineligible; returns ``None`` when the
    factory declines.  Callers must ``close()`` the returned object if
    it has a ``close`` (the sharded loop owns a channel).
    """
    factory = algorithm.batch

    def setup_of(sub_bg, sharded=False):
        return BatchSetup(
            virt_inputs,
            guesses,
            rng_mode,
            virtual_draw_builder(sub_bg, spec, physical, rng_mode, seed, salt),
            sharded=sharded,
        )

    if (
        shards is not None
        and shards > 1
        and bg.n > 1
        and capabilities_of(algorithm).get("supports_shard")
    ):
        from .engine import Partition
        from .runner import note_stepping
        from .sharded import BatchShard, ShardedKernelLoop, open_channel

        plans = spec._partitions
        if plans is None:
            plans = spec._partitions = {}
        part = plans.get(shards)
        if part is None:
            csr = plans.get("csr")  # one list conversion, shared per k
            if csr is None:
                csr = plans["csr"] = (
                    bg.offsets.tolist(),
                    bg.neigh.tolist(),
                )
            part = plans[shards] = Partition(csr[0], csr[1], shards)
        built = make_shard_kernels(
            factory, part, bg.labels, bg.idents,
            lambda sub_bg: setup_of(sub_bg, sharded=True),
        )
        if built is not None:
            batch_shards = [
                BatchShard(s, kernel, part)
                for s, (_sub, kernel) in enumerate(built)
            ]
            note_stepping("shard-batch")
            return ShardedKernelLoop(
                open_channel(batch_shards, shard_channel), part.k, bg.n
            )
    kernel = factory(bg, setup_of(bg))
    if kernel is not None:
        from .runner import note_stepping

        note_stepping("batch")
    return kernel


def _drive_virtual(kernel, algorithm, max_vrounds):
    """Step a virtual kernel to its horizon; returns finish/result maps.

    The shared drive of :func:`run_virtual_batch` and
    :func:`run_virtual_batch_full`.  Round-fuse-certified kernels (D17)
    execute their whole schedule in one fused call — virtual round
    ``k`` is engine round ``k-1``, so the fused drive gets the engine
    cap ``max_vrounds - 1`` and its events map back by ``+1``.  The
    sharded ensemble loop exposes neither fused seam and falls through
    to the per-round loop automatically, as does an ineligible or
    switched-off configuration.
    """
    finish_vround = {}
    results = {}
    if capabilities_of(algorithm).get("supports_roundfuse"):
        from .roundfuse import drive_kernel, stepping_tag
        from .runner import note_stepping, use_roundfuse_now

        if use_roundfuse_now():
            driven = drive_kernel(kernel, max_vrounds - 1)
            if driven is not None:
                events, _rounds, _messages = driven
                for rnd, finished, values in events:
                    for i, value in zip(finished, values):
                        finish_vround[i] = rnd + 1
                        results[i] = value
                note_stepping(stepping_tag())
                return finish_vround, results
    finished, values, _ = kernel.start()
    for i, value in zip(finished, values):
        finish_vround[i] = 1
        results[i] = value
    vround = 1
    while not kernel.done and vround < max_vrounds:
        vround += 1
        finished, values, _ = kernel.step()
        for i, value in zip(finished, values):
            finish_vround[i] = vround
            results[i] = value
    return finish_vround, results


def _require_guesses(algorithm, guesses):
    """Validate Γ̃ coverage with the runner's exact diagnostics."""
    guesses = dict(guesses or {})
    missing = [p for p in algorithm.requires if p not in guesses]
    if missing:
        name = f"virtual[{algorithm.name}]"
        raise ParameterError(f"algorithm {name!r} requires guesses for {missing}")
    return guesses


def _host_commits(spec, physical, finish_vround, vindex):
    """Replay the host announce/commit protocol from kernel finish data.

    ``finish_vround`` maps bg index -> virtual round (1-based) the node
    finished in; missing = not within the simulated horizon.  Returns
    ``host -> physical commit round`` (``None`` = beyond the horizon):
    a host announces at the physical round its last virtual node
    finishes, a relay additionally waits one round past each client
    host's announcement.
    """
    dilation = spec.dilation
    announce = {}
    for p in physical.nodes:
        virts = spec.hosted.get(p)
        if not virts:
            announce[p] = 0
            continue
        last = 0
        for v in virts:
            k = finish_vround.get(vindex[v])
            if k is None:
                last = None
                break
            if k > last:
                last = k
        announce[p] = None if last is None else (last - 1) * dilation
    commit = dict(announce)
    for relay, ports in spec.relay_client_ports.items():
        worst = commit[relay]
        if worst is None:
            continue
        row = physical.adj[relay]
        for port in ports:
            client_announce = announce[row[port][1]]
            if client_announce is None:
                worst = None
                break
            if client_announce + 1 > worst:
                worst = client_announce + 1
        commit[relay] = worst
    return commit


def run_virtual_batch(
    spec,
    algorithm,
    physical,
    *,
    cap,
    virt_inputs,
    guesses,
    seed,
    salt,
    rng_mode,
    default_output,
    shards=None,
    shard_channel="inline",
):
    """Budgeted virtual run through a batch kernel; ``None`` = ineligible.

    The host simulation (``virtualize`` + the physical runner) exists to
    realize the derived-graph execution on the network; its *observable*
    product at the domain level is the per-virtual-node output map.  When
    the inner algorithm registers a batch kernel, this driver produces
    that map bit-identically without materializing a physical transcript:

    * the kernel runs directly on the virtual graph's CSR (node order =
      virtual identity order), with each virtual node's random stream
      derived exactly as the hosts derive it (host base draw + sub
      stream, :func:`virtual_draw_builder`);
    * virtual round ``k`` corresponds to physical round
      ``(k-1) * dilation``, so the kernel is stepped
      ``cap // dilation + 1`` times at most;
    * host commit times are replayed from the announcement protocol: a
      host announces when its last hosted virtual node finishes, a relay
      additionally waits one round past each client host's announcement
      (``relay_client_ports`` ↦ client hosts through the physical port
      map).  Hosts whose commit round exceeds the physical budget
      contribute the default output for all their virtual nodes —
      exactly the truncation semantics of the simulated run.

    Equivalence with the host path is asserted by the equivalence suite
    for full, truncated and restricted-spec runs.
    """
    if not batch_available() or not spec.adj:
        return None
    if not capabilities_of(algorithm).get("supports_batch"):
        return None
    guesses = _require_guesses(algorithm, guesses)
    bg = batch_graph_of_spec(spec)
    kernel = _virtual_kernel(
        spec,
        algorithm,
        physical,
        virt_inputs=virt_inputs or {},
        guesses=guesses,
        seed=seed,
        salt=salt,
        rng_mode=rng_mode,
        shards=shards,
        shard_channel=shard_channel,
        bg=bg,
    )
    if kernel is None:
        return None

    max_vrounds = cap // spec.dilation + 1
    try:
        finish_vround, results = _drive_virtual(kernel, algorithm, max_vrounds)
    finally:
        closer = getattr(kernel, "close", None)
        if closer is not None:
            closer()

    vindex = {label: i for i, label in enumerate(bg.labels)}
    # A relay commits only after every client host's announcement has
    # crossed its physical edge (one round after it is broadcast).
    commit = _host_commits(spec, physical, finish_vround, vindex)

    outputs = {}
    host_of = spec.host
    for virt in spec.virtual_nodes:
        committed = commit[host_of[virt]]
        if committed is not None and committed <= cap:
            value = results[vindex[virt]]
            outputs[virt] = default_output if value is None else value
        else:
            outputs[virt] = default_output
    return outputs


def run_virtual_batch_full(
    spec,
    algorithm,
    physical,
    *,
    cap,
    virt_inputs,
    guesses,
    seed,
    salt,
    rng_mode,
    shards=None,
    shard_channel="inline",
):
    """Full (self-terminating) virtual run through a batch kernel.

    Closes the ROADMAP "still per-node" gap for ``run_full`` on virtual
    domains: with no declared round budget to hand the driver, the
    kernel is stepped to its fixed point (every virtual node finished),
    capped only by the physical round limit — the budget grows with the
    stepping itself.  The observable product mirrors the host simulation
    bit for bit: the per-virtual-node output map plus the physical
    running time ``max(host commit rounds)`` replayed from the
    announcement protocol — and when the cap bites, the same
    :class:`~repro.errors.NonTerminationError` the physical runner
    would raise for the wrapped algorithm, listing the hosts that could
    not commit.  Returns ``(outputs, rounds)`` or ``None`` when the
    configuration is ineligible for the batch path.
    """
    if not batch_available() or not spec.adj:
        return None
    if not capabilities_of(algorithm).get("supports_batch"):
        return None
    guesses = _require_guesses(algorithm, guesses)
    bg = batch_graph_of_spec(spec)
    kernel = _virtual_kernel(
        spec,
        algorithm,
        physical,
        virt_inputs=virt_inputs or {},
        guesses=guesses,
        seed=seed,
        salt=salt,
        rng_mode=rng_mode,
        shards=shards,
        shard_channel=shard_channel,
        bg=bg,
    )
    if kernel is None:
        return None

    max_vrounds = cap // spec.dilation + 1
    try:
        # The horizon grows with the stepping itself — kernel state
        # persists, so extending a budget is just stepping further (a
        # doubling-and-restart schedule degenerates to this loop).
        finish_vround, results = _drive_virtual(kernel, algorithm, max_vrounds)
    finally:
        closer = getattr(kernel, "close", None)
        if closer is not None:
            closer()

    vindex = {label: i for i, label in enumerate(bg.labels)}
    commit = _host_commits(spec, physical, finish_vround, vindex)
    overdue = [
        p
        for p in physical.nodes
        if commit[p] is None or commit[p] > cap
    ]
    if overdue:
        # Same diagnostics the physical runner raises for the wrapped
        # algorithm: the hosts still active at the cap, identity order.
        raise NonTerminationError(f"virtual[{algorithm.name}]", cap, overdue)
    outputs = {
        virt: results[vindex[virt]] for virt in spec.virtual_nodes
    }
    rounds = max(commit.values()) if commit else 0
    return outputs, rounds


def flatten_outputs(spec, physical_outputs, *, default=None):
    """Merge per-host output dicts into ``virtual node -> output``."""
    merged = {virt: default for virt in spec.virtual_nodes}
    for p, value in physical_outputs.items():
        if isinstance(value, dict):
            for virt, out in value.items():
                merged[virt] = out
    return merged
