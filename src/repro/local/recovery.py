"""Round-level checkpoints and shard recovery bookkeeping (D15).

The sharded channels (``local/sharded.py``) survive worker deaths by
*surgical* recovery: after every committed round the parent retains a
pickled snapshot of each shard, and when a worker dies or hangs only
that worker is respawned, restored from the last checkpoint, and asked
to redo the failed round.  Because every per-node draw is a pure
function of ``(identity, round)`` (D9), the replayed round is
bit-identical to the one the dead worker never finished — recovery is
correct by construction, not by careful replay.

This module owns the pieces that are independent of any channel:

- :class:`RoundCheckpoint` — committed shard blobs for one round.
- :class:`RecoveryManager` — per-run checkpoint retention, the retry
  budget / exponential-backoff policy, and the recovery log that the
  diagnostics channel (``runner.last_recovery``) samples.
- :class:`CheckpointJournal` — optional spill-to-disk journal
  (``REPRO_CHECKPOINT_DIR``) with atomic temp-file + ``os.replace``
  writes, a magic header and a CRC so a torn or corrupted file is
  rejected instead of resumed from.
- :func:`resume_from_journal` — drive a journalled run to completion
  inline from its last committed round (an operational tool; the live
  channels recover in-process without it).

Environment switches:

``REPRO_CHECKPOINT``         "0" disables per-round checkpointing (the
                             channels then fall back to the legacy
                             restart-from-scratch ladder).  Default on.
``REPRO_CHECKPOINT_DIR``     directory to spill checkpoints to; unset
                             means in-memory only.
``REPRO_SHARD_MAX_RETRIES``  per-run surgical-respawn budget (default 3).
"""

import binascii
import os
import pickle
import tempfile

from ..errors import CheckpointCorruptError

__all__ = [
    "CHECKPOINTS_ENABLED",
    "CHECKPOINT_DIR",
    "MAX_RETRIES",
    "CheckpointJournal",
    "RecoveryManager",
    "RoundCheckpoint",
    "snapshot_blob",
    "resume_from_journal",
]


def _env_flag(name, default=True):
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _env_int(name, default):
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


#: Whether the sharded channels take per-round checkpoints at all.
CHECKPOINTS_ENABLED = _env_flag("REPRO_CHECKPOINT", True)

#: Optional spill directory; ``None`` keeps checkpoints in-memory only.
CHECKPOINT_DIR = os.environ.get("REPRO_CHECKPOINT_DIR") or None

#: Surgical-respawn budget per run (attempts before escalating).
MAX_RETRIES = _env_int("REPRO_SHARD_MAX_RETRIES", 3)

#: Sentinel round number of the pre-round-0 checkpoint (the freshly
#: built shards, before any stepping).
INITIAL_ROUND = -1


def snapshot_blob(shard):
    """Pickle one shard's full state, or ``None`` if it won't pickle.

    Both shard flavours are plain slotted objects over picklable state
    (numpy arrays / dicts / the picklable rng sources of D13), so in
    practice this only returns ``None`` for exotic user kernels — and
    those runs simply keep the legacy restart ladder.
    """
    try:
        return pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


class RoundCheckpoint:
    """Committed state of every shard after one completed round.

    ``round_no`` is the last *committed* round — ``INITIAL_ROUND`` (-1)
    means the shards are freshly built and round 0 has not run.
    ``blobs`` maps shard index to the pickled shard; ``reports`` maps
    shard index to the committed round report (used to regenerate the
    inbound payloads a replayed round needs).  ``ledger`` optionally
    carries the driver's committed aggregation state so a journalled
    run can resume without replaying earlier rounds.
    """

    __slots__ = ("round_no", "blobs", "reports", "ledger")

    def __init__(self, round_no, blobs, reports=None, ledger=None):
        self.round_no = round_no
        self.blobs = dict(blobs)
        self.reports = dict(reports) if reports else {}
        self.ledger = ledger

    @property
    def complete(self):
        """True when every shard produced a picklable snapshot."""
        return all(blob is not None for blob in self.blobs.values())

    def restore(self, index):
        """Unpickle shard ``index`` from its committed snapshot."""
        blob = self.blobs.get(index)
        if blob is None:
            raise CheckpointCorruptError(
                f"no checkpoint blob for shard {index} "
                f"at round {self.round_no}"
            )
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise CheckpointCorruptError(
                f"checkpoint blob for shard {index} at round "
                f"{self.round_no} does not unpickle: {exc}"
            ) from exc

    def restore_all(self):
        """Unpickle every shard, ordered by shard index."""
        return [self.restore(i) for i in sorted(self.blobs)]


class RecoveryManager:
    """Per-run checkpoint retention + retry-budget bookkeeping.

    One instance lives inside each sharded channel for the duration of
    a run.  The channel calls :meth:`commit` after every round whose
    reports it delivered to the driver, :meth:`note_failure` each time
    it recovers (or escalates), and reads :meth:`backoff_for` /
    :meth:`budget_left` to pace and bound surgical respawns.
    """

    __slots__ = (
        "k", "enabled", "max_retries", "latest",
        "attempts", "events", "journal",
    )

    def __init__(self, k, *, enabled=None, max_retries=None, journal=None):
        self.k = k
        self.enabled = CHECKPOINTS_ENABLED if enabled is None else enabled
        self.max_retries = MAX_RETRIES if max_retries is None else max_retries
        self.latest = None
        self.attempts = 0
        self.events = []
        self.journal = journal
        if self.journal is None and self.enabled and CHECKPOINT_DIR:
            self.journal = CheckpointJournal(CHECKPOINT_DIR)

    # -- checkpointing -------------------------------------------------

    def commit(self, round_no, blobs, reports=None):
        """Retain the committed state of round ``round_no``.

        ``blobs`` maps shard index -> pickled shard (or ``None`` when a
        shard's state would not pickle; the checkpoint is then marked
        incomplete and surgical recovery declines to use it).
        """
        if not self.enabled:
            return
        self.latest = RoundCheckpoint(round_no, blobs, reports)

    def note_ledger(self, ledger):
        """Attach the driver's committed aggregation state and spill.

        Called once per round *after* the driver absorbed the reports,
        so the journalled checkpoint carries everything a resume needs.
        """
        if self.latest is None:
            return
        self.latest.ledger = ledger
        if self.journal is not None and self.latest.complete:
            self.journal.write(self.latest)

    @property
    def recoverable(self):
        """True when surgical recovery has a usable checkpoint."""
        return (
            self.enabled
            and self.latest is not None
            and self.latest.complete
        )

    # -- retry policy --------------------------------------------------

    def budget_left(self):
        return self.attempts < self.max_retries

    def backoff_for(self, base):
        """Exponential backoff for the *next* attempt (attempt n pays
        ``base * 2**(n-1)`` seconds)."""
        if base <= 0:
            return 0.0
        return base * (2 ** self.attempts)

    def note_failure(self, action, shard, round_no, cause):
        """Record one recovery action for diagnostics.

        ``action`` is one of ``"respawn"``, ``"rebuild"``, ``"inline"``;
        respawn attempts count against the retry budget.
        """
        if action == "respawn":
            self.attempts += 1
        self.events.append(
            {
                "action": action,
                "shard": shard,
                "round": round_no,
                "cause": type(cause).__name__,
            }
        )

    def summary(self):
        """Compact recovery trail, e.g. ``"respawn@r3(s1) inline@r3"``.

        ``None`` when the run never recovered from anything — the
        common case, and the one the diagnostics channel elides.
        """
        if not self.events:
            return None
        parts = []
        for ev in self.events:
            shard = "" if ev["shard"] is None else f"(s{ev['shard']})"
            parts.append(f"{ev['action']}@r{ev['round']}{shard}")
        return " ".join(parts)


# -- spill-to-disk journal ---------------------------------------------

_MAGIC = b"RPCK0001"


class CheckpointJournal:
    """Atomic on-disk checkpoint spill for long alternations.

    One file per journal (``checkpoint.rpck`` inside ``directory``,
    overridable via ``name``), always holding the *latest* committed
    round.  Writes go to a temp file in the same directory and land via
    ``os.replace``, so a reader never observes a torn file; the payload
    carries a magic header and a CRC-32 so a corrupted file raises
    :class:`CheckpointCorruptError` instead of resuming garbage.
    """

    __slots__ = ("path",)

    def __init__(self, directory, name="checkpoint.rpck"):
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, name)

    def write(self, checkpoint):
        payload = pickle.dumps(
            {
                "round_no": checkpoint.round_no,
                "blobs": checkpoint.blobs,
                "reports": checkpoint.reports,
                "ledger": checkpoint.ledger,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        crc = binascii.crc32(payload) & 0xFFFFFFFF
        record = _MAGIC + crc.to_bytes(4, "big") + payload
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(record)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self):
        """Read back the latest checkpoint; raise on any corruption."""
        try:
            with open(self.path, "rb") as handle:
                record = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"cannot read checkpoint journal {self.path}: {exc}"
            ) from exc
        if len(record) < len(_MAGIC) + 4 or not record.startswith(_MAGIC):
            raise CheckpointCorruptError(
                f"checkpoint journal {self.path} has a bad header"
            )
        stored = int.from_bytes(
            record[len(_MAGIC):len(_MAGIC) + 4], "big"
        )
        payload = record[len(_MAGIC) + 4:]
        if binascii.crc32(payload) & 0xFFFFFFFF != stored:
            raise CheckpointCorruptError(
                f"checkpoint journal {self.path} failed its CRC check"
            )
        try:
            data = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointCorruptError(
                f"checkpoint journal {self.path} does not unpickle: {exc}"
            ) from exc
        return RoundCheckpoint(
            data["round_no"], data["blobs"], data["reports"],
            data.get("ledger"),
        )


def resume_from_journal(journal, *, cap=None):
    """Drive a journalled batch run to completion inline.

    Loads the journal's latest checkpoint, restores every shard, and
    steps them in-process from the first uncommitted round — the
    operational "pick up a half-finished long alternation" path.  Only
    batch-shard runs journal a ledger today, so this resumes those;
    returns a dict with the committed-ledger keys (``outputs``,
    ``finish_round``, ``rounds``, ``messages``).
    """
    from .sharded import InlineChannel, ShardedKernelLoop

    checkpoint = journal.load()
    if checkpoint.ledger is None:
        raise CheckpointCorruptError(
            "journalled checkpoint carries no driver ledger; "
            "cannot resume without one"
        )
    shards = checkpoint.restore_all()
    ledger = checkpoint.ledger
    labels = ledger["labels"]
    rounds = ledger["rounds"]
    outputs = dict(ledger["outputs"])
    finish_round = dict(ledger["finish_round"])
    messages = ledger["messages"]

    total = sum(sh.own_hi - sh.own_lo for sh in shards)
    kernel = ShardedKernelLoop(InlineChannel(shards), len(shards), total)
    # Re-prime the loop at the committed round: the restored shards
    # already hold round-``rounds`` state, so only the done bookkeeping
    # and the inter-shard reports (a pure function of shard state for
    # batch shards) need rebuilding before stepping can continue.
    kernel.finished = len(outputs)
    kernel.done = kernel.finished >= total
    kernel._reports = [
        ([], [], 0, None, sh._sync_payload()) for sh in shards
    ]
    try:
        while not kernel.done:
            if cap is not None and rounds >= cap:
                break
            finished, results, sent = kernel.step()
            rounds += 1
            messages += sent
            for i, value in zip(finished, results):
                label = labels[i]
                if label not in outputs:
                    outputs[label] = value
                    finish_round[label] = rounds
    finally:
        kernel.close()
    return {
        "outputs": outputs,
        "finish_round": finish_round,
        "rounds": rounds,
        "messages": messages,
    }
