"""Long-lived simulation sessions: open → mutate → rerun → close (D18).

The engines below this module are batch-shaped: every ``run()`` accepts
a complete static graph and rebuilds whatever it needs.  A
:class:`SimulationSession` turns them into a service a traffic-serving
system can sit on: it keeps a live :class:`~repro.local.engine.
CompiledGraph`, applies :class:`~repro.local.graph.GraphDelta` edits
incrementally (CSR row-slice patching, no networkx round-trip), and
reuses warm worker pools across requests — a rerun after a small delta
skips the identity sort, the re-porting, the partition, the batch
mirror and the pool fork that a cold rebuild pays.

Correctness contract (enforced by ``tests/test_service.py``): for every
delta sequence, ``.rerun()`` is bit-identical to a cold ``run()`` on a
graph rebuilt from scratch — outputs, rounds, message counts and
backend attribution — on all five backends (reference / compiled /
batch / sharded(k) / fused).  The contract holds by construction, not
by luck:

* Mutation is *functional*: :meth:`SimulationSession.mutate` swaps in a
  brand-new graph object rather than patching the old one in place, so
  every cache keyed by object identity (the ``batch_graph_of`` mirror,
  ``Partition`` plans, the fused draw-slab cache) is coherent by
  definition — a new topology arrives with empty caches instead of
  stale ones.  The only cross-object cache, the fused slab registry, is
  evicted explicitly on every mutate/close
  (:func:`~repro.local.fused.release_slabs_of`).
* The incremental CSR patch produces the *canonical* layout — node
  order = identity order, rows sorted by neighbour identity, ports =
  ranks — which is exactly what a from-scratch build produces, so equal
  topology means equal bits (D9 purity: draws depend only on
  ``(run_key, identity)``, never on how the graph object was made).
* The warm pool is the existing D13 pool scope: a session *is* one
  scope, entered at open and exited at close, so every pooled rerun
  re-dispatches to the same forked workers and the D15 recovery ladder
  keeps serving the session after a worker dies mid-rerun.
"""

from __future__ import annotations

from ..errors import ParameterError
from . import sharded
from .fused import release_slabs_of, run_many
from .graph import GraphDelta, SimGraph
from .runner import run, use_backend


class SimulationSession:
    """A live graph plus warm execution state, mutated and rerun in place.

    Use as a context manager, or pair :func:`open_session` with
    :meth:`close`::

        with open_session(graph, backend="sharded", shards=2,
                          shard_channel="mp-pooled") as session:
            session.rerun(algo, seed=1)
            session.mutate(GraphDelta(add_edges=[(3, 9)]))
            session.rerun(algo, seed=1)   # ≡ cold run on the new graph

    Keyword pins (``backend``, ``rng``, ``shards``, ``shard_channel``,
    ``lanes``) become the defaults for every :meth:`rerun`; any rerun
    may override them per call, which is how the differential harness
    flips backends mid-script.
    """

    __slots__ = (
        "_graph", "_pins", "_lanes", "_epoch", "_reruns", "_closed",
        "_pool_cm",
    )

    def __init__(self, graph, *, backend=None, rng=None, shards=None,
                 shard_channel=None, lanes=None):
        if not isinstance(graph, SimGraph):
            raise ParameterError(
                f"sessions wrap a SimGraph, got {type(graph).__name__}"
            )
        self._graph = graph
        self._pins = {
            "backend": backend,
            "rng": rng,
            "shards": shards,
            "shard_channel": shard_channel,
        }
        self._lanes = lanes
        self._epoch = 0
        self._reruns = 0
        self._closed = False
        # The session is one pool scope (D13): warm workers persist
        # across every mutate/rerun until close.
        self._pool_cm = sharded.pool_scope()
        self._pool_cm.__enter__()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The session's live graph (a new object after every mutate)."""
        return self._graph

    @property
    def epoch(self):
        """Number of effective (non-empty) mutations applied so far."""
        return self._epoch

    @property
    def closed(self):
        return self._closed

    def stats(self):
        """Diagnostic counters: epoch, rerun count, warm-pool view."""
        return {
            "epoch": self._epoch,
            "reruns": self._reruns,
            "pool": sharded.pool_stats(),
        }

    def _check_open(self):
        if self._closed:
            raise ParameterError("session is closed")

    def close(self):
        """Release the warm pool and the session's slab-cache entries.

        Idempotent.  The graph itself stays valid — it is an ordinary
        immutable :class:`SimGraph` the caller may keep using.
        """
        if self._closed:
            return
        self._closed = True
        cg = self._graph._compiled
        if cg is not None:
            release_slabs_of(cg)
        self._pool_cm.__exit__(None, None, None)

    def __enter__(self):
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # mutate / rerun
    # ------------------------------------------------------------------
    def mutate(self, delta):
        """Apply a :class:`GraphDelta` incrementally; returns ``self``.

        Validation is eager and total — on any
        :class:`~repro.errors.ParameterError` the session state is
        untouched.  An empty delta is the no-op identity: same graph
        object, same caches, epoch unchanged.

        Unlike :meth:`SimGraph.apply_delta` this always takes the
        incremental CSR patch (that is the service's point); the
        rebuild path is the oracle the harness diffs against.
        """
        self._check_open()
        if not isinstance(delta, GraphDelta):
            raise ParameterError(
                f"mutate expects a GraphDelta, got {type(delta).__name__}"
            )
        old = self._graph
        delta.validate(old)
        if delta.is_empty():
            return self
        new = old.compiled().apply_delta(delta)
        self._graph = new
        self._epoch += 1
        # The one cross-object cache: fused slabs keyed by member-graph
        # identity.  Evict deterministically — user code may still hold
        # the retired graph, so the weakref finalizer may never fire.
        release_slabs_of(old._compiled)
        return self

    def rerun(self, algorithm, **kwargs):
        """Run ``algorithm`` on the live graph; session pins as defaults.

        Accepts every keyword of :func:`~repro.local.runner.run`
        (``seed``, ``guesses``, ``inputs``, ``backend``, ``shards``,
        ...); explicit keywords override the session pins per call.
        """
        self._check_open()
        for name, pin in self._pins.items():
            if pin is not None:
                kwargs.setdefault(name, pin)
        result = run(self._graph, algorithm, **kwargs)
        self._reruns += 1
        return result

    def rerun_many(self, algorithms, **kwargs):
        """Fused sweep over the live graph: one lane per algorithm.

        ``algorithms`` is an iterable of node algorithms (or
        ``(algorithm, opts)`` pairs); every lane shares the session
        graph, so the whole sweep packs into one block-diagonal slab
        (D16).  Accepts the keywords of
        :func:`~repro.local.fused.run_many` (``seeds``, ``salts``,
        ``lanes``, ...); the session's ``rng`` and ``lanes`` pins apply
        unless overridden.
        """
        self._check_open()
        if self._pins["rng"] is not None:
            kwargs.setdefault("rng", self._pins["rng"])
        if self._lanes is not None:
            kwargs.setdefault("lanes", self._lanes)
        jobs = []
        for entry in algorithms:
            if isinstance(entry, (tuple, list)):
                algorithm, opts = entry
                jobs.append((self._graph, algorithm, opts))
            else:
                jobs.append((self._graph, entry))
        result = run_many(jobs, **kwargs)
        self._reruns += len(jobs)
        return result

    def scope(self):
        """A ``use_backend`` scope pinning this session's settings.

        Lets session-unaware helpers (alternation drivers, estimator
        pipelines) run under the session's backend without threading
        keywords through every call::

            with session.scope():
                uniform.run(session.graph, seed=3)
        """
        self._check_open()
        backend = self._pins["backend"]
        if backend is None:
            from .runner import DEFAULT_BACKEND

            backend = DEFAULT_BACKEND
        extra = {}
        if self._pins["rng"] is not None:
            extra["rng"] = self._pins["rng"]
        if backend == "sharded":
            if self._pins["shards"] is not None:
                extra["shards"] = self._pins["shards"]
            if self._pins["shard_channel"] is not None:
                extra["shard_channel"] = self._pins["shard_channel"]
        if backend == "fused" and self._lanes is not None:
            extra["lanes"] = self._lanes
        return use_backend(backend, **extra)

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (
            f"SimulationSession({self._graph!r}, epoch={self._epoch}, "
            f"reruns={self._reruns}, {state})"
        )


def open_session(graph, *, backend=None, rng=None, shards=None,
                 shard_channel=None, lanes=None):
    """Open a :class:`SimulationSession` on ``graph``.

    The keyword pins become defaults for every ``rerun`` of the
    session; see :class:`SimulationSession`.
    """
    return SimulationSession(
        graph,
        backend=backend,
        rng=rng,
        shards=shards,
        shard_channel=shard_channel,
        lanes=lanes,
    )


#: ``service.open(graph)`` spelling used in the service docs.
open = open_session
