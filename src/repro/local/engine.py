"""Compiled execution core: CSR graph engine and O(active) round loop.

This module is the ``backend="compiled"`` implementation of
:func:`repro.local.runner.run`.  It executes the same synchronous LOCAL
semantics as the reference loop (which survives as
``backend="reference"`` and doubles as the executable specification) but
is built for throughput:

CSR layout
----------
A :class:`CompiledGraph` flattens a :class:`~repro.local.graph.SimGraph`
into integer-indexed arrays.  Nodes are numbered ``0 .. n-1`` in
identity order (the order of ``SimGraph.nodes``), and edges live in one
flat slab:

* ``offsets`` — ``n+1`` row pointers; node ``i``'s edge slots are
  ``offsets[i] .. offsets[i+1]``;
* ``neigh`` — flat neighbour *indices*, port order within each row;
* ``rev`` — parallel reverse-port array: ``rev[k]`` is the sender's port
  in the receiver's own numbering, i.e. exactly where a payload sent
  through slot ``k`` lands in the receiver's inbox;
* ``idents`` / ``labels`` / ``degrees`` — per-index identity, label and
  degree; ``index`` maps labels back to indices;
* ``pairs`` — per-row ``((neighbour_index, reverse_port), ...)`` tuples,
  a pre-zipped view of the slab that the inner loop iterates (CPython
  unpacks a pre-built tuple faster than it can index two arrays).

O(active) frontier invariant
----------------------------
The round loop touches only (a) nodes that are still running and (b)
inboxes that actually received a payload.  Inboxes are double-buffered
flat lists (``cur``/``nxt``) with an explicit touched-list per buffer;
after a round the consumed buffer is wiped by walking its touched list,
never by reallocating n dicts.  A round therefore costs
O(active + messages delivered) — independent of n once the frontier has
shrunk — where the reference loop pays an Θ(n) inbox reallocation every
round.

Message-size accounting (``track_bits``) is compiled into a separate
delivery path so the untracked hot path never tests the flag per
payload.

Incremental restriction
-----------------------
:meth:`CompiledGraph.restrict` produces the induced subgraph of the
survivors in O(Σ old-degree of survivors): survivor order is inherited
(identity order is preserved by restriction, so nothing re-sorts) and
reverse ports renumber through a rank scan over the slab.  The child
``SimGraph`` is created with its ``CompiledGraph`` already attached, so
an alternation ``B_i = (A_i ; P)`` never recompiles surviving structure.

Partitioned execution
---------------------
:class:`Partition` cuts the CSR into ``k`` contiguous shards (node order
is identity order, so contiguous index ranges are deterministic and
order-isomorphic to identities) with halo/ghost tables: for every shard,
the out-of-range neighbours its owned rows reference, and for every
shard pair the boundary nodes whose state must be exchanged between
rounds.  The sharded round loop (:mod:`repro.local.sharded`) consumes
the plan; this module only owns the edge-cut geometry.

Backend selection
-----------------
``run(graph, algo)`` defaults to this engine; pass
``backend="reference"`` for the specification loop, or flip the process
default with :func:`repro.local.runner.use_backend`.  See DESIGN.md for
the equivalence contract between the two backends.
"""

from __future__ import annotations

from bisect import bisect_right

from ..errors import NonTerminationError
from .algorithm import LocalAlgorithm
from .batch import make_engine_kernel
from .context import NodeContext, rng_source
from .faults import DROP, GARBLE, GARBLED
from .message import Broadcast, normalize_outgoing
from .msgsize import estimate_bits


class Partition:
    """Edge-cut of a CSR into ``k`` contiguous shards with halo tables.

    The plan is pure geometry — it references no algorithm state — and
    is shared by the per-node and the batched sharded steppings
    (DESIGN.md D12):

    * ``bounds`` — ``k+1`` cut points; shard ``s`` owns global indices
      ``bounds[s] .. bounds[s+1]``.  Cuts balance ``degree+1`` weight
      (edge slab with a node floor) and every shard owns at least one
      node (``k`` is clamped to ``n``).
    * ``ghosts[s]`` — sorted global indices of the out-of-shard
      neighbours referenced by shard ``s``'s owned rows (the halo).
    * ``locals_of(s)`` — the shard's local node universe: owned ∪
      ghosts merged in ascending global order, so local-index
      comparisons agree with global identity order (batch kernels
      tie-break on the node index).
    * ``sub_csr(s)`` — the shard's sub-CSR: owned rows are complete
      (full degree, neighbours renumbered locally), ghost rows are
      empty.  Degree-weighted message counts therefore partition
      exactly: every edge slot is owned by exactly one shard.
    * ``sync_plan()`` — per shard, which of its owned boundary nodes
      each other shard mirrors (and at which local ghost slots), in an
      agreed ascending order — the halo-exchange schedule.
    """

    __slots__ = (
        "k",
        "n",
        "bounds",
        "offsets",
        "neigh",
        "_ghosts",
        "_locals",
        "_l_of",
        "_sub",
        "_sync",
        "_halo",
    )

    def __init__(self, offsets, neigh, k):
        offsets = offsets if isinstance(offsets, list) else list(offsets)
        neigh = neigh if isinstance(neigh, list) else [int(v) for v in neigh]
        n = len(offsets) - 1
        self.n = n
        self.offsets = offsets
        self.neigh = neigh
        k = max(1, min(int(k), n)) if n > 0 else 1
        self.k = k
        total = offsets[n] + n  # Σ (degree + 1)
        bounds = [0] * (k + 1)
        bounds[k] = n
        j = 1
        acc = 0
        for i in range(n):
            acc += offsets[i + 1] - offsets[i] + 1
            while j < k and acc * k >= j * total:
                # Clamp so cuts stay strictly increasing and every
                # remaining shard keeps at least one node.
                bounds[j] = min(max(i + 1, bounds[j - 1] + 1), n - (k - j))
                j += 1
        self.bounds = bounds
        self._ghosts = None
        self._locals = None
        self._l_of = None
        self._sub = None
        self._sync = None
        self._halo = None

    def shard_of(self, i):
        """Owning shard of global node index ``i``."""
        return bisect_right(self.bounds, i) - 1

    def own_range(self, s):
        """``(lo, hi)`` global index range owned by shard ``s``."""
        return self.bounds[s], self.bounds[s + 1]

    @property
    def ghosts(self):
        """Per-shard sorted ghost (halo) index lists, built on first use."""
        tables = self._ghosts
        if tables is None:
            offsets, neigh, bounds = self.offsets, self.neigh, self.bounds
            tables = []
            for s in range(self.k):
                lo, hi = bounds[s], bounds[s + 1]
                seen = set()
                for v in neigh[offsets[lo]:offsets[hi]]:
                    if v < lo or v >= hi:
                        seen.add(v)
                tables.append(sorted(seen))
            self._ghosts = tables
        return tables

    def locals_of(self, s):
        """Local node universe of shard ``s`` in ascending global order."""
        tables = self._locals
        if tables is None:
            tables = self._locals = [None] * self.k
        row = tables[s]
        if row is None:
            lo, hi = self.own_range(s)
            ghosts = self.ghosts[s]
            below = [g for g in ghosts if g < lo]
            above = [g for g in ghosts if g >= hi]
            row = tables[s] = below + list(range(lo, hi)) + above
        return row

    def own_local_range(self, s):
        """Local index range the owned nodes occupy inside shard ``s``."""
        lo, hi = self.own_range(s)
        below = sum(1 for g in self.ghosts[s] if g < lo)
        return below, below + (hi - lo)

    def local_index(self, s, g):
        """Local index of global node ``g`` inside shard ``s``."""
        maps = self._l_of
        if maps is None:
            maps = self._l_of = [None] * self.k
        table = maps[s]
        if table is None:
            table = maps[s] = {
                g2: t for t, g2 in enumerate(self.locals_of(s))
            }
        return table[g]

    def sub_csr(self, s):
        """``(offsets, neigh)`` of shard ``s``: full owned rows, empty
        ghost rows, neighbours renumbered to local indices."""
        cache = self._sub
        if cache is None:
            cache = self._sub = [None] * self.k
        entry = cache[s]
        if entry is None:
            lo, hi = self.own_range(s)
            offsets, neigh = self.offsets, self.neigh
            self.local_index(s, lo if hi > lo else lo)  # materialize map
            l_of = self._l_of[s]
            sub_offsets = [0]
            sub_neigh = []
            for g in self.locals_of(s):
                if lo <= g < hi:
                    for j in range(offsets[g], offsets[g + 1]):
                        sub_neigh.append(l_of[neigh[j]])
                sub_offsets.append(len(sub_neigh))
            entry = cache[s] = (sub_offsets, sub_neigh)
        return entry

    def sync_plan(self):
        """Halo-exchange schedule: ``(sends, recv_slots)``.

        ``sends[s]`` is a list of ``(dest, local_indices)`` — the local
        indices (in shard ``s``) of the owned boundary nodes that shard
        ``dest`` mirrors; ``recv_slots[d][src]`` the matching local
        ghost slots in shard ``d``, in the same (ascending global)
        order.
        """
        plan = self._sync
        if plan is None:
            k = self.k
            sends = [[] for _ in range(k)]
            recv = [{} for _ in range(k)]
            for d in range(k):
                by_src = {}
                for g in self.ghosts[d]:
                    by_src.setdefault(self.shard_of(g), []).append(g)
                for src in sorted(by_src):
                    glist = by_src[src]
                    sends[src].append(
                        (d, [self.local_index(src, g) for g in glist])
                    )
                    recv[d][src] = [self.local_index(d, g) for g in glist]
            plan = self._sync = (sends, recv)
        return plan

    def halo_layout(self, bytes_per_node, header_bytes=1024, slots=2):
        """Stable shared-memory offsets for the halo plane (D13).

        Returns ``(total_bytes, regions)`` where ``regions`` maps each
        boundary pair ``(src, dest)`` to ``(offset, capacity)``:
        ``capacity`` bytes per ring slot, ``slots`` consecutive slots
        starting at ``offset``.  Offsets are a pure function of the
        partition geometry (pairs enumerated in ascending ``(src,
        dest)`` order), so every worker of a pooled run derives the same
        layout from the same plan — the sender writes its boundary-node
        state slices at ``offset + (round & 1) * capacity`` and the
        receiver reads the same bytes, no per-round reconciliation.
        Payloads that outgrow ``capacity`` fall back to the piped
        exchange for that round; correctness never depends on the
        sizing.
        """
        cache = self._halo
        if cache is None:
            cache = self._halo = {}
        key = (bytes_per_node, header_bytes, slots)
        layout = cache.get(key)
        if layout is not None:
            return layout
        sends, _ = self.sync_plan()
        regions = {}
        total = 0
        for src in range(self.k):
            for dest, idx in sends[src]:
                capacity = header_bytes + len(idx) * bytes_per_node
                regions[(src, dest)] = (total, capacity)
                total += capacity * slots
        layout = cache[key] = (total, regions)
        return layout


class CompiledGraph:
    """CSR (compressed sparse row) view of a :class:`SimGraph`."""

    __slots__ = (
        "graph",
        "n",
        "labels",
        "index",
        "idents",
        "degrees",
        "offsets",
        "neigh",
        "rev",
        "_pairs",
        "_batch",
        "_partitions",
        # Weak-referenceable so the fused engine's slab cache (D16) can
        # evict block-diagonal slabs when a member graph is collected.
        "__weakref__",
    )

    def __init__(self, graph, _raw=None):
        self.graph = graph
        labels = graph.nodes
        self.labels = labels
        self.n = len(labels)
        index = {u: i for i, u in enumerate(labels)}
        self.index = index
        ident = graph.ident
        self.idents = [ident[u] for u in labels]
        if _raw is not None:
            offsets, neigh, rev = _raw
        else:
            offsets = [0]
            neigh = []
            rev = []
            adj = graph.adj
            for u in labels:
                for _, v, reverse_port in adj[u]:
                    neigh.append(index[v])
                    rev.append(reverse_port)
                offsets.append(len(neigh))
        self.offsets = offsets
        self.neigh = neigh
        self.rev = rev
        self.degrees = [
            offsets[i + 1] - offsets[i] for i in range(self.n)
        ]
        self._pairs = None
        #: Lazily built numpy mirror (repro.local.batch.BatchGraph).
        self._batch = None
        #: Lazily built edge-cut plans, keyed by shard count.
        self._partitions = None

    @property
    def pairs(self):
        """Per-row pre-zipped ``((neighbour_index, reverse_port), ...)``.

        Built lazily: restriction-only children (alternation instances
        that get pruned before ever running) never pay for it.
        """
        rows = self._pairs
        if rows is None:
            offsets, neigh, rev = self.offsets, self.neigh, self.rev
            rows = self._pairs = [
                tuple(
                    zip(
                        neigh[offsets[i]:offsets[i + 1]],
                        rev[offsets[i]:offsets[i + 1]],
                    )
                )
                for i in range(self.n)
            ]
        return rows

    def partition(self, k):
        """The cached :class:`Partition` plan of this CSR into ``k`` shards."""
        plans = self._partitions
        if plans is None:
            plans = self._partitions = {}
        plan = plans.get(k)
        if plan is None:
            plan = plans[k] = Partition(self.offsets, self.neigh, k)
        return plan

    def restrict(self, keep_set):
        """Induced ``SimGraph`` on ``keep_set`` with an attached CSR.

        Python-level work is O(s log s + Σ old-degree of survivors) where
        ``s`` is the survivor count: no re-sorting of identities — index
        order already is identity order and restriction preserves it (the
        log factor is one integer sort of the survivor indices) — and
        reverse ports renumber via one rank scan over the survivor rows.
        The scratch buffers below (``mask``, ``new_of``, ``newport``) are
        sized by the parent, but their allocation is a C-level memset —
        orders of magnitude cheaper than one Python-level edge visit —
        chosen over survivor-keyed dicts because integer list indexing
        beats dict probing on the per-edge hot path.
        """
        from .graph import SimGraph

        index = self.index
        survivor_idx = sorted(index[u] for u in keep_set)
        offsets, neigh, rev = self.offsets, self.neigh, self.rev
        labels = self.labels
        n = self.n
        mask = bytearray(n)
        new_of = [-1] * n
        for j, i in enumerate(survivor_idx):
            mask[i] = 1
            new_of[i] = j
        # newport[k]: for edge slot k owned by a survivor, the slot's rank
        # among the owner's surviving neighbours (the owner's new port for
        # that slot); -1 when the slot's neighbour is pruned.
        newport = [-1] * len(neigh)
        for i in survivor_idx:
            count = 0
            for k in range(offsets[i], offsets[i + 1]):
                if mask[neigh[k]]:
                    newport[k] = count
                    count += 1
        new_offsets = [0]
        new_neigh = []
        new_rev = []
        for i in survivor_idx:
            for k in range(offsets[i], offsets[i + 1]):
                v = neigh[k]
                if mask[v]:
                    new_neigh.append(new_of[v])
                    # rev[k] is our port in v's old numbering; its rank in
                    # v's surviving row is our new reverse port.
                    new_rev.append(newport[offsets[v] + rev[k]])
            new_offsets.append(len(new_neigh))
        new_labels = [labels[i] for i in survivor_idx]
        ident = self.graph.ident
        new_ident = {u: ident[u] for u in new_labels}
        # The dict adjacency view is derived lazily by SimGraph.adj from
        # the attached CSR — instances that only ever run compiled (or
        # get pruned away) never build it.
        child = SimGraph(new_labels, new_ident, None)
        child._compiled = CompiledGraph(
            child, _raw=(new_offsets, new_neigh, new_rev)
        )
        return child

    def apply_delta(self, delta):
        """Patched-CSR application of a validated :class:`GraphDelta`.

        The insert/delete analogue of :meth:`restrict`'s rank scan
        (DESIGN.md D18): untouched rows are copied as C-level slices
        (edge-only deltas) or a flat index remap (node churn), touched
        rows are rebuilt by a sorted merge of the surviving slice with
        the insertions, and reverse ports renumber in one seen-counter
        pass over the new CSR.  Total Python-level work is O(n + m) with
        per-edge costs only on touched rows — no identity re-sort, no
        networkx round-trip, no global re-porting.

        The caller (:meth:`SimGraph.apply_delta <repro.local.graph.
        SimGraph.apply_delta>`) has already validated ``delta``; rows
        here trust it (an unvalidated duplicate insert would silently
        corrupt port ranks, which is why validation is mandatory and
        eager).
        """
        from .graph import SimGraph

        index = self.index
        offsets, neigh, rev = self.offsets, self.neigh, self.rev
        labels = self.labels
        idents = self.idents
        n = self.n

        dead = bytearray(n)
        for u in delta.del_nodes:
            dead[index[u]] = 1
        # Old-index pairs of deleted edges, both directions, plus the
        # set of rows whose surviving slice differs from the old row.
        dropped = set()
        touched = bytearray(n)
        for u, v in delta.del_edges:
            iu, iv = index[u], index[v]
            dropped.add((iu, iv))
            dropped.add((iv, iu))
            touched[iu] = 1
            touched[iv] = 1
        for u in delta.del_nodes:
            i = index[u]
            for k in range(offsets[i], offsets[i + 1]):
                touched[neigh[k]] = 1

        # Merge survivors (already in identity order) with the added
        # nodes (sorted by identity) into the new node order.
        added = sorted(delta.add_nodes, key=lambda pair: pair[1])
        survivors = [i for i in range(n) if not dead[i]]
        new_labels = []
        new_ident = {}
        new_of = [-1] * n  # old index -> new index (-1 when deleted)
        old_of = []  # new index -> old index (-1 for added nodes)
        added_index = {}
        si = ai = 0
        n_surv = len(survivors)
        n_add = len(added)
        while si < n_surv or ai < n_add:
            if ai < n_add and (
                si == n_surv or added[ai][1] < idents[survivors[si]]
            ):
                label, ident = added[ai]
                added_index[label] = len(new_labels)
                old_of.append(-1)
                new_labels.append(label)
                new_ident[label] = ident
                ai += 1
            else:
                i = survivors[si]
                new_of[i] = len(new_labels)
                old_of.append(i)
                u = labels[i]
                new_labels.append(u)
                new_ident[u] = idents[i]
                si += 1

        def index_new(u):
            i = index.get(u)
            if i is not None and not dead[i]:
                return new_of[i]
            return added_index[u]

        inserts = {}
        for u, v in delta.add_edges:
            ju, jv = index_new(u), index_new(v)
            inserts.setdefault(ju, []).append(jv)
            inserts.setdefault(jv, []).append(ju)

        # new_of is the identity map iff the node set is unchanged —
        # then untouched rows copy as raw slices with no remap at all.
        identity_map = not (delta.del_nodes or delta.add_nodes)
        nn = len(new_labels)
        new_offsets = [0]
        new_neigh = []
        for j in range(nn):
            i = old_of[j]
            adds = inserts.get(j)
            if i < 0:
                # Fresh node: its row is exactly its sorted insertions.
                if adds:
                    new_neigh.extend(sorted(adds))
            elif adds is None and not touched[i]:
                row = neigh[offsets[i]:offsets[i + 1]]
                if identity_map:
                    new_neigh.extend(row)
                else:
                    new_neigh.extend([new_of[w] for w in row])
            else:
                # Sorted merge: the surviving slice and the insertions
                # are both ascending in new-index order (new_of is
                # monotone on survivors), so one linear pass keeps the
                # row in canonical neighbour-identity order.
                adds = sorted(adds) if adds else []
                pa = 0
                na = len(adds)
                for k in range(offsets[i], offsets[i + 1]):
                    w = neigh[k]
                    if dead[w] or (i, w) in dropped:
                        continue
                    nw = new_of[w]
                    while pa < na and adds[pa] < nw:
                        new_neigh.append(adds[pa])
                        pa += 1
                    new_neigh.append(nw)
                while pa < na:
                    new_neigh.append(adds[pa])
                    pa += 1
            new_offsets.append(len(new_neigh))

        # Reverse ports in one seen-counter pass: rows are ascending and
        # the relation is symmetric, so for a fixed target w the slots
        # pointing at w arrive in ascending owner order — the running
        # count seen[w] is exactly the owner's rank (= port) in w's row.
        new_rev = [0] * len(new_neigh)
        seen = [0] * nn
        pos = 0
        for w in new_neigh:
            new_rev[pos] = seen[w]
            seen[w] += 1
            pos += 1

        child = SimGraph(new_labels, new_ident, None)
        child._compiled = CompiledGraph(
            child, _raw=(new_offsets, new_neigh, new_rev)
        )
        return child


def run_batch(
    kernel, cg, algorithm, *, cap, truncating, default_output, result_cls
):
    """Drive one run through a whole-frontier batch kernel.

    The kernel owns the per-node state and the message exchange (as
    arrays over the CSR slab); this loop keeps the LOCAL-model ledger —
    round counting, termination times, truncation, non-termination
    diagnostics — so a batch run reports field-for-field what the
    per-node paths report (DESIGN.md D10).
    """
    labels = cg.labels
    outputs = {}
    finish_round = {}
    # Sharded kernels with a spill journal want the committed ledger
    # alongside each round checkpoint (D15), so a resumed run need not
    # replay rounds this loop already absorbed.
    commit_ledger = getattr(kernel, "commit_ledger", None)
    finished, results, messages = kernel.start()
    for i, value in zip(finished, results):
        label = labels[i]
        outputs[label] = value
        finish_round[label] = 0
    rounds = 0
    if commit_ledger is not None:
        commit_ledger(labels, rounds, outputs, finish_round, messages)
    while not kernel.done:
        if rounds >= cap:
            undone = kernel.undone_indices()
            if truncating:
                for i in undone:
                    label = labels[i]
                    outputs[label] = default_output
                    finish_round[label] = cap
                return result_cls(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(labels[i] for i in undone),
                    None,
                )
            undone_by_shard = getattr(kernel, "undone_by_shard", None)
            raise NonTerminationError(
                algorithm.name,
                cap,
                [labels[i] for i in undone],
                shard_counts=undone_by_shard() if undone_by_shard else None,
            )
        rounds += 1
        finished, results, sent = kernel.step()
        messages += sent
        for i, value in zip(finished, results):
            label = labels[i]
            outputs[label] = value
            finish_round[label] = rounds
        if commit_ledger is not None:
            commit_ledger(labels, rounds, outputs, finish_round, messages)
    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs, finish_round, total, messages, frozenset(), None
    )


def run_compiled(
    graph,
    algorithm,
    *,
    inputs,
    guesses,
    seed,
    salt,
    cap,
    truncating,
    default_output,
    track_bits,
    rng_mode,
    result_cls,
    use_batch=True,
    faults=None,
):
    """Execute one synchronous run on the compiled engine.

    Arguments arrive pre-validated from :func:`repro.local.runner.run`;
    the returned ``result_cls`` instance is field-for-field identical to
    what the reference loop produces for the same configuration.  When
    the algorithm registers a batch kernel (and the run is eligible —
    see :func:`repro.local.batch.make_engine_kernel`), the whole
    frontier is stepped per round through :func:`run_batch` instead of
    dispatching per node.  Under an active fault plan the per-node path
    runs a dedicated injected loop (:func:`_run_pernode_faulted`) so the
    honest hot loop below stays branch-free.
    """
    from .runner import note_stepping

    cg = graph.compiled()
    if use_batch:
        kernel = make_engine_kernel(
            algorithm,
            cg,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            rng_mode=rng_mode,
            track_bits=track_bits,
            enabled=True,
            faults=faults,
        )
        if kernel is not None:
            if faults is None:
                # Round-fused tier (D17): certified kernels execute the
                # whole schedule in one driver call; try_drive declines
                # (capability, kill-switch, cap too small) back to the
                # per-round loop below.  Injected runs never fuse — the
                # fixed-point drivers are honest-only.
                from .roundfuse import try_drive

                fused = try_drive(
                    kernel,
                    cg,
                    algorithm,
                    cap=cap,
                    truncating=truncating,
                    default_output=default_output,
                    result_cls=result_cls,
                )
                if fused is not None:
                    return fused
            note_stepping("batch")
            return run_batch(
                kernel,
                cg,
                algorithm,
                cap=cap,
                truncating=truncating,
                default_output=default_output,
                result_cls=result_cls,
            )
    note_stepping("per-node")
    if faults is not None:
        return _run_pernode_faulted(
            cg,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            rng_mode=rng_mode,
            result_cls=result_cls,
            faults=faults,
        )
    n = cg.n
    labels = cg.labels
    idents = cg.idents
    degrees = cg.degrees
    pairs = cg.pairs

    make_gen = rng_source(rng_mode, seed, salt)
    # For plain LocalAlgorithm instances, `make` is pure delegation to the
    # process factory — skip the extra call layer.  Subclasses keep their
    # `make` hook.
    if type(algorithm) is LocalAlgorithm:
        make_process = algorithm.process
    else:
        make_process = algorithm.make
    get_input = inputs.get
    processes = [
        make_process(
            NodeContext(
                label,
                ident,
                degree,
                get_input(label),
                guesses,
                None,
                make_gen,
                rng_mode,
            )
        )
        for label, ident, degree in zip(labels, idents, degrees)
    ]

    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0

    # Double-buffered flat inboxes: `nxt` collects deliveries for the next
    # round, `cur` is consumed this round and wiped via its touched list.
    nxt = [None] * n
    nxt_touched = []
    cur = [None] * n
    cur_touched = []

    def deliver_slow(i, outgoing):
        """Targeted/odd outgoing specs; returns payload count.

        The Broadcast fast path is inlined in the round loops below —
        this handles port dicts (validated with the specification's exact
        diagnostics) plus Broadcast/dict subclasses.
        """
        nonlocal max_bits
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            row = pairs[i]
            for vi, rp in row:
                box = nxt[vi]
                if box is None:
                    box = nxt[vi] = {}
                    nxt_touched.append(vi)
                box[rp] = payload
            return len(row)
        if not isinstance(outgoing, dict):
            normalize_outgoing(outgoing, len(pairs[i]))  # raises TypeError
        row = pairs[i]
        degree = len(row)
        count = 0
        for port, payload in outgoing.items():
            if not isinstance(port, int) or port < 0 or port >= degree:
                # Re-raise with the specification's exact diagnostics.
                normalize_outgoing(outgoing, degree)
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            vi, rp = row[port]
            box = nxt[vi]
            if box is None:
                box = nxt[vi] = {}
                nxt_touched.append(vi)
            box[rp] = payload
            count += 1
        return count

    touch = nxt_touched.append
    active = []
    add_active = active.append
    for i in range(n):
        process = processes[i]
        outgoing = process.start()
        if outgoing is not None:
            if type(outgoing) is Broadcast:
                payload = outgoing.payload
                if track_bits:
                    bits = estimate_bits(payload)
                    if bits > max_bits:
                        max_bits = bits
                row = pairs[i]
                for vi, rp in row:
                    box = nxt[vi]
                    if box is None:
                        box = nxt[vi] = {}
                        touch(vi)
                    box[rp] = payload
                messages += len(row)
            else:
                messages += deliver_slow(i, outgoing)
        if process.done:
            label = labels[i]
            outputs[label] = process.result
            finish_round[label] = 0
        else:
            add_active(i)

    rounds = 0
    while active:
        if rounds >= cap:
            if truncating:
                for i in active:
                    label = labels[i]
                    outputs[label] = default_output
                    finish_round[label] = cap
                return result_cls(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(labels[i] for i in active),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(
                algorithm.name, cap, [labels[i] for i in active]
            )
        rounds += 1
        cur, cur_touched, nxt, nxt_touched = nxt, nxt_touched, cur, cur_touched
        touch = nxt_touched.append
        still_active = []
        add_still = still_active.append
        for i in active:
            process = processes[i]
            box = cur[i]
            outgoing = process.receive(box if box is not None else {})
            if outgoing is not None:
                if type(outgoing) is Broadcast:
                    payload = outgoing.payload
                    if track_bits:
                        bits = estimate_bits(payload)
                        if bits > max_bits:
                            max_bits = bits
                    row = pairs[i]
                    for vi, rp in row:
                        box = nxt[vi]
                        if box is None:
                            box = nxt[vi] = {}
                            touch(vi)
                        box[rp] = payload
                    messages += len(row)
                else:
                    messages += deliver_slow(i, outgoing)
            if process.done:
                label = labels[i]
                outputs[label] = process.result
                finish_round[label] = rounds
            else:
                add_still(i)
        active = still_active
        # Wipe only the slots this round touched — the O(active) invariant.
        for i in cur_touched:
            cur[i] = None
        cur_touched.clear()

    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )

def _run_pernode_faulted(
    cg,
    algorithm,
    *,
    inputs,
    guesses,
    seed,
    salt,
    cap,
    truncating,
    default_output,
    track_bits,
    rng_mode,
    result_cls,
    faults,
):
    """The per-node loop under an active fault plan (DESIGN.md D14).

    A separate function so the honest loop in :func:`run_compiled` stays
    branch-free per payload.  Semantics mirror the faulted reference
    loop exactly: crash-stop nodes are force-finished before acting at
    their crash round, silenced senders deliver nothing (uncounted),
    drops vanish in flight (uncounted), garbles arrive as
    :data:`GARBLED` (counted, and sized as sent when tracking bits).
    Per-edge fates come from :meth:`CompiledFaults.decide` — the same
    closed form the batch masks vectorize, which is what keeps all four
    stacks bit-identical under injection.
    """
    n = cg.n
    labels = cg.labels
    idents = cg.idents
    degrees = cg.degrees
    pairs = cg.pairs

    make_gen = rng_source(rng_mode, seed, salt)
    if type(algorithm) is LocalAlgorithm:
        make_process = algorithm.process
    else:
        make_process = algorithm.make
    get_input = inputs.get
    processes = [
        make_process(
            NodeContext(
                label,
                ident,
                degree,
                get_input(label),
                guesses,
                None,
                make_gen,
                rng_mode,
            )
        )
        for label, ident, degree in zip(labels, idents, degrees)
    ]

    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0

    nxt = [None] * n
    nxt_touched = []
    cur = [None] * n
    cur_touched = []

    silenced = faults.silenced
    decide = faults.decide
    crash_of = faults.crash_of

    def deliver(i, outgoing, rnd):
        """Route one node's outgoing spec through the fault plan."""
        nonlocal max_bits
        outgoing = normalize_outgoing(outgoing, len(pairs[i]))
        if outgoing is None:
            return 0
        label = labels[i]
        ident = idents[i]
        if silenced(label, rnd):
            # Suppressed at source: the payload never leaves the node,
            # so neither counts nor sizes observe it (matches the
            # reference loop's faulted route).
            return 0
        count = 0
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            for vi, rp in pairs[i]:
                fate = decide(label, ident, idents[vi], rnd)
                if fate == DROP:
                    continue
                box = nxt[vi]
                if box is None:
                    box = nxt[vi] = {}
                    nxt_touched.append(vi)
                box[rp] = GARBLED if fate == GARBLE else payload
                count += 1
            return count
        row = pairs[i]
        for port, payload in outgoing.items():
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            vi, rp = row[port]
            fate = decide(label, ident, idents[vi], rnd)
            if fate == DROP:
                continue
            box = nxt[vi]
            if box is None:
                box = nxt[vi] = {}
                nxt_touched.append(vi)
            box[rp] = GARBLED if fate == GARBLE else payload
            count += 1
        return count

    active = []
    for i in range(n):
        crashed = crash_of(labels[i])
        if crashed is not None and crashed[0] == 0:
            outputs[labels[i]] = crashed[1]
            finish_round[labels[i]] = 0
            continue
        process = processes[i]
        messages += deliver(i, process.start(), 0)
        if process.done:
            label = labels[i]
            outputs[label] = process.result
            finish_round[label] = 0
        else:
            active.append(i)

    rounds = 0
    while active:
        if rounds >= cap:
            if truncating:
                for i in active:
                    label = labels[i]
                    outputs[label] = default_output
                    finish_round[label] = cap
                return result_cls(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(labels[i] for i in active),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(
                algorithm.name, cap, [labels[i] for i in active]
            )
        rounds += 1
        cur, cur_touched, nxt, nxt_touched = nxt, nxt_touched, cur, cur_touched
        still_active = []
        for i in active:
            label = labels[i]
            crashed = crash_of(label)
            if crashed is not None and crashed[0] == rounds:
                outputs[label] = crashed[1]
                finish_round[label] = rounds
                continue
            process = processes[i]
            box = cur[i]
            messages += deliver(
                i, process.receive(box if box is not None else {}), rounds
            )
            if process.done:
                outputs[label] = process.result
                finish_round[label] = rounds
            else:
                still_active.append(i)
        active = still_active
        for i in cur_touched:
            cur[i] = None
        cur_touched.clear()

    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )
