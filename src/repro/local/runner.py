"""Synchronous LOCAL-model runner.

Executes one algorithm on a :class:`~repro.local.graph.SimGraph` under the
paper's standard assumptions (Section 2): all nodes wake simultaneously,
rounds are fault-free and synchronous, messages sent in round ``r`` arrive
before round ``r+1``, message size and local computation are unbounded.

Round accounting follows the paper: the running time of an execution is
the number of rounds until every node has terminated.  A node that
terminates during :meth:`start` — before any communication — has
termination time 0.

The *restriction to i rounds* operator (Section 2) is obtained with
``max_rounds=i`` together with ``default_output``: nodes that have not
produced an output by round ``i`` are forced to terminate with the
default (the paper uses the arbitrary value "0").

Backends
--------
Two interchangeable executors implement these semantics:

* ``backend="compiled"`` (default) — the CSR engine of
  :mod:`repro.local.engine`: flat integer-indexed adjacency, O(active +
  messages) rounds, lazy per-node random sources (``rng="counter"`` by
  default).
* ``backend="reference"`` — the original dict-based loop below, kept
  verbatim as the executable specification (eager Mersenne-Twister
  sources, ``rng="mt"`` by default).  It is the oracle the equivalence
  suite (``tests/test_engine_equivalence.py``) diffs the engine against:
  under a pinned ``rng`` scheme the two backends produce bit-identical
  :class:`RunResult` fields.

Select per call (``run(..., backend=..., rng=...)``) or per process
(:func:`set_default_backend` / :func:`use_backend`, or the
``REPRO_BACKEND`` / ``REPRO_RNG`` environment variables).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ..errors import NonTerminationError, ParameterError
from .algorithm import capabilities_of
from .context import NodeContext, rng_source
from .faults import DROP, GARBLE, GARBLED, resolve_faults
from .message import Broadcast, normalize_outgoing
from .msgsize import estimate_bits

#: Cap applied when the caller neither bounds the rounds nor truncates.
SAFETY_ROUND_CAP = 100_000

#: ``"batch"`` is the compiled engine with the batched frontier-step
#: path explicitly requested (it is also auto-selected under
#: ``"compiled"`` whenever the algorithm registers a kernel).
#: ``"sharded"`` is the partitioned engine (DESIGN.md D12): the round
#: loop runs per graph shard with boundary exchange; it is also
#: selected by passing ``shards=k`` to :func:`run` under any compiled
#: backend.
#: ``"fused"`` is the multi-run engine (DESIGN.md D16): a single
#: :func:`run` behaves like ``"batch"``, while
#: :func:`~repro.local.fused.run_many` packs independent runs into one
#: block-diagonal slab and steps them as lanes of one kernel.
#: ``"jit"`` is the round-fused tier with the numba JIT loops requested
#: for that call (DESIGN.md D17): it resolves like ``"batch"`` and —
#: when numba is importable — compiles the hottest fused inner loops;
#: without numba it is exactly the pure-numpy round-fused path.
_BACKENDS = ("compiled", "reference", "batch", "sharded", "fused", "jit")
_RNG_MODES = ("counter", "mt")
#: Boundary-exchange channels of the sharded engine: ``"inline"`` steps
#: the shards sequentially in-process (deterministic reference),
#: ``"mp"`` forks one worker per shard per run, ``"mp-pooled"``
#: dispatches to the persistent worker pool with shared-memory halo
#: exchange (DESIGN.md D13).
_SHARD_CHANNELS = ("inline", "mp", "mp-pooled")

#: Process-wide backend default (overridable per call).
DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", "compiled")
#: Process-wide rng-scheme override; ``None`` picks the backend's native
#: scheme ("counter" for compiled, "mt" for reference).
DEFAULT_RNG = os.environ.get("REPRO_RNG") or None
try:
    #: Shard count used when ``backend="sharded"`` is selected without
    #: an explicit ``shards=k``.
    DEFAULT_SHARDS = max(1, int(os.environ.get("REPRO_SHARDS", "") or 2))
except ValueError:  # pragma: no cover - malformed environment
    DEFAULT_SHARDS = 2
#: Default boundary-exchange channel of the sharded engine.
DEFAULT_SHARD_CHANNEL = os.environ.get("REPRO_SHARD_CHANNEL", "inline")
try:
    #: Maximum lane width of one fused slab (DESIGN.md D16): a
    #: ``run_many`` call packs at most this many runs per kernel, wider
    #: batches are chunked.  Pin per scope with
    #: ``use_backend("fused", lanes=b)``.
    DEFAULT_FUSE_LANES = max(1, int(os.environ.get("REPRO_FUSE_LANES", "") or 32))
except ValueError:  # pragma: no cover - malformed environment
    DEFAULT_FUSE_LANES = 32
#: Process-wide switch for the batched frontier-step path (DESIGN.md
#: D10).  Off, every run steps per node — the fallback that also engages
#: automatically when numpy is unavailable.  ``backend="batch"``
#: overrides a disabled switch for that call.
BATCH_ENABLED = os.environ.get("REPRO_BATCH", "1").lower() not in (
    "0",
    "off",
    "false",
)
#: Process-wide switch for the round-fused drivers (DESIGN.md D17).
#: On by default: certified kernels execute their whole round schedule
#: inside one driver call instead of returning to the interpreter per
#: round.  ``REPRO_ROUNDFUSE=0`` restores the per-round batch loop
#: everywhere (the bit-identity fallback the equivalence suite diffs
#: against).
ROUNDFUSE_ENABLED = os.environ.get("REPRO_ROUNDFUSE", "1").lower() not in (
    "0",
    "off",
    "false",
)
#: Process-wide request for the numba JIT tier of the round-fused
#: drivers (DESIGN.md D17).  Off by default; ``REPRO_JIT=1`` (or
#: ``backend="jit"`` per call) requests it.  The request is honoured
#: only when numba is importable — otherwise the pure-numpy fused loops
#: run, bit-identical.
JIT_ENABLED = os.environ.get("REPRO_JIT", "0").lower() in (
    "1",
    "on",
    "true",
)


#: Stepping strategy of the most recent run in this process
#: (``"batch"``, ``"per-node"`` or ``"reference"``); ``None`` before the
#: first run.  The alternation engine samples this right after each
#: guess/pruning run to attribute wall clock per step (StepRecord
#: backends) — a diagnostic channel, deliberately kept out of
#: :class:`RunResult` so the backend equivalence contract stays
#: field-for-field.
_LAST_STEPPING = None


def note_stepping(kind):
    """Record the stepping strategy that executed the latest run."""
    global _LAST_STEPPING
    _LAST_STEPPING = kind


def last_stepping():
    """Stepping strategy of the most recent run (``None`` if none ran)."""
    return _LAST_STEPPING


#: Fault-plan summary of the most recent run (``None`` when the run was
#: honest) — the same diagnostic channel as :data:`_LAST_STEPPING`: the
#: alternation engine samples it per step so traces can show which runs
#: executed under an adversary without widening :class:`RunResult`.
_LAST_FAULTS = None


def note_faults(description):
    """Record the fault-plan summary of the latest run (or ``None``)."""
    global _LAST_FAULTS
    _LAST_FAULTS = description


def last_faults():
    """Fault summary of the most recent run (``None`` if it was honest)."""
    return _LAST_FAULTS


#: Recovery trail of the most recent sharded run (``None`` when nothing
#: failed) — e.g. ``"respawn@r3(s1)"`` after a surgical worker respawn,
#: ``"respawn@r3(s1) inline@r3"`` after an escalation (D15).  Same
#: diagnostic channel as :data:`_LAST_STEPPING`: the alternation engine
#: samples it per step and folds it into ``StepRecord.backends``.
_LAST_RECOVERY = None


def note_recovery(summary):
    """Record the recovery trail of the latest sharded run (or ``None``)."""
    global _LAST_RECOVERY
    _LAST_RECOVERY = summary


def last_recovery():
    """Recovery trail of the most recent run (``None`` if nothing failed)."""
    return _LAST_RECOVERY


def set_batch_enabled(enabled):
    """Toggle the batched execution path; returns the previous value."""
    global BATCH_ENABLED
    previous = BATCH_ENABLED
    BATCH_ENABLED = bool(enabled)
    return previous


@contextmanager
def use_batch(enabled):
    """Temporarily pin the batched-path switch (equivalence tests diff
    the batch and per-node steppings under ``use_batch(False)``)."""
    previous = set_batch_enabled(enabled)
    try:
        yield
    finally:
        set_batch_enabled(previous)


def set_roundfuse_enabled(enabled):
    """Toggle the round-fused drivers (D17); returns the previous value."""
    global ROUNDFUSE_ENABLED
    previous = ROUNDFUSE_ENABLED
    ROUNDFUSE_ENABLED = bool(enabled)
    return previous


@contextmanager
def use_roundfuse(enabled):
    """Temporarily pin the round-fused-driver switch (the equivalence
    suite diffs fused and per-round stepping under
    ``use_roundfuse(False)``)."""
    previous = set_roundfuse_enabled(enabled)
    try:
        yield
    finally:
        set_roundfuse_enabled(previous)


def use_roundfuse_now():
    """Whether an eligible run should take the round-fused drivers."""
    return ROUNDFUSE_ENABLED


def set_jit_enabled(enabled):
    """Toggle the process-wide JIT request; returns the previous value."""
    global JIT_ENABLED
    previous = JIT_ENABLED
    JIT_ENABLED = bool(enabled)
    return previous


@contextmanager
def use_jit(enabled):
    """Temporarily pin the JIT-tier request (``backend="jit"`` wraps its
    run in this scope; honoured only when numba is importable)."""
    previous = set_jit_enabled(enabled)
    try:
        yield
    finally:
        set_jit_enabled(previous)


def use_jit_now():
    """Whether the current run requests the numba JIT loops."""
    return JIT_ENABLED


def set_default_backend(backend):
    """Set the process-wide runner backend; returns the previous value."""
    global DEFAULT_BACKEND
    if backend not in _BACKENDS:
        raise ParameterError(f"unknown backend {backend!r} (use {_BACKENDS})")
    previous = DEFAULT_BACKEND
    DEFAULT_BACKEND = backend
    return previous


@contextmanager
def use_backend(backend, rng=None, shards=None, shard_channel=None, lanes=None):
    """Temporarily pin the runner backend (and optionally the rng scheme,
    shard count and shard channel).

    The equivalence suite runs whole pipelines — alternations, virtual
    domains, portfolios — under each backend with the rng scheme pinned,
    proving the engines interchangeable end to end.
    ``use_backend("sharded", shards=4)`` shards every run of a pipeline
    without threading ``shards=`` through each call site.

    A sharded scope is also a *pool scope* (DESIGN.md D13): the first
    run dispatched through ``shard_channel="mp-pooled"`` inside it
    spawns the persistent worker pool, every later run of the scope —
    each ``(A_i ; P)`` step of an alternation — reuses the warm
    workers, and the outermost scope exit joins them.  Pooled runs
    outside any scope fall back to a per-run pool.

    ``use_backend("fused", lanes=b)`` pins the fused engine's lane
    width (DESIGN.md D16): every :func:`~repro.local.fused.run_many`
    inside the scope packs at most ``b`` runs per block-diagonal slab.
    """
    global DEFAULT_BACKEND, DEFAULT_RNG, DEFAULT_SHARDS, DEFAULT_SHARD_CHANNEL
    global DEFAULT_FUSE_LANES
    if rng is not None and rng not in _RNG_MODES:
        raise ParameterError(f"unknown rng scheme {rng!r} (use {_RNG_MODES})")
    if shard_channel is not None and shard_channel not in _SHARD_CHANNELS:
        raise ParameterError(
            f"unknown shard channel {shard_channel!r} (use {_SHARD_CHANNELS})"
        )
    if shards is not None:
        # Same validation as resolve_execution: reject rather than clamp.
        if int(shards) < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if backend != "sharded":
            # DEFAULT_SHARDS only takes effect under backend="sharded";
            # accepting it here would pin a count that never applies.
            raise ParameterError(
                "use_backend(..., shards=k) requires backend='sharded' "
                f"(got {backend!r}); pass shards per call instead"
            )
    if lanes is not None:
        if int(lanes) < 1:
            raise ParameterError(f"lanes must be >= 1, got {lanes}")
        if backend != "fused":
            # DEFAULT_FUSE_LANES only takes effect through run_many's
            # fused packing; pinning it under another backend would be
            # a silent no-op.
            raise ParameterError(
                "use_backend(..., lanes=b) requires backend='fused' "
                f"(got {backend!r}); pass lanes per run_many call instead"
            )
    prev_backend = set_default_backend(backend)
    prev_rng = DEFAULT_RNG
    prev_shards = DEFAULT_SHARDS
    prev_channel = DEFAULT_SHARD_CHANNEL
    prev_lanes = DEFAULT_FUSE_LANES
    DEFAULT_RNG = rng if rng is not None else prev_rng
    if shards is not None:
        DEFAULT_SHARDS = int(shards)
    if shard_channel is not None:
        DEFAULT_SHARD_CHANNEL = shard_channel
    if lanes is not None:
        DEFAULT_FUSE_LANES = int(lanes)
    scope = None
    if backend == "sharded" or shard_channel == "mp-pooled":
        # Sharded scopes double as worker-pool scopes (D13): pooled runs
        # inside reuse one warm pool, torn down at the outermost exit.
        from .sharded import pool_scope

        scope = pool_scope()
        scope.__enter__()
    try:
        yield
    finally:
        DEFAULT_BACKEND = prev_backend
        DEFAULT_RNG = prev_rng
        DEFAULT_SHARDS = prev_shards
        DEFAULT_SHARD_CHANNEL = prev_channel
        DEFAULT_FUSE_LANES = prev_lanes
        if scope is not None:
            scope.__exit__(None, None, None)


def resolve_backend(backend=None, rng=None):
    """Resolve (backend, rng_mode) from per-call values and defaults.

    ``"batch"`` and ``"sharded"`` resolve like ``"compiled"`` (same
    engine family, same native rng scheme); ``"batch"`` additionally
    *requests* the batched stepping even when the process-wide switch
    is off, ``"sharded"`` selects the partitioned round loop.
    """
    backend = backend or DEFAULT_BACKEND
    if backend not in _BACKENDS:
        raise ParameterError(f"unknown backend {backend!r} (use {_BACKENDS})")
    rng = rng or DEFAULT_RNG or ("mt" if backend == "reference" else "counter")
    if rng not in _RNG_MODES:
        raise ParameterError(f"unknown rng scheme {rng!r} (use {_RNG_MODES})")
    return backend, rng


def resolve_execution(backend=None, rng=None, shards=None, shard_channel=None):
    """Resolve the full executor selection in one place.

    Returns ``(backend, rng_mode, shards, shard_channel)`` where
    ``shards`` is ``None`` for unsharded execution.  This is the single
    dispatch helper behind :func:`run`, :func:`run_restricted` and the
    :class:`~repro.core.domain.Domain` runners, so backend/batch/shard
    selection flags pass through every layer identically.
    """
    backend, rng_mode = resolve_backend(backend, rng)
    if shards is not None:
        shards = int(shards)
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if backend == "reference":
            raise ParameterError(
                "sharded execution requires a compiled backend "
                "(backend='reference' cannot take shards)"
            )
    elif backend == "sharded":
        shards = DEFAULT_SHARDS
    shard_channel = shard_channel or DEFAULT_SHARD_CHANNEL
    if shard_channel not in _SHARD_CHANNELS:
        raise ParameterError(
            f"unknown shard channel {shard_channel!r} (use {_SHARD_CHANNELS})"
        )
    return backend, rng_mode, shards, shard_channel


def batching_requested(backend):
    """Whether a resolved backend name should take the batched path."""
    return backend in ("batch", "fused", "jit") or (
        backend in ("compiled", "sharded") and BATCH_ENABLED
    )


class RunResult:
    """Outcome of one synchronous execution.

    Attributes
    ----------
    outputs:
        Mapping node -> final output ``y(v)``.
    finish_round:
        Mapping node -> termination time (rounds of communication used).
    rounds:
        Running time of the execution: ``max(finish_round.values())``.
    messages:
        Total number of point-to-point payload deliveries.
    truncated:
        Frozenset of nodes forced to the default output by a round
        restriction (empty when the algorithm terminated on its own).
    max_message_bits:
        Largest single payload observed (only when the run was started
        with ``track_bits=True``; else ``None``) — the Section 6.2
        message-size instrumentation.
    """

    __slots__ = (
        "outputs",
        "finish_round",
        "rounds",
        "messages",
        "truncated",
        "max_message_bits",
    )

    def __init__(
        self,
        outputs,
        finish_round,
        rounds,
        messages,
        truncated,
        max_message_bits=None,
    ):
        self.outputs = outputs
        self.finish_round = finish_round
        self.rounds = rounds
        self.messages = messages
        self.truncated = truncated
        self.max_message_bits = max_message_bits

    def __repr__(self):
        return (
            f"RunResult(rounds={self.rounds}, messages={self.messages}, "
            f"truncated={len(self.truncated)})"
        )


def run(
    graph,
    algorithm,
    *,
    inputs=None,
    guesses=None,
    seed=0,
    salt=0,
    max_rounds=None,
    default_output=None,
    truncate=False,
    track_bits=False,
    backend=None,
    rng=None,
    shards=None,
    shard_channel=None,
    faults=None,
):
    """Execute ``algorithm`` on ``graph`` and return a :class:`RunResult`.

    Parameters
    ----------
    graph:
        The :class:`SimGraph` to run on.
    algorithm:
        A :class:`LocalAlgorithm`.
    inputs:
        Optional mapping node -> input ``x(v)``; missing nodes get ``None``.
    guesses:
        Mapping parameter-name -> common guessed value (the Γ̃ of the
        paper).  Must cover ``algorithm.requires``.
    seed, salt:
        Seed material for the per-node RNGs; two runs with identical
        arguments are bit-for-bit identical.
    max_rounds:
        Round cap.  With ``truncate=True`` (or a non-None
        ``default_output``) unfinished nodes are forced to the default
        output — the paper's restriction operator.  Otherwise exceeding
        the cap raises :class:`NonTerminationError`.
    default_output:
        Output forced on truncated nodes.
    truncate:
        Explicitly request truncation semantics even when the default
        output is ``None``.
    track_bits:
        Record the largest payload size observed (Section 6.2's
        message-size instrumentation; small runtime overhead).
    backend:
        ``"compiled"`` (CSR engine, default), ``"reference"`` (the
        specification loop), ``"batch"`` (the CSR engine with the
        batched frontier-step path explicitly requested; compiled runs
        auto-select it whenever the algorithm registers a kernel and
        :data:`BATCH_ENABLED` is on), ``"sharded"`` (the partitioned
        round loop, DESIGN.md D12) or ``"jit"`` (the round-fused tier
        with the numba loops requested for this call, DESIGN.md D17 —
        without numba it is the pure-numpy round-fused path,
        bit-identical).  ``None`` uses the process default.
    rng:
        Per-node random-source scheme, ``"counter"`` or ``"mt"``;
        ``None`` uses the backend's native scheme.  Pin it when diffing
        backends — the schemes produce different (equally valid) random
        streams.
    shards:
        Shard count for partitioned execution; any value implies the
        sharded engine under the resolved compiled backend (bit
        identical to it for every count — counts larger than ``n``
        clamp).  ``None`` shards only when the backend is
        ``"sharded"`` (then :data:`DEFAULT_SHARDS` applies).
    shard_channel:
        Boundary exchange of the sharded engine: ``"inline"``
        (in-process, deterministic reference), ``"mp"`` (one forked
        worker per shard per run) or ``"mp-pooled"`` (persistent
        worker pool + shared-memory halo plane, DESIGN.md D13 — reuse
        the pool across runs by wrapping the pipeline in
        ``use_backend("sharded", ...)``).  ``None`` uses
        :data:`DEFAULT_SHARD_CHANNEL`.
    faults:
        Optional :class:`~repro.local.faults.FaultPlan` of adversarial
        node profiles (DESIGN.md D14); ``None`` falls back to the
        ambient plan pinned by :func:`~repro.local.faults.use_faults`.
        An injected run is a pure function of its arguments plus the
        plan and bit-identical across every backend and shard channel.
    """
    if capabilities_of(algorithm).get("kind") != "node":
        raise TypeError(f"expected LocalAlgorithm, got {type(algorithm).__name__}")
    guesses = dict(guesses or {})
    missing = [p for p in algorithm.requires if p not in guesses]
    if missing:
        raise ParameterError(
            f"algorithm {algorithm.name!r} requires guesses for {missing}"
        )
    inputs = inputs or {}
    truncating = truncate or default_output is not None
    if max_rounds is None:
        if truncating:
            raise ParameterError("truncation requires an explicit max_rounds")
        cap = SAFETY_ROUND_CAP
    else:
        cap = max_rounds
    backend, rng_mode, shards, shard_channel = resolve_execution(
        backend, rng, shards, shard_channel
    )
    plan = resolve_faults(faults)
    # Compiled once per run: the scalar per-run view every executor
    # consumes (batch kernels derive their vectorized twin from it).
    faults = plan.compile(graph.nodes, graph.ident, seed, salt) if plan else None
    note_faults(plan.describe() if faults is not None else None)
    if shards is not None:
        from .sharded import run_sharded

        return run_sharded(
            graph,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            rng_mode=rng_mode,
            result_cls=RunResult,
            use_batch=batching_requested(backend),
            shards=shards,
            channel=shard_channel,
            faults=faults,
        )
    if backend != "reference":
        from .engine import run_compiled

        kwargs = dict(
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            rng_mode=rng_mode,
            result_cls=RunResult,
            use_batch=batching_requested(backend),
            faults=faults,
        )
        if backend == "jit":
            # Per-call JIT request (D17): honoured only when numba is
            # importable; otherwise the pure-numpy fused tier runs.
            with use_jit(True):
                return run_compiled(graph, algorithm, **kwargs)
        return run_compiled(graph, algorithm, **kwargs)
    return _run_reference(
        graph,
        algorithm,
        inputs=inputs,
        guesses=guesses,
        seed=seed,
        salt=salt,
        cap=cap,
        truncating=truncating,
        default_output=default_output,
        track_bits=track_bits,
        rng_mode=rng_mode,
        faults=faults,
    )


def _run_reference(
    graph,
    algorithm,
    *,
    inputs,
    guesses,
    seed,
    salt,
    cap,
    truncating,
    default_output,
    track_bits,
    rng_mode,
    faults=None,
):
    """The specification loop: dict inboxes reallocated every round.

    Kept verbatim from the seed implementation (modulo the pluggable rng
    scheme and the ``faults is not None`` guards) as the oracle for the
    compiled engine's equivalence suite — including the faulted-run
    semantics of DESIGN.md D14: a crash-stop node is force-finished
    before acting at its crash round, a silenced sender's messages never
    leave it (uncounted), dropped messages vanish in flight (uncounted),
    garbled ones arrive as :data:`GARBLED` (counted — the bytes
    travelled — and sized as sent).
    """
    note_stepping("reference")
    make_gen = rng_source(rng_mode, seed, salt)
    processes = {}
    for u in graph.nodes:
        ctx = NodeContext(
            node=u,
            ident=graph.ident[u],
            degree=graph.degree(u),
            input=inputs.get(u),
            guesses=guesses,
            rng=make_gen(graph.ident[u]),
            rng_mode=rng_mode,
        )
        processes[u] = algorithm.make(ctx)

    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0
    active = []

    # Round 0: wake-up.  `pending[u]` maps the receiver's port -> payload.
    pending = {u: {} for u in graph.nodes}

    def route(u, outgoing, rnd):
        nonlocal messages, max_bits
        outgoing = normalize_outgoing(outgoing, graph.degree(u))
        if outgoing is None:
            return
        if faults is not None and faults.silenced(u, rnd):
            return
        ident = graph.ident
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            for _, v, reverse_port in graph.adj[u]:
                if faults is not None:
                    fate = faults.decide(u, ident[u], ident[v], rnd)
                    if fate == DROP:
                        continue
                    if fate == GARBLE:
                        pending[v][reverse_port] = GARBLED
                        messages += 1
                        continue
                pending[v][reverse_port] = payload
                messages += 1
            return
        adj = graph.adj[u]
        for port, payload in outgoing.items():
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            _, v, reverse_port = adj[port]
            if faults is not None:
                fate = faults.decide(u, ident[u], ident[v], rnd)
                if fate == DROP:
                    continue
                if fate == GARBLE:
                    payload = GARBLED
            pending[v][reverse_port] = payload
            messages += 1

    for u in graph.nodes:
        if faults is not None:
            crashed = faults.crash_of(u)
            if crashed is not None and crashed[0] == 0:
                outputs[u] = crashed[1]
                finish_round[u] = 0
                continue
        process = processes[u]
        route(u, process.start(), 0)
        if process.done:
            outputs[u] = process.result
            finish_round[u] = 0
        else:
            active.append(u)

    rounds = 0
    while active:
        if rounds >= cap:
            if truncating:
                for u in active:
                    outputs[u] = default_output
                    finish_round[u] = cap
                return RunResult(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(active),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(algorithm.name, cap, active)
        rounds += 1
        delivery = pending
        pending = {u: {} for u in graph.nodes}
        still_active = []
        for u in active:
            if faults is not None:
                crashed = faults.crash_of(u)
                if crashed is not None and crashed[0] == rounds:
                    outputs[u] = crashed[1]
                    finish_round[u] = rounds
                    continue
            process = processes[u]
            route(u, process.receive(delivery[u]), rounds)
            if process.done:
                outputs[u] = process.result
                finish_round[u] = rounds
            else:
                still_active.append(u)
        active = still_active

    total = max(finish_round.values()) if finish_round else 0
    return RunResult(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )


def run_restricted(graph, algorithm, rounds, *, default_output=0, **kwargs):
    """The paper's ``A restricted to i rounds``: truncate at ``rounds``.

    Nodes without an output by then get ``default_output`` (the paper's
    arbitrary value "0").
    """
    return run(
        graph,
        algorithm,
        max_rounds=rounds,
        default_output=default_output,
        truncate=True,
        **kwargs,
    )
