"""Synchronous LOCAL-model runner.

Executes one algorithm on a :class:`~repro.local.graph.SimGraph` under the
paper's standard assumptions (Section 2): all nodes wake simultaneously,
rounds are fault-free and synchronous, messages sent in round ``r`` arrive
before round ``r+1``, message size and local computation are unbounded.

Round accounting follows the paper: the running time of an execution is
the number of rounds until every node has terminated.  A node that
terminates during :meth:`start` — before any communication — has
termination time 0.

The *restriction to i rounds* operator (Section 2) is obtained with
``max_rounds=i`` together with ``default_output``: nodes that have not
produced an output by round ``i`` are forced to terminate with the
default (the paper uses the arbitrary value "0").
"""

from __future__ import annotations

from ..errors import NonTerminationError, ParameterError
from .algorithm import LocalAlgorithm
from .context import NodeContext, make_rng
from .message import Broadcast, normalize_outgoing
from .msgsize import estimate_bits

#: Cap applied when the caller neither bounds the rounds nor truncates.
SAFETY_ROUND_CAP = 100_000


class RunResult:
    """Outcome of one synchronous execution.

    Attributes
    ----------
    outputs:
        Mapping node -> final output ``y(v)``.
    finish_round:
        Mapping node -> termination time (rounds of communication used).
    rounds:
        Running time of the execution: ``max(finish_round.values())``.
    messages:
        Total number of point-to-point payload deliveries.
    truncated:
        Frozenset of nodes forced to the default output by a round
        restriction (empty when the algorithm terminated on its own).
    max_message_bits:
        Largest single payload observed (only when the run was started
        with ``track_bits=True``; else ``None``) — the Section 6.2
        message-size instrumentation.
    """

    __slots__ = (
        "outputs",
        "finish_round",
        "rounds",
        "messages",
        "truncated",
        "max_message_bits",
    )

    def __init__(
        self,
        outputs,
        finish_round,
        rounds,
        messages,
        truncated,
        max_message_bits=None,
    ):
        self.outputs = outputs
        self.finish_round = finish_round
        self.rounds = rounds
        self.messages = messages
        self.truncated = truncated
        self.max_message_bits = max_message_bits

    def __repr__(self):
        return (
            f"RunResult(rounds={self.rounds}, messages={self.messages}, "
            f"truncated={len(self.truncated)})"
        )


def run(
    graph,
    algorithm,
    *,
    inputs=None,
    guesses=None,
    seed=0,
    salt=0,
    max_rounds=None,
    default_output=None,
    truncate=False,
    track_bits=False,
):
    """Execute ``algorithm`` on ``graph`` and return a :class:`RunResult`.

    Parameters
    ----------
    graph:
        The :class:`SimGraph` to run on.
    algorithm:
        A :class:`LocalAlgorithm`.
    inputs:
        Optional mapping node -> input ``x(v)``; missing nodes get ``None``.
    guesses:
        Mapping parameter-name -> common guessed value (the Γ̃ of the
        paper).  Must cover ``algorithm.requires``.
    seed, salt:
        Seed material for the per-node RNGs; two runs with identical
        arguments are bit-for-bit identical.
    max_rounds:
        Round cap.  With ``truncate=True`` (or a non-None
        ``default_output``) unfinished nodes are forced to the default
        output — the paper's restriction operator.  Otherwise exceeding
        the cap raises :class:`NonTerminationError`.
    default_output:
        Output forced on truncated nodes.
    truncate:
        Explicitly request truncation semantics even when the default
        output is ``None``.
    track_bits:
        Record the largest payload size observed (Section 6.2's
        message-size instrumentation; small runtime overhead).
    """
    if not isinstance(algorithm, LocalAlgorithm):
        raise TypeError(f"expected LocalAlgorithm, got {type(algorithm).__name__}")
    guesses = dict(guesses or {})
    missing = [p for p in algorithm.requires if p not in guesses]
    if missing:
        raise ParameterError(
            f"algorithm {algorithm.name!r} requires guesses for {missing}"
        )
    inputs = inputs or {}
    truncating = truncate or default_output is not None
    if max_rounds is None:
        if truncating:
            raise ParameterError("truncation requires an explicit max_rounds")
        cap = SAFETY_ROUND_CAP
    else:
        cap = max_rounds

    processes = {}
    for u in graph.nodes:
        ctx = NodeContext(
            node=u,
            ident=graph.ident[u],
            degree=graph.degree(u),
            input=inputs.get(u),
            guesses=guesses,
            rng=make_rng(seed, salt, graph.ident[u]),
        )
        processes[u] = algorithm.make(ctx)

    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0
    active = []

    # Round 0: wake-up.  `pending[u]` maps the receiver's port -> payload.
    pending = {u: {} for u in graph.nodes}

    def route(u, outgoing):
        nonlocal messages, max_bits
        outgoing = normalize_outgoing(outgoing, graph.degree(u))
        if outgoing is None:
            return
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            for _, v, reverse_port in graph.adj[u]:
                pending[v][reverse_port] = payload
                messages += 1
            return
        adj = graph.adj[u]
        for port, payload in outgoing.items():
            if track_bits:
                bits = estimate_bits(payload)
                if bits > max_bits:
                    max_bits = bits
            _, v, reverse_port = adj[port]
            pending[v][reverse_port] = payload
            messages += 1

    for u in graph.nodes:
        process = processes[u]
        route(u, process.start())
        if process.done:
            outputs[u] = process.result
            finish_round[u] = 0
        else:
            active.append(u)

    rounds = 0
    while active:
        if rounds >= cap:
            if truncating:
                for u in active:
                    outputs[u] = default_output
                    finish_round[u] = cap
                return RunResult(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(active),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(algorithm.name, cap, active)
        rounds += 1
        delivery = pending
        pending = {u: {} for u in graph.nodes}
        still_active = []
        for u in active:
            process = processes[u]
            route(u, process.receive(delivery[u]))
            if process.done:
                outputs[u] = process.result
                finish_round[u] = rounds
            else:
                still_active.append(u)
        active = still_active

    total = max(finish_round.values()) if finish_round else 0
    return RunResult(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )


def run_restricted(graph, algorithm, rounds, *, default_output=0, **kwargs):
    """The paper's ``A restricted to i rounds``: truncate at ``rounds``.

    Nodes without an output by then get ``default_output`` (the paper's
    arbitrary value "0").
    """
    return run(
        graph,
        algorithm,
        max_rounds=rounds,
        default_output=default_output,
        truncate=True,
        **kwargs,
    )
