"""Batched frontier-step infrastructure for the compiled engine.

The per-node execution paths (reference loop, compiled CSR loop) spend
their time dispatching one Python ``receive`` per active node per round.
For the lockstep state machines that dominate the reproduction's hot
workloads — Luby-style priority phases, the Linial/Kuhn–Wattenhofer
coloring schedule, the color-class MIS sweep — every node of a round
executes the *same* few arithmetic operations, which makes the whole
frontier one data-parallel array job over the CSR layout.

This module holds the backend-neutral plumbing of that path (DESIGN.md,
D10: the batch-step contract):

* :class:`BatchGraph` — numpy mirror of a CSR adjacency (offsets /
  neighbour / owner slabs) plus the Python-level label and identity
  views the kernels need for big-integer work.  Node order is identity
  order, so kernels may tie-break on the node *index* wherever the
  per-node machines tie-break on the identity.
* :class:`BatchSetup` — the per-run context a kernel factory receives
  (inputs, guesses, rng scheme and a lazily-built draw source).
* Draw sources — vectorized (counter scheme) or loop-based (Mersenne
  Twister) access to each node's private random stream, producing the
  exact values the scalar per-node generators would.
* :func:`row_flags` — "some selected edge points at this node" flag
  reduction over the edge slab.

numpy is optional: when it is missing (or a kernel factory declines the
configuration) every caller falls back to the per-node stepping path, so
the engine never *requires* the dependency.  Kernels register on a
:class:`~repro.local.algorithm.LocalAlgorithm` through its ``batch``
factory; eligibility rules live in :func:`make_engine_kernel`.

A kernel instance drives one run:

``start() -> (finished, results, messages)``
    Round 0 (wake-up).  ``finished`` is a list of node indices that
    terminated this round, ``results`` their outputs, ``messages`` the
    number of point-to-point deliveries the round produced.
``step() -> (finished, results, messages)``
    One communication round.
``done``
    True once every node has terminated.
``undone_indices() -> list``
    Indices still running, ascending — what truncation forces to the
    default output (and what :class:`NonTerminationError` reports).

The contract with the per-node path is *bit-identity*: for the same
``(graph, algorithm, inputs, guesses, seed, salt, rng scheme)`` the
kernel must yield a field-for-field identical
:class:`~repro.local.runner.RunResult` (asserted by
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import random

from .context import _IDENT_MIX, _MASK64, CounterRNG, make_rng, run_key

try:  # pragma: no cover - exercised via the fallback test's monkeypatch
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def available():
    """True when the batch path may be used at all (numpy importable)."""
    return _np is not None


def numpy_or_none():
    """The numpy module, or ``None`` — kernels re-check at build time."""
    return _np


def stream_keys(key, idents):
    """Per-node counter-stream keys ``key ^ (ident * mix)`` as uint64.

    Identities may exceed 64 bits (derived-graph encodings), so the
    mixing is done in Python big-int arithmetic before narrowing.
    """
    np = _np
    return np.array(
        [(key ^ ((ident * _IDENT_MIX) & _MASK64)) for ident in idents],
        dtype=np.uint64,
    )


class CounterDraws:
    """Vectorized per-node draws for the ``"counter"`` rng scheme.

    ``draws(idx, t)`` returns, for each node index in ``idx``, the value
    the node's ``t``-th ``getrandbits(bits)`` call would produce on its
    private :class:`~repro.local.context.CounterRNG` stream.
    """

    __slots__ = ("keys", "bits")

    def __init__(self, keys, bits=62):
        self.keys = keys
        self.bits = bits

    def draws(self, idx, draw):
        return CounterRNG.random_batch(self.keys[idx], draw, self.bits)


class SequentialDraws:
    """Loop-based draws for schemes without a closed per-draw form (mt).

    Generators are materialized lazily per node and advanced one value
    per draw — exactly the scalar consumption pattern, so the values
    match the per-node path bit for bit.  Draw indices must therefore
    arrive in the scalar order: each node's ``t``-th request is its
    ``t``-th draw (kernels guarantee this: a node draws once per phase
    while undecided).
    """

    __slots__ = ("factory", "gens", "bits")

    def __init__(self, factory, n, bits=62):
        self.factory = factory
        self.gens = [None] * n
        self.bits = bits

    def draws(self, idx, draw):
        np = _np
        gens = self.gens
        factory = self.factory
        bits = self.bits
        out = np.empty(len(idx), dtype=np.uint64)
        for j, i in enumerate(idx.tolist()):
            gen = gens[i]
            if gen is None:
                gen = gens[i] = factory(i)
            out[j] = gen.getrandbits(bits)
        return out


class BatchGraph:
    """Numpy CSR mirror plus label/identity views, in identity order."""

    __slots__ = ("labels", "idents", "n", "offsets", "neigh", "owner", "degrees")

    def __init__(self, labels, idents, offsets, neigh):
        np = _np
        self.labels = labels
        self.idents = idents  # Python ints: may exceed 64 bits
        self.n = len(labels)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.neigh = np.asarray(neigh, dtype=np.int64)
        self.degrees = self.offsets[1:] - self.offsets[:-1]
        self.owner = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)

    def charge(self, senders=None):
        """Message count for a broadcast by ``senders`` (all nodes if
        ``None``).

        Honest kernels route every message-ledger contribution through
        this single seam so a subclass can also *attribute* the count
        (the fused engine's :class:`~repro.local.fused.FusedBatchGraph`
        splits it per lane, D16).  ``senders`` is an int-index array or
        a boolean node mask.
        """
        if senders is None:
            return int(self.degrees.sum())
        return int(self.degrees[senders].sum())


def batch_graph_of(cg):
    """The cached :class:`BatchGraph` mirror of a ``CompiledGraph``."""
    bg = cg._batch
    if bg is None:
        bg = cg._batch = BatchGraph(cg.labels, cg.idents, cg.offsets, cg.neigh)
    return bg


def shard_batch_graph(part, s, labels, idents):
    """Shard ``s``'s sub-:class:`BatchGraph` under a partition plan.

    Node order is the shard's local order (ascending global index, i.e.
    identity order restricted to owned ∪ ghost nodes), owned rows are
    complete and ghost rows empty — see ``Partition.sub_csr``.  Labels
    and identities stay *global*, so kernel factories index run inputs
    and derive per-node rng streams exactly as they would on the full
    graph: the counter scheme's keys are pure functions of
    ``(run key, identity)``, which is what keeps draws bit-identical to
    the single-process engine regardless of the shard count (D12).
    """
    loc = part.locals_of(s)
    sub_offsets, sub_neigh = part.sub_csr(s)
    return BatchGraph(
        [labels[g] for g in loc],
        [idents[g] for g in loc],
        sub_offsets,
        sub_neigh,
    )


def make_shard_kernels(factory, part, labels, idents, setup_of):
    """Build one kernel per shard, or ``None`` when any factory declines.

    ``setup_of(shard_bg)`` supplies the per-shard :class:`BatchSetup`
    (engine runs and virtual-domain runs derive draws differently).
    Returns a list of ``(shard_bg, kernel)`` pairs; eligibility gates
    (capability record, numpy, ``track_bits``) live with the callers,
    mirroring :func:`make_engine_kernel`.
    """
    out = []
    for s in range(part.k):
        bg = shard_batch_graph(part, s, labels, idents)
        kernel = factory(bg, setup_of(bg))
        if kernel is None:
            return None
        out.append((bg, kernel))
    return out


def batch_graph_of_spec(spec):
    """The cached :class:`BatchGraph` of a virtual graph (identity order).

    Cached on the spec, mirroring ``batch_graph_of``'s per-CSR cache: a
    step's guess run and pruner run (and a sharded run's partition
    build) share one mirror.
    """
    bg = spec._batch
    if bg is not None:
        return bg
    np = _np
    ident = spec.ident
    adj = spec.adj
    labels = sorted(adj, key=lambda v: ident[v])
    index = {v: i for i, v in enumerate(labels)}
    rows = [adj[v] for v in labels]
    offsets = np.zeros(len(labels) + 1, dtype=np.int64)
    np.cumsum([len(row) for row in rows], out=offsets[1:])
    neigh = [index[w] for row in rows for w in row]
    bg = spec._batch = BatchGraph(
        labels, [ident[v] for v in labels], offsets, neigh
    )
    return bg


class BatchSetup:
    """Run context handed to a kernel factory.

    ``draw_source(bits)`` builds the per-node random-draw view lazily,
    so deterministic kernels never touch seed material.  ``sharded``
    tells the factory the kernel will run on a partition sub-CSR with
    halo exchange (D12/D13): factories whose state cannot live in the
    synced array plane for a configuration (e.g. big-integer colors)
    return ``None`` then, and the run falls back to per-node sharding.
    ``faults`` is the run's :class:`~repro.local.faults.BatchFaults`
    view over this kernel's CSR (``None`` for honest runs); only
    factories of fault-certified algorithms (capability
    ``supports_faulted_batch``) ever see a non-``None`` value — the
    engine gates everyone else back to the per-node paths (D14).
    """

    __slots__ = (
        "inputs", "guesses", "rng_mode", "sharded", "faults", "_draw_builder"
    )

    def __init__(
        self, inputs, guesses, rng_mode, draw_builder, sharded=False,
        faults=None,
    ):
        self.inputs = inputs
        self.guesses = guesses
        self.rng_mode = rng_mode
        self.sharded = sharded
        self.faults = faults
        self._draw_builder = draw_builder

    def draw_source(self, bits=62):
        return self._draw_builder(bits)


class _MtNodeFactory:
    """Picklable ``local index -> random.Random`` for the mt scheme.

    A plain class instead of a closure so that kernels holding a
    :class:`SequentialDraws` can ship to the persistent shard workers
    (D13) — pickling a lambda fails, pickling this ships fine.
    """

    __slots__ = ("seed", "salt", "idents")

    def __init__(self, seed, salt, idents):
        self.seed = seed
        self.salt = salt
        self.idents = idents

    def __call__(self, i):
        return make_rng(self.seed, self.salt, self.idents[i])


class _VirtualMtNodeFactory:
    """Picklable nested host→sub mt derivation (see
    :func:`virtual_draw_builder`)."""

    __slots__ = ("seed", "salt", "idents", "hosts", "host_idents", "base_cache")

    def __init__(self, seed, salt, idents, hosts, host_idents):
        self.seed = seed
        self.salt = salt
        self.idents = idents
        self.hosts = hosts
        self.host_idents = host_idents
        self.base_cache = {}

    def __call__(self, i):
        p = self.hosts[i]
        base = self.base_cache.get(p)
        if base is None:
            base = self.base_cache[p] = make_rng(
                self.seed, self.salt, self.host_idents[p]
            ).getrandbits(64)
        return random.Random(f"{base}|virt|{self.idents[i]}")


def _engine_draw_builder(bg, rng_mode, seed, salt):
    def build(bits):
        if rng_mode == "counter":
            return CounterDraws(stream_keys(run_key(seed, salt), bg.idents), bits)
        return SequentialDraws(
            _MtNodeFactory(seed, salt, bg.idents), bg.n, bits
        )

    return build


def virtual_draw_builder(bg, spec, physical, rng_mode, seed, salt):
    """Draw builder reproducing the virtual layer's nested derivation.

    Each host draws a 64-bit base from its own stream (its first draw),
    then every hosted virtual node derives an independent sub-stream
    from ``(base, virtual identity)`` — see
    :func:`repro.local.context.sub_rng`.
    """

    def build(bits):
        np = _np
        hosts = [spec.host[v] for v in bg.labels]
        host_ident = physical.ident
        if rng_mode == "counter":
            key = run_key(seed, salt)
            base_cache = {}
            keys = np.empty(bg.n, dtype=np.uint64)
            for i, p in enumerate(hosts):
                base = base_cache.get(p)
                if base is None:
                    host_key = key ^ ((host_ident[p] * _IDENT_MIX) & _MASK64)
                    base = base_cache[p] = CounterRNG(host_key).getrandbits(64)
                keys[i] = base ^ ((bg.idents[i] * _IDENT_MIX) & _MASK64)
            return CounterDraws(keys, bits)
        return SequentialDraws(
            _VirtualMtNodeFactory(seed, salt, bg.idents, hosts, host_ident),
            bg.n,
            bits,
        )

    return build


def row_flags(owner_hits, n):
    """Boolean per-node flags from the owning side of selected edges."""
    np = _np
    flags = np.zeros(n, dtype=bool)
    flags[owner_hits] = True
    return flags


class LockstepKernel:
    """Base for kernels whose nodes all run the full fixed schedule.

    The pruners, the bitwise ruling cascade and the H-partition peeling
    keep *every* node active until the final round and broadcast one
    payload per edge slot per round, so their bookkeeping is identical:
    ``undone_indices`` is always the whole column, each non-final round
    charges ``degrees.sum()`` messages, and the final round reports all
    results with :meth:`finish`.  Subclasses keep only their own state
    in ``__slots__`` and implement ``step()``.

    ``schedule`` is the number of ``step()`` calls the kernel takes to
    finish (every node terminates on exactly the last one).  Declaring
    it enables the round-fused driver (DESIGN.md D17): the whole
    schedule executes inside one :meth:`run_phases` call and the
    message total settles arithmetically as
    ``schedule × degrees.sum()`` — ``start`` plus steps 1..schedule-1
    each charge one full broadcast, the finishing step charges 0.
    """

    __slots__ = ("bg", "round", "done", "schedule", "_undone")

    def __init__(self, bg, schedule=None):
        self.bg = bg
        self.round = 0
        self.done = False
        self.schedule = schedule
        self._undone = None

    def undone_indices(self):
        undone = self._undone
        if undone is None:
            undone = self._undone = list(range(self.bg.n))
        return undone

    def _broadcast(self):
        return self.bg.charge()

    def start(self):
        return [], [], self._broadcast()

    def finish(self, results):
        """Mark the run done and report every node's result."""
        self.done = True
        return list(range(self.bg.n)), results, 0

    def run_phases(self):
        """Execute the remaining schedule in one call; return results.

        The generic fallback simply loops ``step()`` — subclasses
        override with a fused phase loop that skips the per-round
        bookkeeping (and may early-exit once their state provably stops
        changing).  The driver has already consumed :meth:`start`'s
        accounting arithmetically, so only the results list matters
        here; callers must have checked ``schedule`` fits the round cap.
        """
        results = None
        while not self.done:
            _, results, _ = self.step()
        return results


def generic_fixedpoint(kernel, cap):
    """Step a self-terminating kernel to its fixed point in one call.

    The shared ``run_fixedpoint`` body for kernels without a dedicated
    fused loop (D17): the per-round events — ``(round, finished,
    results)`` — replay exactly what the per-round driver would have
    committed, with the ledger bookkeeping (dict writes, cap compare
    per commit, checkpoint probing) hoisted out of the loop.  At most
    ``cap`` rounds execute; a kernel still undone afterwards is the
    caller's truncation/non-termination case.
    """
    events = []
    finished, results, messages = kernel.start()
    if finished:
        events.append((0, finished, results))
    rounds = 0
    step = kernel.step
    while not kernel.done and rounds < cap:
        rounds += 1
        finished, results, sent = step()
        messages += sent
        if finished:
            events.append((rounds, finished, results))
    return events, rounds, messages


def make_engine_kernel(
    algorithm, cg, *, inputs, guesses, seed, salt, rng_mode, track_bits,
    enabled, faults=None,
):
    """Build the run's batch kernel, or ``None`` to step per node.

    Fallback rules (DESIGN.md D10): no advertised batch capability,
    batching disabled, numpy missing, message-size tracking requested
    (payload bits are a property of the materialized tuples the batch
    path never builds), an empty graph, or the factory itself declining
    the configuration (e.g. palette bounds it cannot represent).  An
    active fault plan additionally requires the fault-certified
    capability (``supports_faulted_batch``, D14) — uncertified kernels
    would silently ignore the adversary, so they fall back per node.
    Eligibility is read off the algorithm's capability record
    (``supports_batch``), the same table the registry and the
    transformers dispatch on — not off the concrete class.
    """
    if not enabled or track_bits or _np is None or cg.n == 0:
        return None
    from .algorithm import capabilities_of

    caps = capabilities_of(algorithm)
    if not caps.get("supports_batch"):
        return None
    if faults is not None and not caps.get("supports_faulted_batch"):
        return None
    factory = algorithm.batch
    bg = batch_graph_of(cg)
    setup = BatchSetup(
        inputs,
        guesses,
        rng_mode,
        _engine_draw_builder(bg, rng_mode, seed, salt),
        faults=faults.batch_view(bg) if faults is not None else None,
    )
    return factory(bg, setup)
