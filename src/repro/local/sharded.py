"""Sharded round loop: partitioned CSR execution with boundary exchange.

The paper's algorithms are LOCAL by construction — one round reads one
neighbourhood — so the compiled engine's round loop shards naturally
across graph partitions: each shard steps its owned frontier
independently per round and only the boundary (cross-shard messages for
the per-node stepping, ghost/halo state for the batched stepping) is
exchanged between rounds.  This module is the ``backend="sharded"`` /
``run(graph, algo, shards=k)`` implementation (DESIGN.md D12).

Two steppings, one plan
-----------------------
Both steppings consume the same :class:`~repro.local.engine.Partition`
(contiguous identity-ordered shards, halo tables):

* **per-node** (:class:`PerNodeShard`) — every :class:`LocalAlgorithm`
  qualifies.  A shard owns the node processes of its index range and
  walks the same double-buffered inbox loop as the compiled engine;
  deliveries whose receiver lives elsewhere are exported as
  ``(receiver index, reverse port, payload)`` packets and merged into
  the destination shard's buffers before the next round.  Inboxes are
  re-assembled in ascending *port* order, which equals ascending sender
  identity order — exactly the insertion order the single-process loops
  produce — so inbox iteration order is preserved bit for bit.
* **batched** (:class:`BatchShard`) — gated on the algorithm's
  ``supports_shard`` capability.  The shard runs the *unchanged* batch
  kernel on its sub-CSR (owned rows complete, ghost rows empty); after
  every kernel round the halo exchange overwrites each ghost's entries
  in the kernel's per-node state arrays with the owning shard's
  authoritative values, so the next round's slab gathers read exactly
  what the single-process kernel would.  Ghost rows being empty makes
  degree-weighted message counts partition exactly (each edge slot is
  owned once) and makes ghost-side round artifacts harmless scratch —
  they are resynchronized before anything reads them.

Channels
--------
``channel="inline"`` steps the shards sequentially in-process — the
deterministic reference for the exchange protocol (and the numpy-free /
single-core fallback).  ``channel="mp"`` forks one worker per shard
(copy-on-write inherits graph, processes and kernels without pickling)
and routes the per-round packets through pipes via the parent; workers
are forked per run and joined when it completes.  ``channel="mp-pooled"``
(D13) dispatches to a *persistent* :class:`WorkerPool` instead: workers
are spawned once per pool scope (``use_backend("sharded", ...)``) and
reused across every run of a pipeline, with the per-round halo exchange
travelling through a fork-inherited shared-memory arena rather than
through the parent's pipes.  All channels produce bit-identical
:class:`~repro.local.runner.RunResult` fields for every shard count —
the ``sharded(k) ≡ batch ≡ compiled ≡ reference`` contract enforced by
``tests/test_engine_equivalence.py``.

Checkpoints and self-healing recovery (D15)
-------------------------------------------
Both worker channels take a round-level checkpoint after every
committed round: each worker piggybacks a pickled snapshot of its shard
on its round report, and the parent's :class:`RecoveryManager`
(``local/recovery.py``) retains the latest complete set.  When a worker
dies or hangs mid-round, only that worker is respawned and restored
from the checkpoint, and the failed round is re-dispatched to it alone
— the survivors' reports are salvaged, so a dead worker costs one round
of one shard, not the run.  Because every per-node draw is a pure
function of ``(identity, round)`` (D9), the replayed round is
bit-identical to the one the dead worker never finished.  Recovery
escalates respawn-shard → rebuild-pool (pooled only) →
inline-from-checkpoint under a per-run retry budget
(``REPRO_SHARD_MAX_RETRIES``); runs whose shard state cannot pickle
keep the legacy restart-on-inline ladder.  Every rung emits a
:class:`~repro.errors.ResilienceWarning` and is recorded in the
``runner.last_recovery`` diagnostics channel.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import contextmanager

from ..errors import (
    FaultError,
    NonTerminationError,
    RecoveryExhaustedError,
    ResilienceWarning,
    WorkerDiedError,
    WorkerTimeoutError,
)
from .recovery import INITIAL_ROUND, RecoveryManager, snapshot_blob
from .algorithm import LocalAlgorithm, capabilities_of
from .batch import (
    _engine_draw_builder,
    BatchSetup,
    make_shard_kernels,
    numpy_or_none,
)
from .context import NodeContext, rng_source
from .faults import DROP, GARBLE, GARBLED
from .message import Broadcast, normalize_outgoing
from .msgsize import estimate_bits

#: Per-round deadline (seconds) for collecting every worker's report.
#: A worker that hangs past it surfaces as
#: :class:`~repro.errors.WorkerTimeoutError` instead of blocking the
#: parent forever; values <= 0 disable the deadline.  Read at call time
#: so tests (and operators, via ``REPRO_SHARD_TIMEOUT``) can tighten it.
try:
    SHARD_TIMEOUT = float(os.environ.get("REPRO_SHARD_TIMEOUT", "") or 30.0)
except ValueError:  # pragma: no cover - malformed environment
    SHARD_TIMEOUT = 30.0

#: Pause before the retry attempt of the resilience ladder (seconds) —
#: long enough for a transiently-starved machine to recover, short
#: enough to be invisible next to the re-fork it precedes.
try:
    SHARD_RETRY_BACKOFF = float(
        os.environ.get("REPRO_SHARD_RETRY_BACKOFF", "") or 0.1
    )
except ValueError:  # pragma: no cover - malformed environment
    SHARD_RETRY_BACKOFF = 0.1


def fork_available():
    """Whether the multiprocessing channel can run on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# batched stepping: unchanged kernels on sub-CSRs + halo state exchange
# ---------------------------------------------------------------------------

def _state_array_names(kernel):
    """Names of the kernel's halo-synced state arrays.

    A kernel may pin the set explicitly with a ``SHARD_SYNC`` class
    attribute — required when it also keeps derived length-n arrays
    (sorted orders, rank permutations) whose values are local positions
    rather than per-node state (the coloring/MIS kernels, D13).
    Without the declaration, every ``__slots__`` entry that holds a
    length-n numpy array at exchange time is synced, in deterministic
    (mro, declaration) order — sufficient for kernels whose only
    length-n arrays *are* per-node state (the Luby family, the
    pruners).
    """
    declared = getattr(type(kernel), "SHARD_SYNC", None)
    if declared is not None:
        return list(declared)
    names = []
    for cls in type(kernel).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name not in names:
                names.append(name)
    return names


class BatchShard:
    """One shard of a batched sharded run: sub-CSR kernel + halo sync.

    ``sends`` lists ``(dest, local indices)`` of the owned boundary
    nodes each other shard mirrors; ``recv_slots`` maps a source shard
    to the local ghost slots its packet fills (same agreed order).  A
    sync packet is ``[(attr name, values), ...]`` for every kernel
    attribute that is a per-node state array (numpy, first axis of
    length ``n``) — the D12 shard-safe kernel contract guarantees those
    are exactly the arrays the next round's gathers read.
    """

    __slots__ = (
        "index",
        "kernel",
        "n_local",
        "own_lo",
        "own_hi",
        "gmap",
        "sends",
        "recv_slots",
        "halo_total",
        "halo_regions",
        "_names",
    )

    def __init__(self, index, kernel, part):
        np = numpy_or_none()
        self.index = index
        self.kernel = kernel
        loc = part.locals_of(index)
        self.n_local = len(loc)
        self.own_lo, self.own_hi = part.own_local_range(index)
        self.gmap = loc
        sends, recv = part.sync_plan()
        self.sends = [
            (dest, np.asarray(idx, dtype=np.int64))
            for dest, idx in sends[index]
        ]
        self.recv_slots = {
            src: np.asarray(idx, dtype=np.int64)
            for src, idx in recv[index].items()
        }
        # Stable shared-memory offsets of this shard's halo regions
        # (D13): pure geometry, so the pickled shard carries everything
        # a pooled worker needs to place its ring-buffer writes/reads.
        total, regions = part.halo_layout(
            _HALO_BYTES_PER_NODE, _HALO_HEADER_BYTES
        )
        self.halo_total = total
        self.halo_regions = {
            pair: region
            for pair, region in regions.items()
            if pair[0] == index or pair[1] == index
        }
        self._names = _state_array_names(kernel)

    def owned(self, finished, results):
        """Filter a kernel report down to this shard's owned nodes,
        translated to global indices."""
        lo, hi = self.own_lo, self.own_hi
        gmap = self.gmap
        fin = []
        res = []
        for i, value in zip(finished, results):
            if lo <= i < hi:
                fin.append(gmap[i])
                res.append(value)
        return fin, res

    def _report(self, finished, results, messages):
        fin, res = self.owned(finished, results)
        return (fin, res, messages, None, self._sync_payload())

    def sync_arrays(self):
        """The kernel's per-node state arrays, ``[(name, array), ...]``."""
        np = numpy_or_none()
        kernel = self.kernel
        n = self.n_local
        arrays = []
        for name in self._names:
            value = getattr(kernel, name, None)
            if isinstance(value, np.ndarray) and len(value) == n:
                arrays.append((name, value))
        return arrays

    def _sync_payload(self):
        arrays = self.sync_arrays()
        return {
            dest: [(name, arr[idx]) for name, arr in arrays]
            for dest, idx in self.sends
        }

    def apply_sync_one(self, src, payload):
        """Overwrite ghost entries owned by shard ``src`` from ``payload``."""
        np = numpy_or_none()
        kernel = self.kernel
        n = self.n_local
        slots = self.recv_slots[src]
        for name, values in payload:
            target = getattr(kernel, name, None)
            if isinstance(target, np.ndarray) and len(target) == n:
                target[slots] = values

    def _apply_sync(self, inbound):
        for src, payload in inbound:
            self.apply_sync_one(src, payload)

    def round0(self):
        return self._report(*self.kernel.start())

    def round(self, inbound):
        self._apply_sync(inbound)
        return self._report(*self.kernel.step())

    def undone(self):
        lo, hi = self.own_lo, self.own_hi
        gmap = self.gmap
        return [gmap[i] for i in self.kernel.undone_indices() if lo <= i < hi]


# ---------------------------------------------------------------------------
# per-node stepping: node processes + boundary message packets
# ---------------------------------------------------------------------------

class PerNodeShard:
    """One shard of a per-node sharded run.

    ``rows[t]`` holds, per edge slot of the shard's ``t``-th owned
    node, ``(dest_shard, target, reverse_port)`` — ``dest_shard`` is
    ``None`` for in-shard deliveries (``target`` is then the receiver's
    owned slot) and the owning shard otherwise (``target`` the
    receiver's global index).  The round logic mirrors the compiled
    engine's double-buffered loop; remote packets merge into the
    consuming buffer before the round and every non-empty inbox is
    re-assembled in ascending port order, reproducing the
    single-process insertion order exactly (ports are assigned in
    increasing neighbour identity, which is increasing global index —
    the order senders activate in).
    """

    __slots__ = (
        "index",
        "lo",
        "procs",
        "rows",
        "track_bits",
        "active",
        "cur",
        "cur_touched",
        "nxt",
        "nxt_touched",
        "max_bits",
        "faults",
        "g_labels",
        "g_idents",
        "round_no",
    )

    def __init__(
        self, index, lo, procs, rows, track_bits, faults=None, labels=None,
        idents=None,
    ):
        self.index = index
        self.lo = lo
        self.procs = procs
        self.rows = rows
        self.track_bits = track_bits
        self.active = []
        n = len(procs)
        self.cur = [None] * n
        self.cur_touched = []
        self.nxt = [None] * n
        self.nxt_touched = []
        self.max_bits = 0
        # D14 injection state: the run's CompiledFaults plus the global
        # label/ident tables (fault decisions are keyed by the *global*
        # endpoint identities, so every shard derives the same per-edge
        # fate).  All None for honest runs — nothing extra is forked or
        # pickled then.
        self.faults = faults
        self.g_labels = labels
        self.g_idents = idents
        self.round_no = 0

    def _note_bits(self, payload):
        bits = estimate_bits(payload)
        if bits > self.max_bits:
            self.max_bits = bits

    def _deliver(self, t, outgoing, out_remote):
        """Route one node's outgoing spec; returns the payload count."""
        row = self.rows[t]
        nxt = self.nxt
        touch = self.nxt_touched.append
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if self.track_bits:
                self._note_bits(payload)
            for dest, target, rp in row:
                if dest is None:
                    box = nxt[target]
                    if box is None:
                        box = nxt[target] = {}
                        touch(target)
                    box[rp] = payload
                else:
                    bucket = out_remote.get(dest)
                    if bucket is None:
                        bucket = out_remote[dest] = []
                    bucket.append((target, rp, payload))
            return len(row)
        if not isinstance(outgoing, dict):
            normalize_outgoing(outgoing, len(row))  # raises TypeError
        degree = len(row)
        count = 0
        for port, payload in outgoing.items():
            if not isinstance(port, int) or port < 0 or port >= degree:
                # Re-raise with the specification's exact diagnostics.
                normalize_outgoing(outgoing, degree)
            if self.track_bits:
                self._note_bits(payload)
            dest, target, rp = row[port]
            if dest is None:
                box = nxt[target]
                if box is None:
                    box = nxt[target] = {}
                    touch(target)
                box[rp] = payload
            else:
                bucket = out_remote.get(dest)
                if bucket is None:
                    bucket = out_remote[dest] = []
                bucket.append((target, rp, payload))
            count += 1
        return count

    def _deliver_faulted(self, t, outgoing, out_remote):
        """Faulted :meth:`_deliver` (DESIGN.md D14), reference-exact.

        Silenced senders produce nothing (uncounted, unsized — the
        payload never leaves the node), dropped payloads vanish in
        flight (uncounted, but dict-path payloads are still sized as in
        the reference), garbled payloads arrive as :data:`GARBLED`
        (counted, sized as sent).  Fault fates are keyed by the global
        endpoint identities: an in-shard target is the receiver's owned
        slot (global ``lo + target``) while a remote target is already a
        global index, so both sides of a cut edge derive the same fate.
        """
        faults = self.faults
        rnd = self.round_no
        lo = self.lo
        label = self.g_labels[lo + t]
        if faults.silenced(label, rnd):
            return 0
        idents = self.g_idents
        ident = idents[lo + t]
        decide = faults.decide
        row = self.rows[t]
        nxt = self.nxt
        touch = self.nxt_touched.append
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if self.track_bits:
                self._note_bits(payload)
            count = 0
            for dest, target, rp in row:
                receiver = idents[lo + target if dest is None else target]
                fate = decide(label, ident, receiver, rnd)
                if fate == DROP:
                    continue
                body = GARBLED if fate == GARBLE else payload
                if dest is None:
                    box = nxt[target]
                    if box is None:
                        box = nxt[target] = {}
                        touch(target)
                    box[rp] = body
                else:
                    bucket = out_remote.get(dest)
                    if bucket is None:
                        bucket = out_remote[dest] = []
                    bucket.append((target, rp, body))
                count += 1
            return count
        if not isinstance(outgoing, dict):
            normalize_outgoing(outgoing, len(row))  # raises TypeError
        degree = len(row)
        count = 0
        for port, payload in outgoing.items():
            if not isinstance(port, int) or port < 0 or port >= degree:
                # Re-raise with the specification's exact diagnostics.
                normalize_outgoing(outgoing, degree)
            if self.track_bits:
                self._note_bits(payload)
            dest, target, rp = row[port]
            receiver = idents[lo + target if dest is None else target]
            fate = decide(label, ident, receiver, rnd)
            if fate == DROP:
                continue
            if fate == GARBLE:
                payload = GARBLED
            if dest is None:
                box = nxt[target]
                if box is None:
                    box = nxt[target] = {}
                    touch(target)
                box[rp] = payload
            else:
                bucket = out_remote.get(dest)
                if bucket is None:
                    bucket = out_remote[dest] = []
                bucket.append((target, rp, payload))
            count += 1
        return count

    def round0(self):
        out_remote = {}
        finished = []
        results = []
        messages = 0
        lo = self.lo
        add_active = self.active.append
        faults = self.faults
        deliver = self._deliver if faults is None else self._deliver_faulted
        for t, process in enumerate(self.procs):
            if faults is not None:
                crashed = faults.crash_of(self.g_labels[lo + t])
                if crashed is not None and crashed[0] == 0:
                    finished.append(lo + t)
                    results.append(crashed[1])
                    continue
            outgoing = process.start()
            if outgoing is not None:
                messages += deliver(t, outgoing, out_remote)
            if process.done:
                finished.append(lo + t)
                results.append(process.result)
            else:
                add_active(t)
        return (finished, results, messages, self.max_bits, out_remote)

    def round(self, inbound):
        self.round_no += 1
        # Swap buffers: `cur` now holds everything delivered last round.
        self.cur, self.cur_touched, self.nxt, self.nxt_touched = (
            self.nxt,
            self.nxt_touched,
            self.cur,
            self.cur_touched,
        )
        cur, cur_touched = self.cur, self.cur_touched
        lo = self.lo
        for _src, packets in inbound:
            for target, rp, payload in packets:
                t = target - lo
                box = cur[t]
                if box is None:
                    box = cur[t] = {}
                    cur_touched.append(t)
                box[rp] = payload
        out_remote = {}
        finished = []
        results = []
        messages = 0
        procs = self.procs
        still_active = []
        add_still = still_active.append
        faults = self.faults
        deliver = self._deliver if faults is None else self._deliver_faulted
        rnd = self.round_no
        for t in self.active:
            if faults is not None:
                crashed = faults.crash_of(self.g_labels[lo + t])
                if crashed is not None and crashed[0] == rnd:
                    # Crash-stop: force-finished before receiving or
                    # acting at the crash round (DESIGN.md D14).
                    finished.append(lo + t)
                    results.append(crashed[1])
                    continue
            process = procs[t]
            box = cur[t]
            inbox = dict(sorted(box.items())) if box else {}
            outgoing = process.receive(inbox)
            if outgoing is not None:
                messages += deliver(t, outgoing, out_remote)
            if process.done:
                finished.append(lo + t)
                results.append(process.result)
            else:
                add_still(t)
        self.active = still_active
        for t in cur_touched:
            cur[t] = None
        cur_touched.clear()
        return (finished, results, messages, self.max_bits, out_remote)

    def undone(self):
        lo = self.lo
        return [lo + t for t in self.active]


# ---------------------------------------------------------------------------
# channels: deterministic in-process loop / forked worker pool
# ---------------------------------------------------------------------------

def _route(reports, k):
    """Turn per-shard outbound maps into per-shard inbound lists.

    Inbound packets are ordered by source shard, so the exchange is
    deterministic under both channels.
    """
    inbound = [[] for _ in range(k)]
    for src, report in enumerate(reports):
        outbound = report[4]
        for dest, payload in outbound.items():
            inbound[dest].append((src, payload))
    return inbound


class InlineChannel:
    """Deterministic in-process channel: shards step sequentially."""

    def __init__(self, shards):
        self.shards = shards

    def round0(self):
        return [shard.round0() for shard in self.shards]

    def round(self, inbound):
        return [
            shard.round(inbound[s]) for s, shard in enumerate(self.shards)
        ]

    def undone(self):
        return [shard.undone() for shard in self.shards]

    def close(self):
        pass


def _recv_reports(conns, on_failure, round_no=0):
    """Collect one reply per worker, failing fast on the first failure.

    The strict ack-collection variant: used where a failure aborts the
    whole exchange (pooled ``load``/``restore`` acknowledgements) rather
    than entering surgical recovery — round reports go through
    :func:`_recv_outcomes` instead, which salvages the survivors.  The
    receive polls against a shared per-round deadline
    (:data:`SHARD_TIMEOUT`) instead of blocking — a SIGKILLed worker
    surfaces as :class:`~repro.errors.WorkerDiedError` (EOF on its pipe)
    and a hung one as :class:`~repro.errors.WorkerTimeoutError`, both
    carrying the shard index and round and both retryable.
    ``on_failure()`` runs once before the failure is raised.
    """
    timeout = SHARD_TIMEOUT
    deadline = time.monotonic() + timeout if timeout > 0 else None
    reports = []
    failure = None
    for s, conn in enumerate(conns):
        try:
            if deadline is not None and not conn.poll(
                max(0.0, deadline - time.monotonic())
            ):
                failure = WorkerTimeoutError(s, round_no, timeout)
                break
            message = conn.recv()
            tag, payload = message[0], message[1]
        except (EOFError, OSError):
            tag, payload = "err", WorkerDiedError(shard=s, round_no=round_no)
        if tag == "err":
            failure = payload
            break
        reports.append(payload)
    if failure is not None:
        on_failure()
        raise failure
    return reports


def _recv_outcomes(conns, round_no, procs=None, outcomes=None, beats=None):
    """Collect one outcome per worker *without* failing fast.

    Fills ``outcomes`` so slot ``s`` holds ``("ok", payload, blob)`` —
    ``blob`` the piggybacked checkpoint snapshot, or ``None`` — or
    ``("fail", exc)``.  Pre-populated (non-``None``) slots are kept
    as-is and their connections left untouched; recovery uses this to
    re-collect only the shards it re-dispatched while salvaging the
    survivors' committed reports.  A parent-side watchdog checks
    ``procs[s].is_alive()`` between poll ticks, so a worker that died
    without writing surfaces immediately instead of at the shared
    deadline; ``beats`` (when given) records per-shard report
    timestamps — the heartbeat trail quoted by recovery warnings.
    """
    from multiprocessing.connection import wait as _conn_wait

    timeout = SHARD_TIMEOUT
    deadline = time.monotonic() + timeout if timeout > 0 else None
    if outcomes is None:
        outcomes = [None] * len(conns)
    pending = [s for s in range(len(conns)) if outcomes[s] is None]
    while pending:
        progressed = False
        for s in list(pending):
            conn = conns[s]
            try:
                ready = conn.poll(0)
            except (EOFError, OSError):
                ready = True  # recv below surfaces the EOF
            if not ready:
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                outcomes[s] = (
                    "fail", WorkerDiedError(shard=s, round_no=round_no)
                )
            else:
                if beats is not None:
                    beats[s] = time.monotonic()
                if message[0] == "err":
                    outcomes[s] = ("fail", message[1])
                else:
                    outcomes[s] = (
                        "ok",
                        message[1],
                        message[2] if len(message) > 2 else None,
                    )
            pending.remove(s)
            progressed = True
        if progressed:
            continue
        # Watchdog: a worker that died without writing never becomes
        # readable — surface it now rather than at the deadline.  A
        # short grace poll first, in case its report is still landing.
        for s in list(pending):
            proc = procs[s] if procs is not None else None
            if proc is not None and not proc.is_alive():
                try:
                    if conns[s].poll(0.2):
                        continue  # report landed; next sweep reads it
                except (EOFError, OSError):
                    pass
                outcomes[s] = (
                    "fail", WorkerDiedError(shard=s, round_no=round_no)
                )
                pending.remove(s)
        if not pending:
            break
        now = time.monotonic()
        if deadline is not None and now >= deadline:
            for s in pending:
                outcomes[s] = (
                    "fail", WorkerTimeoutError(s, round_no, timeout)
                )
            break
        tick = 0.05
        if deadline is not None:
            tick = min(tick, max(0.001, deadline - now))
        try:
            _conn_wait([conns[s] for s in pending], timeout=tick)
        except OSError:  # pragma: no cover - racing close
            pass
    return outcomes


def _join_workers(procs, conns, grace=True):
    """Stop, join (terminating stragglers) and disconnect workers.

    ``grace=False`` is the abort path after a timeout or death: a hung
    worker would sit out the full graceful join, so it is terminated
    outright — the retry ladder rebuilds fresh workers anyway.
    """
    if grace:
        for conn in conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in procs:
            proc.join(timeout=5)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
    for conn in conns:
        conn.close()


def _shard_worker(conn, shard, checkpointing=False):
    """Worker loop of the multiprocessing channel (one forked process).

    Waits for explicit ops — ``("round0",)`` included — so a respawned
    replacement restored from a checkpoint speaks the same protocol as
    a fresh worker.  With ``checkpointing`` on, every ``round0``/
    ``round`` reply piggybacks a pickled snapshot of the post-round
    shard — the parent's round-level checkpoint material (D15).
    """
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "round0":
                report = shard.round0()
                blob = snapshot_blob(shard) if checkpointing else None
                conn.send(("ok", report, blob))
            elif kind == "round":
                report = shard.round(message[1])
                blob = snapshot_blob(shard) if checkpointing else None
                conn.send(("ok", report, blob))
            elif kind == "undone":
                conn.send(("ok", shard.undone()))
            else:  # "stop"
                break
    except EOFError:  # parent went away; nothing left to report to
        pass
    except BaseException as exc:  # propagate the real failure to the parent
        try:
            conn.send(("err", exc))
        except Exception:
            try:
                conn.send(("err", RuntimeError(repr(exc))))
            except Exception:
                pass
    finally:
        conn.close()


def _regen_inbound(shards, payloads, wrap_pipe=False):
    """Rebuild a round's inbound payloads from restored shard state.

    Batch shards' sync payloads are a pure function of their committed
    state, so the checkpointed round's exchange can be regenerated
    without the original reports (whose pooled form may reference a
    halo arena that no longer exists).  Per-node shards' in-flight
    packets cannot be derived from state — but their original payloads
    are plain data and remain valid as-is.  ``wrap_pipe`` tags each
    payload in the piped-marker format expected by workers that hold a
    halo plane.
    """
    if not all(isinstance(shard, BatchShard) for shard in shards):
        return payloads
    reports = []
    for shard in shards:
        outbound = shard._sync_payload()
        if wrap_pipe:
            outbound = {
                dest: ("pipe", sliced) for dest, sliced in outbound.items()
            }
        reports.append(([], [], 0, None, outbound))
    return _route(reports, len(shards))


class _RecoveringChannel:
    """Surgical-recovery machinery shared by the worker channels (D15).

    Subclasses provide the transport: ``_conn_list``/``_proc_list``
    (live pipe ends and processes, indexed by shard), ``_respawn_shard``
    (replace one worker with a checkpoint-restored twin),
    ``_restore_all``/``_recoverable`` (checkpoint access),
    ``_fail_teardown`` (abandon the workers) and optionally
    ``_handle_exhausted`` (the intermediate escalation rung — the
    pooled channel rebuilds its pool before giving up on workers).

    ``_run_op`` drives one exchange: dispatch the op to every worker,
    collect all outcomes, and — when a worker died or hung — respawn
    just that worker from the last round checkpoint and re-dispatch the
    op to it alone, under the run's retry budget with exponential
    backoff.  When workers are beyond saving, the channel restores
    every shard from the checkpoint and finishes the run in-process
    (``self.fallback``), so committed rounds are never re-executed.
    """

    def _init_recovery(self, k, rm):
        self.k = k
        self.rm = rm
        self.fallback = None
        self.beats = {}
        self.round_no = 0

    @staticmethod
    def _message_for(op, payloads, s):
        if op == "round":
            return ("round", payloads[s])
        return (op,)

    def _ckpt_round(self):
        latest = self.rm.latest
        if latest is None or latest.round_no == INITIAL_ROUND:
            return "initial"
        return f"round-{latest.round_no}"

    def _run_op(self, op, payloads=None):
        outcomes = self._exchange(op, payloads, [None] * self.k)
        if any(o is None or o[0] == "fail" for o in outcomes):
            return self._recover(op, payloads, outcomes)
        return self._commit(op, outcomes)

    def _exchange(self, op, payloads, outcomes):
        conns = self._conn_list()
        for s in range(self.k):
            if outcomes[s] is not None:
                continue
            try:
                conns[s].send(self._message_for(op, payloads, s))
            except (BrokenPipeError, OSError):
                outcomes[s] = (
                    "fail", WorkerDiedError(shard=s, round_no=self.round_no)
                )
        return _recv_outcomes(
            conns, self.round_no, self._proc_list(), outcomes, self.beats
        )

    def _commit(self, op, outcomes):
        reports = [o[1] for o in outcomes]
        self._note_reports(op, reports)
        if op != "undone" and self.rm.enabled:
            self.rm.commit(
                self.round_no, {s: o[2] for s, o in enumerate(outcomes)}
            )
        return reports

    def _note_reports(self, op, reports):
        pass

    def _on_real_error(self, outcomes):
        pass

    def _handle_exhausted(self, op, payloads, cause):
        return self._escalate_inline(op, payloads, cause)

    def _recover(self, op, payloads, outcomes):
        from .runner import note_recovery

        rm = self.rm
        while True:
            failed = [
                s for s, o in enumerate(outcomes)
                if o is None or o[0] == "fail"
            ]
            if not failed:
                reports = self._commit(op, outcomes)
                note_recovery(rm.summary())
                return reports
            # A worker's real exception is a bug to surface, never an
            # outage to recover from.
            for s in failed:
                o = outcomes[s]
                if o is not None and not getattr(o[1], "retryable", False):
                    self._on_real_error(outcomes)
                    raise o[1]
            cause = next(
                (outcomes[s][1] for s in failed if outcomes[s] is not None),
                WorkerDiedError(shard=failed[0], round_no=self.round_no),
            )
            if not self._recoverable():
                # No usable checkpoint (checkpointing off, or shard
                # state that would not pickle): tear down and let
                # run_sharded's outer ladder restart on inline.
                self._fail_teardown()
                raise cause
            if not rm.budget_left():
                return self._handle_exhausted(
                    op,
                    payloads,
                    RecoveryExhaustedError(
                        failed[0], self.round_no, rm.attempts, cause
                    ),
                )
            backoff = rm.backoff_for(SHARD_RETRY_BACKOFF)
            for s in failed:
                exc = outcomes[s][1] if outcomes[s] is not None else cause
                rm.note_failure("respawn", s, self.round_no, exc)
                beat = self.beats.get(s)
                ago = (
                    f"{time.monotonic() - beat:.1f}s ago"
                    if beat is not None else "never"
                )
                warnings.warn(
                    f"sharded worker {s} failed at round {self.round_no} "
                    f"({exc}); last heartbeat {ago} — respawning it from "
                    f"the {self._ckpt_round()} checkpoint "
                    f"(attempt {rm.attempts}/{rm.max_retries})",
                    ResilienceWarning,
                    stacklevel=4,
                )
            if backoff > 0:
                time.sleep(backoff)
            try:
                for s in failed:
                    self._respawn_shard(s)
                    outcomes[s] = None
            except FaultError as exc:
                return self._handle_exhausted(op, payloads, exc)
            self._exchange(op, payloads, outcomes)

    def _escalate_inline(self, op, payloads, cause):
        from .runner import note_recovery

        rm = self.rm
        rm.note_failure("inline", None, self.round_no, cause)
        warnings.warn(
            f"sharded {op!r} could not be recovered on workers ({cause}); "
            f"degrading to the inline channel from the "
            f"{self._ckpt_round()} checkpoint",
            ResilienceWarning,
            stacklevel=4,
        )
        restored = self._restore_all()
        self._fail_teardown()
        self.fallback = InlineChannel(restored)
        note_recovery(rm.summary())
        if op == "round0":
            return self.fallback.round0()
        if op == "undone":
            return self.fallback.undone()
        return self.fallback.round(_regen_inbound(restored, payloads))


class ProcessChannel(_RecoveringChannel):
    """Forked worker pool: one process per shard, piped exchange.

    The pool is forked per run — fork inherits the shard structures
    (graph slabs, node processes, kernels) copy-on-write, so nothing
    but the per-round boundary packets is ever pickled — and joined
    when the run completes (``close``), crashed workers included.  A
    worker that dies or hangs mid-round is respawned surgically from
    the last round checkpoint (D15): the replacement re-runs only the
    failed round while the run's other workers never notice.  Failures
    during round 0 restore from the parent's own shard objects, which
    stay pristine (workers mutate forked copies).
    """

    def __init__(self, shards):
        import multiprocessing

        self.ctx = multiprocessing.get_context("fork")
        self._init_recovery(len(shards), RecoveryManager(len(shards)))
        self.conns = []
        self.procs = []
        self._initial = list(shards)
        self._torn = False
        for shard in shards:
            conn, proc = self._fork(shard)
            self.conns.append(conn)
            self.procs.append(proc)

    def _fork(self, shard):
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_shard_worker,
            args=(child_conn, shard, self.rm.enabled),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _conn_list(self):
        return self.conns

    def _proc_list(self):
        return self.procs

    def _recoverable(self):
        rm = self.rm
        return rm.enabled and (rm.latest is None or rm.latest.complete)

    def _restore_one(self, s):
        ckpt = self.rm.latest
        if ckpt is None:
            return self._initial[s]
        return ckpt.restore(s)

    def _restore_all(self):
        if self.rm.latest is None:
            return list(self._initial)
        return self.rm.latest.restore_all()

    def _respawn_shard(self, s):
        old = self.procs[s]
        if old.is_alive():
            old.terminate()
        old.join(timeout=5)
        try:
            self.conns[s].close()
        except OSError:  # pragma: no cover - already closed
            pass
        conn, proc = self._fork(self._restore_one(s))
        self.conns[s] = conn
        self.procs[s] = proc

    def _fail_teardown(self):
        if self._torn:
            return
        self._torn = True
        _join_workers(self.procs, self.conns, grace=False)

    def _on_real_error(self, outcomes):
        self._fail_teardown()

    def round0(self):
        if self.fallback is not None:
            return self.fallback.round0()
        return self._run_op("round0")

    def round(self, inbound):
        if self.fallback is not None:
            return self.fallback.round(inbound)
        self.round_no += 1
        return self._run_op("round", inbound)

    def undone(self):
        if self.fallback is not None:
            return self.fallback.undone()
        return self._run_op("undone")

    def close(self):
        if self._torn:
            return
        self._torn = True
        _join_workers(self.procs, self.conns)


# ---------------------------------------------------------------------------
# persistent worker pool + shared-memory halo plane (D13)
# ---------------------------------------------------------------------------

#: Per-boundary-node byte budget of a halo-plane ring slot.  Covers the
#: certified kernels' state (a handful of 8-byte scalars plus bool
#: flags) with room for moderate 2-D rows; a round whose payload
#: outgrows its region falls back to the piped exchange — sizing is a
#: throughput knob, never a correctness one.
_HALO_BYTES_PER_NODE = 256
#: Fixed per-region headroom for array headers (names, dtypes, shapes).
_HALO_HEADER_BYTES = 1024
#: Initial size of a pool's halo arena.
_ARENA_MIN_BYTES = 1 << 20

#: Marker a pooled worker reports in place of a halo payload that was
#: written to the shared-memory plane (the receiver reads it directly).
_SHM = ("shm",)


class _HaloPlane:
    """Worker-side view of the shared halo arena (one per loaded run).

    Each boundary pair ``(src, dest)`` owns a double-buffered region at
    a stable offset (``Partition.halo_layout``); a round writes slot
    ``round & 1`` and reads the peer slot of the previous round.  The
    parent's recv-all/send-all sequencing is the barrier: a worker only
    reads a region after the parent has collected the writer's report
    for that round, and the two-slot ring keeps a racing writer off the
    slot a slower reader is still consuming.  Arrays travel as raw
    bytes plus a tiny header (name, dtype, row width) — no pickling, no
    parent relay.
    """

    __slots__ = ("buf", "regions", "index", "writes")

    def __init__(self, buf, regions, index):
        self.buf = buf
        self.regions = regions
        self.index = index
        self.writes = 0

    def write_outbound(self, shard):
        """Write this round's boundary slices; returns the report's
        outbound map (shm markers, or inline payloads on overflow)."""
        arrays = shard.sync_arrays()
        slot = self.writes & 1
        self.writes += 1
        out = {}
        for dest, idx in shard.sends:
            sliced = [(name, arr[idx]) for name, arr in arrays]
            region = self.regions.get((self.index, dest))
            if region is not None and self._write(region, slot, sliced):
                out[dest] = _SHM
            else:
                out[dest] = ("pipe", sliced)
        return out

    def _write(self, region, slot, sliced):
        import struct

        offset, capacity = region
        base = offset + slot * capacity
        end = base + capacity
        buf = self.buf
        pos = base + 4
        for name, arr in sliced:
            raw = arr.tobytes()
            nm = name.encode()
            dt = arr.dtype.str.encode()
            ncols = arr.shape[1] if arr.ndim == 2 else 0
            if pos + 2 + len(nm) + len(dt) + 8 + len(raw) > end:
                return False
            buf[pos] = len(nm)
            pos += 1
            buf[pos:pos + len(nm)] = nm
            pos += len(nm)
            buf[pos] = len(dt)
            pos += 1
            buf[pos:pos + len(dt)] = dt
            pos += len(dt)
            struct.pack_into("<II", buf, pos, ncols, len(raw))
            pos += 8
            buf[pos:pos + len(raw)] = raw
            pos += len(raw)
        struct.pack_into("<I", buf, base, len(sliced))
        return True

    def read_inbound(self, src):
        """Read the ghost-state payload shard ``src`` wrote last round."""
        import struct

        np = numpy_or_none()
        offset, capacity = self.regions[(src, self.index)]
        base = offset + ((self.writes - 1) & 1) * capacity
        buf = self.buf
        (count,) = struct.unpack_from("<I", buf, base)
        pos = base + 4
        payload = []
        for _ in range(count):
            ln = buf[pos]
            pos += 1
            name = bytes(buf[pos:pos + ln]).decode()
            pos += ln
            ln = buf[pos]
            pos += 1
            dtype = np.dtype(bytes(buf[pos:pos + ln]).decode())
            pos += ln
            ncols, nbytes = struct.unpack_from("<II", buf, pos)
            pos += 8
            values = np.frombuffer(
                buf, dtype=dtype, count=nbytes // dtype.itemsize, offset=pos
            )
            pos += nbytes
            if ncols:
                values = values.reshape(-1, ncols)
            payload.append((name, values))
        return payload


def _serve_round0(shard, halo):
    if halo is None:
        return shard.round0()
    finished, results, messages = shard.kernel.start()
    finished, results = shard.owned(finished, results)
    return (finished, results, messages, None, halo.write_outbound(shard))


def _serve_round(shard, halo, inbound):
    if halo is None:
        return shard.round(inbound)
    for src, marker in inbound:
        payload = (
            halo.read_inbound(src) if marker[0] == "shm" else marker[1]
        )
        shard.apply_sync_one(src, payload)
    finished, results, messages = shard.kernel.step()
    finished, results = shard.owned(finished, results)
    return (finished, results, messages, None, halo.write_outbound(shard))


def _pool_worker(conn, arena):
    """Persistent worker loop: load a run, serve its rounds, unload.

    Spawned once per pool (fork inherits the halo arena mapping) and
    reused across runs — the per-run shard state arrives pickled with
    the ``load`` message, which is acked before any round runs so the
    parent can tell load failures from round failures.  ``restore``
    loads a checkpointed shard instead, re-aiming the halo ring at the
    checkpoint's write sequence so a replayed round lands in the same
    double-buffer slot the failed attempt would have used.  A worker's
    exception is reported per-message and the loop keeps serving — an
    isolated shard bug no longer condemns its pool-mates.
    """
    import pickle

    shard = None
    halo = None
    checkpointing = False
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            try:
                if kind == "load" or kind == "restore":
                    shard = pickle.loads(message[1])
                    halo = (
                        _HaloPlane(arena, shard.halo_regions, shard.index)
                        if message[2] and arena is not None
                        else None
                    )
                    if kind == "restore":
                        if halo is not None:
                            halo.writes = message[3] + 1
                        checkpointing = message[4]
                    else:
                        checkpointing = (
                            message[3] if len(message) > 3 else False
                        )
                    conn.send(("ok", None))
                elif kind == "round0":
                    report = _serve_round0(shard, halo)
                    blob = snapshot_blob(shard) if checkpointing else None
                    conn.send(("ok", report, blob))
                elif kind == "round":
                    report = _serve_round(shard, halo, message[1])
                    blob = snapshot_blob(shard) if checkpointing else None
                    conn.send(("ok", report, blob))
                elif kind == "undone":
                    conn.send(("ok", shard.undone()))
                elif kind == "unload":
                    shard = None
                    halo = None
                    checkpointing = False
            except BaseException as exc:
                try:
                    conn.send(("err", exc))
                except Exception:
                    try:
                        conn.send(("err", RuntimeError(repr(exc))))
                    except Exception:
                        pass
    except EOFError:  # parent went away; nothing left to report to
        pass
    finally:
        conn.close()


class WorkerPool:
    """Persistent sharded-run workers sharing one halo arena (D13).

    Workers are forked lazily on first use and reused across every run
    dispatched while the pool is alive — each ``(A_i ; P)`` step of an
    alternation re-dispatches to the warm pool instead of re-forking.
    The halo arena is an anonymous ``MAP_SHARED`` mmap created *before*
    the first fork, so every worker inherits the same physical pages:
    ghost-state exchange is a memory copy between processes with no
    pipe traffic, no pickling and no named-segment lifecycle to leak
    (the mapping dies with the processes).  Growing the arena respawns
    the workers (mappings cannot be resized post-fork); runs whose
    plane never fits simply pipe their halos — correctness is
    channel-independent by construction.
    """

    __slots__ = ("ctx", "workers", "arena", "arena_size", "broken")

    def __init__(self, arena_bytes=_ARENA_MIN_BYTES):
        import multiprocessing

        self.ctx = multiprocessing.get_context("fork")
        self.workers = []
        self.arena_size = max(int(arena_bytes), _ARENA_MIN_BYTES)
        self.arena = None
        self.broken = False

    def ensure_arena(self, nbytes):
        """Make the halo arena at least ``nbytes`` big."""
        if self.arena is not None and nbytes <= self.arena_size:
            return
        import mmap

        if self.arena is not None:
            self.stop_workers()
            self.arena.close()
            self.arena_size = max(nbytes, self.arena_size * 2)
        else:
            self.arena_size = max(nbytes, self.arena_size)
        self.arena = mmap.mmap(-1, self.arena_size)

    def _spawn(self):
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_pool_worker,
            args=(child_conn, self.arena),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def lease(self, k):
        """``k`` live workers (forked on demand), as ``(proc, conn)``.

        A worker that died while idle (OOM kill, external signal) is
        respawned in place — per-worker, so its healthy pool-mates keep
        their warm state and pids.
        """
        if self.arena is None:
            self.ensure_arena(self.arena_size)
        for i, (proc, _) in enumerate(self.workers):
            if not proc.is_alive():
                self.respawn(i)
        while len(self.workers) < k:
            self.workers.append(self._spawn())
        return self.workers[:k]

    def respawn(self, i):
        """Replace worker slot ``i`` with a fresh fork; return it."""
        proc, conn = self.workers[i]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.workers[i] = self._spawn()
        return self.workers[i]

    def worker_pids(self):
        """Live worker pids (diagnostics and lifecycle tests)."""
        return [proc.pid for proc, _ in self.workers]

    def stop_workers(self, grace=True):
        _join_workers(
            [proc for proc, _ in self.workers],
            [conn for _, conn in self.workers],
            grace=grace,
        )
        self.workers = []

    def poison(self):
        """Tear the pool down after a worker failure; never reused.

        Gracelessly: a hung worker would stall the stop handshake for
        the full join timeout, and the pool is being discarded anyway.
        """
        self.broken = True
        self.stop_workers(grace=False)
        if self.arena is not None:
            self.arena.close()
            self.arena = None

    def shutdown(self):
        self.stop_workers()
        if self.arena is not None:
            self.arena.close()
            self.arena = None


#: Pool shared by every pooled run inside a ``pool_scope`` (see
#: :func:`repro.local.runner.use_backend`); ``None`` between scopes.
_POOL = None
#: Nesting depth of active pool scopes.
_POOL_SCOPES = 0


def active_pool():
    """The scope's shared pool, created lazily on the first pooled run."""
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool()
    return _POOL


def pool_stats():
    """Diagnostic view of the scope's shared pool (D18 session tests).

    ``None`` outside a pool scope or before the first pooled run;
    otherwise the live worker pids and whether the pool was poisoned.
    Sessions use this to *prove* warm reuse: the pids surviving across
    ``mutate()``/``rerun()`` cycles are the warm-pool contract.
    """
    if _POOL is None:
        return None
    return {"pids": _POOL.worker_pids(), "broken": _POOL.broken}


@contextmanager
def pool_scope():
    """Context manager scoping the shared worker pool (D13).

    ``use_backend("sharded", ...)`` (and any ``mp-pooled`` scope)
    enters one: the first pooled run inside spawns the workers, every
    later run re-dispatches to them, and the *outermost* exit joins the
    pool — nested scopes share one pool and cannot leak workers.
    """
    global _POOL_SCOPES, _POOL
    _POOL_SCOPES += 1
    try:
        yield
    finally:
        _POOL_SCOPES -= 1
        if _POOL_SCOPES == 0 and _POOL is not None:
            _POOL.shutdown()
            _POOL = None


class PooledChannel(_RecoveringChannel):
    """Channel over the persistent pool: pickled load, shm halos.

    Protocol per run: one acked ``load`` per shard (the pickled shard
    plus whether the halo plane applies), then ``round0``/``round``/
    ``undone`` messages mirroring :class:`ProcessChannel`, then one
    ``unload``.  Batched shards exchange ghost state through the shared
    arena (the report carries a marker, not the payload); per-node
    shards and oversized payloads pipe their data exactly like the
    fork-per-run channel, so every configuration stays bit-identical
    across channels.

    Failure handling is per-worker (D15): a dead or hung worker is
    respawned in its pool slot and ``restore``d from the last round
    checkpoint while its pool-mates idle; if the budget runs out the
    channel rebuilds the whole pool once from the checkpoint, then
    finishes inline.  A worker's *real* exception is raised as-is, and
    the pool survives it when every other worker stayed healthy — the
    bug was the shard's, not the pool's.
    """

    def __init__(self, pool, workers, owns_pool, rm, use_plane, plane_total):
        self.pool = pool
        self.workers = workers
        self.owns_pool = owns_pool
        self.use_plane = use_plane
        self.plane_total = plane_total
        self.closed = False
        self._rebuilt = False
        self._overflow_warned = False
        self._init_recovery(len(workers), rm)

    @classmethod
    def open(cls, shards):
        """Dispatch a run to the pool, or ``None`` when the run's shard
        state cannot ship to persistent workers (unpicklable processes
        degrade to the fork-per-run channel, which inherits state)."""
        import pickle

        try:
            blobs = [
                pickle.dumps(shard, pickle.HIGHEST_PROTOCOL)
                for shard in shards
            ]
        except Exception:
            return None
        owns = _POOL_SCOPES == 0
        pool = WorkerPool() if owns else active_pool()
        use_plane = bool(shards) and all(
            isinstance(shard, BatchShard) for shard in shards
        )
        plane_total = shards[0].halo_total if use_plane else 0
        use_plane = use_plane and plane_total > 0
        rm = RecoveryManager(len(shards))
        try:
            if use_plane:
                pool.ensure_arena(plane_total)
            workers = pool.lease(len(shards))
            for (_, conn), blob in zip(workers, blobs):
                conn.send(("load", blob, use_plane, rm.enabled))
            _recv_reports([conn for _, conn in workers], lambda: None, 0)
        except Exception:
            # Poison even the shared scope pool: a failed dispatch may
            # leave dead or half-loaded workers behind, and the next
            # pooled run must start from a fresh pool.
            global _POOL
            if _POOL is pool:
                _POOL = None
            pool.poison()
            raise
        channel = cls(pool, workers, owns, rm, use_plane, plane_total)
        if rm.enabled:
            # The load blobs double as the pre-round-0 checkpoint, so
            # even a round-0 failure recovers surgically.
            rm.commit(INITIAL_ROUND, dict(enumerate(blobs)))
        return channel

    def _poison(self):
        global _POOL
        self.closed = True
        if _POOL is self.pool:
            _POOL = None
        self.pool.poison()

    # -- recovery plumbing (see _RecoveringChannel) --------------------

    def _conn_list(self):
        return [conn for _, conn in self.workers]

    def _proc_list(self):
        return [proc for proc, _ in self.workers]

    def _recoverable(self):
        return self.rm.recoverable

    def _restore_all(self):
        return self.rm.latest.restore_all()

    def _respawn_shard(self, s):
        ckpt = self.rm.latest
        proc, conn = self.pool.respawn(s)
        self.workers[s] = (proc, conn)
        conn.send(
            ("restore", ckpt.blobs[s], self.use_plane,
             ckpt.round_no, self.rm.enabled)
        )
        _recv_reports([conn], lambda: None, self.round_no)

    def _fail_teardown(self):
        self._poison()

    def _on_real_error(self, outcomes):
        # Keep the pool warm only when the failure is provably isolated:
        # every other worker reported this op (ok, or its own real
        # error).  A missing or retryable outcome means a worker may be
        # hung or dead — leasing it to the next run would corrupt it.
        healthy = all(
            o is not None
            and (o[0] == "ok" or not getattr(o[1], "retryable", False))
            for o in outcomes
        )
        if not healthy:
            self._poison()

    def _handle_exhausted(self, op, payloads, cause):
        from .runner import note_recovery

        if self._rebuilt or not self.rm.recoverable:
            return self._escalate_inline(op, payloads, cause)
        self._rebuilt = True
        self.rm.note_failure("rebuild", None, self.round_no, cause)
        warnings.warn(
            f"sharded worker pool gave up on surgical respawns at round "
            f"{self.round_no} ({cause}); rebuilding the pool from the "
            f"{self._ckpt_round()} checkpoint",
            ResilienceWarning,
            stacklevel=5,
        )
        note_recovery(self.rm.summary())
        try:
            return self._rebuild_and_redo(op, payloads)
        except FaultError as exc:
            return self._escalate_inline(op, payloads, exc)

    def _rebuild_and_redo(self, op, payloads):
        """Replace the poisoned pool wholesale and replay the failed op.

        The fresh arena holds no round data, so every worker re-executes
        the op with payloads regenerated from the restored shards
        (piped, not shm) — after which the restored write sequence makes
        subsequent rounds use the arena as usual.
        """
        global _POOL
        ckpt = self.rm.latest
        restored = ckpt.restore_all()
        blobs = dict(ckpt.blobs)
        self._poison()
        self.closed = False
        pool = WorkerPool()
        if _POOL is None and _POOL_SCOPES > 0:
            _POOL = pool
        self.pool = pool
        self.owns_pool = _POOL is not pool
        if self.use_plane:
            pool.ensure_arena(self.plane_total)
        workers = pool.lease(self.k)
        self.workers = list(workers)
        for s, (_, conn) in enumerate(self.workers):
            conn.send(
                ("restore", blobs[s], self.use_plane,
                 ckpt.round_no, self.rm.enabled)
            )
        _recv_reports(self._conn_list(), lambda: None, self.round_no)
        if op == "round":
            payloads = _regen_inbound(
                restored, payloads, wrap_pipe=self.use_plane
            )
        outcomes = self._exchange(op, payloads, [None] * self.k)
        failed = [
            s for s, o in enumerate(outcomes) if o is None or o[0] == "fail"
        ]
        if not failed:
            from .runner import note_recovery

            reports = self._commit(op, outcomes)
            note_recovery(self.rm.summary())
            return reports
        for s in failed:
            o = outcomes[s]
            if o is not None and not getattr(o[1], "retryable", False):
                self._on_real_error(outcomes)
                raise o[1]
        raise WorkerDiedError(shard=failed[0], round_no=self.round_no)

    def _note_reports(self, op, reports):
        if (
            self._overflow_warned
            or not self.use_plane
            or op == "undone"
        ):
            return
        for report in reports:
            outbound = report[4] if len(report) > 4 else None
            if not outbound:
                continue
            if any(
                isinstance(marker, tuple) and marker and marker[0] == "pipe"
                for marker in outbound.values()
            ):
                self._overflow_warned = True
                warnings.warn(
                    f"sharded halo plane overflowed at round "
                    f"{self.round_no}; oversized boundary payloads are "
                    f"piping instead of using shared memory",
                    ResilienceWarning,
                    stacklevel=5,
                )
                return

    # -- public channel interface --------------------------------------

    def round0(self):
        if self.fallback is not None:
            return self.fallback.round0()
        return self._run_op("round0")

    def round(self, inbound):
        if self.fallback is not None:
            return self.fallback.round(inbound)
        self.round_no += 1
        return self._run_op("round", inbound)

    def undone(self):
        if self.fallback is not None:
            return self.fallback.undone()
        return self._run_op("undone")

    def close(self):
        if self.closed:
            return
        self.closed = True
        for _, conn in self.workers:
            try:
                conn.send(("unload",))
            except (BrokenPipeError, OSError):
                pass
        if self.owns_pool:
            self.pool.shutdown()


def open_channel(shards, channel):
    """Build the requested channel.

    ``"mp-pooled"`` degrades to ``"mp"`` when the run's shard state is
    unpicklable (fork-per-run inherits state instead), and either
    multiprocessing channel degrades to ``"inline"`` where fork is
    unavailable — the exchange protocol is identical across all three.
    """
    if channel == "mp-pooled" and fork_available():
        chan = PooledChannel.open(shards)
        if chan is not None:
            return chan
        warnings.warn(
            "sharded run's shard state does not pickle; degrading "
            "mp-pooled to the fork-per-run mp channel (same bits)",
            ResilienceWarning,
            stacklevel=3,
        )
        channel = "mp"
    if channel in ("mp", "mp-pooled"):
        if fork_available():
            return ProcessChannel(shards)
        warnings.warn(
            f"fork is unavailable on this platform; degrading the "
            f"{channel!r} channel to inline (same bits, one process)",
            ResilienceWarning,
            stacklevel=3,
        )
    return InlineChannel(shards)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

class ShardedKernelLoop:
    """Per-shard kernels presented through the single-kernel interface.

    ``start`` / ``step`` / ``done`` / ``undone_indices`` match the D10
    kernel contract with *global* node indices, so existing kernel
    drivers (the engine's ledger, the virtual-domain replay) consume a
    sharded ensemble exactly as they consume one kernel.  ``close``
    releases the channel (joins the worker pool).
    """

    __slots__ = ("channel", "k", "total", "finished", "done", "_reports")

    def __init__(self, channel, k, total):
        self.channel = channel
        self.k = k
        self.total = total
        self.finished = 0
        self.done = total == 0
        self._reports = None

    def _merge(self, reports):
        self._reports = reports
        finished = []
        results = []
        messages = 0
        for report in reports:
            finished.extend(report[0])
            results.extend(report[1])
            messages += report[2]
        self.finished += len(finished)
        if self.finished >= self.total:
            self.done = True
        return finished, results, messages

    def start(self):
        return self._merge(self.channel.round0())

    def step(self):
        inbound = _route(self._reports, self.k)
        return self._merge(self.channel.round(inbound))

    def undone_indices(self):
        return [i for shard in self.channel.undone() for i in shard]

    def commit_ledger(self, labels, rounds, outputs, finish_round, messages):
        """Attach the driver's committed aggregation state (D15).

        Called by the batch driver after it absorbs each round's
        reports; a channel with a spill journal then persists the
        checkpoint together with the ledger so a resumed run need not
        replay committed rounds.  No-op on journal-less channels.
        """
        rm = getattr(self.channel, "rm", None)
        if rm is None or rm.journal is None:
            return
        rm.note_ledger(
            {
                "labels": labels,
                "rounds": rounds,
                "outputs": dict(outputs),
                "finish_round": dict(finish_round),
                "messages": messages,
            }
        )

    def undone_by_shard(self):
        """Map ``shard index -> unfinished count`` (non-empty shards only)."""
        return {
            s: len(u) for s, u in enumerate(self.channel.undone()) if u
        }

    def close(self):
        self.channel.close()


def _drive_pernode(channel, k, cg, algorithm, *, cap, truncating,
                   default_output, track_bits, result_cls):
    """Parent-side ledger of a per-node sharded run.

    Field-for-field the same accounting as the compiled engine's
    per-node loop; only the stepping is distributed.
    """
    labels = cg.labels
    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0
    undone_total = cg.n

    def absorb(reports):
        nonlocal messages, max_bits, undone_total
        for report in reports:
            finished, results, sent, bits, _ = report
            for i, value in zip(finished, results):
                label = labels[i]
                outputs[label] = value
                finish_round[label] = rounds
            undone_total -= len(finished)
            messages += sent
            if bits and bits > max_bits:
                max_bits = bits
        return reports

    rounds = 0
    reports = absorb(channel.round0())
    while undone_total:
        if rounds >= cap:
            per_shard = channel.undone()
            undone = [i for shard in per_shard for i in shard]
            if truncating:
                for i in undone:
                    label = labels[i]
                    outputs[label] = default_output
                    finish_round[label] = cap
                return result_cls(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(labels[i] for i in undone),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(
                algorithm.name,
                cap,
                [labels[i] for i in undone],
                shard_counts={
                    s: len(u) for s, u in enumerate(per_shard) if u
                },
            )
        rounds += 1
        reports = absorb(channel.round(_route(reports, k)))
    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )


def build_pernode_shards(cg, part, algorithm, *, inputs, guesses, seed,
                         salt, rng_mode, track_bits, faults=None):
    """Per-shard node processes + delivery tables for a per-node run."""
    make_gen = rng_source(rng_mode, seed, salt)
    if type(algorithm) is LocalAlgorithm:
        make_process = algorithm.process
    else:
        make_process = algorithm.make
    get_input = inputs.get
    labels = cg.labels
    idents = cg.idents
    degrees = cg.degrees
    pairs = cg.pairs
    shard_of = part.shard_of
    shards = []
    for s in range(part.k):
        lo, hi = part.own_range(s)
        rows = []
        for i in range(lo, hi):
            entries = []
            for vi, rp in pairs[i]:
                dest = shard_of(vi)
                if dest == s:
                    entries.append((None, vi - lo, rp))
                else:
                    entries.append((dest, vi, rp))
            rows.append(tuple(entries))
        procs = [
            make_process(
                NodeContext(
                    labels[i],
                    idents[i],
                    degrees[i],
                    get_input(labels[i]),
                    guesses,
                    None,
                    make_gen,
                    rng_mode,
                )
            )
            for i in range(lo, hi)
        ]
        shards.append(
            PerNodeShard(
                s,
                lo,
                procs,
                rows,
                track_bits,
                faults=faults,
                labels=labels if faults is not None else None,
                idents=idents if faults is not None else None,
            )
        )
    return shards


def build_batch_shards(algorithm, cg, part, *, inputs, guesses, seed, salt,
                       rng_mode, track_bits, enabled, faults=None):
    """Per-shard batch kernels, or ``None`` to step per node.

    On top of the engine's eligibility rules (D10) the algorithm must
    advertise ``supports_shard`` — the D12 certification that its
    kernel's slab reductions are owner-side, its message counts
    degree-weighted and its per-node state introspectable length-n
    arrays, which is what makes the halo exchange exact.  Under an
    active fault plan the kernel must additionally be certified
    ``supports_faulted_batch`` (D14); otherwise the run falls back to
    the always-exact per-node shards.
    """
    if not enabled or track_bits or numpy_or_none() is None or cg.n == 0:
        return None
    caps = capabilities_of(algorithm)
    if not caps.get("supports_shard"):
        return None
    if faults is not None and not caps.get("supports_faulted_batch"):
        return None

    def setup_of(bg):
        return BatchSetup(
            inputs,
            guesses,
            rng_mode,
            _engine_draw_builder(bg, rng_mode, seed, salt),
            sharded=True,
            faults=faults.batch_view(bg) if faults is not None else None,
        )

    built = make_shard_kernels(
        algorithm.batch, part, cg.labels, cg.idents, setup_of
    )
    if built is None:
        return None
    return [
        BatchShard(s, kernel, part) for s, (_bg, kernel) in enumerate(built)
    ]


def run_sharded(
    graph,
    algorithm,
    *,
    inputs,
    guesses,
    seed,
    salt,
    cap,
    truncating,
    default_output,
    track_bits,
    rng_mode,
    result_cls,
    use_batch,
    shards,
    channel,
    faults=None,
):
    """Execute one synchronous run on the partitioned engine.

    Bit-identical to :func:`repro.local.engine.run_compiled` for every
    shard count and channel (the backend equivalence contract, extended
    by D12 and, under an active fault plan, D14).  Shard counts larger
    than ``n`` clamp to one node per shard; the empty graph degenerates
    to the single-process engine.

    Resilience (D14/D15): a worker that times out or dies mid-round
    (:class:`~repro.errors.WorkerTimeoutError` /
    :class:`~repro.errors.WorkerDiedError`) is recovered *inside* the
    channel — respawned alone and restored from the last round
    checkpoint, escalating to a pool rebuild and finally to finishing
    the run inline from the checkpoint (see ``_RecoveringChannel``).
    Committed rounds are never re-executed, and the recovered run is
    bit-identical by the D9 purity argument.  Only when no checkpoint
    exists (``REPRO_CHECKPOINT=0``, or shard state that will not
    pickle) does the legacy ladder below restart the whole run on the
    workerless inline channel.  Real worker exceptions are never
    retried; they propagate first-failure as before.
    """
    from .engine import run_batch, run_compiled
    from .runner import note_recovery, note_stepping

    note_recovery(None)
    cg = graph.compiled()
    if cg.n == 0:
        return run_compiled(
            graph,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            rng_mode=rng_mode,
            result_cls=result_cls,
            use_batch=use_batch,
            faults=faults,
        )
    part = cg.partition(shards)

    def attempt(chan_kind):
        batch_shards = build_batch_shards(
            algorithm,
            cg,
            part,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            rng_mode=rng_mode,
            track_bits=track_bits,
            enabled=use_batch,
            faults=faults,
        )
        if batch_shards is not None:
            note_stepping("shard-batch")
        elif (
            use_batch
            and not track_bits
            and numpy_or_none() is None
            and capabilities_of(algorithm).get("supports_shard")
        ):
            warnings.warn(
                "sharded batch kernels need numpy; stepping per node "
                "instead (slower, same bits)",
                ResilienceWarning,
                stacklevel=3,
            )
        if batch_shards is not None:
            loop = ShardedKernelLoop(
                open_channel(batch_shards, chan_kind), part.k, cg.n
            )
            try:
                return run_batch(
                    loop,
                    cg,
                    algorithm,
                    cap=cap,
                    truncating=truncating,
                    default_output=default_output,
                    result_cls=result_cls,
                )
            finally:
                loop.close()
        note_stepping("shard-per-node")
        pernode = build_pernode_shards(
            cg,
            part,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            rng_mode=rng_mode,
            track_bits=track_bits,
            faults=faults,
        )
        chan = open_channel(pernode, chan_kind)
        try:
            return _drive_pernode(
                chan,
                part.k,
                cg,
                algorithm,
                cap=cap,
                truncating=truncating,
                default_output=default_output,
                track_bits=track_bits,
                result_cls=result_cls,
            )
        finally:
            chan.close()

    # Outer ladder, reached only when in-channel recovery was
    # unavailable (no checkpoint): restart the whole run once on the
    # workerless inline channel.  Only transport failures (retryable
    # FaultErrors) walk it; determinism makes the restart the same
    # pure function of ``(graph, algorithm, seed, plan)``.
    try:
        return attempt(channel)
    except FaultError as exc:
        if channel == "inline" or not exc.retryable:
            raise
        warnings.warn(
            f"sharded run failed on the {channel!r} channel with no "
            f"usable checkpoint ({exc}); restarting from scratch on "
            f"the inline channel",
            ResilienceWarning,
            stacklevel=2,
        )
        note_recovery("restart-inline")
        if SHARD_RETRY_BACKOFF > 0:
            time.sleep(SHARD_RETRY_BACKOFF)
        return attempt("inline")
