"""Sharded round loop: partitioned CSR execution with boundary exchange.

The paper's algorithms are LOCAL by construction — one round reads one
neighbourhood — so the compiled engine's round loop shards naturally
across graph partitions: each shard steps its owned frontier
independently per round and only the boundary (cross-shard messages for
the per-node stepping, ghost/halo state for the batched stepping) is
exchanged between rounds.  This module is the ``backend="sharded"`` /
``run(graph, algo, shards=k)`` implementation (DESIGN.md D12).

Two steppings, one plan
-----------------------
Both steppings consume the same :class:`~repro.local.engine.Partition`
(contiguous identity-ordered shards, halo tables):

* **per-node** (:class:`PerNodeShard`) — every :class:`LocalAlgorithm`
  qualifies.  A shard owns the node processes of its index range and
  walks the same double-buffered inbox loop as the compiled engine;
  deliveries whose receiver lives elsewhere are exported as
  ``(receiver index, reverse port, payload)`` packets and merged into
  the destination shard's buffers before the next round.  Inboxes are
  re-assembled in ascending *port* order, which equals ascending sender
  identity order — exactly the insertion order the single-process loops
  produce — so inbox iteration order is preserved bit for bit.
* **batched** (:class:`BatchShard`) — gated on the algorithm's
  ``supports_shard`` capability.  The shard runs the *unchanged* batch
  kernel on its sub-CSR (owned rows complete, ghost rows empty); after
  every kernel round the halo exchange overwrites each ghost's entries
  in the kernel's per-node state arrays with the owning shard's
  authoritative values, so the next round's slab gathers read exactly
  what the single-process kernel would.  Ghost rows being empty makes
  degree-weighted message counts partition exactly (each edge slot is
  owned once) and makes ghost-side round artifacts harmless scratch —
  they are resynchronized before anything reads them.

Channels
--------
``channel="inline"`` steps the shards sequentially in-process — the
deterministic reference for the exchange protocol (and the numpy-free /
single-core fallback).  ``channel="mp"`` forks one worker per shard
(copy-on-write inherits graph, processes and kernels without pickling)
and routes the per-round packets through pipes via the parent; workers
are forked per run and joined when it completes.  Both channels produce
bit-identical :class:`~repro.local.runner.RunResult` fields for every
shard count — the ``sharded(k) ≡ batch ≡ compiled ≡ reference``
contract enforced by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from ..errors import NonTerminationError
from .algorithm import LocalAlgorithm, capabilities_of
from .batch import (
    _engine_draw_builder,
    BatchSetup,
    make_shard_kernels,
    numpy_or_none,
)
from .context import NodeContext, rng_source
from .message import Broadcast, normalize_outgoing
from .msgsize import estimate_bits


def fork_available():
    """Whether the multiprocessing channel can run on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# batched stepping: unchanged kernels on sub-CSRs + halo state exchange
# ---------------------------------------------------------------------------

def _state_array_names(kernel):
    """Slot names of a kernel in deterministic (mro, declaration) order."""
    names = []
    for cls in type(kernel).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name not in names:
                names.append(name)
    return names


class BatchShard:
    """One shard of a batched sharded run: sub-CSR kernel + halo sync.

    ``sends`` lists ``(dest, local indices)`` of the owned boundary
    nodes each other shard mirrors; ``recv_slots`` maps a source shard
    to the local ghost slots its packet fills (same agreed order).  A
    sync packet is ``[(attr name, values), ...]`` for every kernel
    attribute that is a per-node state array (numpy, first axis of
    length ``n``) — the D12 shard-safe kernel contract guarantees those
    are exactly the arrays the next round's gathers read.
    """

    __slots__ = (
        "index",
        "kernel",
        "n_local",
        "own_lo",
        "own_hi",
        "gmap",
        "sends",
        "recv_slots",
        "_names",
    )

    def __init__(self, index, kernel, part):
        np = numpy_or_none()
        self.index = index
        self.kernel = kernel
        loc = part.locals_of(index)
        self.n_local = len(loc)
        self.own_lo, self.own_hi = part.own_local_range(index)
        self.gmap = loc
        sends, recv = part.sync_plan()
        self.sends = [
            (dest, np.asarray(idx, dtype=np.int64))
            for dest, idx in sends[index]
        ]
        self.recv_slots = {
            src: np.asarray(idx, dtype=np.int64)
            for src, idx in recv[index].items()
        }
        self._names = _state_array_names(kernel)

    def _report(self, finished, results, messages):
        lo, hi = self.own_lo, self.own_hi
        gmap = self.gmap
        fin = []
        res = []
        for i, value in zip(finished, results):
            if lo <= i < hi:
                fin.append(gmap[i])
                res.append(value)
        return (fin, res, messages, None, self._sync_payload())

    def _sync_payload(self):
        np = numpy_or_none()
        kernel = self.kernel
        n = self.n_local
        arrays = []
        for name in self._names:
            value = getattr(kernel, name, None)
            if isinstance(value, np.ndarray) and len(value) == n:
                arrays.append((name, value))
        return {
            dest: [(name, arr[idx]) for name, arr in arrays]
            for dest, idx in self.sends
        }

    def _apply_sync(self, inbound):
        np = numpy_or_none()
        kernel = self.kernel
        n = self.n_local
        for src, payload in inbound:
            slots = self.recv_slots[src]
            for name, values in payload:
                target = getattr(kernel, name, None)
                if isinstance(target, np.ndarray) and len(target) == n:
                    target[slots] = values

    def round0(self):
        return self._report(*self.kernel.start())

    def round(self, inbound):
        self._apply_sync(inbound)
        return self._report(*self.kernel.step())

    def undone(self):
        lo, hi = self.own_lo, self.own_hi
        gmap = self.gmap
        return [gmap[i] for i in self.kernel.undone_indices() if lo <= i < hi]


# ---------------------------------------------------------------------------
# per-node stepping: node processes + boundary message packets
# ---------------------------------------------------------------------------

class PerNodeShard:
    """One shard of a per-node sharded run.

    ``rows[t]`` holds, per edge slot of the shard's ``t``-th owned
    node, ``(dest_shard, target, reverse_port)`` — ``dest_shard`` is
    ``None`` for in-shard deliveries (``target`` is then the receiver's
    owned slot) and the owning shard otherwise (``target`` the
    receiver's global index).  The round logic mirrors the compiled
    engine's double-buffered loop; remote packets merge into the
    consuming buffer before the round and every non-empty inbox is
    re-assembled in ascending port order, reproducing the
    single-process insertion order exactly (ports are assigned in
    increasing neighbour identity, which is increasing global index —
    the order senders activate in).
    """

    __slots__ = (
        "index",
        "lo",
        "procs",
        "rows",
        "track_bits",
        "active",
        "cur",
        "cur_touched",
        "nxt",
        "nxt_touched",
        "max_bits",
    )

    def __init__(self, index, lo, procs, rows, track_bits):
        self.index = index
        self.lo = lo
        self.procs = procs
        self.rows = rows
        self.track_bits = track_bits
        self.active = []
        n = len(procs)
        self.cur = [None] * n
        self.cur_touched = []
        self.nxt = [None] * n
        self.nxt_touched = []
        self.max_bits = 0

    def _note_bits(self, payload):
        bits = estimate_bits(payload)
        if bits > self.max_bits:
            self.max_bits = bits

    def _deliver(self, t, outgoing, out_remote):
        """Route one node's outgoing spec; returns the payload count."""
        row = self.rows[t]
        nxt = self.nxt
        touch = self.nxt_touched.append
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if self.track_bits:
                self._note_bits(payload)
            for dest, target, rp in row:
                if dest is None:
                    box = nxt[target]
                    if box is None:
                        box = nxt[target] = {}
                        touch(target)
                    box[rp] = payload
                else:
                    bucket = out_remote.get(dest)
                    if bucket is None:
                        bucket = out_remote[dest] = []
                    bucket.append((target, rp, payload))
            return len(row)
        if not isinstance(outgoing, dict):
            normalize_outgoing(outgoing, len(row))  # raises TypeError
        degree = len(row)
        count = 0
        for port, payload in outgoing.items():
            if not isinstance(port, int) or port < 0 or port >= degree:
                # Re-raise with the specification's exact diagnostics.
                normalize_outgoing(outgoing, degree)
            if self.track_bits:
                self._note_bits(payload)
            dest, target, rp = row[port]
            if dest is None:
                box = nxt[target]
                if box is None:
                    box = nxt[target] = {}
                    touch(target)
                box[rp] = payload
            else:
                bucket = out_remote.get(dest)
                if bucket is None:
                    bucket = out_remote[dest] = []
                bucket.append((target, rp, payload))
            count += 1
        return count

    def round0(self):
        out_remote = {}
        finished = []
        results = []
        messages = 0
        lo = self.lo
        add_active = self.active.append
        for t, process in enumerate(self.procs):
            outgoing = process.start()
            if outgoing is not None:
                messages += self._deliver(t, outgoing, out_remote)
            if process.done:
                finished.append(lo + t)
                results.append(process.result)
            else:
                add_active(t)
        return (finished, results, messages, self.max_bits, out_remote)

    def round(self, inbound):
        # Swap buffers: `cur` now holds everything delivered last round.
        self.cur, self.cur_touched, self.nxt, self.nxt_touched = (
            self.nxt,
            self.nxt_touched,
            self.cur,
            self.cur_touched,
        )
        cur, cur_touched = self.cur, self.cur_touched
        lo = self.lo
        for _src, packets in inbound:
            for target, rp, payload in packets:
                t = target - lo
                box = cur[t]
                if box is None:
                    box = cur[t] = {}
                    cur_touched.append(t)
                box[rp] = payload
        out_remote = {}
        finished = []
        results = []
        messages = 0
        procs = self.procs
        still_active = []
        add_still = still_active.append
        for t in self.active:
            process = procs[t]
            box = cur[t]
            inbox = dict(sorted(box.items())) if box else {}
            outgoing = process.receive(inbox)
            if outgoing is not None:
                messages += self._deliver(t, outgoing, out_remote)
            if process.done:
                finished.append(lo + t)
                results.append(process.result)
            else:
                add_still(t)
        self.active = still_active
        for t in cur_touched:
            cur[t] = None
        cur_touched.clear()
        return (finished, results, messages, self.max_bits, out_remote)

    def undone(self):
        lo = self.lo
        return [lo + t for t in self.active]


# ---------------------------------------------------------------------------
# channels: deterministic in-process loop / forked worker pool
# ---------------------------------------------------------------------------

def _route(reports, k):
    """Turn per-shard outbound maps into per-shard inbound lists.

    Inbound packets are ordered by source shard, so the exchange is
    deterministic under both channels.
    """
    inbound = [[] for _ in range(k)]
    for src, report in enumerate(reports):
        outbound = report[4]
        for dest, payload in outbound.items():
            inbound[dest].append((src, payload))
    return inbound


class InlineChannel:
    """Deterministic in-process channel: shards step sequentially."""

    def __init__(self, shards):
        self.shards = shards

    def round0(self):
        return [shard.round0() for shard in self.shards]

    def round(self, inbound):
        return [
            shard.round(inbound[s]) for s, shard in enumerate(self.shards)
        ]

    def undone(self):
        return [shard.undone() for shard in self.shards]

    def close(self):
        pass


def _shard_worker(conn, shard):
    """Worker loop of the multiprocessing channel (one forked process)."""
    try:
        conn.send(("ok", shard.round0()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "round":
                conn.send(("ok", shard.round(message[1])))
            elif kind == "undone":
                conn.send(("ok", shard.undone()))
            else:  # "stop"
                break
    except EOFError:  # parent went away; nothing left to report to
        pass
    except BaseException as exc:  # propagate the real failure to the parent
        try:
            conn.send(("err", exc))
        except Exception:
            try:
                conn.send(("err", RuntimeError(repr(exc))))
            except Exception:
                pass
    finally:
        conn.close()


class ProcessChannel:
    """Forked worker pool: one process per shard, piped exchange.

    The pool is forked per run — fork inherits the shard structures
    (graph slabs, node processes, kernels) copy-on-write, so nothing
    but the per-round boundary packets is ever pickled — and joined
    when the run completes (``close``), crashed workers included.
    """

    def __init__(self, shards):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.conns = []
        self.procs = []
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child_conn, shard), daemon=True
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)

    def _recv_all(self):
        reports = []
        failure = None
        for conn in self.conns:
            try:
                tag, payload = conn.recv()
            except EOFError:
                tag, payload = "err", RuntimeError(
                    "sharded worker died without reporting"
                )
            if tag == "err" and failure is None:
                failure = payload
            reports.append(payload)
        if failure is not None:
            self.close()
            raise failure
        return reports

    def round0(self):
        return self._recv_all()

    def round(self, inbound):
        for s, conn in enumerate(self.conns):
            conn.send(("round", inbound[s]))
        return self._recv_all()

    def undone(self):
        for conn in self.conns:
            conn.send(("undone",))
        return self._recv_all()

    def close(self):
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive cleanup
                proc.terminate()
                proc.join(timeout=5)
        for conn in self.conns:
            conn.close()


def open_channel(shards, channel):
    """Build the requested channel (``"mp"`` falls back when fork is
    unavailable — the inline exchange is the same protocol)."""
    if channel == "mp" and fork_available():
        return ProcessChannel(shards)
    return InlineChannel(shards)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

class ShardedKernelLoop:
    """Per-shard kernels presented through the single-kernel interface.

    ``start`` / ``step`` / ``done`` / ``undone_indices`` match the D10
    kernel contract with *global* node indices, so existing kernel
    drivers (the engine's ledger, the virtual-domain replay) consume a
    sharded ensemble exactly as they consume one kernel.  ``close``
    releases the channel (joins the worker pool).
    """

    __slots__ = ("channel", "k", "total", "finished", "done", "_reports")

    def __init__(self, channel, k, total):
        self.channel = channel
        self.k = k
        self.total = total
        self.finished = 0
        self.done = total == 0
        self._reports = None

    def _merge(self, reports):
        self._reports = reports
        finished = []
        results = []
        messages = 0
        for report in reports:
            finished.extend(report[0])
            results.extend(report[1])
            messages += report[2]
        self.finished += len(finished)
        if self.finished >= self.total:
            self.done = True
        return finished, results, messages

    def start(self):
        return self._merge(self.channel.round0())

    def step(self):
        inbound = _route(self._reports, self.k)
        return self._merge(self.channel.round(inbound))

    def undone_indices(self):
        return [i for shard in self.channel.undone() for i in shard]

    def close(self):
        self.channel.close()


def _drive_pernode(channel, k, cg, algorithm, *, cap, truncating,
                   default_output, track_bits, result_cls):
    """Parent-side ledger of a per-node sharded run.

    Field-for-field the same accounting as the compiled engine's
    per-node loop; only the stepping is distributed.
    """
    labels = cg.labels
    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0
    undone_total = cg.n

    def absorb(reports):
        nonlocal messages, max_bits, undone_total
        for report in reports:
            finished, results, sent, bits, _ = report
            for i, value in zip(finished, results):
                label = labels[i]
                outputs[label] = value
                finish_round[label] = rounds
            undone_total -= len(finished)
            messages += sent
            if bits and bits > max_bits:
                max_bits = bits
        return reports

    rounds = 0
    reports = absorb(channel.round0())
    while undone_total:
        if rounds >= cap:
            undone = [i for shard in channel.undone() for i in shard]
            if truncating:
                for i in undone:
                    label = labels[i]
                    outputs[label] = default_output
                    finish_round[label] = cap
                return result_cls(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(labels[i] for i in undone),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(
                algorithm.name, cap, [labels[i] for i in undone]
            )
        rounds += 1
        reports = absorb(channel.round(_route(reports, k)))
    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )


def build_pernode_shards(cg, part, algorithm, *, inputs, guesses, seed,
                         salt, rng_mode, track_bits):
    """Per-shard node processes + delivery tables for a per-node run."""
    make_gen = rng_source(rng_mode, seed, salt)
    if type(algorithm) is LocalAlgorithm:
        make_process = algorithm.process
    else:
        make_process = algorithm.make
    get_input = inputs.get
    labels = cg.labels
    idents = cg.idents
    degrees = cg.degrees
    pairs = cg.pairs
    shard_of = part.shard_of
    shards = []
    for s in range(part.k):
        lo, hi = part.own_range(s)
        rows = []
        for i in range(lo, hi):
            entries = []
            for vi, rp in pairs[i]:
                dest = shard_of(vi)
                if dest == s:
                    entries.append((None, vi - lo, rp))
                else:
                    entries.append((dest, vi, rp))
            rows.append(tuple(entries))
        procs = [
            make_process(
                NodeContext(
                    labels[i],
                    idents[i],
                    degrees[i],
                    get_input(labels[i]),
                    guesses,
                    None,
                    make_gen,
                    rng_mode,
                )
            )
            for i in range(lo, hi)
        ]
        shards.append(PerNodeShard(s, lo, procs, rows, track_bits))
    return shards


def build_batch_shards(algorithm, cg, part, *, inputs, guesses, seed, salt,
                       rng_mode, track_bits, enabled):
    """Per-shard batch kernels, or ``None`` to step per node.

    On top of the engine's eligibility rules (D10) the algorithm must
    advertise ``supports_shard`` — the D12 certification that its
    kernel's slab reductions are owner-side, its message counts
    degree-weighted and its per-node state introspectable length-n
    arrays, which is what makes the halo exchange exact.
    """
    if not enabled or track_bits or numpy_or_none() is None or cg.n == 0:
        return None
    if not capabilities_of(algorithm).get("supports_shard"):
        return None

    def setup_of(bg):
        return BatchSetup(
            inputs,
            guesses,
            rng_mode,
            _engine_draw_builder(bg, rng_mode, seed, salt),
        )

    built = make_shard_kernels(
        algorithm.batch, part, cg.labels, cg.idents, setup_of
    )
    if built is None:
        return None
    return [
        BatchShard(s, kernel, part) for s, (_bg, kernel) in enumerate(built)
    ]


def run_sharded(
    graph,
    algorithm,
    *,
    inputs,
    guesses,
    seed,
    salt,
    cap,
    truncating,
    default_output,
    track_bits,
    rng_mode,
    result_cls,
    use_batch,
    shards,
    channel,
):
    """Execute one synchronous run on the partitioned engine.

    Bit-identical to :func:`repro.local.engine.run_compiled` for every
    shard count and channel (the backend equivalence contract, extended
    by D12).  Shard counts larger than ``n`` clamp to one node per
    shard; the empty graph degenerates to the single-process engine.
    """
    from .engine import run_batch, run_compiled
    from .runner import note_stepping

    cg = graph.compiled()
    if cg.n == 0:
        return run_compiled(
            graph,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            rng_mode=rng_mode,
            result_cls=result_cls,
            use_batch=use_batch,
        )
    part = cg.partition(shards)
    batch_shards = build_batch_shards(
        algorithm,
        cg,
        part,
        inputs=inputs,
        guesses=guesses,
        seed=seed,
        salt=salt,
        rng_mode=rng_mode,
        track_bits=track_bits,
        enabled=use_batch,
    )
    if batch_shards is not None:
        note_stepping("shard-batch")
        loop = ShardedKernelLoop(
            open_channel(batch_shards, channel), part.k, cg.n
        )
        try:
            return run_batch(
                loop,
                cg,
                algorithm,
                cap=cap,
                truncating=truncating,
                default_output=default_output,
                result_cls=result_cls,
            )
        finally:
            loop.close()
    note_stepping("shard-per-node")
    pernode = build_pernode_shards(
        cg,
        part,
        algorithm,
        inputs=inputs,
        guesses=guesses,
        seed=seed,
        salt=salt,
        rng_mode=rng_mode,
        track_bits=track_bits,
    )
    chan = open_channel(pernode, channel)
    try:
        return _drive_pernode(
            chan,
            part.k,
            cg,
            algorithm,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            result_cls=result_cls,
        )
    finally:
        chan.close()
