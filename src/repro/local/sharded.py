"""Sharded round loop: partitioned CSR execution with boundary exchange.

The paper's algorithms are LOCAL by construction — one round reads one
neighbourhood — so the compiled engine's round loop shards naturally
across graph partitions: each shard steps its owned frontier
independently per round and only the boundary (cross-shard messages for
the per-node stepping, ghost/halo state for the batched stepping) is
exchanged between rounds.  This module is the ``backend="sharded"`` /
``run(graph, algo, shards=k)`` implementation (DESIGN.md D12).

Two steppings, one plan
-----------------------
Both steppings consume the same :class:`~repro.local.engine.Partition`
(contiguous identity-ordered shards, halo tables):

* **per-node** (:class:`PerNodeShard`) — every :class:`LocalAlgorithm`
  qualifies.  A shard owns the node processes of its index range and
  walks the same double-buffered inbox loop as the compiled engine;
  deliveries whose receiver lives elsewhere are exported as
  ``(receiver index, reverse port, payload)`` packets and merged into
  the destination shard's buffers before the next round.  Inboxes are
  re-assembled in ascending *port* order, which equals ascending sender
  identity order — exactly the insertion order the single-process loops
  produce — so inbox iteration order is preserved bit for bit.
* **batched** (:class:`BatchShard`) — gated on the algorithm's
  ``supports_shard`` capability.  The shard runs the *unchanged* batch
  kernel on its sub-CSR (owned rows complete, ghost rows empty); after
  every kernel round the halo exchange overwrites each ghost's entries
  in the kernel's per-node state arrays with the owning shard's
  authoritative values, so the next round's slab gathers read exactly
  what the single-process kernel would.  Ghost rows being empty makes
  degree-weighted message counts partition exactly (each edge slot is
  owned once) and makes ghost-side round artifacts harmless scratch —
  they are resynchronized before anything reads them.

Channels
--------
``channel="inline"`` steps the shards sequentially in-process — the
deterministic reference for the exchange protocol (and the numpy-free /
single-core fallback).  ``channel="mp"`` forks one worker per shard
(copy-on-write inherits graph, processes and kernels without pickling)
and routes the per-round packets through pipes via the parent; workers
are forked per run and joined when it completes.  ``channel="mp-pooled"``
(D13) dispatches to a *persistent* :class:`WorkerPool` instead: workers
are spawned once per pool scope (``use_backend("sharded", ...)``) and
reused across every run of a pipeline, with the per-round halo exchange
travelling through a fork-inherited shared-memory arena rather than
through the parent's pipes.  All channels produce bit-identical
:class:`~repro.local.runner.RunResult` fields for every shard count —
the ``sharded(k) ≡ batch ≡ compiled ≡ reference`` contract enforced by
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from ..errors import (
    FaultError,
    NonTerminationError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from .algorithm import LocalAlgorithm, capabilities_of
from .batch import (
    _engine_draw_builder,
    BatchSetup,
    make_shard_kernels,
    numpy_or_none,
)
from .context import NodeContext, rng_source
from .faults import DROP, GARBLE, GARBLED
from .message import Broadcast, normalize_outgoing
from .msgsize import estimate_bits

#: Per-round deadline (seconds) for collecting every worker's report.
#: A worker that hangs past it surfaces as
#: :class:`~repro.errors.WorkerTimeoutError` instead of blocking the
#: parent forever; values <= 0 disable the deadline.  Read at call time
#: so tests (and operators, via ``REPRO_SHARD_TIMEOUT``) can tighten it.
try:
    SHARD_TIMEOUT = float(os.environ.get("REPRO_SHARD_TIMEOUT", "") or 30.0)
except ValueError:  # pragma: no cover - malformed environment
    SHARD_TIMEOUT = 30.0

#: Pause before the retry attempt of the resilience ladder (seconds) —
#: long enough for a transiently-starved machine to recover, short
#: enough to be invisible next to the re-fork it precedes.
try:
    SHARD_RETRY_BACKOFF = float(
        os.environ.get("REPRO_SHARD_RETRY_BACKOFF", "") or 0.1
    )
except ValueError:  # pragma: no cover - malformed environment
    SHARD_RETRY_BACKOFF = 0.1


def fork_available():
    """Whether the multiprocessing channel can run on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# batched stepping: unchanged kernels on sub-CSRs + halo state exchange
# ---------------------------------------------------------------------------

def _state_array_names(kernel):
    """Names of the kernel's halo-synced state arrays.

    A kernel may pin the set explicitly with a ``SHARD_SYNC`` class
    attribute — required when it also keeps derived length-n arrays
    (sorted orders, rank permutations) whose values are local positions
    rather than per-node state (the coloring/MIS kernels, D13).
    Without the declaration, every ``__slots__`` entry that holds a
    length-n numpy array at exchange time is synced, in deterministic
    (mro, declaration) order — sufficient for kernels whose only
    length-n arrays *are* per-node state (the Luby family, the
    pruners).
    """
    declared = getattr(type(kernel), "SHARD_SYNC", None)
    if declared is not None:
        return list(declared)
    names = []
    for cls in type(kernel).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name not in names:
                names.append(name)
    return names


class BatchShard:
    """One shard of a batched sharded run: sub-CSR kernel + halo sync.

    ``sends`` lists ``(dest, local indices)`` of the owned boundary
    nodes each other shard mirrors; ``recv_slots`` maps a source shard
    to the local ghost slots its packet fills (same agreed order).  A
    sync packet is ``[(attr name, values), ...]`` for every kernel
    attribute that is a per-node state array (numpy, first axis of
    length ``n``) — the D12 shard-safe kernel contract guarantees those
    are exactly the arrays the next round's gathers read.
    """

    __slots__ = (
        "index",
        "kernel",
        "n_local",
        "own_lo",
        "own_hi",
        "gmap",
        "sends",
        "recv_slots",
        "halo_total",
        "halo_regions",
        "_names",
    )

    def __init__(self, index, kernel, part):
        np = numpy_or_none()
        self.index = index
        self.kernel = kernel
        loc = part.locals_of(index)
        self.n_local = len(loc)
        self.own_lo, self.own_hi = part.own_local_range(index)
        self.gmap = loc
        sends, recv = part.sync_plan()
        self.sends = [
            (dest, np.asarray(idx, dtype=np.int64))
            for dest, idx in sends[index]
        ]
        self.recv_slots = {
            src: np.asarray(idx, dtype=np.int64)
            for src, idx in recv[index].items()
        }
        # Stable shared-memory offsets of this shard's halo regions
        # (D13): pure geometry, so the pickled shard carries everything
        # a pooled worker needs to place its ring-buffer writes/reads.
        total, regions = part.halo_layout(
            _HALO_BYTES_PER_NODE, _HALO_HEADER_BYTES
        )
        self.halo_total = total
        self.halo_regions = {
            pair: region
            for pair, region in regions.items()
            if pair[0] == index or pair[1] == index
        }
        self._names = _state_array_names(kernel)

    def owned(self, finished, results):
        """Filter a kernel report down to this shard's owned nodes,
        translated to global indices."""
        lo, hi = self.own_lo, self.own_hi
        gmap = self.gmap
        fin = []
        res = []
        for i, value in zip(finished, results):
            if lo <= i < hi:
                fin.append(gmap[i])
                res.append(value)
        return fin, res

    def _report(self, finished, results, messages):
        fin, res = self.owned(finished, results)
        return (fin, res, messages, None, self._sync_payload())

    def sync_arrays(self):
        """The kernel's per-node state arrays, ``[(name, array), ...]``."""
        np = numpy_or_none()
        kernel = self.kernel
        n = self.n_local
        arrays = []
        for name in self._names:
            value = getattr(kernel, name, None)
            if isinstance(value, np.ndarray) and len(value) == n:
                arrays.append((name, value))
        return arrays

    def _sync_payload(self):
        arrays = self.sync_arrays()
        return {
            dest: [(name, arr[idx]) for name, arr in arrays]
            for dest, idx in self.sends
        }

    def apply_sync_one(self, src, payload):
        """Overwrite ghost entries owned by shard ``src`` from ``payload``."""
        np = numpy_or_none()
        kernel = self.kernel
        n = self.n_local
        slots = self.recv_slots[src]
        for name, values in payload:
            target = getattr(kernel, name, None)
            if isinstance(target, np.ndarray) and len(target) == n:
                target[slots] = values

    def _apply_sync(self, inbound):
        for src, payload in inbound:
            self.apply_sync_one(src, payload)

    def round0(self):
        return self._report(*self.kernel.start())

    def round(self, inbound):
        self._apply_sync(inbound)
        return self._report(*self.kernel.step())

    def undone(self):
        lo, hi = self.own_lo, self.own_hi
        gmap = self.gmap
        return [gmap[i] for i in self.kernel.undone_indices() if lo <= i < hi]


# ---------------------------------------------------------------------------
# per-node stepping: node processes + boundary message packets
# ---------------------------------------------------------------------------

class PerNodeShard:
    """One shard of a per-node sharded run.

    ``rows[t]`` holds, per edge slot of the shard's ``t``-th owned
    node, ``(dest_shard, target, reverse_port)`` — ``dest_shard`` is
    ``None`` for in-shard deliveries (``target`` is then the receiver's
    owned slot) and the owning shard otherwise (``target`` the
    receiver's global index).  The round logic mirrors the compiled
    engine's double-buffered loop; remote packets merge into the
    consuming buffer before the round and every non-empty inbox is
    re-assembled in ascending port order, reproducing the
    single-process insertion order exactly (ports are assigned in
    increasing neighbour identity, which is increasing global index —
    the order senders activate in).
    """

    __slots__ = (
        "index",
        "lo",
        "procs",
        "rows",
        "track_bits",
        "active",
        "cur",
        "cur_touched",
        "nxt",
        "nxt_touched",
        "max_bits",
        "faults",
        "g_labels",
        "g_idents",
        "round_no",
    )

    def __init__(
        self, index, lo, procs, rows, track_bits, faults=None, labels=None,
        idents=None,
    ):
        self.index = index
        self.lo = lo
        self.procs = procs
        self.rows = rows
        self.track_bits = track_bits
        self.active = []
        n = len(procs)
        self.cur = [None] * n
        self.cur_touched = []
        self.nxt = [None] * n
        self.nxt_touched = []
        self.max_bits = 0
        # D14 injection state: the run's CompiledFaults plus the global
        # label/ident tables (fault decisions are keyed by the *global*
        # endpoint identities, so every shard derives the same per-edge
        # fate).  All None for honest runs — nothing extra is forked or
        # pickled then.
        self.faults = faults
        self.g_labels = labels
        self.g_idents = idents
        self.round_no = 0

    def _note_bits(self, payload):
        bits = estimate_bits(payload)
        if bits > self.max_bits:
            self.max_bits = bits

    def _deliver(self, t, outgoing, out_remote):
        """Route one node's outgoing spec; returns the payload count."""
        row = self.rows[t]
        nxt = self.nxt
        touch = self.nxt_touched.append
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if self.track_bits:
                self._note_bits(payload)
            for dest, target, rp in row:
                if dest is None:
                    box = nxt[target]
                    if box is None:
                        box = nxt[target] = {}
                        touch(target)
                    box[rp] = payload
                else:
                    bucket = out_remote.get(dest)
                    if bucket is None:
                        bucket = out_remote[dest] = []
                    bucket.append((target, rp, payload))
            return len(row)
        if not isinstance(outgoing, dict):
            normalize_outgoing(outgoing, len(row))  # raises TypeError
        degree = len(row)
        count = 0
        for port, payload in outgoing.items():
            if not isinstance(port, int) or port < 0 or port >= degree:
                # Re-raise with the specification's exact diagnostics.
                normalize_outgoing(outgoing, degree)
            if self.track_bits:
                self._note_bits(payload)
            dest, target, rp = row[port]
            if dest is None:
                box = nxt[target]
                if box is None:
                    box = nxt[target] = {}
                    touch(target)
                box[rp] = payload
            else:
                bucket = out_remote.get(dest)
                if bucket is None:
                    bucket = out_remote[dest] = []
                bucket.append((target, rp, payload))
            count += 1
        return count

    def _deliver_faulted(self, t, outgoing, out_remote):
        """Faulted :meth:`_deliver` (DESIGN.md D14), reference-exact.

        Silenced senders produce nothing (uncounted, unsized — the
        payload never leaves the node), dropped payloads vanish in
        flight (uncounted, but dict-path payloads are still sized as in
        the reference), garbled payloads arrive as :data:`GARBLED`
        (counted, sized as sent).  Fault fates are keyed by the global
        endpoint identities: an in-shard target is the receiver's owned
        slot (global ``lo + target``) while a remote target is already a
        global index, so both sides of a cut edge derive the same fate.
        """
        faults = self.faults
        rnd = self.round_no
        lo = self.lo
        label = self.g_labels[lo + t]
        if faults.silenced(label, rnd):
            return 0
        idents = self.g_idents
        ident = idents[lo + t]
        decide = faults.decide
        row = self.rows[t]
        nxt = self.nxt
        touch = self.nxt_touched.append
        if isinstance(outgoing, Broadcast):
            payload = outgoing.payload
            if self.track_bits:
                self._note_bits(payload)
            count = 0
            for dest, target, rp in row:
                receiver = idents[lo + target if dest is None else target]
                fate = decide(label, ident, receiver, rnd)
                if fate == DROP:
                    continue
                body = GARBLED if fate == GARBLE else payload
                if dest is None:
                    box = nxt[target]
                    if box is None:
                        box = nxt[target] = {}
                        touch(target)
                    box[rp] = body
                else:
                    bucket = out_remote.get(dest)
                    if bucket is None:
                        bucket = out_remote[dest] = []
                    bucket.append((target, rp, body))
                count += 1
            return count
        if not isinstance(outgoing, dict):
            normalize_outgoing(outgoing, len(row))  # raises TypeError
        degree = len(row)
        count = 0
        for port, payload in outgoing.items():
            if not isinstance(port, int) or port < 0 or port >= degree:
                # Re-raise with the specification's exact diagnostics.
                normalize_outgoing(outgoing, degree)
            if self.track_bits:
                self._note_bits(payload)
            dest, target, rp = row[port]
            receiver = idents[lo + target if dest is None else target]
            fate = decide(label, ident, receiver, rnd)
            if fate == DROP:
                continue
            if fate == GARBLE:
                payload = GARBLED
            if dest is None:
                box = nxt[target]
                if box is None:
                    box = nxt[target] = {}
                    touch(target)
                box[rp] = payload
            else:
                bucket = out_remote.get(dest)
                if bucket is None:
                    bucket = out_remote[dest] = []
                bucket.append((target, rp, payload))
            count += 1
        return count

    def round0(self):
        out_remote = {}
        finished = []
        results = []
        messages = 0
        lo = self.lo
        add_active = self.active.append
        faults = self.faults
        deliver = self._deliver if faults is None else self._deliver_faulted
        for t, process in enumerate(self.procs):
            if faults is not None:
                crashed = faults.crash_of(self.g_labels[lo + t])
                if crashed is not None and crashed[0] == 0:
                    finished.append(lo + t)
                    results.append(crashed[1])
                    continue
            outgoing = process.start()
            if outgoing is not None:
                messages += deliver(t, outgoing, out_remote)
            if process.done:
                finished.append(lo + t)
                results.append(process.result)
            else:
                add_active(t)
        return (finished, results, messages, self.max_bits, out_remote)

    def round(self, inbound):
        self.round_no += 1
        # Swap buffers: `cur` now holds everything delivered last round.
        self.cur, self.cur_touched, self.nxt, self.nxt_touched = (
            self.nxt,
            self.nxt_touched,
            self.cur,
            self.cur_touched,
        )
        cur, cur_touched = self.cur, self.cur_touched
        lo = self.lo
        for _src, packets in inbound:
            for target, rp, payload in packets:
                t = target - lo
                box = cur[t]
                if box is None:
                    box = cur[t] = {}
                    cur_touched.append(t)
                box[rp] = payload
        out_remote = {}
        finished = []
        results = []
        messages = 0
        procs = self.procs
        still_active = []
        add_still = still_active.append
        faults = self.faults
        deliver = self._deliver if faults is None else self._deliver_faulted
        rnd = self.round_no
        for t in self.active:
            if faults is not None:
                crashed = faults.crash_of(self.g_labels[lo + t])
                if crashed is not None and crashed[0] == rnd:
                    # Crash-stop: force-finished before receiving or
                    # acting at the crash round (DESIGN.md D14).
                    finished.append(lo + t)
                    results.append(crashed[1])
                    continue
            process = procs[t]
            box = cur[t]
            inbox = dict(sorted(box.items())) if box else {}
            outgoing = process.receive(inbox)
            if outgoing is not None:
                messages += deliver(t, outgoing, out_remote)
            if process.done:
                finished.append(lo + t)
                results.append(process.result)
            else:
                add_still(t)
        self.active = still_active
        for t in cur_touched:
            cur[t] = None
        cur_touched.clear()
        return (finished, results, messages, self.max_bits, out_remote)

    def undone(self):
        lo = self.lo
        return [lo + t for t in self.active]


# ---------------------------------------------------------------------------
# channels: deterministic in-process loop / forked worker pool
# ---------------------------------------------------------------------------

def _route(reports, k):
    """Turn per-shard outbound maps into per-shard inbound lists.

    Inbound packets are ordered by source shard, so the exchange is
    deterministic under both channels.
    """
    inbound = [[] for _ in range(k)]
    for src, report in enumerate(reports):
        outbound = report[4]
        for dest, payload in outbound.items():
            inbound[dest].append((src, payload))
    return inbound


class InlineChannel:
    """Deterministic in-process channel: shards step sequentially."""

    def __init__(self, shards):
        self.shards = shards

    def round0(self):
        return [shard.round0() for shard in self.shards]

    def round(self, inbound):
        return [
            shard.round(inbound[s]) for s, shard in enumerate(self.shards)
        ]

    def undone(self):
        return [shard.undone() for shard in self.shards]

    def close(self):
        pass


def _recv_reports(conns, on_failure, round_no=0):
    """Collect one reply per worker; surface the first failure.

    Shared by the fork-per-run and pooled channels so worker-failure
    detection cannot drift between them.  The receive polls against a
    shared per-round deadline (:data:`SHARD_TIMEOUT`) instead of
    blocking — a SIGKILLed worker surfaces as
    :class:`~repro.errors.WorkerDiedError` (EOF on its pipe) and a hung
    one as :class:`~repro.errors.WorkerTimeoutError`, both carrying the
    shard index and round and both retryable by the resilience ladder
    in :func:`run_sharded`.  ``on_failure()`` runs once before the
    failure is raised — closing the forked pool, or poisoning the
    persistent one.
    """
    timeout = SHARD_TIMEOUT
    deadline = time.monotonic() + timeout if timeout > 0 else None
    reports = []
    failure = None
    for s, conn in enumerate(conns):
        try:
            if deadline is not None and not conn.poll(
                max(0.0, deadline - time.monotonic())
            ):
                failure = WorkerTimeoutError(s, round_no, timeout)
                break
            tag, payload = conn.recv()
        except (EOFError, OSError):
            tag, payload = "err", WorkerDiedError(shard=s, round_no=round_no)
        if tag == "err":
            failure = payload
            break
        reports.append(payload)
    if failure is not None:
        on_failure()
        raise failure
    return reports


def _join_workers(procs, conns, grace=True):
    """Stop, join (terminating stragglers) and disconnect workers.

    ``grace=False`` is the abort path after a timeout or death: a hung
    worker would sit out the full graceful join, so it is terminated
    outright — the retry ladder rebuilds fresh workers anyway.
    """
    if grace:
        for conn in conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in procs:
            proc.join(timeout=5)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
    for conn in conns:
        conn.close()


def _shard_worker(conn, shard):
    """Worker loop of the multiprocessing channel (one forked process)."""
    try:
        conn.send(("ok", shard.round0()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "round":
                conn.send(("ok", shard.round(message[1])))
            elif kind == "undone":
                conn.send(("ok", shard.undone()))
            else:  # "stop"
                break
    except EOFError:  # parent went away; nothing left to report to
        pass
    except BaseException as exc:  # propagate the real failure to the parent
        try:
            conn.send(("err", exc))
        except Exception:
            try:
                conn.send(("err", RuntimeError(repr(exc))))
            except Exception:
                pass
    finally:
        conn.close()


class ProcessChannel:
    """Forked worker pool: one process per shard, piped exchange.

    The pool is forked per run — fork inherits the shard structures
    (graph slabs, node processes, kernels) copy-on-write, so nothing
    but the per-round boundary packets is ever pickled — and joined
    when the run completes (``close``), crashed workers included.
    """

    def __init__(self, shards):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.conns = []
        self.procs = []
        self.round_no = 0
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child_conn, shard), daemon=True
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)

    def _abort(self):
        _join_workers(self.procs, self.conns, grace=False)

    def _recv_all(self):
        return _recv_reports(self.conns, self._abort, self.round_no)

    def round0(self):
        return self._recv_all()

    def round(self, inbound):
        self.round_no += 1
        for s, conn in enumerate(self.conns):
            try:
                conn.send(("round", inbound[s]))
            except (BrokenPipeError, OSError) as exc:
                self._abort()
                raise WorkerDiedError(
                    shard=s, round_no=self.round_no
                ) from exc
        return self._recv_all()

    def undone(self):
        for s, conn in enumerate(self.conns):
            try:
                conn.send(("undone",))
            except (BrokenPipeError, OSError) as exc:
                self._abort()
                raise WorkerDiedError(
                    shard=s, round_no=self.round_no
                ) from exc
        return self._recv_all()

    def close(self):
        _join_workers(self.procs, self.conns)


# ---------------------------------------------------------------------------
# persistent worker pool + shared-memory halo plane (D13)
# ---------------------------------------------------------------------------

#: Per-boundary-node byte budget of a halo-plane ring slot.  Covers the
#: certified kernels' state (a handful of 8-byte scalars plus bool
#: flags) with room for moderate 2-D rows; a round whose payload
#: outgrows its region falls back to the piped exchange — sizing is a
#: throughput knob, never a correctness one.
_HALO_BYTES_PER_NODE = 256
#: Fixed per-region headroom for array headers (names, dtypes, shapes).
_HALO_HEADER_BYTES = 1024
#: Initial size of a pool's halo arena.
_ARENA_MIN_BYTES = 1 << 20

#: Marker a pooled worker reports in place of a halo payload that was
#: written to the shared-memory plane (the receiver reads it directly).
_SHM = ("shm",)


class _HaloPlane:
    """Worker-side view of the shared halo arena (one per loaded run).

    Each boundary pair ``(src, dest)`` owns a double-buffered region at
    a stable offset (``Partition.halo_layout``); a round writes slot
    ``round & 1`` and reads the peer slot of the previous round.  The
    parent's recv-all/send-all sequencing is the barrier: a worker only
    reads a region after the parent has collected the writer's report
    for that round, and the two-slot ring keeps a racing writer off the
    slot a slower reader is still consuming.  Arrays travel as raw
    bytes plus a tiny header (name, dtype, row width) — no pickling, no
    parent relay.
    """

    __slots__ = ("buf", "regions", "index", "writes")

    def __init__(self, buf, regions, index):
        self.buf = buf
        self.regions = regions
        self.index = index
        self.writes = 0

    def write_outbound(self, shard):
        """Write this round's boundary slices; returns the report's
        outbound map (shm markers, or inline payloads on overflow)."""
        arrays = shard.sync_arrays()
        slot = self.writes & 1
        self.writes += 1
        out = {}
        for dest, idx in shard.sends:
            sliced = [(name, arr[idx]) for name, arr in arrays]
            region = self.regions.get((self.index, dest))
            if region is not None and self._write(region, slot, sliced):
                out[dest] = _SHM
            else:
                out[dest] = ("pipe", sliced)
        return out

    def _write(self, region, slot, sliced):
        import struct

        offset, capacity = region
        base = offset + slot * capacity
        end = base + capacity
        buf = self.buf
        pos = base + 4
        for name, arr in sliced:
            raw = arr.tobytes()
            nm = name.encode()
            dt = arr.dtype.str.encode()
            ncols = arr.shape[1] if arr.ndim == 2 else 0
            if pos + 2 + len(nm) + len(dt) + 8 + len(raw) > end:
                return False
            buf[pos] = len(nm)
            pos += 1
            buf[pos:pos + len(nm)] = nm
            pos += len(nm)
            buf[pos] = len(dt)
            pos += 1
            buf[pos:pos + len(dt)] = dt
            pos += len(dt)
            struct.pack_into("<II", buf, pos, ncols, len(raw))
            pos += 8
            buf[pos:pos + len(raw)] = raw
            pos += len(raw)
        struct.pack_into("<I", buf, base, len(sliced))
        return True

    def read_inbound(self, src):
        """Read the ghost-state payload shard ``src`` wrote last round."""
        import struct

        np = numpy_or_none()
        offset, capacity = self.regions[(src, self.index)]
        base = offset + ((self.writes - 1) & 1) * capacity
        buf = self.buf
        (count,) = struct.unpack_from("<I", buf, base)
        pos = base + 4
        payload = []
        for _ in range(count):
            ln = buf[pos]
            pos += 1
            name = bytes(buf[pos:pos + ln]).decode()
            pos += ln
            ln = buf[pos]
            pos += 1
            dtype = np.dtype(bytes(buf[pos:pos + ln]).decode())
            pos += ln
            ncols, nbytes = struct.unpack_from("<II", buf, pos)
            pos += 8
            values = np.frombuffer(
                buf, dtype=dtype, count=nbytes // dtype.itemsize, offset=pos
            )
            pos += nbytes
            if ncols:
                values = values.reshape(-1, ncols)
            payload.append((name, values))
        return payload


def _serve_round0(shard, halo):
    if halo is None:
        return shard.round0()
    finished, results, messages = shard.kernel.start()
    finished, results = shard.owned(finished, results)
    return (finished, results, messages, None, halo.write_outbound(shard))


def _serve_round(shard, halo, inbound):
    if halo is None:
        return shard.round(inbound)
    for src, marker in inbound:
        payload = (
            halo.read_inbound(src) if marker[0] == "shm" else marker[1]
        )
        shard.apply_sync_one(src, payload)
    finished, results, messages = shard.kernel.step()
    finished, results = shard.owned(finished, results)
    return (finished, results, messages, None, halo.write_outbound(shard))


def _pool_worker(conn, arena):
    """Persistent worker loop: load a run, serve its rounds, unload.

    Spawned once per pool (fork inherits the halo arena mapping) and
    reused across runs — the per-run shard state arrives pickled with
    the ``load`` message.  Failures propagate as the worker's real
    exception; the parent poisons the pool on receipt.
    """
    import pickle

    shard = None
    halo = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            try:
                if kind == "load":
                    shard = pickle.loads(message[1])
                    halo = (
                        _HaloPlane(arena, shard.halo_regions, shard.index)
                        if message[2] and arena is not None
                        else None
                    )
                    conn.send(("ok", _serve_round0(shard, halo)))
                elif kind == "round":
                    conn.send(("ok", _serve_round(shard, halo, message[1])))
                elif kind == "undone":
                    conn.send(("ok", shard.undone()))
                elif kind == "unload":
                    shard = None
                    halo = None
            except BaseException as exc:
                try:
                    conn.send(("err", exc))
                except Exception:
                    try:
                        conn.send(("err", RuntimeError(repr(exc))))
                    except Exception:
                        pass
    except EOFError:  # parent went away; nothing left to report to
        pass
    finally:
        conn.close()


class WorkerPool:
    """Persistent sharded-run workers sharing one halo arena (D13).

    Workers are forked lazily on first use and reused across every run
    dispatched while the pool is alive — each ``(A_i ; P)`` step of an
    alternation re-dispatches to the warm pool instead of re-forking.
    The halo arena is an anonymous ``MAP_SHARED`` mmap created *before*
    the first fork, so every worker inherits the same physical pages:
    ghost-state exchange is a memory copy between processes with no
    pipe traffic, no pickling and no named-segment lifecycle to leak
    (the mapping dies with the processes).  Growing the arena respawns
    the workers (mappings cannot be resized post-fork); runs whose
    plane never fits simply pipe their halos — correctness is
    channel-independent by construction.
    """

    __slots__ = ("ctx", "workers", "arena", "arena_size", "broken")

    def __init__(self, arena_bytes=_ARENA_MIN_BYTES):
        import multiprocessing

        self.ctx = multiprocessing.get_context("fork")
        self.workers = []
        self.arena_size = max(int(arena_bytes), _ARENA_MIN_BYTES)
        self.arena = None
        self.broken = False

    def ensure_arena(self, nbytes):
        """Make the halo arena at least ``nbytes`` big."""
        if self.arena is not None and nbytes <= self.arena_size:
            return
        import mmap

        if self.arena is not None:
            self.stop_workers()
            self.arena.close()
            self.arena_size = max(nbytes, self.arena_size * 2)
        else:
            self.arena_size = max(nbytes, self.arena_size)
        self.arena = mmap.mmap(-1, self.arena_size)

    def lease(self, k):
        """``k`` live workers (forked on demand), as ``(proc, conn)``."""
        if any(not proc.is_alive() for proc, _ in self.workers):
            # A worker died while idle (OOM kill, external signal):
            # respawn the pool rather than dispatch to a corpse.
            self.stop_workers()
        if self.arena is None:
            self.ensure_arena(self.arena_size)
        while len(self.workers) < k:
            parent_conn, child_conn = self.ctx.Pipe()
            proc = self.ctx.Process(
                target=_pool_worker,
                args=(child_conn, self.arena),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.workers.append((proc, parent_conn))
        return self.workers[:k]

    def worker_pids(self):
        """Live worker pids (diagnostics and lifecycle tests)."""
        return [proc.pid for proc, _ in self.workers]

    def stop_workers(self, grace=True):
        _join_workers(
            [proc for proc, _ in self.workers],
            [conn for _, conn in self.workers],
            grace=grace,
        )
        self.workers = []

    def poison(self):
        """Tear the pool down after a worker failure; never reused.

        Gracelessly: a hung worker would stall the stop handshake for
        the full join timeout, and the pool is being discarded anyway.
        """
        self.broken = True
        self.stop_workers(grace=False)
        if self.arena is not None:
            self.arena.close()
            self.arena = None

    def shutdown(self):
        self.stop_workers()
        if self.arena is not None:
            self.arena.close()
            self.arena = None


#: Pool shared by every pooled run inside a ``pool_scope`` (see
#: :func:`repro.local.runner.use_backend`); ``None`` between scopes.
_POOL = None
#: Nesting depth of active pool scopes.
_POOL_SCOPES = 0


def active_pool():
    """The scope's shared pool, created lazily on the first pooled run."""
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool()
    return _POOL


@contextmanager
def pool_scope():
    """Context manager scoping the shared worker pool (D13).

    ``use_backend("sharded", ...)`` (and any ``mp-pooled`` scope)
    enters one: the first pooled run inside spawns the workers, every
    later run re-dispatches to them, and the *outermost* exit joins the
    pool — nested scopes share one pool and cannot leak workers.
    """
    global _POOL_SCOPES, _POOL
    _POOL_SCOPES += 1
    try:
        yield
    finally:
        _POOL_SCOPES -= 1
        if _POOL_SCOPES == 0 and _POOL is not None:
            _POOL.shutdown()
            _POOL = None


class PooledChannel:
    """Channel over the persistent pool: pickled load, shm halos.

    Protocol per run: one ``load`` per shard (the pickled shard plus
    whether the halo plane applies), then ``round``/``undone`` messages
    mirroring :class:`ProcessChannel`, then one ``unload``.  Batched
    shards exchange ghost state through the shared arena (the report
    carries a marker, not the payload); per-node shards and oversized
    payloads pipe their data exactly like the fork-per-run channel, so
    every configuration stays bit-identical across channels.  A worker
    failure raises the worker's real exception and poisons the pool —
    the next pooled run starts a fresh one.
    """

    def __init__(self, pool, workers, owns_pool):
        self.pool = pool
        self.workers = workers
        self.owns_pool = owns_pool
        self.closed = False
        self.round_no = 0

    @classmethod
    def open(cls, shards):
        """Dispatch a run to the pool, or ``None`` when the run's shard
        state cannot ship to persistent workers (unpicklable processes
        degrade to the fork-per-run channel, which inherits state)."""
        import pickle

        try:
            blobs = [
                pickle.dumps(shard, pickle.HIGHEST_PROTOCOL)
                for shard in shards
            ]
        except Exception:
            return None
        owns = _POOL_SCOPES == 0
        pool = WorkerPool() if owns else active_pool()
        use_plane = bool(shards) and all(
            isinstance(shard, BatchShard) for shard in shards
        )
        plane_total = shards[0].halo_total if use_plane else 0
        use_plane = use_plane and plane_total > 0
        try:
            if use_plane:
                pool.ensure_arena(plane_total)
            workers = pool.lease(len(shards))
            for (_, conn), blob in zip(workers, blobs):
                conn.send(("load", blob, use_plane))
        except Exception:
            # Poison even the shared scope pool: a failed dispatch may
            # leave dead or half-loaded workers behind, and the next
            # pooled run must start from a fresh pool.
            global _POOL
            if _POOL is pool:
                _POOL = None
            pool.poison()
            raise
        return cls(pool, workers, owns)

    def _poison(self):
        global _POOL
        self.closed = True
        if _POOL is self.pool:
            _POOL = None
        self.pool.poison()

    def _recv_all(self):
        return _recv_reports(
            [conn for _, conn in self.workers], self._poison, self.round_no
        )

    def _send_all(self, message_of):
        # A send-side pipe failure means a worker died between rounds;
        # poison so the scope respawns instead of re-hitting the corpse.
        for s, (_, conn) in enumerate(self.workers):
            try:
                conn.send(message_of(s))
            except (BrokenPipeError, OSError) as exc:
                self._poison()
                raise WorkerDiedError(
                    shard=s, round_no=self.round_no
                ) from exc

    def round0(self):
        return self._recv_all()

    def round(self, inbound):
        self.round_no += 1
        self._send_all(lambda s: ("round", inbound[s]))
        return self._recv_all()

    def undone(self):
        self._send_all(lambda s: ("undone",))
        return self._recv_all()

    def close(self):
        if self.closed:
            return
        self.closed = True
        for _, conn in self.workers:
            try:
                conn.send(("unload",))
            except (BrokenPipeError, OSError):
                pass
        if self.owns_pool:
            self.pool.shutdown()


def open_channel(shards, channel):
    """Build the requested channel.

    ``"mp-pooled"`` degrades to ``"mp"`` when the run's shard state is
    unpicklable (fork-per-run inherits state instead), and either
    multiprocessing channel degrades to ``"inline"`` where fork is
    unavailable — the exchange protocol is identical across all three.
    """
    if channel == "mp-pooled" and fork_available():
        chan = PooledChannel.open(shards)
        if chan is not None:
            return chan
        channel = "mp"
    if channel in ("mp", "mp-pooled") and fork_available():
        return ProcessChannel(shards)
    return InlineChannel(shards)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

class ShardedKernelLoop:
    """Per-shard kernels presented through the single-kernel interface.

    ``start`` / ``step`` / ``done`` / ``undone_indices`` match the D10
    kernel contract with *global* node indices, so existing kernel
    drivers (the engine's ledger, the virtual-domain replay) consume a
    sharded ensemble exactly as they consume one kernel.  ``close``
    releases the channel (joins the worker pool).
    """

    __slots__ = ("channel", "k", "total", "finished", "done", "_reports")

    def __init__(self, channel, k, total):
        self.channel = channel
        self.k = k
        self.total = total
        self.finished = 0
        self.done = total == 0
        self._reports = None

    def _merge(self, reports):
        self._reports = reports
        finished = []
        results = []
        messages = 0
        for report in reports:
            finished.extend(report[0])
            results.extend(report[1])
            messages += report[2]
        self.finished += len(finished)
        if self.finished >= self.total:
            self.done = True
        return finished, results, messages

    def start(self):
        return self._merge(self.channel.round0())

    def step(self):
        inbound = _route(self._reports, self.k)
        return self._merge(self.channel.round(inbound))

    def undone_indices(self):
        return [i for shard in self.channel.undone() for i in shard]

    def undone_by_shard(self):
        """Map ``shard index -> unfinished count`` (non-empty shards only)."""
        return {
            s: len(u) for s, u in enumerate(self.channel.undone()) if u
        }

    def close(self):
        self.channel.close()


def _drive_pernode(channel, k, cg, algorithm, *, cap, truncating,
                   default_output, track_bits, result_cls):
    """Parent-side ledger of a per-node sharded run.

    Field-for-field the same accounting as the compiled engine's
    per-node loop; only the stepping is distributed.
    """
    labels = cg.labels
    outputs = {}
    finish_round = {}
    messages = 0
    max_bits = 0
    undone_total = cg.n

    def absorb(reports):
        nonlocal messages, max_bits, undone_total
        for report in reports:
            finished, results, sent, bits, _ = report
            for i, value in zip(finished, results):
                label = labels[i]
                outputs[label] = value
                finish_round[label] = rounds
            undone_total -= len(finished)
            messages += sent
            if bits and bits > max_bits:
                max_bits = bits
        return reports

    rounds = 0
    reports = absorb(channel.round0())
    while undone_total:
        if rounds >= cap:
            per_shard = channel.undone()
            undone = [i for shard in per_shard for i in shard]
            if truncating:
                for i in undone:
                    label = labels[i]
                    outputs[label] = default_output
                    finish_round[label] = cap
                return result_cls(
                    outputs,
                    finish_round,
                    cap,
                    messages,
                    frozenset(labels[i] for i in undone),
                    max_bits if track_bits else None,
                )
            raise NonTerminationError(
                algorithm.name,
                cap,
                [labels[i] for i in undone],
                shard_counts={
                    s: len(u) for s, u in enumerate(per_shard) if u
                },
            )
        rounds += 1
        reports = absorb(channel.round(_route(reports, k)))
    total = max(finish_round.values()) if finish_round else 0
    return result_cls(
        outputs,
        finish_round,
        total,
        messages,
        frozenset(),
        max_bits if track_bits else None,
    )


def build_pernode_shards(cg, part, algorithm, *, inputs, guesses, seed,
                         salt, rng_mode, track_bits, faults=None):
    """Per-shard node processes + delivery tables for a per-node run."""
    make_gen = rng_source(rng_mode, seed, salt)
    if type(algorithm) is LocalAlgorithm:
        make_process = algorithm.process
    else:
        make_process = algorithm.make
    get_input = inputs.get
    labels = cg.labels
    idents = cg.idents
    degrees = cg.degrees
    pairs = cg.pairs
    shard_of = part.shard_of
    shards = []
    for s in range(part.k):
        lo, hi = part.own_range(s)
        rows = []
        for i in range(lo, hi):
            entries = []
            for vi, rp in pairs[i]:
                dest = shard_of(vi)
                if dest == s:
                    entries.append((None, vi - lo, rp))
                else:
                    entries.append((dest, vi, rp))
            rows.append(tuple(entries))
        procs = [
            make_process(
                NodeContext(
                    labels[i],
                    idents[i],
                    degrees[i],
                    get_input(labels[i]),
                    guesses,
                    None,
                    make_gen,
                    rng_mode,
                )
            )
            for i in range(lo, hi)
        ]
        shards.append(
            PerNodeShard(
                s,
                lo,
                procs,
                rows,
                track_bits,
                faults=faults,
                labels=labels if faults is not None else None,
                idents=idents if faults is not None else None,
            )
        )
    return shards


def build_batch_shards(algorithm, cg, part, *, inputs, guesses, seed, salt,
                       rng_mode, track_bits, enabled, faults=None):
    """Per-shard batch kernels, or ``None`` to step per node.

    On top of the engine's eligibility rules (D10) the algorithm must
    advertise ``supports_shard`` — the D12 certification that its
    kernel's slab reductions are owner-side, its message counts
    degree-weighted and its per-node state introspectable length-n
    arrays, which is what makes the halo exchange exact.  Under an
    active fault plan the kernel must additionally be certified
    ``supports_faulted_batch`` (D14); otherwise the run falls back to
    the always-exact per-node shards.
    """
    if not enabled or track_bits or numpy_or_none() is None or cg.n == 0:
        return None
    caps = capabilities_of(algorithm)
    if not caps.get("supports_shard"):
        return None
    if faults is not None and not caps.get("supports_faulted_batch"):
        return None

    def setup_of(bg):
        return BatchSetup(
            inputs,
            guesses,
            rng_mode,
            _engine_draw_builder(bg, rng_mode, seed, salt),
            sharded=True,
            faults=faults.batch_view(bg) if faults is not None else None,
        )

    built = make_shard_kernels(
        algorithm.batch, part, cg.labels, cg.idents, setup_of
    )
    if built is None:
        return None
    return [
        BatchShard(s, kernel, part) for s, (_bg, kernel) in enumerate(built)
    ]


def run_sharded(
    graph,
    algorithm,
    *,
    inputs,
    guesses,
    seed,
    salt,
    cap,
    truncating,
    default_output,
    track_bits,
    rng_mode,
    result_cls,
    use_batch,
    shards,
    channel,
    faults=None,
):
    """Execute one synchronous run on the partitioned engine.

    Bit-identical to :func:`repro.local.engine.run_compiled` for every
    shard count and channel (the backend equivalence contract, extended
    by D12 and, under an active fault plan, D14).  Shard counts larger
    than ``n`` clamp to one node per shard; the empty graph degenerates
    to the single-process engine.

    Resilience (D14): a run whose workers time out or die mid-round
    (:class:`~repro.errors.WorkerTimeoutError` /
    :class:`~repro.errors.WorkerDiedError`) is retried once on the
    requested channel — shards are rebuilt from scratch, so the retry
    is the same pure function of ``(graph, algorithm, seed, plan)`` —
    and then degraded to the inline channel, which has no workers to
    lose.  Real worker exceptions are not retried; they propagate
    first-failure as before.
    """
    from .engine import run_batch, run_compiled
    from .runner import note_stepping

    cg = graph.compiled()
    if cg.n == 0:
        return run_compiled(
            graph,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            cap=cap,
            truncating=truncating,
            default_output=default_output,
            track_bits=track_bits,
            rng_mode=rng_mode,
            result_cls=result_cls,
            use_batch=use_batch,
            faults=faults,
        )
    part = cg.partition(shards)

    def attempt(chan_kind):
        batch_shards = build_batch_shards(
            algorithm,
            cg,
            part,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            rng_mode=rng_mode,
            track_bits=track_bits,
            enabled=use_batch,
            faults=faults,
        )
        if batch_shards is not None:
            note_stepping("shard-batch")
            loop = ShardedKernelLoop(
                open_channel(batch_shards, chan_kind), part.k, cg.n
            )
            try:
                return run_batch(
                    loop,
                    cg,
                    algorithm,
                    cap=cap,
                    truncating=truncating,
                    default_output=default_output,
                    result_cls=result_cls,
                )
            finally:
                loop.close()
        note_stepping("shard-per-node")
        pernode = build_pernode_shards(
            cg,
            part,
            algorithm,
            inputs=inputs,
            guesses=guesses,
            seed=seed,
            salt=salt,
            rng_mode=rng_mode,
            track_bits=track_bits,
            faults=faults,
        )
        chan = open_channel(pernode, chan_kind)
        try:
            return _drive_pernode(
                chan,
                part.k,
                cg,
                algorithm,
                cap=cap,
                truncating=truncating,
                default_output=default_output,
                track_bits=track_bits,
                result_cls=result_cls,
            )
        finally:
            chan.close()

    # Retry ladder: requested channel, once more on the same channel,
    # then the workerless inline channel.  Only transport failures
    # (retryable FaultErrors) walk the ladder.
    ladder = [channel] if channel == "inline" else [channel, channel, "inline"]
    last = len(ladder) - 1
    for rung, chan_kind in enumerate(ladder):
        try:
            return attempt(chan_kind)
        except FaultError as exc:
            if not exc.retryable or rung == last:
                raise
            backoff = SHARD_RETRY_BACKOFF
            if backoff > 0:
                time.sleep(backoff)
