"""Per-node execution context.

A :class:`NodeContext` is everything a node may legally look at in the
LOCAL model before any communication: its own identity, degree, problem
input, the common guesses for global parameters (the collection Γ̃ of the
paper), and a private source of random bits.  The context deliberately
does *not* reference the graph: the only way information flows between
nodes is through messages handled by the runner, which is what makes the
simulations honest.
"""

from __future__ import annotations

import random

from ..errors import ParameterError


class NodeContext:
    """Immutable node-local view handed to a node process.

    Attributes
    ----------
    node:
        The node's label in the simulation graph (never sent to other
        nodes by the runtime; algorithms must use :attr:`ident`).
    ident:
        The unique identity ``Id(v)`` (paper Section 2).
    degree:
        Number of incident edges; ports are ``0 .. degree-1``.
    input:
        The problem input ``x(v)`` (``None`` when the problem has no
        input).
    guesses:
        Mapping from parameter name (e.g. ``"n"``, ``"Delta"``, ``"m"``,
        ``"a"``) to the common guessed value.  Uniform algorithms receive
        an empty mapping.
    rng:
        Per-node :class:`random.Random`; independent across nodes, and
        reproducible from the run seed.
    """

    __slots__ = ("node", "ident", "degree", "input", "guesses", "rng")

    def __init__(self, node, ident, degree, input, guesses, rng):
        self.node = node
        self.ident = ident
        self.degree = degree
        self.input = input
        self.guesses = guesses
        self.rng = rng

    def guess(self, name):
        """Return the guessed value of a required global parameter.

        Raises :class:`ParameterError` when the guess is missing — a
        non-uniform algorithm invoked without its parameters is a
        programming error, not a silent fallback.
        """
        try:
            return self.guesses[name]
        except KeyError:
            raise ParameterError(
                f"algorithm requires a guess for parameter {name!r}; "
                f"provided guesses: {sorted(self.guesses)}"
            ) from None

    def __repr__(self):
        return (
            f"NodeContext(ident={self.ident}, degree={self.degree}, "
            f"guesses={self.guesses})"
        )


def make_rng(seed, salt, ident):
    """Derive a per-node RNG from the run seed, a salt and the identity.

    Different nodes get independent streams; re-running with the same
    seed reproduces the execution exactly (needed both for debugging and
    for the deterministic-given-IDs algorithms).  String seed material is
    hashed by :class:`random.Random` with SHA-512, which is stable across
    processes (unlike built-in ``hash``).
    """
    return random.Random(f"{seed!r}|{salt!r}|{ident!r}")
