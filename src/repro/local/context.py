"""Per-node execution context.

A :class:`NodeContext` is everything a node may legally look at in the
LOCAL model before any communication: its own identity, degree, problem
input, the common guesses for global parameters (the collection Γ̃ of the
paper), and a private source of random bits.  The context deliberately
does *not* reference the graph: the only way information flows between
nodes is through messages handled by the runner, which is what makes the
simulations honest.

Random sources
--------------
Two per-node derivation schemes exist (DESIGN.md, deviation D9):

* ``"mt"`` — the seed repository's scheme: a :class:`random.Random`
  (Mersenne Twister) seeded from ``f"{seed!r}|{salt!r}|{ident!r}"``.
  SHA-512-based seeding is stable across processes but costs ~7µs per
  node, which dominates run setup at n in the thousands.
* ``"counter"`` — a splitmix64 counter generator
  (:class:`CounterRNG`) keyed by a per-run SHA-512 digest mixed with the
  node identity.  Construction is ~50ns; streams are independent across
  nodes and reproducible across processes.  This is the compiled
  engine's default and is in the same spirit as the paper's
  deterministic-given-IDs derandomization (``hash_luby``).

Both schemes give bit-identical executions across the reference and
compiled runner backends — the equivalence suite pins the scheme when
comparing backends.

Contexts may be constructed with an eager generator (``rng=...``) or a
lazy factory (``rng_factory=...``); the factory is only invoked the
first time ``ctx.rng`` is touched, so deterministic algorithms never pay
for generator construction.
"""

from __future__ import annotations

import hashlib
import random

from ..errors import ParameterError

_MASK64 = (1 << 64) - 1
#: splitmix64 increment (Steele, Lea & Flood 2014).
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
#: odd multiplier decorrelating node identities from the run key.
_IDENT_MIX = 0xD1342543DE82EF95


class CounterRNG:
    """Counter-based per-node random source (splitmix64).

    Implements the subset of the :class:`random.Random` API the
    simulation layer uses (``getrandbits``, ``random``, ``randrange``,
    ``randint``).  Anything fancier should derive a full
    :class:`random.Random` from ``getrandbits(64)`` explicitly, keeping
    the dependency visible.
    """

    __slots__ = ("_state",)

    def __init__(self, key):
        self._state = key & _MASK64

    def _next64(self):
        # Weyl sequence + single-multiply finalizer (murmur3's fmix64
        # constant).  One multiply instead of splitmix64's two — ~30%
        # cheaper in pure Python, and ample mixing for experiment-grade
        # priorities and coin flips (the streams are not cryptographic).
        self._state = s = (self._state + _SPLITMIX_GAMMA) & _MASK64
        z = ((s ^ (s >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
        return z ^ (z >> 33)

    def getrandbits(self, k):
        if 0 < k <= 64:
            # Inline _next64 — the hot path for priority draws.
            self._state = s = (self._state + _SPLITMIX_GAMMA) & _MASK64
            z = ((s ^ (s >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
            return (z ^ (z >> 33)) >> (64 - k)
        if k <= 0:
            raise ValueError("number of bits must be greater than zero")
        out = 0
        filled = 0
        while filled < k:
            out = (out << 64) | self._next64()
            filled += 64
        return out >> (filled - k)

    def random(self):
        # 53 explicit mantissa bits, like CPython's Random.random(), so
        # the result is always in [0, 1) — dividing a raw 64-bit draw by
        # 2**64 can round up to exactly 1.0.
        return (self._next64() >> 11) * 1.1102230246251565e-16

    def randrange(self, start, stop=None):
        if stop is None:
            start, stop = 0, start
        width = stop - start
        if width <= 0:
            raise ValueError(f"empty range for randrange({start}, {stop})")
        return start + self._rand_below(width)

    def randint(self, a, b):
        return self.randrange(a, b + 1)

    def _rand_below(self, n):
        # Rejection sampling for an unbiased integer in [0, n).
        k = n.bit_length()
        r = self.getrandbits(k)
        while r >= n:
            r = self.getrandbits(k)
        return r

    @classmethod
    def random_batch(cls, keys, draw, bits=62):
        """Vectorized draws across many streams (the batch-kernel view).

        Element ``j`` of the result is exactly what the ``draw``-th
        ``getrandbits(bits)`` call returns on ``CounterRNG(keys[j])``
        (``draw`` is 1-based).  The closed form exists because the state
        is a Weyl sequence: the ``t``-th state is ``key + t*gamma`` and
        the output a pure finalizer of it, so whole frontiers of draws
        vectorize without materializing per-node generator objects.
        Bit-for-bit agreement with the scalar path is pinned by
        ``tests/test_batch_kernels.py``.
        """
        from .batch import numpy_or_none

        np = numpy_or_none()
        if np is None:
            raise ParameterError("CounterRNG.random_batch requires numpy")
        if not 0 < bits <= 64:
            raise ValueError("batch draws support 1..64 bits per draw")
        if draw < 1:
            raise ValueError("draw indices are 1-based")
        keys = np.asarray(keys, dtype=np.uint64)
        s = keys + np.uint64((draw * _SPLITMIX_GAMMA) & _MASK64)
        # Same finalizer as _next64 (murmur3 fmix64 constant); uint64
        # arithmetic wraps exactly like the scalar's explicit masking.
        z = (s ^ (s >> np.uint64(33))) * np.uint64(0xFF51AFD7ED558CCD)
        z ^= z >> np.uint64(33)
        return z >> np.uint64(64 - bits)


def make_rng(seed, salt, ident):
    """Derive a per-node RNG from the run seed, a salt and the identity.

    Different nodes get independent streams; re-running with the same
    seed reproduces the execution exactly (needed both for debugging and
    for the deterministic-given-IDs algorithms).  String seed material is
    hashed by :class:`random.Random` with SHA-512, which is stable across
    processes (unlike built-in ``hash``).  This is the ``"mt"`` scheme.
    """
    return random.Random(f"{seed!r}|{salt!r}|{ident!r}")


#: ``"{seed!r}|{salt!r}"`` -> 64-bit key.  The digest is a pure function
#: of the material, so the memo can never go stale; the bound guards
#: pathological seed churn (cleared wholesale — refilling is cheap).
_RUN_KEY_CACHE = {}
_RUN_KEY_CACHE_MAX = 4096


def run_key(seed, salt):
    """64-bit per-run key for the ``"counter"`` scheme (SHA-512 based).

    Memoized by digest material: a long-lived session
    (:mod:`repro.local.service`, D18) re-derives the key for the same
    ``(seed, salt)`` on every rerun, and alternation steps re-derive it
    per phase salt — one SHA-512 per *distinct* run key is enough.
    """
    material = f"{seed!r}|{salt!r}"
    key = _RUN_KEY_CACHE.get(material)
    if key is None:
        if len(_RUN_KEY_CACHE) >= _RUN_KEY_CACHE_MAX:
            _RUN_KEY_CACHE.clear()
        digest = hashlib.sha512(material.encode()).digest()
        key = _RUN_KEY_CACHE[material] = int.from_bytes(digest[:8], "big")
    return key


def counter_rng(key, ident):
    """Per-node :class:`CounterRNG` from a run key and a node identity."""
    return CounterRNG(key ^ ((ident * _IDENT_MIX) & _MASK64))


class _MtSource:
    """Picklable ``ident -> random.Random`` factory (the mt scheme)."""

    __slots__ = ("seed", "salt")

    def __init__(self, seed, salt):
        self.seed = seed
        self.salt = salt

    def __call__(self, ident):
        return make_rng(self.seed, self.salt, ident)


class _CounterSource:
    """Picklable ``ident -> CounterRNG`` factory (the counter scheme)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __call__(self, ident):
        return counter_rng(self.key, ident)


def rng_source(mode, seed, salt):
    """Return ``ident -> generator`` for a named derivation scheme.

    The returned callable is also a valid lazy ``rng_factory`` for
    :class:`NodeContext` — one shared instance serves every node of a
    run.  Both sources are plain picklable objects (not closures) so
    per-node shard state can ship to the persistent worker pool (D13).
    """
    if mode == "mt":
        return _MtSource(seed, salt)
    if mode == "counter":
        return _CounterSource(run_key(seed, salt))
    raise ParameterError(f"unknown rng scheme {mode!r} (use 'mt' or 'counter')")


def sub_rng(mode, base, ident):
    """Derive a hosted virtual node's RNG from a host-drawn 64-bit base.

    Used by the virtual-node layer: the host draws ``base`` once from its
    own source, each hosted virtual node gets an independent stream.
    Matches the host's derivation scheme so that reference and compiled
    host processes remain bit-identical under a pinned scheme.
    """
    if mode == "counter":
        return counter_rng(base, ident)
    return random.Random(f"{base}|virt|{ident}")


class NodeContext:
    """Immutable node-local view handed to a node process.

    Attributes
    ----------
    node:
        The node's label in the simulation graph (never sent to other
        nodes by the runtime; algorithms must use :attr:`ident`).
    ident:
        The unique identity ``Id(v)`` (paper Section 2).
    degree:
        Number of incident edges; ports are ``0 .. degree-1``.
    input:
        The problem input ``x(v)`` (``None`` when the problem has no
        input).
    guesses:
        Mapping from parameter name (e.g. ``"n"``, ``"Delta"``, ``"m"``,
        ``"a"``) to the common guessed value.  Uniform algorithms receive
        an empty mapping.
    rng:
        Per-node random source; independent across nodes, and
        reproducible from the run seed.  Materialized lazily when the
        context was built with ``rng_factory`` (a callable receiving the
        node identity, so one shared factory serves a whole run).
    rng_mode:
        Name of the derivation scheme (``"mt"`` or ``"counter"``) so
        nested layers (virtual hosts, chains) can derive sub-streams
        consistently.
    """

    __slots__ = (
        "node",
        "ident",
        "degree",
        "input",
        "guesses",
        "rng_mode",
        "_rng",
        "_rng_factory",
    )

    def __init__(
        self,
        node,
        ident,
        degree,
        input,
        guesses,
        rng=None,
        rng_factory=None,
        rng_mode="mt",
    ):
        self.node = node
        self.ident = ident
        self.degree = degree
        self.input = input
        self.guesses = guesses
        self.rng_mode = rng_mode
        self._rng = rng
        self._rng_factory = rng_factory

    @property
    def rng(self):
        source = self._rng
        if source is None:
            factory = self._rng_factory
            if factory is None:
                raise ParameterError("NodeContext built without a random source")
            source = self._rng = factory(self.ident)
        return source

    def guess(self, name):
        """Return the guessed value of a required global parameter.

        Raises :class:`ParameterError` when the guess is missing — a
        non-uniform algorithm invoked without its parameters is a
        programming error, not a silent fallback.
        """
        try:
            return self.guesses[name]
        except KeyError:
            raise ParameterError(
                f"algorithm requires a guess for parameter {name!r}; "
                f"provided guesses: {sorted(self.guesses)}"
            ) from None

    def __repr__(self):
        return (
            f"NodeContext(ident={self.ident}, degree={self.degree}, "
            f"guesses={self.guesses})"
        )
