"""Sequential composition ``A1;A2`` of LOCAL algorithms (Observation 2.1).

The paper composes algorithms by letting each node start ``A2`` the moment
it locally terminates ``A1``; correctness for algorithms designed for
simultaneous wake-up is recovered with the α synchronizer, and the running
time of ``A1;A2`` is at most the sum of the individual running times.

:class:`Chain` packages this construction as a single
:class:`~repro.local.algorithm.LocalAlgorithm`: every node runs the stage
machine, exchanging *envelopes* that piggyback (a) the node's progress
counter ``(stage, steps-done)`` and (b) the payloads of the sub-steps it
executed this round.  A node executes local step ``i`` of stage ``s`` only
once every neighbour's progress reaches ``(s, i-1)``, which is exactly the
α-synchronizer rule; a node that terminates a stage during step ``k``
jumps to the next stage immediately (its progress then dominates every
step of the finished stage, so neighbours never wait for messages that
will not come).

Local computation is free in the LOCAL model, so a node finishing stage
``s`` performs the next stage's wake-up computation within the same round;
this gives the exact ``t1 + t2`` bound of Observation 2.1.
"""

from __future__ import annotations

import random

from .algorithm import LocalAlgorithm, NodeProcess
from .context import NodeContext


def default_carry(stage_index, original_input, previous_outputs):
    """Default input threading: ``(original, tuple of previous outputs)``."""
    if stage_index == 0:
        return original_input
    return (original_input, tuple(previous_outputs))


class _ChainProcess(NodeProcess):
    __slots__ = (
        "stages",
        "carry",
        "stage_index",
        "steps_done",
        "sub",
        "sub_outputs",
        "neighbor_progress",
        "buffers",
        "progress_dirty",
    )

    def __init__(self, ctx, stages, carry):
        super().__init__(ctx)
        self.stages = stages
        self.carry = carry
        self.stage_index = 0
        self.steps_done = -1
        self.sub = None
        self.sub_outputs = []
        # Progress of each neighbour as of the latest envelope; a missing
        # port means "no news yet", i.e. progress (0, -1).
        self.neighbor_progress = {}
        # buffers[(stage, step)][port] = payload
        self.buffers = {}
        self.progress_dirty = True

    # -- helpers --------------------------------------------------------
    def _sub_ctx(self):
        stage = self.stage_index
        ctx = self.ctx
        # Stage RNGs are derived from the identity alone (stable across
        # backends); built lazily so deterministic stages never pay for
        # generator construction.
        return NodeContext(
            node=ctx.node,
            ident=ctx.ident,
            degree=ctx.degree,
            input=self.carry(stage, ctx.input, self.sub_outputs),
            guesses=ctx.guesses,
            rng_factory=lambda ident: random.Random(f"{ident}|chain-stage|{stage}"),
            rng_mode=ctx.rng_mode,
        )

    def _progress(self):
        return (self.stage_index, self.steps_done)

    def _spawn_entries(self, entries):
        """Run as many sub-steps as the synchronizer allows this round.

        ``entries`` accumulates ``(stage, step, outgoing-spec)`` tuples for
        the envelope.  Stage wake-ups (step 0) never wait; subsequent
        steps require every neighbour to have completed the previous step
        of the same stage, where progress is compared lexicographically so
        neighbours already past the stage dominate.
        """
        while self.stage_index < len(self.stages):
            if self.sub is None:
                self.sub = self.stages[self.stage_index].make(self._sub_ctx())
                outgoing = self.sub.start()
                self.steps_done = 0
                entries.append((self.stage_index, 0, outgoing))
                self.progress_dirty = True
            else:
                next_step = self.steps_done + 1
                needed = (self.stage_index, next_step - 1)
                for port in range(self.ctx.degree):
                    progress = self.neighbor_progress.get(port, (0, -1))
                    if progress < needed:
                        return
                inbox = self.buffers.pop(
                    (self.stage_index, next_step - 1), {}
                )
                outgoing = self.sub.receive(inbox)
                self.steps_done = next_step
                entries.append((self.stage_index, next_step, outgoing))
                self.progress_dirty = True
            if self.sub.done:
                self.sub_outputs.append(self.sub.result)
                self.sub = None
                self.stage_index += 1
                self.steps_done = -1
                continue
            return
        # All stages finished.
        self.finish(tuple(self.sub_outputs))

    def _envelope(self, entries):
        """Targeted per-port envelopes with progress + addressed payloads."""
        from .message import Broadcast

        progress = (
            (len(self.stages), 0) if self.done else self._progress()
        )
        per_port = {}
        for port in range(self.ctx.degree):
            addressed = []
            for stage, step, outgoing in entries:
                if outgoing is None:
                    continue
                if isinstance(outgoing, Broadcast):
                    addressed.append((stage, step, outgoing.payload))
                elif port in outgoing:
                    addressed.append((stage, step, outgoing[port]))
            per_port[port] = ("env", progress, tuple(addressed))
        if not per_port:
            return None
        return per_port

    # -- NodeProcess API --------------------------------------------------
    def start(self):
        entries = []
        self._spawn_entries(entries)
        return self._envelope(entries)

    def receive(self, inbox):
        for port, message in inbox.items():
            if not (isinstance(message, tuple) and message and message[0] == "env"):
                continue
            _, progress, addressed = message
            self.neighbor_progress[port] = progress
            for stage, step, payload in addressed:
                self.buffers.setdefault((stage, step), {})[port] = payload
        entries = []
        self._spawn_entries(entries)
        return self._envelope(entries)


class Chain(LocalAlgorithm):
    """``A1;A2;...;Ak`` as a single LOCAL algorithm.

    The chain's output at a node is the tuple of all stage outputs; use
    ``result[-1]`` for the final stage's output.  Stage ``k`` receives as
    input ``carry(k, original_input, outputs_so_far)``.
    """

    def __init__(self, stages, *, name=None, carry=default_carry):
        stages = tuple(stages)
        if not stages:
            raise ValueError("Chain requires at least one stage")
        requires = []
        for stage in stages:
            for param in stage.requires:
                if param not in requires:
                    requires.append(param)
        super().__init__(
            name=name or ";".join(stage.name for stage in stages),
            process=lambda ctx: _ChainProcess(ctx, stages, carry),
            requires=tuple(requires),
            randomized=any(stage.randomized for stage in stages),
        )
        self.stages = stages
