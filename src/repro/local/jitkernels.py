"""Optional numba-JIT inner loops for the round-fused tier (D17).

The round-fused drivers (:mod:`repro.local.roundfuse`) already remove
the per-round interpreter floor; this module optionally removes the
per-round *numpy* floor too, by compiling the two or three hottest
inner loops — the H-partition peeling recurrence, the bitwise ruling
cascade and the ``P_(2,β)`` pruner flood — to native code via numba.

The discipline is strictly additive and bit-identical:

* numba is **never required**.  When it is not importable (the default
  container has no numba) every accessor below returns ``None`` and the
  pure-numpy fused loops run instead — same results bit for bit, the
  property CI checks from both sides (a numba-free leg and a
  with-numba leg).
* the tier is **opt-in**: ``backend="jit"`` or ``REPRO_JIT=1`` request
  it; without the request :func:`active` is false and the accessors
  return ``None`` even with numba installed.
* every compiled loop is integer/boolean arithmetic over the CSR slabs
  — no floating point, so "compiled" and "interpreted" cannot diverge.

Loops compile lazily on first use (``cache=True`` so repeated processes
reuse numba's on-disk cache) and fall back to ``None`` if compilation
itself fails for any reason.
"""

from __future__ import annotations

try:  # pragma: no cover - the default container has no numba
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

_COMPILED = {}


def available():
    """True when numba is importable (the JIT tier *can* run)."""
    return _numba is not None


def active():
    """True when numba is importable *and* the run requests the tier."""
    if _numba is None:
        return False
    from .runner import use_jit_now

    return use_jit_now()


def _compile(name, py_impl):  # pragma: no cover - needs numba
    fn = _COMPILED.get(name)
    if fn is None:
        try:
            fn = _numba.njit(cache=True)(py_impl)
        except Exception:
            fn = False
        _COMPILED[name] = fn
    return fn or None


def _peel_impl(offsets, neigh, degrees, cls, threshold, phases):
    n = cls.shape[0]
    for r in range(1, phases + 1):
        fresh = 0
        for v in range(n):
            if cls[v] != 0:
                continue
            peeled = 0
            for e in range(offsets[v], offsets[v + 1]):
                w = neigh[e]
                if cls[w] != 0 and cls[w] < r:
                    peeled += 1
            if degrees[v] - peeled <= threshold:
                cls[v] = r
                fresh += 1
        if fresh == 0:
            break
    return cls


def _bitwise_impl(offsets, neigh, colmat, cand):
    n = cand.shape[0]
    bits = colmat.shape[1]
    prev = cand.copy()
    for r in range(bits):
        for v in range(n):
            if not cand[v] or not colmat[v, r]:
                continue
            for e in range(offsets[v], offsets[v + 1]):
                w = neigh[e]
                if prev[w] and not colmat[w, r]:
                    cand[v] = False
                    break
        for v in range(n):
            prev[v] = cand[v]
    return cand


def _flood_impl(offsets, neigh, center, beta):
    n = center.shape[0]
    near = center & ~center  # all-False, same shape/dtype
    prev = center.copy()  # prev_flag = center | near (near starts empty)
    for _ in range(beta):
        changed = False
        for v in range(n):
            if near[v]:
                continue
            for e in range(offsets[v], offsets[v + 1]):
                if prev[neigh[e]]:
                    near[v] = True
                    changed = True
                    break
        if not changed:
            break
        for v in range(n):
            prev[v] = center[v] or near[v]
    return near


def peeling_loop():
    """``(offsets, neigh, degrees, cls, threshold, phases) -> cls``.

    In-place H-partition peeling to fixed point.  ``cls[w] < r`` encodes
    "peeled *before* round r" — the recurrence only ever reads the
    previous round's peel set, matching the numpy loop's
    ``prev_peeled`` exactly.
    """
    if not active():
        return None
    return _compile("peel", _peel_impl)  # pragma: no cover - needs numba


def bitwise_loop():
    """``(offsets, neigh, colmat, cand) -> cand`` (in place).

    MSB→LSB candidate filtering over the precomputed (n, bits) bit
    matrix; ``prev`` holds the previous round's candidates, matching
    the numpy cascade.
    """
    if not active():
        return None
    return _compile("bitwise", _bitwise_impl)  # pragma: no cover


def flood_loop():
    """``(offsets, neigh, center, beta) -> center_near``.

    The ``P_(2,β)`` outward flood with the same fixed-point early exit
    as the numpy loop: a round that marks nothing new makes every later
    round identical.  ``prev`` snapshots ``center | near`` *between*
    sweeps, so the flood advances exactly one hop per round — the same
    ``prev_flag`` discipline as the kernel's per-round step.
    """
    if not active():
        return None
    return _compile("flood", _flood_impl)  # pragma: no cover
