"""Non-decreasing graph-parameter descriptors (paper Section 2).

A parameter maps instances to positive integers and must be
non-decreasing under taking sub-instances for the pruning machinery to
be monotone (Observation 3.1).  The four the paper uses — and this
library standardizes on — are ``n``, ``Delta``, ``m`` and ``a``; their
names are the keys used in guess dictionaries, declared bounds and
``LocalAlgorithm.requires`` throughout.
"""

from __future__ import annotations

from ..graphs.params import density_arboricity


class Parameter:
    """A named, non-decreasing graph parameter."""

    __slots__ = ("name", "description", "_compute")

    def __init__(self, name, description, compute):
        self.name = name
        self.description = description
        self._compute = compute

    def compute(self, sim_graph):
        """Exact value on a :class:`~repro.local.graph.SimGraph`."""
        return self._compute(sim_graph)

    def __repr__(self):
        return f"Parameter({self.name})"


def _arboricity(sim_graph):
    return density_arboricity(sim_graph.to_networkx())


PARAMETERS = {
    "n": Parameter("n", "number of nodes", lambda g: g.n),
    "Delta": Parameter("Delta", "maximum degree", lambda g: g.max_degree),
    "m": Parameter("m", "largest identity", lambda g: g.max_ident),
    "a": Parameter("a", "density arboricity", _arboricity),
}


def actual_parameters(sim_graph, names):
    """The collection Γ*(G, x) of correct values for the named parameters."""
    return {name: PARAMETERS[name].compute(sim_graph) for name in names}
