"""Parameter descriptors and standard weak-domination witnesses."""

from .parameters import PARAMETERS, Parameter, actual_parameters
from .domination import (
    A_DOMINATED_BY_N,
    DELTA_DOMINATED_BY_N,
    M_DOMINATED_BY_N,
    standard_witnesses,
)

__all__ = [
    "A_DOMINATED_BY_N",
    "DELTA_DOMINATED_BY_N",
    "M_DOMINATED_BY_N",
    "PARAMETERS",
    "Parameter",
    "actual_parameters",
    "standard_witnesses",
]
