"""Standard weak-domination witnesses (paper Section 2 and Theorem 3).

``Γ`` is weakly-dominated by ``Λ`` when each parameter of ``Γ \\ Λ`` has
an ascending function bounding it by some Λ-parameter on every instance.
The witnesses below hold under the library's instance conventions:

* ``a ≤ n`` and ``Δ ≤ n`` — always (paper's own example);
* ``m ≤ n³`` — the poly(n) identity-space assumption (DESIGN.md D8),
  witnessed by ``g(m) = ⌈m^{1/3}⌉ ≤ n`` so the derived guess is
  ``m̃ = ñ³``.
"""

from __future__ import annotations

from ..core.weak_domination import DominationWitness

#: a ≼ n with the identity witness (a(G) ≤ n(G) always).
A_DOMINATED_BY_N = DominationWitness("a", "n")

#: Δ ≼ n with the identity witness (Δ(G) ≤ n(G) always).
DELTA_DOMINATED_BY_N = DominationWitness("Delta", "n")


def _cube_root(x):
    # ascending g with g(m) ≤ n whenever m ≤ n³
    r = round(x ** (1.0 / 3.0))
    while r**3 > x:
        r -= 1
    while (r + 1) ** 3 <= x:
        r += 1
    return max(1, r)


#: m ≼ n via the D8 assumption m ≤ n³ (derived guess m̃ = ñ³).
M_DOMINATED_BY_N = DominationWitness("m", "n", g=_cube_root)


def standard_witnesses(gamma, lam):
    """Witnesses covering ``gamma \\ lam`` using the standard relations."""
    catalogue = {
        "a": A_DOMINATED_BY_N,
        "Delta": DELTA_DOMINATED_BY_N,
        "m": M_DOMINATED_BY_N,
    }
    missing = [p for p in gamma if p not in lam]
    witnesses = []
    for p in missing:
        if p not in catalogue:
            raise KeyError(f"no standard witness for parameter {p!r}")
        if "n" not in lam:
            raise KeyError("standard witnesses dominate through n")
        witnesses.append(catalogue[p])
    return witnesses
