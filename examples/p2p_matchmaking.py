"""Peer-to-peer matchmaking via uniform maximal matching.

Scenario: nodes of an overlay network pair up for mutual backup — each
node replicates to exactly one partner, and nobody stays single while a
neighbour is also single (maximality).  Overlays grow and shrink; no
peer knows the current size, so the paper's uniform MM (Table 1 row 8,
Corollary 1(vi)) is the right tool.

Also shown: the pruning view of partial progress.  A truncated run of
the black box leaves a half-finished pairing; P_MM (Observation 3.3)
certifies exactly the pairs (plus fully-saturated singles) that can
never need repair, and the alternation finishes the rest.

Run:  python examples/p2p_matchmaking.py
"""

from repro.algorithms import TABLE1
from repro.bench import build_graph
from repro.core import MatchingPruning
from repro.core.domain import PhysicalDomain
from repro.graphs import families
from repro.problems import MAXIMAL_MATCHING, matched_pairs


def main():
    overlay = build_graph(families.gnp_avg_degree(180, 5.0, seed=17), seed=3)
    print(f"overlay: n={overlay.n}, links={overlay.edge_count()}, "
          f"Δ={overlay.max_degree}\n")

    row = TABLE1["matching"]
    nonuniform, _, uniform = row.build()

    result = uniform.run(overlay, seed=9)
    MAXIMAL_MATCHING.assert_solution(overlay, {}, result.outputs)
    pairs = matched_pairs(overlay, result.outputs)
    singles = overlay.n - 2 * len(pairs)
    print(
        f"uniform matching: {len(pairs)} backup pairs, {singles} "
        f"saturated singles, {result.rounds} rounds, zero configuration"
    )

    # Anatomy: truncate the black box early and watch the pruner certify
    # partial progress (the mechanism behind Observation 3.4).
    domain = PhysicalDomain(overlay)
    guesses = {"Delta": overlay.max_degree, "m": overlay.max_ident}
    tentative, _ = nonuniform.algorithm.run_restricted(
        domain,
        60,  # far below the declared bound: a half-finished pairing
        inputs=None,
        guesses=guesses,
        seed=9,
        salt="demo",
        default_output=0,
    )
    prune = MatchingPruning().apply(domain, {}, tentative)
    print(
        f"\ntruncated box (60 rounds): pruner certifies "
        f"{len(prune.pruned)}/{overlay.n} nodes as done; the remaining "
        f"{overlay.n - len(prune.pruned)} re-enter the next iteration — "
        "progress never regresses."
    )


if __name__ == "__main__":
    main()
