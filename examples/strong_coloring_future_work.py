"""Section 6.3, realized: uniform coloring with forbidden lists.

The paper ends by admitting that plain g(Δ)-coloring resists pruning —
a pruned node's color may block any solution of the remainder — and
proposes *strong coloring with forbidden lists* as the fix.  This
example runs the construction this library built from that paragraph:

1. nodes carry forbidden sets F(v) with the capacity invariant
   |F(v)| + deg(v) + 1 ≤ g;
2. the pruner freezes safe colors and adds them to the neighbours'
   forbidden sets (gluing restored);
3. Theorem 1 turns the non-uniform box into a uniform strong-coloring
   algorithm.

Scenario: TV white-space assignment where some channels are *locally*
pre-forbidden (licensed incumbents differ per node).

Run:  python examples/strong_coloring_future_work.py
"""

import random

from repro.algorithms.forbidden_coloring import (
    ForbiddenPruning,
    forbidden_coloring_nonuniform,
)
from repro.bench import build_graph
from repro.core import theorem1
from repro.graphs import families
from repro.problems import STRONG_COLORING, ForbiddenInput


def main():
    mesh = build_graph(families.unit_disk(180, 0.13, seed=31), seed=6)
    rng = random.Random(99)
    g = mesh.max_degree + 4  # leaves slack for local incumbents
    inputs = {}
    for u in mesh.nodes:
        slack = g - mesh.degree(u) - 1
        incumbents = rng.sample(range(1, g + 1), rng.randint(0, min(2, slack)))
        inputs[u] = ForbiddenInput(g, incumbents)
    blocked = sum(len(x.forbidden) for x in inputs.values())
    print(
        f"mesh: n={mesh.n}, Δ={mesh.max_degree}, palette g={g}, "
        f"{blocked} locally licensed channels blocked\n"
    )

    uniform = theorem1(forbidden_coloring_nonuniform(), ForbiddenPruning())
    result = uniform.run(mesh, inputs=inputs, seed=8)
    STRONG_COLORING.assert_solution(mesh, inputs, result.outputs)
    used = len(set(result.outputs.values()))
    print(
        f"uniform strong coloring: {used} channels used of {g}, "
        f"{result.rounds} rounds, {len(result.steps)} alternating steps — "
        "every node respected its local forbidden set, and no node knew "
        "n, Δ or m."
    )
    print(
        "\n(the paper's §6.3 proposed exactly this problem to make "
        "coloring prunable;\nthe pruner here adds frozen colors to "
        "neighbours' forbidden sets, which is what\nrestores the gluing "
        "property plain coloring lacks.)"
    )


if __name__ == "__main__":
    main()
