"""Quickstart: make a non-uniform algorithm uniform in ~20 lines.

The paper's pitch in miniature: you have a distributed MIS algorithm
whose *code needs an upper bound on n* (here: Luby's algorithm truncated
after O(log ñ) phases).  Wrap it with a pruning algorithm and Theorem 2,
and you get an algorithm no node of which needs to know anything about
the network — at the same asymptotic round cost, with certain
correctness.

Run:  python examples/quickstart.py
"""

from repro.algorithms.luby import luby_mc_nonuniform
from repro.bench import build_graph
from repro.core import mis_pruning, render_trace, theorem2
from repro.graphs import families
from repro.local import use_backend
from repro.problems import MIS


def main():
    # A 200-node communication network; nodes carry unique ids but have
    # no idea how large the network is.
    network = build_graph(families.gnp_avg_degree(200, 7.0, seed=42), seed=1)
    print(f"network: n={network.n}, m={network.edge_count()}, "
          f"Δ={network.max_degree}")

    # The non-uniform ingredient: truncated Luby — a weak Monte-Carlo
    # MIS whose code consumes a guess ñ (paper Table 1, last rows).
    box = luby_mc_nonuniform()
    print(f"black box: {box.name}, requires Γ = {box.algorithm.requires}, "
          f"declared bound f(ñ=200) = {box.bound.rounds({'n': 200})} rounds")

    # The paper's machinery: a 2-round pruning algorithm for MIS
    # (Observation 3.2) + Theorem 2 = a uniform Las Vegas algorithm.
    uniform = theorem2(box, mis_pruning())
    print(f"uniform algorithm: {uniform.name}, requires Γ = "
          f"{uniform.requires or '∅ — nothing!'}")

    result = uniform.run(network, seed=7)
    MIS.assert_solution(network, {}, result.outputs, context="quickstart")
    chosen = sum(1 for v in result.outputs.values() if v == 1)
    print(f"\nvalid MIS with {chosen} nodes in {result.rounds} rounds "
          f"({len(result.steps)} alternating steps)\n")
    print(render_trace(result))

    # The same pipeline scales out unchanged: shard the round loop and
    # dispatch every alternation step to a persistent worker pool with
    # shared-memory halo exchange (DESIGN.md D12/D13).  The backend
    # equivalence contract makes the outcome bit-identical to the
    # single-process run for every shard count and channel.
    with use_backend("sharded", shards=2, shard_channel="mp-pooled"):
        sharded = theorem2(luby_mc_nonuniform(), mis_pruning()).run(
            network, seed=7
        )
    assert sharded.outputs == result.outputs
    assert sharded.rounds == result.rounds
    print("\nsharded(k=2, mp-pooled) reproduced the run bit-identically")


if __name__ == "__main__":
    main()
