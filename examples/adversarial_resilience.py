"""Adversarial resilience: deterministic faults, measurable degradation.

Scenario: the sensor field again, but honest about the hardware — some
radios drop packets, some nodes are dead on arrival, some die mid-
protocol.  Two questions matter before flashing firmware:

1. *What does the algorithm's answer degrade into?*  Fault injection
   (DESIGN.md, D14) makes misbehaviour a first-class, reproducible
   input: a ``FaultPlan`` assigns per-node profiles (``crash_at``,
   ``byzantine_silent``, ``drop(p)``, ``garble(p)``) and every fate is
   drawn from the identity-keyed counter RNG — the injected run is a
   pure function of ``(graph, algo, seed, plan)``, bit-identical on
   every backend.  So a fault study debugged on the reference loop is
   *the same experiment* on the batch kernels or the sharded engine.

2. *What if the simulation machinery itself fails?*  The mp shard
   channels survive real faults too (DESIGN.md, D15): the parent keeps
   a round-level checkpoint of every shard, so a killed or hung worker
   is respawned alone and resumed from the last checkpoint — a dead
   worker costs one round, not the run, and the recovered output is
   bit-identical to the honest one.  Section 4 below SIGKILLs a live
   worker mid-run to show it.

Run:  python examples/adversarial_resilience.py
"""

import multiprocessing
import os
import signal
import threading
import time
import warnings

from repro.algorithms import TABLE1
from repro.algorithms.luby import luby_mis
from repro.bench import build_graph
from repro.core.alternating import AlternationDiverged
from repro.errors import ResilienceWarning
from repro.graphs import families
from repro.local import run, sample_plan, use_backend, use_faults
from repro.local.faults import crash_at, drop
from repro.local.sharded import fork_available

SEED = 11


def violations(network, outputs):
    """(independence, maximality) violation counts of an MIS guess."""
    indep = maximal = 0
    for u in network.nodes:
        if outputs.get(u) == 1:
            for _, v, _ in network.adj[u]:
                if outputs.get(v) == 1 and network.ident[u] < network.ident[v]:
                    indep += 1
        elif not any(outputs.get(v) == 1 for _, v, _ in network.adj[u]):
            maximal += 1
    return indep, maximal


def main():
    network = build_graph(families.unit_disk(300, 0.09, seed=3), seed=SEED)
    flaky = sample_plan(network, drop(0.5), 0.15, seed=7)
    print(
        f"field: n={network.n} Δ={network.max_degree}; "
        f"plan: {flaky.describe()} (15% of radios drop half their sends)"
    )

    # 1. The same adversarial experiment on every backend, bit for bit.
    configs = [
        ("reference", dict(backend="reference")),
        ("compiled+batch", dict(backend="compiled")),
        ("sharded k=2", dict(backend="compiled", shards=2,
                             shard_channel="mp" if fork_available() else "inline")),
    ]
    results = []
    for name, kwargs in configs:
        results.append(
            run(network, luby_mis(), seed=SEED, rng="counter",
                faults=flaky, **kwargs)
        )
    assert all(
        r.outputs == results[0].outputs and r.messages == results[0].messages
        for r in results
    ), "D14 broken: injected runs diverged across backends"
    print("\ninjected Luby run, identical on " +
          ", ".join(name for name, _ in configs) + ":")
    indep, maximal = violations(network, results[0].outputs)
    print(
        f"  rounds={results[0].rounds} messages={results[0].messages}  "
        f"violations: independence={indep} maximality={maximal}"
    )

    # 2. Degradation axis: the Theorem-2 Luby alternation under rising
    # drop rates — rounds stretch, and past some rate the (equally
    # injected) pruner starts letting violations through.
    print("\nTheorem-2 alternation vs drop rate:")
    for rate in (0.0, 0.1, 0.3):
        plan = sample_plan(network, drop(0.5), rate, seed=7)
        _, _, uniform = TABLE1["luby"].build()
        with use_faults(plan if rate else None):
            result = uniform.run(network, seed=SEED)
        indep, maximal = violations(network, result.outputs)
        print(
            f"  rate={rate:.1f}  rounds={result.rounds:3d} "
            f"steps={len(result.steps)}  violations={indep + maximal}"
        )

    # 3. Crashes stall the alternation by design: a crashed node outputs
    # None, the pruner keeps it every iteration, and the run hits the
    # divergence cap — the honest answer, not a hang.
    crashed = sample_plan(network, crash_at(2), 0.1, seed=9)
    _, _, uniform = TABLE1["luby"].build()
    try:
        with use_faults(crashed):
            uniform.run(network, seed=SEED)
        print("\nunexpected: alternation converged despite crashes")
    except AlternationDiverged:
        print(
            f"\nwith {crashed.describe()}: alternation diverges at its "
            "iteration cap — crashed nodes are never pruned (expected)."
        )

    # 4. Kill-and-recover (D15): SIGKILL a live shard worker mid-run.
    # The parent respawns only that worker from the last round
    # checkpoint; the alternation finishes bit-identical to an honest
    # run and carries the recovery trail in its step ledger.
    if fork_available():
        kill_and_recover(network)


def kill_and_recover(network):
    print("\nkill-and-recover (D15): SIGKILL one shard worker mid-run")
    _, _, uniform = TABLE1["luby"].build()
    with use_backend("sharded", rng="counter", shards=2, shard_channel="mp"):
        honest = uniform.run(network, seed=SEED)

    state = {}

    def assassin():
        # Wait for a forked shard worker to appear, then SIGKILL it —
        # an external fault the channel cannot see coming.
        while "pid" not in state and not state.get("stop"):
            for child in multiprocessing.active_children():
                try:
                    os.kill(child.pid, signal.SIGKILL)
                except ProcessLookupError:
                    continue
                state["pid"] = child.pid
                return
            time.sleep(0.001)

    _, _, uniform = TABLE1["luby"].build()
    with use_backend("sharded", rng="counter", shards=2, shard_channel="mp"):
        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", ResilienceWarning)
            recovered = uniform.run(network, seed=SEED)
        state["stop"] = True
        thread.join(timeout=5)

    for warning in caught:
        if issubclass(warning.category, ResilienceWarning):
            print(f"  warning: {warning.message}")
    trails = [
        backend
        for step in recovered.steps
        for backend in (step.backends or ())
        if backend and "[" in backend
    ]
    assert recovered.outputs == honest.outputs, "recovery changed the output"
    assert recovered.rounds == honest.rounds, "recovery changed the ledger"
    if trails:
        print(f"  killed pid={state.get('pid')}; recovery trail: {trails[0]}")
    else:
        print("  (the kill landed between sharded runs — nothing to heal)")
    print("  recovered run is bit-identical to the honest one.")


if __name__ == "__main__":
    main()
