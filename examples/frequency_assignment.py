"""Radio frequency assignment via the uniform coloring transformer.

Scenario: access points in a wireless mesh must pick channels so that
no two interfering APs share one.  Interference is geometric (unit-disk)
and deployments differ wildly in density, so hard-coding the maximum
interference degree Δ into the firmware is exactly the assumption the
paper removes.

Theorem 5 gives the firmware: a *uniform* O(Δ²)-coloring in O(log* n)
rounds (Corollary 1(iii)) when spectrum is plentiful, or λ(Δ+1) colors
when spectrum is scarce and extra rounds are acceptable — the Table-1
row 5 tradeoff, chosen per deployment without any global knowledge.

Run:  python examples/frequency_assignment.py
"""

from repro.algorithms.lambda_coloring import (
    lambda_coloring_nonuniform,
    lambda_colors_bound,
    linial_scheme,
)
from repro.bench import build_graph
from repro.core import theorem5
from repro.graphs import families
from repro.problems import PROPER_COLORING


def main():
    mesh = build_graph(families.unit_disk(250, 0.12, seed=21), seed=2)
    print(
        f"mesh: n={mesh.n} APs, Δ={mesh.max_degree} max interference, "
        f"{mesh.edge_count()} interference pairs\n"
    )

    # Spectrum-rich regime: fast O(Δ²) channels (Corollary 1(iii)).
    algorithm, bound, g = linial_scheme()
    fast_firmware = theorem5(algorithm, bound, g)
    result = fast_firmware.run(mesh, seed=5)
    PROPER_COLORING.assert_solution(mesh, {}, result.outputs)
    print(
        f"spectrum-rich  : {result.colors_used:4d} channels in "
        f"{result.rounds:5d} rounds  (uniform O(Δ²) @ O(log* n))"
    )

    # Spectrum-scarce regimes: λ(Δ+1) channels, λ = 4 then 2.
    for lam in (4, 2):
        nu = lambda_coloring_nonuniform(lam)
        firmware = theorem5(nu.algorithm, nu.bound, lambda_colors_bound(lam))
        result = firmware.run(mesh, seed=5)
        PROPER_COLORING.assert_solution(mesh, {}, result.outputs)
        print(
            f"spectrum λ={lam}   : {result.colors_used:4d} channels in "
            f"{result.rounds:5d} rounds  (uniform ≈{lam}(Δ+1) colors)"
        )

    print(
        "\nfewer channels cost more rounds — Table 1 row 5's tradeoff — "
        "and no AP ever\nlearned n, Δ or the identity space: Theorem 5's "
        "degree layers + strong list\ncoloring supplied every estimate "
        "locally."
    )


if __name__ == "__main__":
    main()
