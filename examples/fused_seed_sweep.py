"""Fused multi-tenant execution: seed sweeps and portfolio races (D16).

Two production shapes for the same engine.  First a **seed sweep**: 16
independent MIS runs packed by ``run_many`` into one block-diagonal
slab, stepped together by the unchanged certified kernels — each lane
bit-identical to its solo ``run`` (asserted below), but the per-round
Python dispatch is paid once for the fleet instead of once per run.
Then a **speculative race**: four candidate algorithms launched as
lanes of one slab, every finisher verified by the paper's pruning
algorithm the moment it commits, the rest cancelled as soon as a
winner survives verification (Corollary 1's portfolio at interactive
latency).

Run:  python examples/fused_seed_sweep.py
"""

from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.hash_luby import hash_luby_mis
from repro.algorithms.luby import luby_mc, luby_mis
from repro.bench import build_graph
from repro.core import RaceArm, mis_pruning, render_trace, speculative_race
from repro.graphs import families
from repro.local import run, run_many
from repro.problems import MIS


def seed_sweep(graph, seeds):
    algo = luby_mis()
    jobs = [(graph, algo, {"seed": s}) for s in seeds]
    results = run_many(jobs)

    print(f"seed sweep: {len(seeds)} lanes of {algo.name!r} on "
          f"gnp(n={graph.n}), one fused slab\n")
    print(f"{'seed':>4s} {'rounds':>7s} {'messages':>9s}")
    for s, result in zip(seeds, results):
        MIS.assert_solution(graph, {}, result.outputs, context=f"seed {s}")
        print(f"{s:4d} {result.rounds:7d} {result.messages:9d}")

    best = min(zip(seeds, results), key=lambda sr: sr[1].rounds)
    print(f"\nbest draw: seed {best[0]} at {best[1].rounds} rounds")

    # The D16 contract: a fused lane is field-for-field the solo run.
    solo = run(graph, algo, seed=best[0])
    assert solo.outputs == best[1].outputs
    assert solo.rounds == best[1].rounds
    assert solo.messages == best[1].messages
    print("lane checked bit-identical to its solo run\n")


def portfolio_race(graph):
    arms = [
        luby_mis(),
        # Deliberately undersized guess — the race doesn't trust any
        # arm's declared bound, it verifies each finisher's output.
        RaceArm(luby_mc(), guesses={"n": 8}),
        RaceArm(hash_luby_mis(), guesses={"n": 2 * graph.n}),
        RaceArm(
            fast_mis(),
            guesses={"m": graph.edge_count(), "Delta": graph.max_degree},
        ),
    ]
    result = speculative_race(graph, arms, mis_pruning(), seed=3)
    MIS.assert_solution(graph, {}, result.outputs, context="race")
    print(f"speculative race: {len(arms)} arms as lanes of one slab")
    print(f"winner: {result.winner!r} after {result.heats} heat(s); "
          "losing lanes cancelled mid-slab\n")
    print(render_trace(result))


def main():
    graph = build_graph(families.gnp_avg_degree(150, 6.0, seed=11), seed=2)
    seed_sweep(graph, seeds=list(range(1, 17)))
    portfolio_race(graph)


if __name__ == "__main__":
    main()
