"""Sleep scheduling in a sensor field via uniform MIS.

Scenario (the intro's classic motivation): battery-powered sensors are
scattered over a field; a maximal independent set makes a perfect
"awake" backbone — every sleeping sensor has an awake neighbour to relay
through, and no two awake sensors waste energy covering the same spot.
Sensors are flashed *before deployment*: nobody knows how many will
survive the drop, so the firmware cannot contain n or Δ.

Corollary 1(i)'s portfolio is exactly the firmware one wants: it runs as
fast as the best of its members on whatever field actually materializes
— dense urban canyon or sparse farmland — with zero configuration.

Run:  python examples/sensor_sleep_scheduling.py
"""

from repro.algorithms import corollary1_portfolio
from repro.bench import build_graph
from repro.graphs import families
from repro.problems import MIS


def deploy(name, graph, seed):
    network = build_graph(graph, seed=seed)
    firmware = corollary1_portfolio()
    result = firmware.run(network, seed=seed)
    MIS.assert_solution(network, {}, result.outputs, context=name)
    awake = [u for u, bit in result.outputs.items() if bit == 1]
    print(
        f"  {name:28s} n={network.n:4d} Δ={network.max_degree:3d}  "
        f"awake={len(awake):4d} ({100 * len(awake) // network.n}%)  "
        f"rounds={result.rounds}"
    )


def main():
    print("deploying identical firmware (no global knowledge) on three fields:")
    deploy("farmland (unit disk, sparse)", families.unit_disk(300, 0.09, seed=3), 11)
    deploy("forest (random tree)", families.random_tree(300, seed=4), 12)
    deploy(
        "urban canyon (dense hub)",
        families.star_with_noise(300, 200, seed=5),
        13,
    )
    print(
        "\nthe same binary adapts: the O(Δ + log* n) member carries the "
        "sparse fields,\nthe n-only member carries the hub — Theorem 4 "
        "interleaves them and the pruner\nkeeps whichever partial progress "
        "is already safe (Observation 3.4)."
    )


if __name__ == "__main__":
    main()
