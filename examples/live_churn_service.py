"""A matchmaking service on a living overlay: open once, mutate, rerun.

Scenario: the p2p overlay of ``p2p_matchmaking.py``, but *in
production* — peers join, leave, and links flap, and every change needs
a fresh MIS-based coordinator set within one request's latency budget.
The batch engines force a service to rebuild the whole graph per
request; the live-graph session (DESIGN.md D18) keeps one engine open
and applies each change as an incremental CSR patch instead:

    session = open_session(graph)
    session.mutate(GraphDelta(add_edges=[...], del_edges=[...]))
    session.rerun(algo, seed=...)        # ≡ cold run on a fresh build

The demo churns an overlay through a burst of joins/leaves/link flaps
and, after every delta, asserts the session's answer is bit-identical
to a cold ``run()`` on a graph rebuilt from scratch — outputs, rounds
and message counts — which is the session's correctness contract
(enforced at scale by ``tests/test_service.py``'s differential delta
harness).

Run:  python examples/live_churn_service.py
"""

import networkx as nx

from repro.algorithms.luby import luby_mis
from repro.bench import build_graph
from repro.local import GraphDelta, SimGraph, open_session, run
from repro.problems import MIS


def main():
    base = nx.gnp_random_graph(160, 0.05, seed=23)
    overlay = build_graph(base, seed=4)
    print(f"overlay: n={overlay.n}, links={overlay.edge_count()}, "
          f"Δ={overlay.max_degree}\n")

    # The mutable "truth" the service's clients see: a networkx graph we
    # churn in parallel with the session, purely to rebuild the cold
    # oracle after every delta.
    truth = overlay.to_networkx()
    idents = dict(overlay.ident)

    # One churn burst: two peers leave (dropping their links), three
    # peers join with bootstrap links, and a handful of links flap.
    nodes = sorted(truth.nodes())
    leavers = {nodes[7], nodes[31]}
    survivors = [u for u in nodes if u not in leavers]
    next_label = max(nodes) + 1
    next_ident = overlay.max_ident + 1
    # A link flap among survivors stays valid after the join/leave
    # deltas: node departures only remove *incident* edges, and the
    # joins only add edges touching the fresh labels.
    flap_del = next(
        (u, v) for u, v in truth.edges()
        if u not in leavers and v not in leavers
    )
    flap_add = next(
        (u, v)
        for u in survivors[3:] for v in survivors[3:]
        if u < v and not truth.has_edge(u, v)
    )
    churn = [
        GraphDelta(del_nodes=sorted(leavers)),
        GraphDelta(
            add_nodes={next_label + i: next_ident + i for i in range(3)},
            add_edges=[
                (next_label, nodes[0]),
                (next_label + 1, nodes[1]),
                (next_label + 2, nodes[2]),
                (next_label, next_label + 1),
            ],
        ),
        GraphDelta(del_edges=[flap_del], add_edges=[flap_add]),
    ]

    algo = luby_mis()
    with open_session(overlay, rng="counter") as session:
        warm = session.rerun(algo, seed=11)
        MIS.assert_solution(session.graph, {}, warm.outputs)
        print(f"request 0 (no churn): |MIS|={sum(warm.outputs.values())}, "
              f"{warm.rounds} rounds")

        for step, delta in enumerate(churn, start=1):
            session.mutate(delta)

            # Mirror the delta onto the networkx truth and rebuild the
            # cold oracle the way a stateless service would per request.
            truth.remove_edges_from(delta.del_edges)
            truth.remove_nodes_from(delta.del_nodes)
            for u in delta.del_nodes:
                del idents[u]
            for u, ident in delta.add_nodes:
                truth.add_node(u)
                idents[u] = ident
            truth.add_edges_from(delta.add_edges)
            oracle = SimGraph.from_networkx(truth, idents=idents)

            live = session.rerun(algo, seed=11)
            cold = run(oracle, algo, seed=11, rng="counter")
            assert (live.outputs, live.rounds, live.messages) == (
                cold.outputs, cold.rounds, cold.messages
            ), "session diverged from cold rebuild"
            MIS.assert_solution(session.graph, {}, live.outputs)
            print(f"request {step}: {delta!r} -> |MIS|="
                  f"{sum(live.outputs.values())}, {live.rounds} rounds "
                  f"(bit-identical to a from-scratch rebuild)")

        print(f"\nsession stats: {session.stats()}")
    print("session closed; graph remains a plain immutable SimGraph")


if __name__ == "__main__":
    main()
