"""Theorem 4's portfolio: run as fast as the fastest, per instance.

This example measures the Corollary 1(i) crossover explicitly: the
O(Δ + log* n) member wins on bounded-degree networks, the n-only member
wins on hub-dominated networks, and the portfolio — with no idea which
world it is in — tracks the winner within a constant factor.

Run:  python examples/portfolio_crossover.py
"""

from repro.algorithms import corollary1_portfolio
from repro.algorithms.fast_mis import fast_mis_nonuniform
from repro.algorithms.hash_luby import hash_luby_nonuniform
from repro.bench import build_graph
from repro.core import mis_pruning, theorem1
from repro.graphs import families
from repro.problems import MIS


def main():
    from repro.algorithms.fast_mis import fast_mis_bound
    from repro.algorithms.hash_luby import hash_luby_bound

    fast_member = theorem1(fast_mis_nonuniform(), mis_pruning())
    nonly_member = theorem1(hash_luby_nonuniform(), mis_pruning())
    portfolio = corollary1_portfolio()
    f_fast, f_nonly = fast_mis_bound(), hash_luby_bound()

    worlds = {
        "4-regular backbone": families.random_regular(128, 4, seed=1),
        "8-regular backbone": families.random_regular(128, 8, seed=2),
        "hub-dominated": families.star_with_noise(128, 64, seed=3),
        "clique datacenter": families.complete(64),
    }
    print(
        f"{'network':22s} {'Δ':>4s} {'f(Δ,m)':>7s} {'f(n)':>6s} "
        f"{'bound-winner':>12s} {'Δ-member':>9s} {'n-member':>9s} "
        f"{'portfolio':>9s}"
    )
    for name, raw in worlds.items():
        graph = build_graph(raw, seed=4)
        declared_fast = f_fast.value(
            {"Delta": max(1, graph.max_degree), "m": graph.max_ident}
        )
        declared_nonly = f_nonly.value({"n": graph.n})
        a = fast_member.run(graph, seed=5)
        b = nonly_member.run(graph, seed=5)
        c = portfolio.run(graph, seed=5)
        for result in (a, b, c):
            MIS.assert_solution(graph, {}, result.outputs, context=name)
        bound_winner = (
            "Δ-member" if declared_fast < declared_nonly else "n-member"
        )
        print(
            f"{name:22s} {graph.max_degree:4d} {declared_fast:7.0f} "
            f"{declared_nonly:6.0f} {bound_winner:>12s} {a.rounds:9d} "
            f"{b.rounds:9d} {c.rounds:9d}"
        )
    print(
        "\nthe declared bounds cross over exactly as Corollary 1(i)'s "
        "min{} dictates, and\nthe Δ-member's measured cost explodes on "
        "the clique while the portfolio stays\nflat — Theorem 4 tracks "
        "the per-instance winner without knowing the regime.\n(On "
        "measured rounds the n-member dominates at these sizes because "
        "the PS'96\nsubstitute realizes O(log n); see DESIGN.md D2.)"
    )


if __name__ == "__main__":
    main()
