"""E15 — message sizes under uniformization (paper Section 6.2).

The conclusion discusses when the transformers preserve short messages:
algorithms whose payloads encode only identifiers, colors or degrees —
never the guessed bounds — keep O(log m)-bit messages through the
uniformization, because the transformer changes *schedules*, not
*payloads*.  Measured: the largest payload of each black box at two
network sizes; growth should track log m (the identity space), not the
guess magnitudes.
"""

from __future__ import annotations

from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.hash_luby import hash_luby_mis
from repro.algorithms.luby import luby_mis
from repro.algorithms.ruling_sets import bitwise_ruling_set
from repro.bench import build_graph, format_table, write_report
from repro.graphs import families
from repro.local import run


def payload_of(graph, algorithm, guesses):
    result = run(
        graph,
        algorithm,
        guesses=guesses,
        seed=1,
        track_bits=True,
        max_rounds=50_000,
    )
    return result.max_message_bits


def test_message_sizes(benchmark):
    rows = []
    for n in (64, 512):
        graph = build_graph(families.gnp_avg_degree(n, 6.0, seed=1), seed=1)
        log_m = graph.max_ident.bit_length()
        cases = [
            ("luby-mis", luby_mis(), {}),
            ("hash-luby", hash_luby_mis(), {"n": graph.n}),
            (
                "fast-mis",
                fast_mis(),
                {"Delta": graph.max_degree, "m": graph.max_ident},
            ),
            ("bitwise-ruling", bitwise_ruling_set(), {"m": graph.max_ident}),
            (
                "fast-mis (m̃ = m³ guess)",
                fast_mis(),
                {"Delta": graph.max_degree, "m": graph.max_ident**3},
            ),
        ]
        for name, algorithm, guesses in cases:
            bits = payload_of(graph, algorithm, guesses)
            rows.append([f"n={graph.n}", name, log_m, bits])
    text = format_table(
        ["size", "algorithm", "log2(m) bits", "max payload bits"],
        rows,
        title=(
            "E15 Section 6.2 — payload sizes: identifiers/colors/degrees "
            "only, so messages stay O(log m) bits even under inflated "
            "guesses (the guess changes the schedule, not the payloads)"
        ),
    )
    write_report("E15_message_size", text)

    graph = build_graph(families.gnp_avg_degree(128, 6.0, seed=1), seed=1)
    benchmark.pedantic(
        lambda: run(graph, luby_mis(), seed=2, track_bits=True),
        rounds=3,
        iterations=1,
    )
