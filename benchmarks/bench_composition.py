"""E14 — Observation 2.1: composition cost and the α synchronizer.

Paper claims measured:

* running time of A1;A2 ≤ t1 + t2 (Chain envelopes, adversarial
  wake-ups included);
* an algorithm designed for simultaneous wake-up runs unchanged under
  any wake-up pattern at no extra termination time (α synchronizer).
"""

from __future__ import annotations

from repro.bench import build_graph, format_table, write_report
from repro.graphs import families
from repro.local import (
    Broadcast,
    Chain,
    LocalAlgorithm,
    NodeProcess,
    run,
    run_with_wakeup,
    running_time,
)


class Flood(NodeProcess):
    def __init__(self, ctx, k):
        super().__init__(ctx)
        self.k = k
        self.best = ctx.ident
        self.round = 0

    def start(self):
        if self.k == 0:
            self.finish(self.best)
            return None
        return Broadcast(self.best)

    def receive(self, inbox):
        self.round += 1
        for value in inbox.values():
            if isinstance(value, int) and value > self.best:
                self.best = value
        if self.round >= self.k:
            self.finish(self.best)
            return None
        return Broadcast(self.best)


def flood(k):
    return LocalAlgorithm(f"flood{k}", lambda ctx: Flood(ctx, k))


def test_composition_observation21(benchmark):
    graph = build_graph(families.grid(10, 10), seed=1)
    rows = []
    for k1, k2 in ((2, 3), (4, 4), (6, 2)):
        single1 = run(graph, flood(k1)).rounds
        single2 = run(graph, flood(k2)).rounds
        chained = run(graph, Chain([flood(k1), flood(k2)]))
        rows.append(
            [f"flood{k1};flood{k2}", single1, single2, chained.rounds,
             "≤" if chained.rounds <= single1 + single2 else "VIOLATED"]
        )
        assert chained.rounds <= single1 + single2
    text = format_table(
        ["composition", "t1", "t2", "t(A1;A2)", "Obs 2.1"],
        rows,
        title="E14 Observation 2.1 — composition cost on a 10x10 grid",
    )

    wake_patterns = {
        "simultaneous": {u: 0 for u in graph.nodes},
        "staggered%7": {u: graph.ident[u] % 7 for u in graph.nodes},
        "corner-late": {
            u: (15 if graph.ident[u] == graph.max_ident else 0)
            for u in graph.nodes
        },
    }
    sync_rounds = run(graph, flood(5)).rounds
    rows2 = []
    for name, wake in wake_patterns.items():
        result = run_with_wakeup(graph, flood(5), wake)
        rt = running_time(graph, wake, result.finish_round)
        rows2.append([name, rt, sync_rounds,
                      "≤" if rt <= sync_rounds else "VIOLATED"])
        assert rt <= sync_rounds
    text += "\n\n" + format_table(
        ["wake-up pattern", "termination time", "sync time", "α-synchronizer"],
        rows2,
        title=(
            "E14b α synchronizer — the paper's termination-time measure "
            "under wake-up patterns equals the synchronous time"
        ),
    )
    write_report("E14_composition", text)

    benchmark.pedantic(
        lambda: run(graph, Chain([flood(4), flood(4)])),
        rounds=3,
        iterations=1,
    )
