"""E8 — Table 1 row 10: Luby's uniform randomized MIS (baseline).

The one row that needs no transformation: Luby/ABI is already uniform
Las Vegas at O(log n) expected rounds.  Also measured: the Theorem-2
wrap of the *truncated* Luby (the MC→LV application), which must land in
the same ballpark — the paper's point that the transformation costs only
constants.
"""

from __future__ import annotations

from repro.algorithms import TABLE1
from repro.algorithms.luby import luby_mis
from repro.bench import build_graph, format_table, growth_factors, write_report
from repro.graphs import families
from repro.local import run
from repro.problems import MIS

SIZES = (64, 128, 256, 512, 1024)
SEEDS = (1, 2, 3, 4, 5)


def test_table1_luby(benchmark):
    rows = []
    plain_means = []
    for n in SIZES:
        graph = build_graph(families.gnp_avg_degree(n, 8.0, seed=2), seed=2)
        plain = []
        for seed in SEEDS:
            result = run(graph, luby_mis(), seed=seed)
            assert MIS.is_solution(graph, {}, result.outputs)
            plain.append(result.rounds)
        row = TABLE1["luby"]
        _, _, wrapped = row.build()
        lv = wrapped.run(graph, seed=1)
        assert MIS.is_solution(graph, {}, lv.outputs)
        mean = sum(plain) / len(plain)
        plain_means.append(mean)
        rows.append([f"n={graph.n}", f"{mean:.1f}", max(plain), lv.rounds])
    text = format_table(
        ["instance", "luby mean rounds", "max", "thm2-wrapped rounds"],
        rows,
        title=(
            "E8 Table1[luby] — paper: uniform O(log n) expected "
            "(Luby'86/ABI'86); growth must track log n"
        ),
    ) + f"\nluby mean growth: {growth_factors(plain_means)} (doubling n)"
    write_report("E8_table1_luby", text)

    graph = build_graph(families.gnp_avg_degree(256, 8.0, seed=2), seed=2)
    benchmark.pedantic(
        lambda: run(graph, luby_mis(), seed=11), rounds=5, iterations=1
    )
