"""E2 — Table 1 row 2: deterministic MIS with n-only dependence [PS'96].

Paper claim: the 2^O(√log n) algorithm needs only a common upper bound
on n; Theorem 1 removes it.  Our black box is the documented hash-Luby
substitute (D2) with declared bound O(log² ñ).  The suite is
high-degree / low-diameter — the regime where n-only bounds beat
O(Δ + log* n), set up for the Corollary 1(i) crossover of E9.
"""

from __future__ import annotations

from repro.algorithms import TABLE1
from repro.bench import (
    format_table,
    growth_factors,
    measure_row,
    sized_suite,
    write_report,
)
from repro.bench.harness import HEADERS

SIZES = (32, 64, 128, 256, 512)


def test_table1_mis_nonly(benchmark):
    row = TABLE1["mis-nonly"]
    measurements = []
    for workload in ("star-noise", "gnp-dense"):
        for label, graph in sized_suite(workload, SIZES, seed=5):
            measurements.append(measure_row(row, label, graph, seed=9))
    assert all(m.uniform_ok and m.nonuniform_ok for m in measurements)
    series = [
        m.uniform_rounds for m in measurements if m.label.startswith("star")
    ]
    text = format_table(
        HEADERS,
        [m.row() for m in measurements],
        title=(
            "E2 Table1[mis-nonly] — paper: 2^O(√log n) with only ñ; "
            "ours: hash-Luby O(log² ñ) substitute (D2)"
        ),
    ) + f"\nuniform-rounds growth (star-noise): {growth_factors(series)}"
    write_report("E2_table1_mis_nonly", text)

    _, _, uniform = row.build()
    from repro.bench import build_graph
    from repro.graphs import families

    graph = build_graph(families.star_with_noise(128, 64, seed=2), seed=2)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=3), rounds=3, iterations=1
    )
