"""E13 — Theorem 2's expected-time behaviour (MC → Las Vegas).

Algorithm 2's analysis: once budgets reach f*, each outer iteration
succeeds with probability ≥ ρ, so the tail of the running time decays
geometrically.  Measured: the distribution of uniform Las Vegas rounds
across seeds, plus the effect of artificially lowering the success
guarantee by shrinking the Monte-Carlo phase budget.
"""

from __future__ import annotations

from repro.algorithms.luby import NOT_IN_SET, LubyProcess, _random_priority
from repro.bench import build_graph, format_table, write_report
from repro.core import NonUniform, mis_pruning, theorem2
from repro.core.bounds import AdditiveBound, log2_of
from repro.graphs import families
from repro.local import LocalAlgorithm
from repro.problems import MIS

SEEDS = tuple(range(12))


def weak_mc_with_phases(factor):
    """Truncated Luby with a tunable (possibly stingy) phase budget.

    ``factor < 1`` deliberately under-provisions phases so that single
    executions fail regularly — the regime where Theorem 2's retry
    structure does real work.
    """

    def phases(n_guess):
        bits = max(1, int(n_guess).bit_length())
        return max(1, int(factor * bits))

    def process(ctx):
        return LubyProcess(
            ctx, _random_priority, phase_budget=phases(ctx.guess("n"))
        )

    algorithm = LocalAlgorithm(
        f"luby-mc(x{factor})", process, requires=("n",), randomized=True
    )
    bound = AdditiveBound(
        [log2_of("n", 2 * max(1, factor))], constant=8,
        label=f"mc x{factor}",
    )
    return NonUniform(
        algorithm,
        bound,
        kind="weak-monte-carlo",
        guarantee=0.5,
        default_output=NOT_IN_SET,
        name=f"luby-mc-x{factor}",
    )


def test_mc_to_lv(benchmark):
    graph = build_graph(families.gnp_avg_degree(128, 8.0, seed=8), seed=8)
    rows = []
    for factor in (4, 0.25):
        uniform = theorem2(weak_mc_with_phases(factor), mis_pruning())
        rounds = []
        for seed in SEEDS:
            result = uniform.run(graph, seed=seed)
            assert MIS.is_solution(graph, {}, result.outputs)
            rounds.append(result.rounds)
        mean = sum(rounds) / len(rounds)
        rows.append(
            [
                f"phase budget x{factor}",
                f"{mean:.0f}",
                min(rounds),
                max(rounds),
                f"{len(SEEDS)}/{len(SEEDS)}",
            ]
        )
    text = format_table(
        ["MC strength", "mean rounds", "min", "max", "valid runs"],
        rows,
        title=(
            "E13 Theorem 2 — Las Vegas rounds across 12 seeds; a weaker "
            "Monte-Carlo box (tiny phase budget) costs retries, never "
            "correctness"
        ),
    )
    write_report("E13_mc_to_lv", text)

    uniform = theorem2(weak_mc_with_phases(4), mis_pruning())
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=99), rounds=3, iterations=1
    )
