"""E10 — Figure 1: the alternating algorithm, rendered from an execution.

Figure 1 is the paper's schematic of π((A_i), P): instances (G_i, x_i)
flow through B_i = (A_i ; P) boxes, shrinking as nodes are pruned.  This
bench renders the *actual* trace of a Theorem-2 execution in the same
shape — each line one B step with its guesses, budget and pruned counts
— on a deliberately under-provisioned Monte-Carlo box (a quarter of the
phases Luby needs), so several iterations of partial pruning are
visible, exactly the picture the figure draws.
"""

from __future__ import annotations

import importlib.util
import pathlib

from repro.bench import build_graph, write_report
from repro.core import mis_pruning, render_trace, theorem2
from repro.graphs import families
from repro.problems import MIS

_spec = importlib.util.spec_from_file_location(
    "bench_mc_to_lv", pathlib.Path(__file__).parent / "bench_mc_to_lv.py"
)
_mc = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_mc)


def test_figure1_trace(benchmark):
    graph = build_graph(families.gnp_avg_degree(120, 10.0, seed=9), seed=9)
    uniform = theorem2(_mc.weak_mc_with_phases(0.25), mis_pruning())
    result = uniform.run(graph, seed=5)
    assert MIS.is_solution(graph, {}, result.outputs)
    text = (
        "E10 Figure 1 — alternating-algorithm trace of an actual "
        "execution (compare the paper's schematic: (G_i, x_i) -> A_i -> "
        "(G_i, x_i, y_i) -> P -> (G_{i+1}, x_{i+1})):\n\n"
        + render_trace(result)
    )
    pruned_per_step = [step.pruned for step in result.steps]
    text += f"\n\npruned per step: {pruned_per_step}"
    text += f"\ntotal steps: {len(result.steps)}; total rounds: {result.rounds}"
    write_report("E10_figure1_trace", text)

    benchmark.pedantic(
        lambda: uniform.run(graph, seed=6), rounds=3, iterations=1
    )
