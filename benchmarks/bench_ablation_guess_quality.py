"""E12 — ablation: guess quality, the paper's core motivation.

Section 1: "the running time of the algorithm is actually a function of
the upper bound estimations and not of the actual values".  Measured on
one instance:

* oracle guesses (Γ*) — the best the non-uniform algorithm can do;
* 100× overestimated guesses — the non-uniform algorithm pays for the
  estimate, not the graph;
* the uniform transform — no guesses at all, landing within a constant
  of oracle.

Also reported: the share of rounds the pruning steps contribute to the
uniform run (the paper's T0 overhead).
"""

from __future__ import annotations

from repro.algorithms.fast_mis import (
    fast_mis,
    fast_mis_nonuniform,
    fast_mis_rounds,
)
from repro.bench import build_graph, format_table, write_report
from repro.core import mis_pruning, theorem1
from repro.graphs import families
from repro.local import run
from repro.problems import MIS


def test_ablation_guess_quality(benchmark):
    graph = build_graph(families.random_regular(96, 6, seed=7), seed=7)
    delta, m = graph.max_degree, graph.max_ident

    oracle = run(
        graph, fast_mis(), guesses={"Delta": delta, "m": m}, seed=1
    )
    assert MIS.is_solution(graph, {}, oracle.outputs)

    inflated = run(
        graph,
        fast_mis(),
        guesses={"Delta": delta * 100, "m": m**2},
        seed=1,
        max_rounds=fast_mis_rounds(m**2, delta * 100) + 8,
    )
    assert MIS.is_solution(graph, {}, inflated.outputs)

    uniform = theorem1(fast_mis_nonuniform(), mis_pruning())
    transformed = uniform.run(graph, seed=1)
    assert MIS.is_solution(graph, {}, transformed.outputs)
    pruning_rounds = sum(
        mis_pruning().rounds for _ in transformed.steps
    )

    rows = [
        ["oracle guesses (Δ*, m*)", oracle.rounds, "knows Δ and m exactly"],
        [
            "100×Δ, m² guesses",
            inflated.rounds,
            "pays for the estimate, not the graph",
        ],
        [
            "uniform (Theorem 1)",
            transformed.rounds,
            f"no knowledge; {len(transformed.steps)} sub-iterations, "
            f"{pruning_rounds} pruning rounds",
        ],
    ]
    text = format_table(
        ["configuration", "rounds", "comment"],
        rows,
        title=(
            "E12 ablation — guess quality on regular-6, n=96: the "
            "non-uniform time follows the guess (paper Section 1); the "
            "uniform transform needs no guess at bounded extra cost"
        ),
    )
    assert inflated.rounds > 3 * oracle.rounds
    write_report("E12_ablation_guess_quality", text)

    benchmark.pedantic(
        lambda: uniform.run(graph, seed=2), rounds=3, iterations=1
    )
