"""E12b — ablation: pruning radius and partial-progress accounting.

Two questions the paper's machinery raises in practice:

* what does the pruner's β buy?  P_(2,β) with larger β prunes *more*
  nodes per iteration for ruling-set problems (bigger balls around
  confirmed centers), trading per-step rounds (1+β) against iterations;
* how much of a uniform run's pruning actually lands before the winning
  iteration (the "wasted" early prunes that Observation 3.4 turns into
  progress)?
"""

from __future__ import annotations

from repro.algorithms.ruling_sets import sw_ruling_set_nonuniform
from repro.bench import build_graph, format_table, write_report
from repro.core import RulingSetPruning, theorem2
from repro.graphs import families
from repro.problems import RulingSetProblem


def test_ablation_pruning_radius(benchmark):
    graph = build_graph(families.gnp_avg_degree(128, 6.0, seed=6), seed=6)
    rows = []
    c = 1
    # A (2,4)-ruling set stays valid under any β ≥ 4 pruner; larger β
    # prunes larger balls per confirmed center.
    for beta in (4, 6, 8):
        uniform = theorem2(
            sw_ruling_set_nonuniform(c), RulingSetPruning(beta=beta)
        )
        result = uniform.run(graph, seed=3)
        problem = RulingSetProblem(2, beta)
        ok = problem.is_solution(graph, {}, result.outputs)
        assert ok
        pruned_first = result.steps[0].pruned if result.steps else 0
        rows.append(
            [
                f"β={beta}",
                uniform.pruning.rounds,
                len(result.steps),
                pruned_first,
                result.rounds,
                "ok" if ok else "FAIL",
            ]
        )
    text = format_table(
        [
            "pruner",
            "T0 rounds",
            "steps",
            "pruned @ first step",
            "total rounds",
            "valid",
        ],
        rows,
        title=(
            "E12b ablation — P_(2,β) radius: per-step cost (1+β) vs "
            "per-step progress on a (2,4)-ruling instance"
        ),
    )
    write_report("E12b_ablation_pruning", text)

    uniform = theorem2(
        sw_ruling_set_nonuniform(1), RulingSetPruning(beta=4)
    )
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=4), rounds=3, iterations=1
    )
