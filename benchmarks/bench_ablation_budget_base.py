"""E11 — ablation: the budget growth base of Algorithm 1.

The paper doubles budgets (c·2^i).  Any base > 1 preserves the theorem;
the constant factor trades tail waste (large base overshoots the last
iteration) against iteration count (small base runs more pruning
cycles).  Measured: uniform rounds under bases 1.5 / 2 / 4 on the same
instances.
"""

from __future__ import annotations

from repro.algorithms.hash_luby import hash_luby_nonuniform
from repro.bench import build_graph, format_table, write_report
from repro.core import mis_pruning, theorem1
from repro.graphs import families
from repro.problems import MIS

BASES = (1.5, 2.0, 4.0)
SIZES = (64, 128, 256)


def test_ablation_budget_base(benchmark):
    rows = []
    for n in SIZES:
        graph = build_graph(families.gnp_avg_degree(n, 6.0, seed=3), seed=3)
        cells = [f"n={graph.n}"]
        for base in BASES:
            uniform = theorem1(
                hash_luby_nonuniform(), mis_pruning(), base=base
            )
            result = uniform.run(graph, seed=4)
            assert MIS.is_solution(graph, {}, result.outputs)
            cells.append(f"{result.rounds} ({len(result.steps)} steps)")
        rows.append(cells)
    text = format_table(
        ["instance"] + [f"base {b}" for b in BASES],
        rows,
        title=(
            "E11 ablation — Algorithm 1 budget base: the paper's 2 vs "
            "1.5 and 4 (rounds and executed sub-iterations)"
        ),
    )
    write_report("E11_ablation_budget_base", text)

    graph = build_graph(families.gnp_avg_degree(128, 6.0, seed=3), seed=3)
    uniform = theorem1(hash_luby_nonuniform(), mis_pruning(), base=2.0)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=5), rounds=3, iterations=1
    )
