"""E5 — Table 1 rows 6–7 + Corollary 1(v): uniform edge coloring.

The paper's own route (Section 5.2): run the vertex-coloring machinery
on the line graph and apply Theorem 5 for the line-graph family.  We
execute on the physical network through the dilation-2 virtual layer, so
reported rounds are physical rounds.  Δ(L(G)) ≤ 2Δ-2, so the λ versions
yield ≤ 2λΔ-ish edge colors (the O(Δ^{1+ε})/O(Δ) shapes of BE'11 at our
running times, D4).
"""

from __future__ import annotations

from repro.algorithms.edge_coloring import edge_coloring_domain
from repro.algorithms.lambda_coloring import (
    lambda_coloring_nonuniform,
    lambda_colors_bound,
)
from repro.bench import build_graph, format_table, write_report
from repro.core import theorem5
from repro.graphs import families
from repro.problems import EDGE_COLORING

SIZES = (16, 32, 64)
LAMBDAS = (2, 4)


def test_table1_edge_coloring(benchmark):
    rows = []
    for n in SIZES:
        graph = build_graph(families.random_regular(n, 4, seed=3), seed=3)
        domain = edge_coloring_domain(graph)
        for lam in LAMBDAS:
            nu = lambda_coloring_nonuniform(lam)
            uniform = theorem5(
                nu.algorithm, nu.bound, lambda_colors_bound(lam)
            )
            result = uniform.run(domain, seed=5)
            ok = EDGE_COLORING.is_solution(graph, {}, result.outputs)
            rows.append(
                [
                    f"n={graph.n},λ={lam}",
                    graph.max_degree,
                    result.rounds,
                    result.colors_used,
                    "ok" if ok else "FAIL",
                ]
            )
            assert ok, EDGE_COLORING.violations(graph, {}, result.outputs)[:3]
    text = format_table(
        ["instance", "Δ(G)", "uniform physical rounds", "edge colors", "valid"],
        rows,
        title=(
            "E5 Table1[edge coloring] — paper: O(Δ^ε + log* n)/O(log Δ + "
            "log* n) via line graphs; ours: Theorem 5 on L(G) at dilation 2 "
            "(D4)"
        ),
    )
    write_report("E5_table1_edge_coloring", text)

    nu = lambda_coloring_nonuniform(2)
    uniform = theorem5(nu.algorithm, nu.bound, lambda_colors_bound(2))
    graph = build_graph(families.random_regular(32, 4, seed=4), seed=4)
    domain = edge_coloring_domain(graph)
    benchmark.pedantic(
        lambda: uniform.run(domain, seed=7), rounds=3, iterations=1
    )
