"""Engine throughput tracker: reference loop vs per-node CSR vs batch.

Measures the three execution strategies (DESIGN.md, backend contract +
D10 batch-step contract) on the workloads the reproduction actually
runs — Table-1 MIS and matching uniform transforms, plain Luby runs,
the cross-family workload sweep, incremental vs rebuild restriction,
and the matching-heavy dense line-graph substrate — and records
rounds/sec, messages/sec and the pairwise speedups into
``benchmarks/BENCH_engine.json``:

* ``reference`` — the seed-faithful specification stack;
* ``compiled`` — the CSR engine stepping per node (batch disabled);
* ``batch`` — the CSR engine with the batched frontier-step kernels.

``speedup`` is reference/compiled (the PR-1 metric), ``speedup_batch``
reference/batch, and ``batch_gain`` compiled/batch — the lever this
file exists to track for the per-virtual-node-bound workloads.

Usage
-----
``python benchmarks/bench_engine_throughput.py``            full suite, print table
``python benchmarks/bench_engine_throughput.py --update``   full suite, rewrite BENCH_engine.json
``python benchmarks/bench_engine_throughput.py --smoke``    quick subset; exit 1 if any
    recorded speedup regressed >20% against the committed baseline,
    exit 2 if the three strategies stopped being bit-identical

The smoke gate compares *speedups* (a machine-relative quantity), not
absolute times, so it is stable across runner hardware.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import random
import sys
import tempfile
import time
from contextlib import ExitStack
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.algorithms import TABLE1  # noqa: E402
from repro.algorithms.arboricity import h_partition  # noqa: E402
from repro.algorithms.fast_coloring import fast_coloring_rounds  # noqa: E402
from repro.algorithms.fast_mis import fast_mis  # noqa: E402
from repro.algorithms.luby import luby_mis  # noqa: E402
from repro.bench import WORKLOADS, build_graph  # noqa: E402
from repro.core.domain import VirtualDomain  # noqa: E402
from repro.core.alternating import AlternationDiverged  # noqa: E402
from repro.graphs import line_graph_spec  # noqa: E402
from repro.local import (  # noqa: E402
    FaultPlan,
    GraphDelta,
    SimGraph,
    byzantine_silent,
    crash_at,
    drop,
    garble,
    open_session,
    run,
    run_many,
    sample_plan,
    use_backend,
    use_batch,
    use_faults,
    use_roundfuse,
)
from repro.local import recovery  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"

#: A smoke run fails when a recorded speedup drops below this fraction
#: of the committed baseline's value.
REGRESSION_TOLERANCE = 0.80

BACKENDS = ("reference", "compiled", "batch")

#: Speedup ratios recorded per unit (numerator strategy / denominator).
RATIOS = (
    ("speedup", "reference", "compiled"),
    ("speedup_batch", "reference", "batch"),
    ("batch_gain", "compiled", "batch"),
    # Recovery unit (D15): checkpoint-off seconds / checkpoint-on
    # seconds — drops toward 0 as per-round checkpointing overhead
    # grows, so the smoke gate catches a snapshot-cost regression.
    ("checkpoint_gain", "checkpoint-off", "checkpoint-on"),
    # Fused unit (D16): b sequential solo runs / one b-lane fused
    # run_many — the multi-run dispatch amortization this PR exists
    # to track.  Only the dispatch-bound mis-fast row is gated; the
    # luby row (fused_gain_luby) is recorded as information — its solo
    # side is milliseconds-scale and too noisy for an 80% floor.
    ("fused_gain", "solo", "fused"),
    # Round-fused unit (D17): per-round batch loop seconds / fused-drive
    # seconds on the round-floor workloads (long fixed schedules of
    # cheap rounds) — the per-round Python floor this ratio tracks.
    ("roundfuse_gain", "batch", "roundfuse"),
    # Session unit (D18): stateless cold rebuild-per-request seconds /
    # live-session mutate+rerun seconds on a churn workload — the
    # incremental CSR patch win the live-graph service exists for.
    ("session_gain", "cold-rebuild", "session"),
)


def _atomic_write_text(path, text):
    """Temp-file + rename: a crashed or killed ``--update`` run can
    never leave a truncated ``BENCH_engine.json`` behind."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _backend_context(backend):
    """Context stack pinning one of the three execution strategies."""
    stack = ExitStack()
    if backend == "reference":
        stack.enter_context(use_backend("reference"))
    else:
        stack.enter_context(use_backend("compiled"))
        stack.enter_context(use_batch(backend == "batch"))
    return stack


def _best(fn, reps):
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def _per_backend(make_fn, reps, backends=BACKENDS, warm=True):
    """Time ``make_fn(backend)()`` under each strategy; return stats."""
    out = {}
    for backend in backends:
        with _backend_context(backend):
            fn, meta = make_fn(backend)
            if warm:
                fn()  # warm caches (CSR compile, schedule memos)
            seconds = _best(fn, reps)
        entry = {"seconds": round(seconds, 6)}
        entry.update(meta())
        if "rounds" in entry and entry["seconds"] > 0:
            entry["rounds_per_sec"] = round(entry["rounds"] / entry["seconds"], 1)
        if "messages" in entry and entry["seconds"] > 0:
            entry["messages_per_sec"] = round(
                entry["messages"] / entry["seconds"], 1
            )
        out[backend] = entry
    for name, top, bottom in RATIOS:
        if top in out and bottom in out:
            out[name] = round(
                out[top]["seconds"] / out[bottom]["seconds"], 2
            )
    return out


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------

def unit_plain_luby(n, seeds, reps):
    """bench_table1_luby-style: plain uniform Luby runs, gnp-sparse."""
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=2), seed=2)
    algo = luby_mis()

    def make(backend):
        state = {}

        def fn():
            rounds = messages = 0
            for seed in seeds:
                result = run(graph, algo, seed=seed)
                rounds += result.rounds
                messages += result.messages
            state["rounds"] = rounds
            state["messages"] = messages

        return fn, lambda: dict(state)

    return _per_backend(make, reps)


def unit_table1_row(row, n, seeds, reps):
    """A Table-1 row's uniform transform (alternation) on gnp-sparse.

    Records the per-step backend attribution of the last run
    (``StepRecord.backends`` aggregated by ``backend_summary``), so the
    committed baseline shows whether an alternation's guess *and*
    pruning runs actually took the batched path.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=2), seed=2)

    def make(backend):
        _, _, uniform = TABLE1[row].build()
        state = {}

        def fn():
            rounds = steps = 0
            for seed in seeds:
                result = uniform.run(graph, seed=seed)
                rounds += result.rounds
                steps += len(result.steps)
            state["rounds"] = rounds
            state["steps"] = steps
            state["step_backends"] = {
                key: entry["steps"]
                for key, entry in sorted(result.backend_summary().items())
            }

        return fn, lambda: dict(state)

    return _per_backend(make, reps)


def unit_workload_sweep(n, reps):
    """One Luby run per workload family — cross-family throughput."""
    graphs = [
        build_graph(WORKLOADS[name](n, seed=3), seed=3)
        for name in sorted(WORKLOADS)
    ]
    algo = luby_mis()

    def make(backend):
        state = {}

        def fn():
            rounds = messages = 0
            for graph in graphs:
                result = run(graph, algo, seed=5)
                rounds += result.rounds
                messages += result.messages
            state["rounds"] = rounds
            state["messages"] = messages

        return fn, lambda: dict(state)

    return _per_backend(make, reps)


def unit_subgraph_cascade(n, reps):
    """Alternation-style restriction cascade: keep 85% per step.

    The reference backend takes the rebuild path, the compiled/batch
    backends the incremental CSR path (both produce identical graphs —
    the equivalence suite asserts it); ``ops`` counts restriction steps.
    """
    base = build_graph(WORKLOADS["gnp-sparse"](n, seed=4), seed=4)

    def make(backend):
        state = {}

        def fn():
            graph = base
            ops = 0
            while graph.n > 8:
                keep = set(list(graph.nodes)[: max(8, (graph.n * 85) // 100)])
                graph = graph.subgraph(keep)
                ops += 1
            state["ops"] = ops
            state["ops_per_sec"] = None  # filled below from seconds

        return fn, lambda: dict(state)

    out = _per_backend(make, reps)
    for backend in BACKENDS:
        entry = out.get(backend)
        if entry and entry.get("ops"):
            entry["ops_per_sec"] = round(entry["ops"] / entry["seconds"], 1)
    return out


def unit_virtual_linegraph(n, reps):
    """Line-graph MIS through the virtual layer (matching-row substrate)."""
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=6), seed=6)
    spec = line_graph_spec(graph)
    algo = luby_mis()

    def make(backend):
        state = {}

        def fn():
            domain = VirtualDomain(graph, spec)
            outputs, charged = domain.run_restricted(algo, 40, seed=9)
            state["rounds"] = charged
            state["virtual_nodes"] = len(outputs)

        return fn, lambda: dict(state)

    return _per_backend(make, reps)


#: Shard counts recorded by the sharded sweep column.
SHARD_SWEEP = (1, 2, 4)
#: Boundary channels recorded by the sharded sweep column.
SHARD_CHANNELS = ("inline", "mp", "mp-pooled")


def unit_sharded_alternation(n, seeds, reps, ks=SHARD_SWEEP,
                             channels=SHARD_CHANNELS):
    """Theorem-2 Luby alternation on the partitioned engine (D12/D13).

    Sweeps the shard count under every boundary channel and records
    each column's gain over the single-process batch path
    (``sharded-<channel>-k<k>_gain`` = batch seconds / sharded
    seconds).  The in-process channel serializes the shards and mostly
    measures partition/exchange overhead; ``mp`` pays one fork per
    shard per run; ``mp-pooled`` dispatches every run of the
    alternation to the persistent worker pool with shared-memory halo
    exchange (D13) — the scale-out lever, needing a multi-core runner
    for absolute wins over single-process batch.  Every column is
    checked bit-identical to the batch run before it is recorded — a
    baseline can never commit a diverging shard configuration.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=2), seed=2)

    def measure():
        _, _, uniform = TABLE1["luby"].build()
        state = {}

        def fn():
            rounds = steps = 0
            signature = []
            for seed in seeds:
                result = uniform.run(graph, seed=seed)
                rounds += result.rounds
                steps += len(result.steps)
                signature.append((result.rounds, result.outputs))
            state["rounds"] = rounds
            state["steps"] = steps
            state["step_backends"] = {
                key: entry["steps"]
                for key, entry in sorted(result.backend_summary().items())
            }
            state["signature"] = signature

        fn()  # warm caches (CSR compile, partition plans)
        seconds = _best(fn, reps)
        signature = state.pop("signature")
        entry = {"seconds": round(seconds, 6)}
        entry.update(state)
        return entry, signature

    out = {}
    with use_backend("compiled", rng="counter"), use_batch(True):
        out["batch"], base_signature = measure()
    for k in ks:
        for channel in channels:
            with use_backend(
                "sharded", rng="counter", shards=k, shard_channel=channel
            ):
                entry, signature = measure()
            if signature != base_signature:
                raise SystemExit(
                    f"sharded(k={k}, {channel}) diverged from batch — "
                    "refusing to record"
                )
            key = f"sharded-{channel}-k{k}"
            out[key] = entry
            out[f"{key}_gain"] = round(
                out["batch"]["seconds"] / entry["seconds"], 2
            )
    return out


def unit_fused_sweep(n, b, reps):
    """Fused multi-run engine (D16): one b-lane slab vs b solo runs.

    The seed-sweep workload the fused engine exists for — ``b``
    independent runs of a Table-1 MIS row over the same gnp-sparse
    graph, measured as ``b`` sequential solo runs on the batch path
    (``solo``) and as one :func:`repro.local.run_many` call packing
    them into block-diagonal slabs of up to ``b`` lanes (``fused``).

    Two rows bracket the regime (DESIGN.md D16): ``mis-fast`` (the
    Kuhn–Wattenhofer coloring + color-class sweep, hundreds of light
    lockstep rounds — the per-round *dispatch*-dominated case fusion
    amortizes) is the tracked ``fused_gain``; ``luby`` (a handful of
    heavy edge-slab rounds, per-round *vector*-dominated, so the slab
    step replicates each lane's work and only the dispatch share
    amortizes) is recorded alongside as ``fused_gain_luby``.  Every
    lane is checked bit-identical to its solo run before anything is
    recorded — a baseline can never commit a diverging fused
    configuration.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=2), seed=2)
    mis_guesses = {"m": graph.edge_count(), "Delta": graph.max_degree}
    rows = (
        ("", fast_mis(), mis_guesses),
        ("_luby", luby_mis(), None),
    )
    seeds = tuple(range(1, b + 1))

    def signature_of(results):
        return [
            (r.rounds, r.messages, r.outputs, r.finish_round)
            for r in results
        ]

    out = {}
    with use_backend("fused", rng="counter", lanes=b), use_batch(True):
        for suffix, algo, guesses in rows:
            opts = {"guesses": guesses} if guesses else {}
            jobs = [(graph, algo, dict(opts, seed=s)) for s in seeds]
            state = {}

            def solo_fn():
                results = [
                    run(graph, algo, seed=s, guesses=guesses) for s in seeds
                ]
                state["rounds"] = sum(r.rounds for r in results)
                state["messages"] = sum(r.messages for r in results)
                state["signature"] = signature_of(results)

            def fused_fn():
                results = run_many(jobs)
                state["rounds"] = sum(r.rounds for r in results)
                state["messages"] = sum(r.messages for r in results)
                state["signature"] = signature_of(results)

            signatures = {}
            for name, fn in (("solo", solo_fn), ("fused", fused_fn)):
                fn()  # warm caches (CSR compile, slab build)
                seconds = _best(fn, reps)
                signatures[name] = state.pop("signature")
                entry = {"seconds": round(seconds, 6), "lanes": b}
                entry.update(state)
                if entry["seconds"] > 0:
                    entry["rounds_per_sec"] = round(
                        entry["rounds"] / entry["seconds"], 1
                    )
                out[name + suffix] = entry
            if signatures["solo"] != signatures["fused"]:
                raise SystemExit(
                    f"fused(b={b}) {algo.name!r} lanes diverged from solo "
                    "runs — refusing to record"
                )
            out["fused_gain" + suffix] = round(
                out["solo" + suffix]["seconds"]
                / out["fused" + suffix]["seconds"],
                2,
            )
    return out


def unit_roundfuse(n, reps, alt_n=150):
    """Round-fused phase drivers (D17): per-round batch vs fused drive.

    The round-floor scenario this PR exists for, in two halves timed
    together: H-partition peeling with a deliberately stretched ``ñ``
    guess (``n⁸``, the overshooting-guess regime the Theorem-2 ladder
    produces naturally → an ~8× longer fixed lockstep schedule of cheap
    bincount rounds, the regime where the fused driver's fixed-point
    early exit plus the hoisted per-round ledger bookkeeping dominate),
    and the Theorem-2 Luby alternation at small ``alt_n`` (every
    ``B_i = (A_i ; P)`` step is a handful of cheap pruner/decision
    rounds, so per-round Python dispatch is most of the wall clock).

    ``batch`` forces the per-round loop (``use_roundfuse(False)``);
    ``roundfuse`` lets the fused drivers run.  Both configurations are
    checked bit-identical before anything is recorded — a baseline can
    never commit a diverging fused drive.  ``roundfuse_gain`` =
    batch seconds / roundfuse seconds is the tracked (smoke-gated)
    number.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=4), seed=4)
    small = build_graph(WORKLOADS["gnp-sparse"](alt_n, seed=4), seed=4)
    peel = h_partition()
    peel_guesses = {"a": 2, "n": n**8}

    out = {}
    signatures = {}
    with use_backend("compiled", rng="counter"), use_batch(True):
        for key, fused_on in (("batch", False), ("roundfuse", True)):
            with use_roundfuse(fused_on):
                state = {}

                def fn():
                    rounds = messages = 0
                    signature = []
                    for seed in (1, 2):
                        got = run(
                            graph, peel, seed=seed, guesses=peel_guesses
                        )
                        rounds += got.rounds
                        messages += got.messages
                        signature.append(
                            (got.rounds, got.messages, got.outputs,
                             got.finish_round)
                        )
                    _, _, uniform = TABLE1["luby"].build()
                    alt = uniform.run(small, seed=1)
                    rounds += alt.rounds
                    signature.append((alt.rounds, alt.outputs))
                    state["rounds"] = rounds
                    state["messages"] = messages
                    state["signature"] = signature

                fn()  # warm caches (CSR compile, schedule memos)
                seconds = _best(fn, reps)
                signatures[key] = state.pop("signature")
                entry = {"seconds": round(seconds, 6)}
                entry.update(state)
                if entry["seconds"] > 0:
                    entry["rounds_per_sec"] = round(
                        entry["rounds"] / entry["seconds"], 1
                    )
                out[key] = entry
    if signatures["batch"] != signatures["roundfuse"]:
        raise SystemExit(
            "round-fused drive diverged from the per-round batch loop — "
            "refusing to record"
        )
    out["roundfuse_gain"] = round(
        out["batch"]["seconds"] / out["roundfuse"]["seconds"], 2
    )
    return out


def unit_recovery_checkpoint(n, seeds, reps, k=2, channel="mp"):
    """Round-checkpoint cost of the self-healing shard channel (D15).

    Runs the Theorem-2 Luby alternation on the sharded engine twice —
    once with per-round checkpointing on (the default: the parent
    retains a pickled snapshot of every shard after every round, which
    is what makes surgical worker recovery possible) and once with it
    forced off — and records ``checkpoint_gain`` (off seconds / on
    seconds) plus the overhead percentage.  Both runs are checked
    bit-identical before anything is recorded: checkpointing is pure
    observation and must never change results.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=2), seed=2)

    def measure():
        _, _, uniform = TABLE1["luby"].build()
        state = {}

        def fn():
            rounds = 0
            signature = []
            for seed in seeds:
                result = uniform.run(graph, seed=seed)
                rounds += result.rounds
                signature.append((result.rounds, result.outputs))
            state["rounds"] = rounds
            state["signature"] = signature

        fn()  # warm caches (CSR compile, partition plans)
        seconds = _best(fn, reps)
        signature = state.pop("signature")
        entry = {"seconds": round(seconds, 6)}
        entry.update(state)
        return entry, signature

    out = {}
    with use_backend(
        "sharded", rng="counter", shards=k, shard_channel=channel
    ):
        out["checkpoint-on"], on_signature = measure()
    saved = recovery.CHECKPOINTS_ENABLED
    recovery.CHECKPOINTS_ENABLED = False
    try:
        with use_backend(
            "sharded", rng="counter", shards=k, shard_channel=channel
        ):
            out["checkpoint-off"], off_signature = measure()
    finally:
        recovery.CHECKPOINTS_ENABLED = saved
    if on_signature != off_signature:
        raise SystemExit(
            "checkpointing changed sharded results — refusing to record"
        )
    out["checkpoint_gain"] = round(
        out["checkpoint-off"]["seconds"] / out["checkpoint-on"]["seconds"], 2
    )
    out["checkpoint_overhead_pct"] = round(
        100.0
        * (out["checkpoint-on"]["seconds"] / out["checkpoint-off"]["seconds"] - 1.0),
        1,
    )
    return out


def _churn_script(base, requests, churn, seed):
    """Deterministic edge-churn request stream over ``base``.

    Returns ``[(delta, snapshot), ...]``: per request, a small
    :class:`GraphDelta` (a few edge deletes + inserts, node set fixed)
    plus a networkx snapshot of the topology *after* that delta — the
    full-graph payload a stateless service would have to re-ingest.
    """
    import networkx as nx

    rnd = random.Random(seed)
    truth = nx.Graph(base)
    nodes = list(truth.nodes())
    script = []
    for _ in range(requests):
        dels = rnd.sample(list(truth.edges()), churn // 2)
        gone = {frozenset(e) for e in dels}
        adds = []
        while len(adds) < churn - len(dels):
            u, v = rnd.sample(nodes, 2)
            key = frozenset((u, v))
            if truth.has_edge(u, v) or key in gone:
                continue
            if key in {frozenset(e) for e in adds}:
                continue
            adds.append((u, v))
        truth.remove_edges_from(dels)
        truth.add_edges_from(adds)
        script.append((
            GraphDelta(add_edges=adds, del_edges=dels),
            nx.Graph(truth),
        ))
    return script


def unit_session_churn(n, reps, requests=8, churn=4):
    """Live-graph session service vs stateless rebuilds (D18).

    The serving scenario the session exists for: a long-lived engine
    holds a graph under churn, and each request applies a small delta
    (``churn`` edge flips) then re-answers a Luby MIS query.  The
    ``session`` side mutates one :class:`SimulationSession` in place —
    incremental CSR row patch, no networkx round-trip, no identity
    re-sort.  The ``cold-rebuild`` side is what the batch engines force
    on a service: re-ingest the whole mutated topology from networkx
    and run from scratch, every request.

    Every request is checked bit-identical across the two sides —
    outputs and round counts — before anything is timed; divergence
    refuses to record.  ``session_gain`` (cold seconds / session
    seconds) is the acceptance-gated ≥3× number.
    """
    base = WORKLOADS["gnp-sparse"](n, seed=21)
    graph = build_graph(base, seed=21)
    idents = dict(graph.ident)
    script = _churn_script(base, requests, churn, seed=97)
    algo = luby_mis()

    def session_once():
        signature = []
        with open_session(graph, rng="counter") as session:
            for delta, _ in script:
                session.mutate(delta)
                result = session.rerun(algo, seed=5)
                signature.append((result.rounds, result.outputs))
        return signature

    def cold_once():
        signature = []
        for _, snapshot in script:
            rebuilt = SimGraph.from_networkx(snapshot, idents=idents)
            result = run(rebuilt, algo, seed=5, rng="counter")
            signature.append((result.rounds, result.outputs))
        return signature

    out = {}
    with _backend_context("batch"):
        # Warm-up doubles as the identity gate: per request, the live
        # session's answer must equal the cold rebuild's, bit for bit.
        warm = session_once()
        if warm != cold_once():
            raise SystemExit(
                "live-session reruns diverged from cold rebuilds — "
                "refusing to record"
            )
        state = {}
        rounds = sum(r for r, _ in warm)
        out["session"] = {
            "seconds": round(
                _best(lambda: state.update(s=session_once()), reps), 6
            ),
            "requests": len(script),
            "rounds": rounds,
        }
        out["cold-rebuild"] = {
            "seconds": round(
                _best(lambda: state.update(c=cold_once()), reps), 6
            ),
            "requests": len(script),
            "rounds": rounds,
        }
        if state["s"] != state["c"]:
            raise SystemExit(
                "timed session/cold signatures diverged — refusing to record"
            )
    out["session_gain"] = round(
        out["cold-rebuild"]["seconds"] / out["session"]["seconds"], 2
    )
    return out


#: Adversarial node profiles swept by the degradation axis (D14).
FAULT_PROFILES = {
    "drop": lambda: drop(0.5),        # faulty senders drop half their edges
    "garble": lambda: garble(0.5),    # faulty senders corrupt half their edges
    "silent": byzantine_silent,       # faulty senders never speak
    "crash": lambda: crash_at(2),     # faulty nodes die at round 2, output None
}

#: Fractions of the node set sampled into each profile.
FAULT_RATES = (0.05, 0.2)


def _mis_quality(graph, outputs):
    """Violation counts of an output map read as an MIS indicator.

    Returns ``(independence, maximality)``: edges with both endpoints
    claiming membership, and non-members with no member neighbour.  A
    fault-free alternation output scores (0, 0); under injection these
    are the solution-quality axis of the degradation bench.
    """
    indep = maximal = 0
    for u in graph.nodes:
        if outputs.get(u) == 1:
            for _, v, _ in graph.adj[u]:
                if outputs.get(v) == 1 and graph.ident[u] < graph.ident[v]:
                    indep += 1
        elif not any(outputs.get(v) == 1 for _, v, _ in graph.adj[u]):
            maximal += 1
    return indep, maximal


def unit_faults_alternation(n, seeds, reps, rates=FAULT_RATES,
                            profiles=("drop", "garble", "silent", "crash")):
    """Degradation axis (D14): Theorem-2 Luby alternation under faults.

    Sweeps fault rate × adversarial profile over the gnp-sparse graph
    and records how the alternation degrades relative to the ``honest``
    baseline column: wall time, realized rounds/steps, the MIS-validity
    of the final output (independence/maximality violation counts), and
    ``diverged`` — seeds where the alternation hit its iteration cap.
    Drop/garble/silence slow convergence (more alternation steps) and
    can leak violations past the pruner — the pruner's own verdict
    exchange is injected too, so its safety erodes with the fault rate;
    crash profiles stall the alternation outright — crashed nodes
    output ``None``, are kept by the pruner every iteration, and the
    run diverges.  That stall is the *expected* datapoint, not an error.

    Before recording, one faulted probe is diffed across the reference,
    compiled, batch and sharded strategies — degradation numbers are a
    pure function of ``(graph, algo, seed, plan)``, never of the engine
    (the D14 determinism contract), and a baseline can never commit a
    diverging injection path.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=4), seed=4)

    probe_plan = sample_plan(graph, drop(0.5), 0.1, seed=17)
    probe = []
    for backend in BACKENDS:
        with _backend_context(backend):
            probe.append(
                run(graph, luby_mis(), seed=1, rng="counter",
                    faults=probe_plan)
            )
    probe.append(
        run(graph, luby_mis(), seed=1, rng="counter", faults=probe_plan,
            shards=2, shard_channel="inline")
    )
    first = probe[0]
    for other in probe[1:]:
        if (
            first.outputs != other.outputs
            or first.rounds != other.rounds
            or first.messages != other.messages
            or first.finish_round != other.finish_round
        ):
            raise SystemExit(
                "faulted run diverged across strategies — refusing to record"
            )

    def measure(plan):
        _, _, uniform = TABLE1["luby"].build()
        state = {}

        def fn():
            rounds = steps = diverged = 0
            outputs = None
            for seed in seeds:
                try:
                    with use_faults(plan):
                        result = uniform.run(graph, seed=seed)
                except AlternationDiverged:
                    diverged += 1
                    continue
                rounds += result.rounds
                steps += len(result.steps)
                outputs = result.outputs
            state["rounds"] = rounds
            state["steps"] = steps
            state["diverged"] = diverged
            state["outputs"] = outputs

        fn()  # warm caches (CSR compile, schedule memos)
        seconds = _best(fn, reps)
        outputs = state.pop("outputs")
        entry = {"seconds": round(seconds, 6)}
        entry.update(state)
        if outputs is not None:
            indep, maximal = _mis_quality(graph, outputs)
            entry["independence_violations"] = indep
            entry["maximality_violations"] = maximal
        return entry

    out = {}
    with use_backend("compiled", rng="counter"), use_batch(True):
        out["honest"] = measure(None)
        for name in profiles:
            for rate in rates:
                plan = sample_plan(
                    graph, FAULT_PROFILES[name](), rate, seed=13
                )
                entry = measure(plan)
                entry["faulty_nodes"] = len(plan.profiles)
                out[f"{name}-r{rate}"] = entry
    return out


def unit_matching_dense(n, reps):
    """Matching-heavy scenario: fast MIS over a *dense* line graph.

    Denser gnp (average degree ~24) and larger n than the Table-1 unit,
    so the per-virtual-node algorithm floor the batch kernels remove is
    unmistakable.  One full-budget restricted run of the matching row's
    inner engine; the reference column is omitted (the seed stack needs
    minutes here) — ``batch_gain`` is the tracked number.
    """
    graph = build_graph(WORKLOADS["gnp-dense"](n, seed=6), seed=6)
    spec = line_graph_spec(graph)
    guesses = {
        "Delta": max(1, 2 * graph.max_degree - 2),
        "m": (graph.max_ident + 2) ** 2,
    }
    budget = (
        fast_coloring_rounds(guesses["m"], guesses["Delta"])
        + guesses["Delta"]
        + 2
    )

    def make(backend):
        state = {}

        def fn():
            domain = VirtualDomain(graph, spec)
            outputs, charged = domain.run_restricted(
                fast_mis(), budget, seed=9, guesses=guesses
            )
            state["rounds"] = charged
            state["virtual_nodes"] = len(outputs)
            state["in_set"] = sum(1 for v in outputs.values() if v == 1)

        return fn, lambda: dict(state)

    return _per_backend(
        make, reps, backends=("compiled", "batch"), warm=False
    )


def check_bit_identity(n=120):
    """Quick identity check across every stepping strategy (smoke net).

    Covers the three single-process strategies plus the sharded engine
    (both steppings through ``shards=3``, both boundary channels) — the
    ``sharded(k) ≡ batch ≡ compiled ≡ reference`` contract of D12.
    """
    graph = build_graph(WORKLOADS["gnp-sparse"](n, seed=8), seed=8)
    guesses = {"m": graph.max_ident, "Delta": graph.max_degree}
    jobs = (
        (luby_mis(), None),      # shard-certified kernel
        (fast_mis(), guesses),   # shard-certified since D13
    )
    for rng in ("counter", "mt"):
        for algo, g in jobs:
            results = []
            for backend in BACKENDS:
                with _backend_context(backend):
                    results.append(
                        run(graph, algo, seed=3, guesses=g, rng=rng)
                    )
            for channel in SHARD_CHANNELS:
                results.append(
                    run(
                        graph, algo, seed=3, guesses=g, rng=rng,
                        shards=3, shard_channel=channel,
                    )
                )
            first = results[0]
            for other in results[1:]:
                if (
                    first.outputs != other.outputs
                    or first.rounds != other.rounds
                    or first.messages != other.messages
                    or first.finish_round != other.finish_round
                ):
                    return False
    # Faulted identity (D14): an adversarial plan mixing every profile
    # class must stay bit-identical across every strategy and boundary
    # channel — fault fates come from the identity-keyed counter RNG,
    # never from engine layout or worker scheduling.
    nodes = sorted(graph.nodes)
    plan = FaultPlan({
        nodes[1]: crash_at(1),
        nodes[3]: byzantine_silent(),
        nodes[5]: drop(0.5),
        nodes[7]: garble(0.5),
    })
    faulted = []
    for backend in BACKENDS:
        with _backend_context(backend):
            faulted.append(
                run(graph, luby_mis(), seed=3, rng="counter", faults=plan)
            )
    for channel in SHARD_CHANNELS:
        faulted.append(
            run(
                graph, luby_mis(), seed=3, rng="counter", faults=plan,
                shards=3, shard_channel=channel,
            )
        )
    first = faulted[0]
    for other in faulted[1:]:
        if (
            first.outputs != other.outputs
            or first.rounds != other.rounds
            or first.messages != other.messages
            or first.finish_round != other.finish_round
        ):
            return False
    # Fused identity (D16): every lane of a multi-run slab — mixed
    # algorithms, mixed seeds — must equal its solo run under both rng
    # schemes; a lane divergence fails the gate with exit 2.
    algo = luby_mis()
    for rng in ("counter", "mt"):
        lanes = [(graph, algo, {"seed": s}) for s in (3, 4, 5)]
        lanes.append((graph, fast_mis(), {"guesses": guesses, "seed": 3}))
        fused = run_many(lanes, rng=rng)
        for (g, a, opts), got in zip(lanes, fused):
            solo = run(
                g, a, seed=opts["seed"], guesses=opts.get("guesses"), rng=rng
            )
            if (
                solo.outputs != got.outputs
                or solo.rounds != got.rounds
                or solo.messages != got.messages
                or solo.finish_round != got.finish_round
            ):
                return False
    # Round-fused identity (D17): every roundfuse-certified kernel
    # driven fused must equal its per-round batch run — phase-scheduled
    # (h-partition) and fixed-point (Luby family) drivers both, under
    # both rng schemes.
    rf_jobs = jobs + ((h_partition(), {"a": 2, "n": 1 << 24}),)
    for rng in ("counter", "mt"):
        for algo, g in rf_jobs:
            pair = []
            for fused_on in (True, False):
                with use_backend("compiled", rng=rng), use_batch(True), \
                        use_roundfuse(fused_on):
                    pair.append(run(graph, algo, seed=3, guesses=g, rng=rng))
            fused_run, plain = pair
            if (
                fused_run.outputs != plain.outputs
                or fused_run.rounds != plain.rounds
                or fused_run.messages != plain.messages
                or fused_run.finish_round != plain.finish_round
            ):
                return False
    # Whole-alternation identity: guess runs AND pruner runs must agree
    # across every stepping strategy (D11 pruner batch contract, D12
    # sharded contract).  The rng scheme is pinned — the strategies are
    # only comparable under the same random streams.
    alternations = []
    for backend in BACKENDS:
        base = "reference" if backend == "reference" else "compiled"
        with use_backend(base, rng="counter"), use_batch(backend == "batch"):
            _, _, uniform = TABLE1["luby"].build()
            alternations.append(uniform.run(graph, seed=3))
    for channel in ("inline", "mp-pooled"):
        with use_backend(
            "sharded", rng="counter", shards=3, shard_channel=channel
        ):
            _, _, uniform = TABLE1["luby"].build()
            alternations.append(uniform.run(graph, seed=3))
    first = alternations[0]
    for other in alternations[1:]:
        if first.outputs != other.outputs or first.rounds != other.rounds:
            return False
    # Live-session identity (D18): a mutate-then-rerun on a long-lived
    # session must equal a cold run on a from-scratch rebuild of the
    # mutated topology — per strategy, per boundary channel, and per
    # fused lane.  The session patches the CSR row slices incrementally,
    # so this is the gate that the patch path stays bit-exact.
    truth = graph.to_networkx()
    gone = next(iter(truth.edges()))
    grown = next(
        (a, b)
        for a in nodes
        for b in nodes
        if a < b and not truth.has_edge(a, b)
    )
    fresh, fresh_ident = max(nodes) + 1, graph.max_ident + 11
    delta = GraphDelta(
        add_nodes={fresh: fresh_ident},
        del_edges=[gone],
        add_edges=[grown, (fresh, nodes[0])],
    )
    truth.remove_edge(*gone)
    truth.add_node(fresh)
    truth.add_edge(*grown)
    truth.add_edge(fresh, nodes[0])
    idents = dict(graph.ident)
    idents[fresh] = fresh_ident
    oracle = SimGraph.from_networkx(truth, idents=idents)
    with open_session(graph, rng="counter") as session:
        session.mutate(delta)
        pairs = []
        for backend in BACKENDS:
            with _backend_context(backend):
                pairs.append((
                    session.rerun(luby_mis(), seed=3),
                    run(oracle, luby_mis(), seed=3, rng="counter"),
                ))
        for channel in SHARD_CHANNELS:
            pairs.append((
                session.rerun(
                    luby_mis(), seed=3, backend="sharded", shards=3,
                    shard_channel=channel,
                ),
                run(
                    oracle, luby_mis(), seed=3, rng="counter",
                    shards=3, shard_channel=channel,
                ),
            ))
        live_lanes = session.rerun_many(
            [(luby_mis(), {"seed": s}) for s in (3, 4)]
        )
        cold_lanes = run_many(
            [(oracle, luby_mis(), {"seed": s}) for s in (3, 4)],
            rng="counter",
        )
        pairs.extend(zip(live_lanes, cold_lanes))
    for live, cold in pairs:
        if (
            live.outputs != cold.outputs
            or live.rounds != cold.rounds
            or live.messages != cold.messages
            or live.finish_round != cold.finish_round
        ):
            return False
    return True


def full_suite():
    return {
        "table1-mis-n2000": unit_table1_row("mis-nonly", 2000, (1, 2, 3), reps=3),
        "table1-luby-n2000": unit_plain_luby(2000, (1, 2, 3, 4, 5), reps=3),
        "table1-luby-wrap-n2000": unit_table1_row("luby", 2000, (1,), reps=3),
        "table1-matching-n2000": unit_table1_row("matching", 2000, (1,), reps=1),
        # Pruning-heavy alternation: multi-seed Theorem-2 Luby pipeline,
        # where every step runs the P(2,1) pruner — the floor the D11
        # pruner kernels remove (batch_gain is the tracked number).
        "uniform-alternation-n2000": unit_table1_row(
            "luby", 2000, (1, 2, 3), reps=3
        ),
        # Arboricity orchestration: H-partition peeling + nested uniform
        # fast-MIS per class + per-step MIS pruning, all batched.
        "arboricity-n1200": unit_table1_row(
            "mis-arb-product", 1200, (1,), reps=3
        ),
        "matching-dense-n1800": unit_matching_dense(1800, reps=1),
        # Fused multi-run engine (D16): 32-seed Table-1 MIS sweeps as
        # one block-diagonal slab vs 32 sequential solo batch runs.
        # The n=60 instance is the dispatch-floor regime the engine
        # exists for (the mis-fast row's Linial fallback runs thousands
        # of light lockstep rounds there, so per-round Python dispatch
        # dominates and fusing b runs amortizes it ~1/b) — fused_gain
        # on that row is the acceptance-gated ≥4× number.  The n=500
        # instance brackets the other end: per-round edge-slab vector
        # work dominates, each lane's work is replicated in the slab,
        # and only the dispatch share amortizes.
        "fused-sweep-n60xb32": unit_fused_sweep(60, 32, reps=3),
        "fused-sweep-n500xb32": unit_fused_sweep(500, 32, reps=3),
        # Round-fused drivers (D17): the per-round Python floor on
        # long-fixed-schedule workloads — stretched H-partition peeling
        # plus a pruner-heavy small-n alternation, per-round batch loop
        # vs one fused drive per run (roundfuse_gain is the tracked
        # ≥3× number).
        "roundfloor-n1200": unit_roundfuse(1200, reps=3),
        # Partitioned engine (D12): shard-count sweep over both
        # boundary channels on the pruning-heavy Luby alternation.
        "sharded-alternation-n2000": unit_sharded_alternation(
            2000, (1, 2, 3), reps=3
        ),
        # Self-healing checkpoint overhead (D15): the same alternation
        # with per-round shard snapshots on vs off — the recovery
        # machinery's steady-state price, gated by checkpoint_gain.
        "recovery-checkpoint-n2000": unit_recovery_checkpoint(
            2000, (1, 2), reps=3
        ),
        # Live-graph session service (D18): per-request small delta +
        # rerun on a long-lived session vs a stateless cold rebuild of
        # the whole topology per request — session_gain is the
        # acceptance-gated ≥3× number, and the unit refuses to record
        # if a session rerun ever diverges from its rebuild oracle.
        "session-churn-n2000": unit_session_churn(2000, reps=3),
        # Adversarial degradation axis (D14): fault rate × profile sweep
        # on the same alternation — solution quality (MIS violation
        # counts) and round counts under injection; crash profiles stall
        # the alternation and are recorded as ``diverged`` seeds.
        "faults-alternation-n2000": unit_faults_alternation(
            2000, (1,), reps=1
        ),
        "workload-sweep-n600": unit_workload_sweep(600, reps=3),
        "subgraph-cascade-n2000": unit_subgraph_cascade(2000, reps=3),
        "virtual-linegraph-n400": unit_virtual_linegraph(400, reps=3),
    }


#: Smoke sizing: large enough that per-edge work dominates fixed
#: overheads (speedup ratios stabilize), small enough for a CI gate.
SMOKE_N = 800
SMOKE_REPS = 5

SMOKE_UNITS = {
    "smoke-mis": lambda: unit_table1_row("mis-nonly", SMOKE_N, (1,), reps=SMOKE_REPS),
    "smoke-luby": lambda: unit_plain_luby(SMOKE_N, (1, 2), reps=SMOKE_REPS),
    "smoke-subgraph": lambda: unit_subgraph_cascade(SMOKE_N, reps=SMOKE_REPS),
    "smoke-matching": lambda: unit_table1_row("matching", 300, (1,), reps=2),
    # Pruning-heavy gate unit: every step of the Theorem-2 Luby
    # alternation runs the P(2,1) pruner, so this guards the batched
    # pruner kernels (D11) the way smoke-matching guards the virtual
    # driver.
    "smoke-alternation": lambda: unit_table1_row(
        "luby", SMOKE_N, (1, 2), reps=SMOKE_REPS
    ),
    # Sharded-engine gate unit (D12): the recorded *_gain columns are
    # informational (worker wall clock flakes on shared runners); the
    # hard guard is check_bit_identity, which diffs the sharded engine
    # against the single-process strategies on every smoke run — a
    # shard regression fails fast with exit 2.
    "smoke-sharded": lambda: unit_sharded_alternation(
        SMOKE_N, (1,), reps=2, ks=(2,), channels=("inline", "mp")
    ),
    # Pooled-channel gate unit (D13): the persistent worker pool with
    # shared-memory halos, measured against fork-per-run mp on the same
    # alternation (bit-identity enforced by the unit itself and by
    # check_bit_identity above).
    "smoke-sharded-pooled": lambda: unit_sharded_alternation(
        SMOKE_N, (1,), reps=2, ks=(2,), channels=("mp", "mp-pooled")
    ),
    # Fault-injection gate unit (D14): drop + crash profiles on a small
    # alternation.  The recorded degradation numbers are informational;
    # the hard guards are the faulted job in check_bit_identity and the
    # unit's own cross-strategy probe, both of which fail the gate with
    # exit 2 / SystemExit if an injection path stops being bit-identical.
    "smoke-faults": lambda: unit_faults_alternation(
        400, (1,), reps=2, rates=(0.1,), profiles=("drop", "crash")
    ),
    # Fused gate unit (D16): the seed-sweep slab vs sequential solo
    # runs, at the dispatch-floor size where the amortization is the
    # point (mis-fast at n=60: thousands of light lockstep rounds).
    # fused_gain falling below 80% of the baseline means the multi-run
    # dispatch amortization regressed; the unit refuses to record if
    # any lane stops being bit-identical to its solo run, and
    # check_bit_identity diffs fused lanes on every smoke run.
    "smoke-fused": lambda: unit_fused_sweep(60, 32, reps=2),
    # Round-fused gate unit (D17): the same round-floor scenario at
    # smoke size.  roundfuse_gain falling below 80% of the baseline
    # means the fused drivers stopped amortizing the per-round floor;
    # the unit refuses to record if a fused drive stops being
    # bit-identical, and check_bit_identity diffs roundfuse on/off on
    # every smoke run.
    "smoke-roundfuse": lambda: unit_roundfuse(600, reps=2, alt_n=100),
    # Recovery gate unit (D15): per-round checkpointing on vs off on
    # the fork-per-run channel.  checkpoint_gain falling below 80% of
    # the baseline means shard snapshots got materially more expensive;
    # the unit itself refuses to record if checkpointing ever changes
    # results.
    "smoke-recovery": lambda: unit_recovery_checkpoint(
        SMOKE_N, (1,), reps=2
    ),
    # Live-session gate unit (D18): the churn scenario at smoke size.
    # session_gain falling below 80% of the baseline means the
    # incremental CSR patch stopped beating stateless rebuilds; the
    # unit refuses to record if a session rerun ever diverges from its
    # cold-rebuild oracle, and check_bit_identity diffs a mutated
    # session against a from-scratch build on every smoke run.
    "smoke-session": lambda: unit_session_churn(SMOKE_N, reps=2),
}


def smoke_suite(only=None):
    names = SMOKE_UNITS if only is None else {k: SMOKE_UNITS[k] for k in only}
    return {name: make() for name, make in names.items()}


def render(units):
    lines = [
        f"{'unit':24} {'reference':>11} {'compiled':>11} {'batch':>11}"
        f" {'ref/cmp':>8} {'ref/bat':>8} {'cmp/bat':>8}",
        "-" * 88,
    ]

    def cell(entry):
        if entry is None:
            return f"{'-':>11}"
        return f"{entry['seconds'] * 1000:9.1f}ms"

    def ratio(value):
        return f"{value:7.2f}x" if value is not None else f"{'-':>8}"

    for name, entry in units.items():
        lines.append(
            f"{name:24} {cell(entry.get('reference'))} {cell(entry.get('compiled'))}"
            f" {cell(entry.get('batch'))} {ratio(entry.get('speedup'))}"
            f" {ratio(entry.get('speedup_batch'))} {ratio(entry.get('batch_gain'))}"
        )
        shard_gains = {
            key: value
            for key, value in entry.items()
            if key.startswith("sharded-") and key.endswith("_gain")
        }
        if shard_gains:
            lines.append(
                "  shards vs batch: "
                + "  ".join(
                    f"{key[len('sharded-'):-len('_gain')]}={value:.2f}x"
                    for key, value in sorted(shard_gains.items())
                )
            )
        if "checkpoint_gain" in entry:
            lines.append(
                f"  checkpoint overhead: {entry['checkpoint_overhead_pct']:+.1f}%"
                f" (off/on {entry['checkpoint_gain']:.2f}x)"
            )
        if "fused_gain" in entry:
            lines.append(
                f"  fused vs solo: mis-fast={entry['fused_gain']:.2f}x"
                f"  luby={entry.get('fused_gain_luby', 0):.2f}x"
                f"  (b={entry['fused']['lanes']})"
            )
        if "roundfuse_gain" in entry:
            lines.append(
                f"  roundfuse vs per-round batch: "
                f"{entry['roundfuse_gain']:.2f}x"
            )
        if "session_gain" in entry:
            lines.append(
                f"  session vs cold rebuild: {entry['session_gain']:.2f}x"
                f" ({entry['session']['requests']} churn requests)"
            )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="quick regression gate")
    parser.add_argument("--update", action="store_true", help="rewrite the baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        if not check_bit_identity():
            print("FAIL: execution strategies are no longer bit-identical")
            return 2
        units = smoke_suite()
        print(render(units))
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; skipping regression gate")
            return 0
        baseline = json.loads(args.baseline.read_text()).get("smoke", {})

        def failing(measured):
            out = []
            for name, entry in measured.items():
                base = baseline.get(name)
                if not base:
                    continue
                for ratio_name, _, _ in RATIOS:
                    if ratio_name not in base or ratio_name not in entry:
                        continue
                    floor = REGRESSION_TOLERANCE * base[ratio_name]
                    if entry[ratio_name] < floor:
                        out.append(
                            (
                                name,
                                ratio_name,
                                entry[ratio_name],
                                floor,
                                base[ratio_name],
                            )
                        )
            return out

        failed = failing(units)
        if failed:
            # Wall-time ratios at this scale can wobble on shared CI
            # runners (noisy neighbours mid-timing-window); re-measure
            # just the failing units once before declaring a regression.
            names = sorted({name for name, *_ in failed})
            print(f"retrying after transient miss: {', '.join(names)}")
            retried = smoke_suite(only=names)
            print(render(retried))
            failed = failing(retried)
        if failed:
            print("FAIL: speedup regressed >20% vs baseline:")
            for name, ratio_name, speed, floor, base in failed:
                print(
                    f"  {name}.{ratio_name}: {speed:.2f}x < {floor:.2f}x "
                    f"(80% of baseline {base:.2f}x)"
                )
            return 1
        print("smoke ok: within 20% of committed baseline speedups")
        return 0

    if args.update and not check_bit_identity():
        # The smoke gate refuses divergence with exit 2; the baseline
        # writer must be equally strict — a committed BENCH_engine.json
        # can never describe strategies that stopped agreeing.
        print(
            "FAIL: execution strategies are no longer bit-identical — "
            "refusing to rewrite the baseline"
        )
        return 2
    units = full_suite()
    print(render(units))
    if args.update:
        smoke = smoke_suite()
        payload = {
            "meta": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cores": os.cpu_count(),
                "note": (
                    "best-of-N wall times. reference = seed-faithful stack "
                    "(dict loop, eager MT rng, rebuild restriction); "
                    "compiled = CSR engine stepping per node; batch = CSR "
                    "engine with batched frontier-step kernels (D10); "
                    "sharded-<channel>-k<k> = partitioned engine (D12), "
                    "inline channel serializes shards in-process, mp forks "
                    "one worker per shard per run, mp-pooled reuses the "
                    "persistent worker pool with shared-memory halo "
                    "exchange (D13; needs a multi-core runner for absolute "
                    "wins). speedup = reference/compiled, speedup_batch = "
                    "reference/batch, batch_gain = compiled/batch, "
                    "sharded-*_gain = batch/sharded, checkpoint_gain = "
                    "checkpoint-off/checkpoint-on (D15 round snapshots), "
                    "roundfuse_gain = per-round batch/round-fused drive "
                    "(D17 phase-fused + fixed-point drivers, pure-numpy "
                    "tier), session_gain = stateless cold "
                    "rebuild-per-request/live-session mutate+rerun (D18 "
                    "incremental CSR patch on a long-lived session)."
                ),
            },
            "units": units,
            "smoke": smoke,
        }
        _atomic_write_text(args.baseline, json.dumps(payload, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
