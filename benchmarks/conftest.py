"""Benchmark configuration: quick wall-time settings.

The scientific metric of every experiment is the *round count* (printed
tables, persisted under ``benchmarks/out/``); pytest-benchmark adds
wall-clock timings of representative simulations on top.
"""

from __future__ import annotations


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["model"] = "LOCAL-model simulator (rounds are the metric)"
