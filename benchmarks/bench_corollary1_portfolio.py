"""E9 — Corollary 1(i)+(ii): the Theorem-4 portfolio and the min{} shape.

Corollary 1(i) assembles a uniform MIS running in
min{2^O(√log n), O(Δ + log* n), f(a, n)} from uniformized members.  Two
complementary views are measured:

* **declared-bound crossover** — evaluating each member's declared
  bound at the instance's true parameters: the arg-min flips from the
  (Δ, m)-member on bounded-degree graphs to the n-only member on
  hub-dominated graphs, which is exactly the min{} structure of the
  corollary;
* **measured portfolio tracking** — the interleaved portfolio's rounds
  stay within a k-dependent constant of the best member's *measured*
  rounds on every instance (Theorem 4's guarantee).  Note the honest
  wrinkle (DESIGN.md D2): the hash-Luby substitute's realized behaviour
  is plain-Luby O(log n), far below its declared bound, so on *measured*
  rounds it wins everywhere at simulable scales; the paper's crossover
  is a statement about bounds, reproduced in the declared columns.

Corollary 1(ii) then converts the portfolio into a uniform
(deg+1)-coloring via the Section 5.1 clique product.
"""

from __future__ import annotations

from repro.algorithms import corollary1_portfolio
from repro.algorithms.fast_mis import fast_mis_bound, fast_mis_nonuniform
from repro.algorithms.hash_luby import hash_luby_bound, hash_luby_nonuniform
from repro.algorithms.coloring_via_mis import CliqueProductColoring
from repro.bench import build_graph, format_table, write_report
from repro.core import mis_pruning, theorem1
from repro.graphs import families
from repro.problems import MIS, deg_plus_one_coloring

SIZES = (48, 96, 192)


def suite():
    cases = []
    for n in SIZES:
        cases.append(
            (
                f"regular4-n{n}",
                build_graph(families.random_regular(n, 4, seed=1), seed=1),
            )
        )
        cases.append(
            (
                f"star-noise-n{n}",
                build_graph(
                    families.star_with_noise(n, n // 2, seed=2), seed=2
                ),
            )
        )
    return cases


def test_corollary1_portfolio(benchmark):
    member_fast = theorem1(fast_mis_nonuniform(), mis_pruning())
    member_nonly = theorem1(hash_luby_nonuniform(), mis_pruning())
    portfolio = corollary1_portfolio()
    f_fast = fast_mis_bound()
    f_nonly = hash_luby_bound()

    rows = []
    crossover_declared = set()
    for label, graph in suite():
        declared_fast = f_fast.value(
            {"Delta": max(1, graph.max_degree), "m": graph.max_ident}
        )
        declared_nonly = f_nonly.value({"n": graph.n})
        declared_winner = (
            "Δ-member" if declared_fast < declared_nonly else "n-member"
        )
        crossover_declared.add(declared_winner)
        fast_rounds = member_fast.run(graph, seed=3).rounds
        nonly_rounds = member_nonly.run(graph, seed=3).rounds
        combined = portfolio.run(graph, seed=3)
        assert MIS.is_solution(graph, {}, combined.outputs), label
        rows.append(
            [
                label,
                graph.max_degree,
                f"{declared_fast:.0f}",
                f"{declared_nonly:.0f}",
                declared_winner,
                fast_rounds,
                nonly_rounds,
                combined.rounds,
                f"{combined.rounds / min(fast_rounds, nonly_rounds):.1f}",
            ]
        )
    # The min{} structure must actually flip across the suite.
    assert crossover_declared == {"Δ-member", "n-member"}
    text = format_table(
        [
            "graph",
            "Δ",
            "f(Δ,m) declared",
            "f(n) declared",
            "declared winner",
            "Δ-member rounds",
            "n-member rounds",
            "portfolio",
            "portfolio/best",
        ],
        rows,
        title=(
            "E9 Corollary 1(i) — min{2^O(√log n), O(Δ+log* n), f(a,n)} via "
            "Theorem 4: declared-bound crossover + measured tracking "
            "(see DESIGN.md D2 for why measured rounds favour the n-member "
            "at these scales)"
        ),
    )

    graph = build_graph(families.gnp_avg_degree(64, 6.0, seed=5), seed=5)
    coloring = CliqueProductColoring(corollary1_portfolio())
    colors, rounds, _ = coloring.run(graph, seed=7)
    problem = deg_plus_one_coloring()
    assert problem.is_solution(graph, {}, colors)
    text += (
        f"\n\nE9b Corollary 1(ii): clique-product (deg+1)-coloring on "
        f"gnp n={graph.n}: {rounds} physical rounds, "
        f"max color {max(colors.values())}, valid=ok"
    )
    write_report("E9_corollary1_portfolio", text)

    graph = build_graph(families.star_with_noise(96, 48, seed=2), seed=2)
    benchmark.pedantic(
        lambda: corollary1_portfolio().run(graph, seed=4),
        rounds=3,
        iterations=1,
    )
