"""E4 — Table 1 row 5 + Corollary 1(iii): λ(Δ+1)-coloring via Theorem 5.

Paper claims reproduced here:

* the time/colors tradeoff — larger λ, fewer rounds (our shape is
  O(Δ²/λ + log* m), D3);
* the λ=∞ endpoint: a *uniform* O(Δ²)-coloring in O(log* n) rounds —
  Corollary 1(iii)'s headline, using pure Linial under Theorem 5;
* color counts stay within the declared O(g(Δ)).
"""

from __future__ import annotations

from repro.algorithms.lambda_coloring import (
    lambda_coloring_nonuniform,
    lambda_colors_bound,
    linial_scheme,
)
from repro.bench import build_graph, format_table, write_report
from repro.core import theorem5
from repro.graphs import families
from repro.problems import PROPER_COLORING

SIZES = (32, 64, 128)
LAMBDAS = (1, 2, 4, 8)


def run_lambda_suite():
    rows = []
    for n in SIZES:
        graph = build_graph(families.random_regular(n, 8, seed=1), seed=1)
        delta = graph.max_degree
        for lam in LAMBDAS:
            nu = lambda_coloring_nonuniform(lam)
            uniform = theorem5(
                nu.algorithm, nu.bound, lambda_colors_bound(lam)
            )
            result = uniform.run(graph, seed=3)
            ok = PROPER_COLORING.is_solution(graph, {}, result.outputs)
            rows.append(
                [
                    f"n={graph.n},λ={lam}",
                    delta,
                    result.rounds,
                    result.colors_used,
                    lambda_colors_bound(lam)(delta),
                    "ok" if ok else "FAIL",
                ]
            )
            assert ok
    return rows


def run_linial_endpoint():
    algorithm, bound, g = linial_scheme()
    uniform = theorem5(algorithm, bound, g)
    rows = []
    for n in SIZES:
        graph = build_graph(families.random_regular(n, 8, seed=2), seed=2)
        result = uniform.run(graph, seed=4)
        ok = PROPER_COLORING.is_solution(graph, {}, result.outputs)
        rows.append(
            [
                f"n={graph.n}",
                graph.max_degree,
                result.rounds,
                result.colors_used,
                g(graph.max_degree),
                "ok" if ok else "FAIL",
            ]
        )
        assert ok
    return rows


def test_table1_lambda_coloring(benchmark):
    lam_rows = run_lambda_suite()
    linial_rows = run_linial_endpoint()
    text = format_table(
        ["instance", "Δ", "uniform rounds", "colors", "g(Δ)", "valid"],
        lam_rows,
        title=(
            "E4 Table1[λ(Δ+1)-coloring] — paper: O(Δ/λ + log* n); ours: "
            "O(Δ²/λ + log* m) (D3); Theorem 5 uniformization"
        ),
    )
    text += "\n\n" + format_table(
        ["instance", "Δ", "uniform rounds", "colors", "g(Δ)", "valid"],
        linial_rows,
        title=(
            "E4b Corollary 1(iii) endpoint — uniform O(Δ²)-coloring in "
            "O(log* n) (pure Linial under Theorem 5): rounds must stay "
            "nearly flat as n grows"
        ),
    )
    write_report("E4_table1_lambda_coloring", text)

    algorithm, bound, g = linial_scheme()
    uniform = theorem5(algorithm, bound, g)
    graph = build_graph(families.random_regular(64, 8, seed=5), seed=5)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=6), rounds=3, iterations=1
    )
