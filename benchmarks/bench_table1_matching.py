"""E6 — Table 1 row 8 + Corollary 1(vi): uniform maximal matching.

Paper claim: the non-uniform MM becomes uniform at the same asymptotics
via Theorem 1 with the 3-round P_MM pruner (Observation 3.3).  Our black
box replaces HKP splitters with MIS on L(G) (D5); rounds are physical
(the line-graph simulation runs at dilation 2).
"""

from __future__ import annotations

from repro.algorithms import TABLE1
from repro.bench import (
    format_table,
    growth_factors,
    measure_row,
    sized_suite,
    write_report,
)
from repro.bench.harness import HEADERS

SIZES = (24, 48, 96)


def test_table1_matching(benchmark):
    row = TABLE1["matching"]
    measurements = []
    for workload in ("regular-4", "gnp-sparse", "tree"):
        for label, graph in sized_suite(workload, SIZES, seed=6):
            measurements.append(measure_row(row, label, graph, seed=2))
    assert all(m.uniform_ok and m.nonuniform_ok for m in measurements)
    regular = [
        m.uniform_rounds
        for m in measurements
        if m.label.startswith("regular-4")
    ]
    text = format_table(
        HEADERS,
        [m.row() for m in measurements],
        title=(
            "E6 Table1[matching] — paper: O(log⁴ n) (HKP'01); ours: "
            "MIS on L(G) (D5); P_MM pruning per Observation 3.3"
        ),
    ) + f"\nuniform-rounds growth (regular-4): {growth_factors(regular)}"
    write_report("E6_table1_matching", text)

    _, _, uniform = row.build()
    from repro.bench import build_graph
    from repro.graphs import families

    graph = build_graph(families.random_regular(48, 4, seed=1), seed=1)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=3), rounds=3, iterations=1
    )
