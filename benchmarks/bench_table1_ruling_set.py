"""E7 — Table 1 row 9 + Corollary 1(vii): (2, 2(c+1))-ruling sets.

Paper claim: the randomized non-uniform O(2^c log^{1/c} n) ruling set
becomes a *uniform Las Vegas* algorithm via Theorem 2 with the (1+β)-
round P_(2,β) pruner (Observation 3.2).  Measured across c and n with
several seeds (Las Vegas: every terminating run must verify).
"""

from __future__ import annotations

from repro.algorithms import TABLE1
from repro.bench import build_graph, format_table, write_report
from repro.graphs import families

SIZES = (32, 64, 128, 256)
SEEDS = (1, 2, 3, 4, 5)


def test_table1_ruling_sets(benchmark):
    rows = []
    for row_id, c in (("ruling-c1", 1), ("ruling-c2", 2)):
        row = TABLE1[row_id]
        for n in SIZES:
            graph = build_graph(
                families.gnp_avg_degree(n, 6.0, seed=4), seed=4
            )
            rounds = []
            for seed in SEEDS:
                _, _, uniform = row.build()
                result = uniform.run(graph, seed=seed)
                ok = row.problem.is_solution(graph, {}, result.outputs)
                assert ok, (row_id, n, seed)
                rounds.append(result.rounds)
            rows.append(
                [
                    f"c={c},n={graph.n}",
                    f"{sum(rounds) / len(rounds):.0f}",
                    min(rounds),
                    max(rounds),
                    "ok x%d" % len(SEEDS),
                ]
            )
    text = format_table(
        ["instance", "mean rounds", "min", "max", "LasVegas valid"],
        rows,
        title=(
            "E7 Table1[ruling sets] — paper: O(2^c log^(1/c) n) weak-MC "
            "(SW'10, D6) → uniform Las Vegas by Theorem 2; correctness "
            "certain, randomness only in time"
        ),
    )
    write_report("E7_table1_ruling_set", text)

    row = TABLE1["ruling-c2"]
    _, _, uniform = row.build()
    graph = build_graph(families.gnp_avg_degree(96, 6.0, seed=4), seed=4)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=9), rounds=3, iterations=1
    )
