"""E1 — Table 1 row 1: deterministic MIS in O(Δ + log* n) [BE'09, Kuhn'09].

Paper claim: the non-uniform O(Δ + log* n) MIS (inputs: common upper
bounds on Δ and n) becomes uniform at the same asymptotic cost
(Corollary 2).  Measured: rounds of the black box with oracle guesses
vs. rounds of the Theorem-1 uniform algorithm with no knowledge, across
sizes and degrees; the ratio column must stay bounded (s_f = 1).
"""

from __future__ import annotations

from repro.algorithms import TABLE1
from repro.bench import format_table, growth_factors, measure_row, sized_suite, write_report

SIZES = (32, 64, 128, 256)


def collect():
    row = TABLE1["mis-fast"]
    measurements = []
    for workload in ("regular-4", "regular-8", "gnp-sparse"):
        for label, graph in sized_suite(workload, SIZES, seed=3):
            measurements.append(measure_row(row, label, graph, seed=7))
    return measurements


def report(measurements):
    from repro.bench.harness import HEADERS

    table = format_table(
        HEADERS,
        [m.row() for m in measurements],
        title=(
            "E1 Table1[mis-fast] — paper: O(Δ + log* n) uniformized at the "
            "same asymptotics (ours: O(Δ log Δ + log* m), D1)"
        ),
    )
    by_workload = {}
    for m in measurements:
        by_workload.setdefault(m.label.rsplit("-n", 1)[0], []).append(
            m.uniform_rounds
        )
    shape = "\n".join(
        f"uniform-rounds growth {k}: {growth_factors(v)}"
        for k, v in by_workload.items()
    )
    return table + "\n" + shape


def test_table1_mis_fast(benchmark):
    measurements = collect()
    assert all(m.uniform_ok for m in measurements)
    assert all(m.nonuniform_ok for m in measurements)
    text = report(measurements)
    write_report("E1_table1_mis_fast", text)

    row = TABLE1["mis-fast"]
    _, _, uniform = row.build()
    from repro.bench import build_graph
    from repro.graphs import families

    graph = build_graph(families.random_regular(64, 4, seed=1), seed=1)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=5), rounds=3, iterations=1
    )
