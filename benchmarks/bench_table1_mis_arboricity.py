"""E3 — Table 1 rows 3–4: arboricity-dependent MIS [BE'10], Theorem 3.

Two pipelines on bounded-arboricity families:

* product path (Γ = {a, n} both guessed; s_f = O(log) grid);
* n-only path (Corollary 4): Λ = {n}, the arboricity guess derived from
  the family witness g(a) = 2^(a²) ≤ n via Theorem 3.

Paper claim: uniform at the same asymptotics in both regimes.
"""

from __future__ import annotations

from repro.algorithms import TABLE1
from repro.bench import (
    format_table,
    growth_factors,
    measure_row,
    sized_suite,
    write_report,
)
from repro.bench.harness import HEADERS

SIZES = (32, 64, 128, 256)


def test_table1_mis_arboricity(benchmark):
    texts = []
    all_ok = True
    for row_id in ("mis-arb-product", "mis-arb-nonly"):
        row = TABLE1[row_id]
        measurements = []
        for workload in ("tree", "grid", "forest-3"):
            for label, graph in sized_suite(workload, SIZES, seed=2):
                measurements.append(measure_row(row, label, graph, seed=4))
        all_ok &= all(m.uniform_ok and m.nonuniform_ok for m in measurements)
        trees = [
            m.uniform_rounds for m in measurements if m.label.startswith("tree")
        ]
        texts.append(
            format_table(
                HEADERS,
                [m.row() for m in measurements],
                title=(
                    f"E3 Table1[{row_id}] — paper: {row.paper_bound} "
                    f"({row.paper_citation})"
                ),
            )
            + f"\nuniform-rounds growth (tree): {growth_factors(trees)}"
        )
    assert all_ok
    write_report("E3_table1_mis_arboricity", "\n\n".join(texts))

    row = TABLE1["mis-arb-nonly"]
    _, _, uniform = row.build()
    from repro.bench import build_graph
    from repro.graphs import families

    graph = build_graph(families.random_tree(96, seed=6), seed=6)
    benchmark.pedantic(
        lambda: uniform.run(graph, seed=8), rounds=3, iterations=1
    )
