"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

The environment has setuptools but no `wheel`, which breaks PEP 517
editable installs; this file enables the classic `setup.py develop`
path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
