"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

The environment has setuptools but no `wheel`, which breaks PEP 517
editable installs; this file enables the classic `setup.py develop`
path and carries the dependency metadata.

numpy powers the batched frontier-step kernels (DESIGN.md D10).  It is
a declared dependency, but the runtime degrades gracefully without it:
`repro.local.batch` guards the import and every execution path falls
back to per-node stepping, so an environment that cannot install numpy
still runs the full pipeline (asserted by tests/test_batch_kernels.py).
"""

from setuptools import find_packages, setup

setup(
    name="repro-localized-local-algorithms",
    version="0.2.0",
    description=(
        "Reproduction of 'Toward more localized local algorithms: "
        "removing assumptions concerning global knowledge'"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "networkx",
        "numpy",
    ],
)
