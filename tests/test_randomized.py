"""Theorem 2: weak Monte-Carlo → uniform Las Vegas."""

from __future__ import annotations

import pytest

from repro.algorithms.luby import luby_mc_bound, luby_mc_nonuniform
from repro.algorithms.ruling_sets import sw_ruling_set_nonuniform
from repro.core import RulingSetPruning, mis_pruning, theorem2
from repro.problems import MIS, RulingSetProblem


class TestTheorem2MIS:
    def test_rejects_deterministic_kind(self):
        from repro.algorithms.hash_luby import hash_luby_nonuniform

        with pytest.raises(ValueError):
            theorem2(hash_luby_nonuniform(), mis_pruning())

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_las_vegas_always_correct(self, small_gnp, seed):
        """Whatever the coins do, a terminating run is a solution."""
        lv = theorem2(luby_mc_nonuniform(), mis_pruning())
        result = lv.run(small_gnp, seed=seed)
        assert MIS.is_solution(small_gnp, {}, result.outputs)

    def test_catalog_correct(self, catalog):
        lv = theorem2(luby_mc_nonuniform(), mis_pruning())
        for name, graph in catalog.items():
            result = lv.run(graph, seed=7)
            assert MIS.is_solution(graph, {}, result.outputs), name

    def test_expected_time_scale(self, medium_gnp):
        """Mean rounds across seeds stays within a constant of f*."""
        lv = theorem2(luby_mc_nonuniform(), mis_pruning())
        f_star = luby_mc_bound().value({"n": medium_gnp.n})
        rounds = [lv.run(medium_gnp, seed=s).rounds for s in range(8)]
        mean = sum(rounds) / len(rounds)
        assert mean <= 12 * f_star + 64, (mean, f_star)

    def test_uniform(self):
        lv = theorem2(luby_mc_nonuniform(), mis_pruning())
        assert lv.requires == ()


class TestTheorem2RulingSets:
    @pytest.mark.parametrize("c", [1, 2])
    def test_ruling_set_rows(self, small_gnp, c):
        beta = 2 * (c + 1)
        lv = theorem2(
            sw_ruling_set_nonuniform(c), RulingSetPruning(beta=beta)
        )
        result = lv.run(small_gnp, seed=3)
        problem = RulingSetProblem(2, beta)
        assert problem.is_solution(small_gnp, {}, result.outputs), (
            problem.violations(small_gnp, {}, result.outputs)[:3]
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_ruling_set_many_seeds(self, tree, seed):
        lv = theorem2(sw_ruling_set_nonuniform(2), RulingSetPruning(beta=6))
        result = lv.run(tree, seed=seed)
        assert RulingSetProblem(2, 6).is_solution(tree, {}, result.outputs)

    def test_budget_restriction(self, small_gnp):
        lv = theorem2(luby_mc_nonuniform(), mis_pruning())
        capped = lv.run(small_gnp, seed=1, budget=3)
        assert capped.rounds <= 3
        assert not capped.completed
