"""Persistent worker pool + shared-memory halo plane (DESIGN.md D13).

Lifecycle edge cases of the ``mp-pooled`` shard channel: failure
propagation and pool poisoning, nested-scope worker accounting, warm
reuse across alternation runs, the shm-overflow and unpicklable-state
fallbacks.  Bit-identity of the pooled channel across the full backend
matrix lives with the rest of the contract in
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.algorithms import TABLE1
from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.luby import luby_mis
from repro.local import run, use_backend
from repro.local import sharded
from repro.local.algorithm import LocalAlgorithm, NodeProcess
from repro.local.sharded import fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="multiprocessing fork unavailable"
)

RESULT_FIELDS = ("outputs", "finish_round", "rounds", "messages", "truncated")


def assert_results_equal(a, b, context=""):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), (field, context)


class _IdleProcess(NodeProcess):
    """Never used: the failing algorithms below always take the batch path."""

    def receive(self, inbox):  # pragma: no cover - batch path only
        raise AssertionError("per-node path must not run")


class _FailingKernel:
    """Minimal D10 kernel that fails mid-run, worker-side only.

    The ``exit`` action hard-kills the hosting process *only when it is
    a forked worker* (pid differs from the building session): the
    resilience ladder (D14) retries and finally degrades to the inline
    channel, where the kernel must run to completion in the parent.
    """

    def __init__(self, bg, action, parent_pid):
        self.bg = bg
        self.action = action
        self.parent_pid = parent_pid
        self.round = 0
        self.done = False

    def undone_indices(self):
        return [] if self.done else list(range(self.bg.n))

    def start(self):
        return [], [], 0

    def step(self):
        self.round += 1
        if self.round >= 2:
            if self.action == "raise":
                raise RuntimeError("boom in shard worker")
            if os.getpid() != self.parent_pid:
                os._exit(13)  # worker crash: no exception report, just EOF
            # Inline rung of the resilience ladder: finish cleanly.
            self.done = True
            n = self.bg.n
            return list(range(n)), [0] * n, 0
        return [], [], 0


def _failing_algorithm(action):
    parent_pid = os.getpid()
    return LocalAlgorithm(
        name=f"failing-{action}",
        process=_IdleProcess,
        batch=lambda bg, setup: _FailingKernel(bg, action, parent_pid),
        shard=True,
    )


@pytest.fixture
def pool_graph(small_gnp):
    return small_gnp


class TestPoolLifecycle:
    def test_worker_exception_propagates_and_pool_survives(self, pool_graph):
        """A worker-side failure raises the *original* exception, and
        the pool survives it (D15): every worker reported the round, so
        the bug is the shard's, not the pool's — the next pooled run
        reuses the same warm workers."""
        with use_backend(
            "sharded", rng="counter", shards=2, shard_channel="mp-pooled"
        ):
            warm = run(pool_graph, luby_mis(), seed=3)
            pool = sharded._POOL
            assert pool is not None
            old_pids = pool.worker_pids()
            with pytest.raises(RuntimeError, match="boom in shard worker"):
                run(pool_graph, _failing_algorithm("raise"), seed=3)
            # The pool outlives the isolated shard bug, workers intact.
            assert sharded._POOL is pool
            assert not pool.broken
            assert pool.worker_pids() == old_pids
            # And the next run over it is bit-identical.
            again = run(pool_graph, luby_mis(), seed=3)
            assert pool.worker_pids() == old_pids
            assert_results_equal(warm, again)

    def test_worker_death_retries_then_degrades_inline(self, pool_graph):
        """Workers that die on *every* host process exhaust the retry
        budget (each respawned twin dies too), the rebuilt pool dies
        the same way, and the channel finishes inline from the last
        round checkpoint — the run completes instead of raising."""
        from repro.local.runner import last_stepping

        with use_backend(
            "sharded", rng="counter", shards=2, shard_channel="mp-pooled"
        ):
            run(pool_graph, luby_mis(), seed=3)
            pool = sharded._POOL
            result = run(pool_graph, _failing_algorithm("exit"), seed=3)
            # Completed on the inline rung with every node finished.
            assert result.rounds == 2
            assert set(result.outputs) == set(pool_graph.nodes)
            assert set(result.outputs.values()) == {0}
            assert last_stepping() == "shard-batch"
            # The dying attempts poisoned their pools on the way down.
            assert pool.broken and sharded._POOL is not pool
            run(pool_graph, luby_mis(), seed=3)  # scope recovered

    def test_worker_killed_between_runs_respawns_transparently(
        self, pool_graph
    ):
        """A worker dying while idle (external kill) is detected at the
        next lease: the pool respawns instead of dispatching to it."""
        with use_backend(
            "sharded", rng="counter", shards=2, shard_channel="mp-pooled"
        ):
            first = run(pool_graph, luby_mis(), seed=3)
            pool = sharded._POOL
            victim = pool.workers[0][0]
            victim.kill()
            victim.join(timeout=5)
            again = run(pool_graph, luby_mis(), seed=3)
            assert_results_equal(first, again, context="respawn")
            assert sharded._POOL is pool  # same pool object, new workers
            assert victim.pid not in pool.worker_pids()

    def test_nested_scopes_share_one_pool_and_do_not_leak(self, pool_graph):
        kwargs = dict(rng="counter", shards=2, shard_channel="mp-pooled")
        with use_backend("sharded", **kwargs):
            run(pool_graph, luby_mis(), seed=1)
            outer_pool = sharded._POOL
            outer_pids = outer_pool.worker_pids()
            with use_backend("sharded", **kwargs):
                run(pool_graph, luby_mis(), seed=2)
                assert sharded._POOL is outer_pool
                assert outer_pool.worker_pids() == outer_pids
            # Inner exit must not tear the shared pool down.
            assert sharded._POOL is outer_pool
            procs = [proc for proc, _ in outer_pool.workers]
            assert all(proc.is_alive() for proc in procs)
        # Outermost exit joins every worker.
        assert sharded._POOL is None
        assert not any(proc.is_alive() for proc in procs)
        assert sharded._POOL_SCOPES == 0

    def test_ephemeral_run_leaves_no_pool(self, pool_graph):
        base = run(pool_graph, luby_mis(), seed=5, rng="counter")
        pooled = run(
            pool_graph, luby_mis(), seed=5, rng="counter",
            shards=2, shard_channel="mp-pooled",
        )
        assert_results_equal(base, pooled)
        assert sharded._POOL is None and sharded._POOL_SCOPES == 0

    def test_pool_reuse_across_alternation_runs_is_bit_identical(
        self, pool_graph
    ):
        """≥3 whole alternations on one warm pool ≡ fresh-pool runs."""
        seeds = (1, 2, 3)
        with use_backend("compiled", rng="counter"):
            _, _, uniform = TABLE1["luby"].build()
            single = [uniform.run(pool_graph, seed=seed) for seed in seeds]
        fresh = []
        for seed in seeds:  # one pool per run
            with use_backend(
                "sharded", rng="counter", shards=2,
                shard_channel="mp-pooled",
            ):
                _, _, uniform = TABLE1["luby"].build()
                fresh.append(uniform.run(pool_graph, seed=seed))
        with use_backend(
            "sharded", rng="counter", shards=2, shard_channel="mp-pooled"
        ):
            _, _, uniform = TABLE1["luby"].build()
            warm = [uniform.run(pool_graph, seed=seed) for seed in seeds]
            pool = sharded._POOL
            assert pool is not None and not pool.broken
            pids = pool.worker_pids()
        for base, a, b in zip(single, fresh, warm):
            assert base.outputs == a.outputs == b.outputs
            assert base.rounds == a.rounds == b.rounds
            assert len(a.steps) == len(b.steps)
        assert len(pids) == 2  # one worker per shard, reused throughout

    def test_scope_without_pooled_run_spawns_nothing(self, pool_graph):
        with use_backend("sharded", rng="counter", shards=2):
            run(pool_graph, luby_mis(), seed=1)  # inline channel
            assert sharded._POOL is None
        assert sharded._POOL_SCOPES == 0


class TestHaloPlaneFallbacks:
    def test_shm_overflow_falls_back_to_pipes(self, pool_graph, monkeypatch):
        """Regions too small for the state payload pipe their halos —
        sizing is a throughput knob, never a correctness one."""
        base = run(pool_graph, luby_mis(), seed=7, rng="counter")
        monkeypatch.setattr(sharded, "_HALO_BYTES_PER_NODE", 0)
        monkeypatch.setattr(sharded, "_HALO_HEADER_BYTES", 8)
        pooled = run(
            pool_graph, luby_mis(), seed=7, rng="counter",
            shards=3, shard_channel="mp-pooled",
        )
        assert_results_equal(base, pooled, context="shm overflow")

    def test_unpicklable_state_degrades_to_fork_per_run(
        self, pool_graph, monkeypatch
    ):
        """Closure-carrying node processes cannot ship to the pool; the
        run degrades to the fork-per-run channel (which inherits state)
        and stays bit-identical."""
        from repro.local.algorithm import zero_round_algorithm

        forked = []
        original = sharded.ProcessChannel.__init__

        def spy(self, shards):
            forked.append(len(shards))
            original(self, shards)

        monkeypatch.setattr(sharded.ProcessChannel, "__init__", spy)
        algo = zero_round_algorithm("ident-mod", lambda ctx: ctx.ident % 7)
        base = run(pool_graph, algo, seed=1, rng="counter")
        pooled = run(
            pool_graph, algo, seed=1, rng="counter",
            shards=2, shard_channel="mp-pooled",
        )
        assert_results_equal(base, pooled, context="unpicklable")
        assert forked == [2]
        assert sharded._POOL is None

    def test_numpy_free_pooled_falls_back_inline(self, pool_graph, monkeypatch):
        from repro.local import batch as batch_module

        base = run(pool_graph, luby_mis(), seed=9, rng="counter")
        monkeypatch.setattr(batch_module, "_np", None)
        pooled = run(
            pool_graph, luby_mis(), seed=9, rng="counter",
            shards=3, shard_channel="mp-pooled",
        )
        assert_results_equal(base, pooled, context="numpy-free")


class TestPooledShardCertifiedKernels:
    """The D13-certified coloring/MIS kernels through the pooled channel."""

    @pytest.mark.parametrize("k", (2, 7))
    def test_fast_mis_pooled(self, pool_graph, k):
        guesses = {"m": pool_graph.max_ident, "Delta": pool_graph.max_degree}
        from repro.local.runner import last_stepping

        base = run(pool_graph, fast_mis(), seed=11, rng="counter",
                   guesses=guesses)
        pooled = run(
            pool_graph, fast_mis(), seed=11, rng="counter", guesses=guesses,
            shards=k, shard_channel="mp-pooled",
        )
        assert_results_equal(base, pooled, context=k)
        assert last_stepping() == "shard-batch"

    def test_big_identity_space_declines_to_per_node(self, monkeypatch):
        """Colors beyond int64 cannot ride the halo sync plane: the
        factory declines under sharding and the run shards per node."""
        import networkx as nx

        from repro.local import SimGraph
        from repro.local.runner import last_stepping

        graph = nx.path_graph(6)
        idents = {i: (1 << 70) + 2 * i + 1 for i in graph.nodes}
        sim = SimGraph.from_networkx(graph, idents=idents)
        guesses = {"m": max(idents.values()), "Delta": 2}
        base = run(sim, fast_mis(), seed=3, rng="counter", guesses=guesses)
        stepping_base = last_stepping()
        pooled = run(
            sim, fast_mis(), seed=3, rng="counter", guesses=guesses,
            shards=2, shard_channel="mp-pooled",
        )
        assert_results_equal(base, pooled, context="big idents")
        assert stepping_base == "rf"  # unsharded fused kernel still eligible
        assert last_stepping() == "shard-per-node"
