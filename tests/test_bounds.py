"""Runtime-bound algebra: atoms, set-sequences, sequence numbers.

The two set-sequence properties (paper Section 4.2) are the load-bearing
invariants of Theorem 1's proof, so they get property-based coverage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    AdditiveBound,
    Atom,
    FrozenBound,
    MinBound,
    ProductBound,
    check_set_sequence,
    custom,
    linear,
    log2_of,
    log2_squared,
    logstar_of,
    power_of,
    xlog2x,
)
from repro.errors import ParameterError


class TestAtoms:
    @pytest.mark.parametrize(
        "factory",
        [linear, log2_of, log2_squared, logstar_of, xlog2x],
    )
    def test_non_decreasing(self, factory):
        atom = factory("x")
        values = [atom(v) for v in (1, 2, 3, 5, 10, 100, 10**6)]
        assert values == sorted(values)

    def test_invert_largest_value(self):
        atom = linear("x", 2.0)
        assert atom.invert(10) == 5
        assert atom.invert(11) == 5
        assert atom.invert(1) is None

    def test_invert_plateau_caps(self):
        atom = logstar_of("x")
        assert atom.invert(1000) > 10**20

    def test_invert_respects_budget(self):
        atom = xlog2x("x", 1.0)
        for budget in (5, 17, 100, 999):
            y = atom.invert(budget)
            assert atom(y) <= budget
            assert atom(y + 1) > budget

    def test_power_atom(self):
        atom = power_of("x", 2, 1.0)
        assert atom.invert(100) == 10

    def test_negative_atom_rejected(self):
        atom = Atom("x", lambda v: -1.0, "bad")
        with pytest.raises(ParameterError):
            atom(3)


guess_values = st.integers(min_value=1, max_value=10**7)


class TestAdditiveBound:
    def bound(self):
        return AdditiveBound(
            [linear("Delta", 2.0), logstar_of("m", 3.0)], constant=5
        )

    def test_value(self):
        # log*(16) = 3 (16 -> 4 -> 2 -> 1), and the atom adds 1.
        b = self.bound()
        assert b.value({"Delta": 4, "m": 16}) == 5 + 2 * 4 + 3 * (3 + 1)

    def test_duplicate_params_rejected(self):
        with pytest.raises(ParameterError):
            AdditiveBound([linear("x"), log2_of("x")])

    @given(
        delta=guess_values,
        m=guess_values,
        level=st.integers(min_value=1, max_value=10**5),
    )
    @settings(max_examples=120, deadline=None)
    def test_set_sequence_properties(self, delta, m, level):
        b = self.bound()
        failures = check_set_sequence(
            b, level, [{"Delta": delta, "m": m}]
        )
        assert not failures, failures

    def test_sequence_number_is_one(self):
        b = self.bound()
        assert b.sequence_number(10**6) == 1
        assert len(b.set_sequence(10**6)) <= 1

    def test_empty_below_constant(self):
        b = self.bound()
        assert b.set_sequence(3) == []


class TestProductBound:
    def bound(self):
        return ProductBound(
            custom("a", lambda a: a + 1.0, "a+1"),
            custom("n", lambda n: max(2, int(n)).bit_length() + 1.0, "logn"),
            scale=2.0,
        )

    @given(
        a=st.integers(min_value=1, max_value=10**4),
        n=st.integers(min_value=1, max_value=10**7),
        level=st.integers(min_value=4, max_value=10**5),
    )
    @settings(max_examples=120, deadline=None)
    def test_set_sequence_properties(self, a, n, level):
        b = self.bound()
        failures = check_set_sequence(b, level, [{"a": a, "n": n}])
        assert not failures, failures

    def test_sequence_number_logarithmic(self):
        b = self.bound()
        assert b.sequence_number(2**20) <= 25

    def test_atoms_below_one_rejected(self):
        b = ProductBound(
            custom("a", lambda a: 0.5, "half"), custom("n", lambda n: 2.0, "2")
        )
        with pytest.raises(ParameterError):
            b.value({"a": 1, "n": 1})

    def test_same_param_rejected(self):
        with pytest.raises(ParameterError):
            ProductBound(linear("x"), log2_of("x"))


class TestFrozenBound:
    def test_freeze_projects_vectors(self):
        base = AdditiveBound([linear("Delta", 1.0), linear("m", 1.0)])
        frozen = base.freeze("Delta", 4)
        for vector in frozen.set_sequence(64):
            assert set(vector) == {"m"}
        assert frozen.value({"m": 10}) == 14

    def test_freeze_drops_vectors_below_fixed_value(self):
        base = AdditiveBound([linear("Delta", 1.0), linear("m", 1.0)])
        frozen = base.freeze("Delta", 1000)
        assert frozen.set_sequence(64) == []
        assert frozen.set_sequence(4096) != []

    @given(
        m=st.integers(min_value=1, max_value=10**5),
        level=st.integers(min_value=2, max_value=10**5),
    )
    @settings(max_examples=80, deadline=None)
    def test_frozen_set_sequence_properties(self, m, level):
        base = AdditiveBound([log2_of("Delta", 2.0), linear("m", 1.0)])
        frozen = base.freeze("Delta", 7)
        failures = check_set_sequence(frozen, level, [{"m": m}])
        assert not failures, failures


class TestMinBound:
    def test_value_takes_minimum(self):
        b = MinBound(
            [
                AdditiveBound([linear("Delta", 1.0)]),
                AdditiveBound([log2_of("n", 1.0)]),
            ]
        )
        assert b.value({"Delta": 100, "n": 16}) == 5.0

    def test_set_sequence_refuses(self):
        b = MinBound([AdditiveBound([linear("Delta", 1.0)])])
        with pytest.raises(ParameterError):
            b.set_sequence(10)
        with pytest.raises(ParameterError):
            b.sequence_number(10)
