"""Integration: every Table-1 row end-to-end, plus the §5.1/§5.2 pipelines.

These are the library-level acceptance tests mirroring what the benches
measure: for each registry row, build non-uniform + pruning + uniform,
run the uniform algorithm with *no* global knowledge, and verify the
output with the row's problem.
"""

from __future__ import annotations

import pytest

from repro.algorithms import TABLE1, corollary1_portfolio
from repro.algorithms.coloring_via_mis import (
    CliqueProductColoring,
    encode_coloring_as_mis,
)
from repro.algorithms.edge_coloring import edge_coloring_domain
from repro.algorithms.greedy import greedy_coloring
from repro.algorithms.lambda_coloring import (
    lambda_coloring_nonuniform,
    lambda_colors_bound,
    linial_scheme,
)
from repro.core import theorem5
from repro.graphs import clique_product_spec
from repro.problems import (
    EDGE_COLORING,
    MIS,
    PROPER_COLORING,
    deg_plus_one_coloring,
)

ROW_IDS = sorted(TABLE1)


@pytest.mark.parametrize("row_id", ROW_IDS)
def test_row_uniform_correct_small(small_gnp, row_id):
    row = TABLE1[row_id]
    _, _, uniform = row.build()
    result = uniform.run(small_gnp, seed=21)
    assert row.problem.is_solution(small_gnp, {}, result.outputs), (
        row_id,
        row.problem.violations(small_gnp, {}, result.outputs)[:3],
    )
    assert result.completed


@pytest.mark.parametrize("row_id", ["mis-fast", "mis-nonly", "luby"])
def test_row_uniform_correct_on_tree(tree, row_id):
    row = TABLE1[row_id]
    _, _, uniform = row.build()
    result = uniform.run(tree, seed=22)
    assert row.problem.is_solution(tree, {}, result.outputs)


def test_registry_metadata_complete():
    for row_id, row in TABLE1.items():
        assert row.paper_citation
        assert row.paper_bound
        assert row.problem is not None
        assert isinstance(row.parameters, tuple)


class TestSection51:
    def test_coloring_correspondence_both_ways(self, small_gnp):
        """The paper's bijection between MIS of G' and (deg+1)-colorings."""
        spec = clique_product_spec(small_gnp)
        colors = greedy_coloring(small_gnp)
        mis_vector = encode_coloring_as_mis(small_gnp, spec, colors)
        # verify it is a MIS of the explicit product graph
        import networkx as nx

        from repro.local import SimGraph

        g = nx.Graph()
        g.add_nodes_from(spec.virtual_nodes)
        for v, neighbours in spec.adj.items():
            for w in neighbours:
                g.add_edge(v, w)
        product = SimGraph.from_networkx(g, idents=spec.ident)
        assert MIS.is_solution(product, {}, mis_vector)

    def test_corollary1_ii_pipeline(self, small_gnp):
        port = corollary1_portfolio()
        coloring = CliqueProductColoring(port)
        colors, rounds, _ = coloring.run(small_gnp, seed=31)
        assert deg_plus_one_coloring().is_solution(small_gnp, {}, colors)
        assert rounds > 0


class TestSection52EdgeColoring:
    def test_theorem5_on_line_graph(self, small_gnp):
        nu = lambda_coloring_nonuniform(2)
        uniform = theorem5(
            nu.algorithm, nu.bound, lambda_colors_bound(2)
        )
        domain = edge_coloring_domain(small_gnp)
        result = uniform.run(domain, seed=33)
        assert EDGE_COLORING.is_solution(small_gnp, {}, result.outputs), (
            EDGE_COLORING.violations(small_gnp, {}, result.outputs)[:3]
        )


class TestCorollary1iii:
    def test_uniform_delta_squared_coloring(self, small_gnp):
        algorithm, bound, g = linial_scheme()
        uniform = theorem5(algorithm, bound, g)
        result = uniform.run(small_gnp, seed=35)
        assert PROPER_COLORING.is_solution(small_gnp, {}, result.outputs)
        delta = max(1, small_gnp.max_degree)
        cap = 2 * g(g.invert_doubling(2 * g(delta)))
        assert max(result.outputs.values()) <= cap
