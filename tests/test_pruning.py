"""Pruning algorithms: solution detection, gluing, monotonicity.

These are the definitional properties of Section 3.2, verified both on
hand-built cases and property-based over random graphs and random
tentative output vectors.  Gluing is tested operationally: prune, solve
the residual instance exactly (centralized), combine, verify.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.greedy import greedy_matching, greedy_mis
from repro.core.domain import PhysicalDomain
from repro.core.pruning import (
    MatchingPruning,
    RulingSetPruning,
    SLCPruning,
    mis_pruning,
)
from repro.local import SimGraph
from repro.problems import (
    MAXIMAL_MATCHING,
    MIS,
    SLC,
    ColorList,
    SLCInput,
    RulingSetProblem,
)


def sim(graph):
    return SimGraph.from_networkx(graph)


def domain_of(graph):
    return PhysicalDomain(graph)


graphs = st.builds(
    lambda n, p, seed: nx.gnp_random_graph(n, p, seed=seed),
    n=st.integers(min_value=1, max_value=24),
    p=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10**6),
)


class TestRulingSetPruningBasics:
    def test_rounds_match_paper(self):
        assert RulingSetPruning(beta=1).rounds == 2
        assert RulingSetPruning(beta=3).rounds == 4

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            RulingSetPruning(beta=0)

    def test_solution_detection_on_mis(self):
        g = sim(nx.random_regular_graph(3, 12, seed=1))
        solution = greedy_mis(g)
        result = mis_pruning().apply(domain_of(g), {}, solution)
        assert result.pruned == set(g.nodes)

    def test_garbage_all_zero_prunes_nothing_without_centers(self):
        g = sim(nx.path_graph(5))
        tentative = {u: 0 for u in g.nodes}
        result = mis_pruning().apply(domain_of(g), {}, tentative)
        assert result.pruned == set()

    def test_adjacent_ones_not_pruned(self):
        g = sim(nx.path_graph(3))
        tentative = {0: 1, 1: 1, 2: 0}
        result = mis_pruning().apply(domain_of(g), {}, tentative)
        # 0 and 1 are adjacent members: neither is a center; 2's only
        # potential center is 1 which is not one.
        assert result.pruned == set()

    def test_partial_solution_prunes_ball(self):
        g = sim(nx.path_graph(5))
        tentative = {0: 1, 1: 0, 2: 0, 3: 0, 4: 0}
        result = mis_pruning().apply(domain_of(g), {}, tentative)
        # 0 is a center; 1 is dominated; 2,3,4 are not.
        assert result.pruned == {0, 1}


@given(graph=graphs, data=st.data())
@settings(max_examples=60, deadline=None)
def test_ruling_pruning_gluing_property(graph, data):
    """Prune on arbitrary tentative bits, solve the rest, combine, verify."""
    g = sim(graph)
    tentative = {
        u: data.draw(st.sampled_from([0, 1]), label=f"y({u})")
        for u in g.nodes
    }
    pruner = mis_pruning()
    result = pruner.apply(domain_of(g), {}, tentative)
    survivors = set(g.nodes) - result.pruned
    residual = g.subgraph(survivors)
    solution = greedy_mis(residual)
    combined = {
        u: (tentative[u] if u in result.pruned else solution[u])
        for u in g.nodes
    }
    assert MIS.is_solution(g, {}, combined), MIS.violations(g, {}, combined)[:3]


@given(graph=graphs, beta=st.integers(min_value=1, max_value=4), data=st.data())
@settings(max_examples=40, deadline=None)
def test_ruling_pruning_solution_detection(graph, beta, data):
    """Any valid (2,β)-ruling set must be fully pruned."""
    g = sim(graph)
    solution = greedy_mis(g)  # a MIS is a (2,β)-ruling set for any β ≥ 1
    pruner = RulingSetPruning(beta=beta)
    result = pruner.apply(domain_of(g), {}, solution)
    assert result.pruned == set(g.nodes)


class TestMatchingPruning:
    def test_rounds_match_paper(self):
        assert MatchingPruning().rounds == 3

    def test_solution_detection(self):
        g = sim(nx.gnp_random_graph(16, 0.3, seed=3))
        solution = greedy_matching(g)
        result = MatchingPruning().apply(domain_of(g), {}, solution)
        assert result.pruned == set(g.nodes)

    def test_unmatched_garbage_not_pruned(self):
        g = sim(nx.path_graph(4))
        tentative = {u: ("U", g.ident[u]) for u in g.nodes}
        result = MatchingPruning().apply(domain_of(g), {}, tentative)
        assert result.pruned == set()

    def test_single_matched_pair_pruned(self):
        g = sim(nx.path_graph(4))
        a, b = sorted((g.ident[1], g.ident[2]))
        tentative = {
            0: ("U", g.ident[0]),
            1: ("M", a, b),
            2: ("M", a, b),
            3: ("U", g.ident[3]),
        }
        result = MatchingPruning().apply(domain_of(g), {}, tentative)
        # 1,2 matched; 0 and 3 have all neighbours matched.
        assert result.pruned == set(g.nodes)


@given(graph=graphs, seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_matching_pruning_gluing_property(graph, seed):
    """Tentative = a truncated/garbled canonical matching; glue and verify."""
    g = sim(graph)
    rng = random.Random(seed)
    base = greedy_matching(g)
    tentative = {}
    for u in g.nodes:
        roll = rng.random()
        if roll < 0.5:
            tentative[u] = base[u]
        elif roll < 0.8:
            tentative[u] = ("U", g.ident[u])  # forget the match
        else:
            tentative[u] = 0  # truncation default
    pruner = MatchingPruning()
    result = pruner.apply(domain_of(g), {}, tentative)
    survivors = set(g.nodes) - result.pruned
    residual = g.subgraph(survivors)
    solution = greedy_matching(residual)
    combined = {
        u: (tentative[u] if u in result.pruned else solution[u])
        for u in g.nodes
    }
    assert MAXIMAL_MATCHING.is_solution(g, {}, combined), (
        MAXIMAL_MATCHING.violations(g, {}, combined)[:3]
    )


class TestSLCPruning:
    def make_instance(self, g, width_slack=0):
        delta_hat = g.max_degree + width_slack
        width = 2 * (delta_hat + 1)
        inputs = {
            u: SLCInput(delta_hat, ColorList(width, delta_hat + 1))
            for u in g.nodes
        }
        return inputs

    def test_rounds(self):
        assert SLCPruning().rounds == 2

    def test_solution_detection(self):
        g = sim(nx.cycle_graph(8))
        inputs = self.make_instance(g)
        # a valid SLC solution: color index = greedy color, copy 1
        from repro.algorithms.greedy import greedy_coloring

        colors = greedy_coloring(g)
        tentative = {u: (colors[u], 1) for u in g.nodes}
        result = SLCPruning().apply(domain_of(g), inputs, tentative)
        assert result.pruned == set(g.nodes)

    def test_conflicting_pairs_survive_with_shrunk_lists(self):
        g = sim(nx.path_graph(3))
        inputs = self.make_instance(g)
        tentative = {0: (1, 1), 1: (1, 1), 2: (2, 1)}
        result = SLCPruning().apply(domain_of(g), inputs, tentative)
        # 2 is conflict-free and in-list -> pruned; 0,1 clash.
        assert result.pruned == {2}
        assert (2, 1) not in result.new_inputs[1].colors

    def test_out_of_list_rejected(self):
        g = sim(nx.path_graph(2))
        inputs = self.make_instance(g)
        width = inputs[0].colors.width
        tentative = {0: (width + 5, 1), 1: 0}
        result = SLCPruning().apply(domain_of(g), inputs, tentative)
        assert result.pruned == set()

    def test_invariant_preserved_after_pruning(self):
        g = sim(nx.gnp_random_graph(18, 0.3, seed=9))
        inputs = self.make_instance(g)
        from repro.algorithms.greedy import greedy_coloring

        colors = greedy_coloring(g)
        # half the nodes get a valid pair, the others garbage
        tentative = {
            u: (colors[u], 1) if g.ident[u] % 2 == 0 else 0 for u in g.nodes
        }
        result = SLCPruning().apply(domain_of(g), inputs, tentative)
        survivors = set(g.nodes) - result.pruned
        residual = g.subgraph(survivors)
        # SLC invariant: each color index keeps ≥ deg+1 copies
        for u in survivors:
            x = result.new_inputs[u]
            for k in range(1, x.colors.width + 1):
                assert x.colors.remaining_copies(k) >= residual.degree(u) + 1
