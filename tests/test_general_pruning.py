"""Section 6.1: transformers with non-constant-time pruning algorithms.

The paper restricts pruners to constant time but notes the transformers
extend to pruners with parameter-bounded running time ``h``, at an
additive overhead of ``h(S*)`` per iteration.  These tests wrap the MIS
pruner with artificial slow-downs and check (a) the transformed
algorithm stays correct and (b) the measured overhead is exactly the
paper's ``(extra rounds) × (number of executed steps)``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.hash_luby import hash_luby_nonuniform
from repro.core import mis_pruning, theorem1
from repro.core.pruning import PruneResult, PruningAlgorithm
from repro.problems import MIS


class SlowedPruning(PruningAlgorithm):
    """A pruner padded with ``extra`` idle rounds (h > O(1) stand-in)."""

    def __init__(self, base, extra):
        self.base = base
        self.extra = extra
        self.rounds = base.rounds + extra
        self.name = f"{base.name}+{extra}"
        self.problem = base.problem
        self.monotone = base.monotone

    def apply(self, domain, inputs, tentative, *, seed=0, salt="prune"):
        result = self.base.apply(
            domain, inputs, tentative, seed=seed, salt=salt
        )
        return PruneResult(
            result.pruned, result.new_inputs, result.rounds + self.extra
        )


@pytest.mark.parametrize("extra", [0, 5, 20])
def test_slow_pruner_stays_correct(small_gnp, extra):
    pruner = SlowedPruning(mis_pruning(), extra)
    uniform = theorem1(hash_luby_nonuniform(), pruner)
    result = uniform.run(small_gnp, seed=3)
    assert MIS.is_solution(small_gnp, {}, result.outputs)


def test_overhead_is_additive_per_step(small_gnp):
    """Total = base total + extra × steps — the Section 6.1 accounting."""
    base = theorem1(hash_luby_nonuniform(), mis_pruning()).run(
        small_gnp, seed=3
    )
    for extra in (5, 20):
        slowed = theorem1(
            hash_luby_nonuniform(), SlowedPruning(mis_pruning(), extra)
        ).run(small_gnp, seed=3)
        assert len(slowed.steps) == len(base.steps)
        assert slowed.rounds == base.rounds + extra * len(base.steps)


def test_overhead_logarithmic_in_runtime(medium_gnp):
    """#steps is O(log f*) for additive bounds, so even a slow pruner
    adds only h·log(f*) — the magnitude the paper's remark promises."""
    result = theorem1(hash_luby_nonuniform(), mis_pruning()).run(
        medium_gnp, seed=5
    )
    import math

    assert len(result.steps) <= math.log2(max(2, result.rounds)) + 2
