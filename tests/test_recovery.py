"""Round-level checkpoints + self-healing shard recovery (DESIGN.md D15).

Contract under test: a worker SIGKILLed (or hung) at round r of a
sharded run is respawned *alone*, restored from the round-(r-1)
checkpoint, and re-runs only the failed round — the recovered run is
bit-identical to a never-failed one on every channel and shard count
(the D9 purity argument), under a bounded retry budget, with every
degradation step surfaced as a :class:`ResilienceWarning` and recorded
in the diagnostics channel (``last_recovery`` / ``StepRecord.backends``).
Plus the checkpoint journal: atomic spill, corrupt-file rejection, and
inline resumption of a half-finished run.
"""

from __future__ import annotations

import os
import time

import networkx as nx
import pytest

from repro.algorithms.luby import luby_mis
from repro.core import AlternatingEngine, mis_pruning
from repro.errors import (
    CheckpointCorruptError,
    ParameterError,
    ResilienceWarning,
)
from repro.local import (
    Broadcast,
    FaultPlan,
    GraphDelta,
    LocalAlgorithm,
    NodeProcess,
    SimGraph,
    crash_at,
    drop,
    garble,
    open_session,
    run,
    sample_plan,
)
from repro.local import recovery, sharded
from repro.local.batch import numpy_or_none
from repro.local.recovery import (
    CheckpointJournal,
    RoundCheckpoint,
    resume_from_journal,
)
from repro.local.runner import last_recovery, note_recovery, note_stepping
from repro.local.sharded import fork_available

RESULT_FIELDS = ("outputs", "finish_round", "rounds", "messages", "truncated")

#: The parent (test-session) pid; forked shard workers differ.
PARENT_PID = os.getpid()

#: Env var carrying the per-test "already failed once" flag-file path.
#: Env is inherited across fork, and the file is on disk — so a
#: respawned twin of a kill-once worker sees the flag and survives.
KILL_FLAG = "REPRO_TEST_KILL_FLAG"


def assert_results_equal(a, b, context=""):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), (field, context)


def _should_fail_once(round_no, at):
    flag = os.environ.get(KILL_FLAG)
    if not flag or round_no != at or os.getpid() == PARENT_PID:
        return False
    try:
        # O_EXCL claims the flag atomically: when several workers reach
        # the failure round concurrently, exactly one of them fails.
        fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class _KillOnceWorker(NodeProcess):
    """Node 0's hosting worker dies once at round 2; the respawned twin
    completes.  Output folds the inbox, so a recovery that replayed the
    wrong round or lost a delivery diverges from the reference run."""

    __slots__ = ("r", "acc")

    def __init__(self, ctx):
        super().__init__(ctx)
        self.r = 0
        self.acc = 0

    def start(self):
        return Broadcast((0, self.ctx.ident % 97))

    def receive(self, inbox):
        self.r += 1
        self.acc += self.r * sum(v[1] for v in inbox.values())
        if self.ctx.node == 0 and _should_fail_once(self.r, at=2):
            os._exit(9)
        if self.r >= 4:
            self.finish((self.r, self.acc))
            return None
        return Broadcast((0, (self.acc + self.r) % 97))


class _KillAtStartWorker(_KillOnceWorker):
    """Node 0's worker dies during round 0 (before anything committed):
    recovery restores from the pre-round-0 checkpoint."""

    __slots__ = ()

    def start(self):
        if self.ctx.node == 0 and _should_fail_once(0, at=0):
            os._exit(9)
        return Broadcast((0, self.ctx.ident % 97))


class _HangOnceWorker(_KillOnceWorker):
    """Node 0's worker hangs once at round 2; the watchdog times it
    out, and the respawned twin completes."""

    __slots__ = ()

    def receive(self, inbox):
        self.r += 1
        self.acc += self.r * sum(v[1] for v in inbox.values())
        if self.ctx.node == 0 and _should_fail_once(self.r, at=2):
            time.sleep(60)
        if self.r >= 4:
            self.finish((self.r, self.acc))
            return None
        return Broadcast((0, (self.acc + self.r) % 97))


class _KillAlwaysWorker(_KillOnceWorker):
    """Node 0 kills every hosting worker — respawned twins included —
    so the retry budget must run out and the run must finish inline."""

    __slots__ = ()

    def receive(self, inbox):
        self.r += 1
        self.acc += self.r * sum(v[1] for v in inbox.values())
        if self.r == 2 and self.ctx.node == 0 and os.getpid() != PARENT_PID:
            os._exit(9)
        if self.r >= 4:
            self.finish((self.r, self.acc))
            return None
        return Broadcast((0, (self.acc + self.r) % 97))


class _KillOnceKernel:
    """D10 batch kernel whose hosting worker dies once at round 2.

    ``acc`` folds the neighbours' previous values every round, so a
    checkpoint restore that corrupted ghost state (or re-aimed the halo
    ring at the wrong slot) produces divergent outputs.
    """

    __slots__ = ("bg", "round", "done", "acc")

    SHARD_SYNC = ("acc",)

    def __init__(self, bg):
        np = numpy_or_none()
        self.bg = bg
        self.round = 0
        self.done = False
        self.acc = np.arange(bg.n, dtype=np.int64) % 97

    def undone_indices(self):
        return [] if self.done else list(range(self.bg.n))

    def start(self):
        return [], [], 0

    def step(self):
        np = numpy_or_none()
        self.round += 1
        gathered = np.zeros(self.bg.n, dtype=np.int64)
        np.add.at(gathered, self.bg.owner, self.acc[self.bg.neigh])
        self.acc = (self.acc + gathered + self.round) % 100003
        if _should_fail_once(self.round, at=2):
            os._exit(9)
        if self.round >= 3:
            self.done = True
            n = self.bg.n
            return list(range(n)), [int(v) for v in self.acc], len(self.bg.owner)
        return [], [], len(self.bg.owner)


def _kill_once_batch_algorithm():
    return LocalAlgorithm(
        name="kill-once-batch",
        process=_KillOnceWorker,  # never used: batch path always taken
        batch=lambda bg, setup: _KillOnceKernel(bg),
        shard=True,
    )


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="multiprocessing fork unavailable"
)


@needs_fork
class TestSurgicalRecovery:
    @pytest.fixture(autouse=True)
    def fail_once_setup(self, monkeypatch, tmp_path):
        monkeypatch.setattr(sharded, "SHARD_RETRY_BACKOFF", 0.01)
        self.flag = tmp_path / "failed-once.flag"
        monkeypatch.setenv(KILL_FLAG, str(self.flag))

    def assert_surgical(self, round_no):
        """The last run recovered by exactly one respawn — no rebuild,
        no inline escalation, no restart."""
        assert self.flag.exists(), "the fault never fired"
        trail = last_recovery()
        assert trail is not None
        assert trail.startswith(f"respawn@r{round_no}(s")
        assert trail.count("respawn") == 1
        assert "rebuild" not in trail and "inline" not in trail

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    @pytest.mark.parametrize("k", (2, 3))
    def test_killed_worker_recovers_bit_identically(
        self, small_gnp, channel, k
    ):
        algo = LocalAlgorithm(name="kill-once", process=_KillOnceWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=k,
                  shard_channel=channel)
        assert_results_equal(base, got, context=(channel, k))
        self.assert_surgical(round_no=2)

    @pytest.mark.skipif(numpy_or_none() is None, reason="needs numpy")
    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    @pytest.mark.parametrize("k", (2, 3))
    def test_killed_batch_worker_recovers_bit_identically(
        self, small_gnp, channel, k
    ):
        from repro.local.runner import last_stepping

        algo = _kill_once_batch_algorithm()
        base = run(small_gnp, algo, seed=1, backend="sharded", shards=k,
                   shard_channel="inline")
        assert not self.flag.exists()  # inline runs in the parent pid
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=k,
                  shard_channel=channel)
        assert last_stepping() == "shard-batch"
        assert_results_equal(base, got, context=(channel, k))
        self.assert_surgical(round_no=2)

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    def test_round0_failure_recovers_from_initial_state(
        self, small_gnp, channel
    ):
        algo = LocalAlgorithm(name="kill-start", process=_KillAtStartWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel=channel)
        assert_results_equal(base, got, context=channel)
        self.assert_surgical(round_no=0)

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    def test_recovery_composes_with_fault_plans(self, small_gnp, channel):
        plan = sample_plan(small_gnp, drop(0.5), 0.2, seed=7)
        algo = LocalAlgorithm(name="kill-once", process=_KillOnceWorker)
        base = run(small_gnp, algo, seed=1, backend="reference", faults=plan)
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel=channel, faults=plan)
        assert_results_equal(base, got, context=channel)
        self.assert_surgical(round_no=2)

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    def test_hung_worker_times_out_and_recovers(
        self, small_gnp, channel, monkeypatch
    ):
        monkeypatch.setattr(sharded, "SHARD_TIMEOUT", 0.5)
        algo = LocalAlgorithm(name="hang-once", process=_HangOnceWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        started = time.monotonic()
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel=channel)
        assert time.monotonic() - started < 30
        assert_results_equal(base, got, context=channel)
        self.assert_surgical(round_no=2)

    def test_pool_survives_a_surgical_recovery(self, small_gnp):
        from repro.local import use_backend

        algo = LocalAlgorithm(name="kill-once", process=_KillOnceWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        with use_backend(
            "sharded", shards=2, shard_channel="mp-pooled"
        ):
            got = run(small_gnp, algo, seed=1)
            pool = sharded._POOL
            assert pool is not None and not pool.broken
            self.assert_surgical(round_no=2)
            # The healed pool serves the next (honest) run bit-identically.
            self.flag.unlink()
            os.environ.pop(KILL_FLAG, None)
            again = run(small_gnp, algo, seed=1)
        assert_results_equal(base, got, context="recovered")
        assert_results_equal(base, again, context="healed pool")

    def test_retry_budget_is_bounded_then_escalates(
        self, small_gnp, monkeypatch
    ):
        monkeypatch.setattr(recovery, "MAX_RETRIES", 1)
        algo = LocalAlgorithm(name="kill-always", process=_KillAlwaysWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel="mp")
        assert_results_equal(base, got, context="exhausted")
        trail = last_recovery()
        # Exactly one respawn (the budget), then the inline escalation —
        # never a restart from round 0.
        assert trail.count("respawn") == 1
        assert "inline@r2" in trail and "restart" not in trail

    def test_checkpoints_off_restores_legacy_restart(
        self, small_gnp, monkeypatch
    ):
        monkeypatch.setattr(recovery, "CHECKPOINTS_ENABLED", False)
        algo = LocalAlgorithm(name="kill-always", process=_KillAlwaysWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel="mp")
        assert_results_equal(base, got, context="legacy")
        assert last_recovery() == "restart-inline"

    def test_respawn_emits_resilience_warning(self, small_gnp):
        algo = LocalAlgorithm(name="kill-once", process=_KillOnceWorker)
        with pytest.warns(ResilienceWarning, match="respawning"):
            run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                shard_channel="mp")

    def test_honest_run_leaves_no_trail(self, small_gnp):
        run(small_gnp, luby_mis(), seed=5, rng="counter",
            backend="sharded", shards=2, shard_channel="mp")
        assert last_recovery() is None


@needs_fork
class TestCheckpointJournal:
    def test_spill_resume_round_trip(self, small_gnp, monkeypatch, tmp_path):
        """Journal the round-1 checkpoint of a real run, then drive the
        rest of it inline from the spill — outputs, rounds and message
        counts must match the uninterrupted run exactly."""
        monkeypatch.setattr(recovery, "CHECKPOINT_DIR", str(tmp_path))
        orig_write = CheckpointJournal.write

        def keep_round_one(self, checkpoint):
            if checkpoint.round_no <= 1:
                orig_write(self, checkpoint)

        monkeypatch.setattr(CheckpointJournal, "write", keep_round_one)
        result = run(small_gnp, luby_mis(), seed=5, rng="counter",
                     backend="sharded", shards=2, shard_channel="mp")
        journal = CheckpointJournal(str(tmp_path))
        checkpoint = journal.load()
        assert checkpoint.round_no == 1
        assert checkpoint.complete
        assert checkpoint.ledger is not None

        monkeypatch.setattr(CheckpointJournal, "write", orig_write)
        resumed = resume_from_journal(journal)
        assert resumed["outputs"] == result.outputs
        assert resumed["finish_round"] == result.finish_round
        assert resumed["rounds"] == result.rounds
        assert resumed["messages"] == result.messages

    def test_writes_are_atomic(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.write(RoundCheckpoint(3, {0: b"blob"}, {}, {"x": 1}))
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []
        loaded = journal.load()
        assert loaded.round_no == 3 and loaded.blobs == {0: b"blob"}
        assert loaded.ledger == {"x": 1}

    def test_corrupt_journal_rejected(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.write(RoundCheckpoint(2, {0: b"blob"}, {}, None))
        path = journal.path
        # Bit-flip inside the payload: CRC must catch it.
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            journal.load()
        # A torn/garbage file: the magic header must catch it.
        open(path, "wb").write(b"not a checkpoint")
        with pytest.raises(CheckpointCorruptError, match="header"):
            journal.load()
        # A missing file reads as corruption too, not a crash.
        os.unlink(path)
        with pytest.raises(CheckpointCorruptError, match="cannot read"):
            journal.load()

    def test_incomplete_checkpoint_refuses_restore(self):
        import pickle

        checkpoint = RoundCheckpoint(
            4, {0: pickle.dumps("shard-0"), 1: None}
        )
        assert not checkpoint.complete
        with pytest.raises(CheckpointCorruptError, match="shard 1"):
            checkpoint.restore_all()
        # A blob that does not unpickle reads as corruption, not a crash.
        torn = RoundCheckpoint(4, {0: b"not a pickle"})
        with pytest.raises(CheckpointCorruptError, match="unpickle"):
            torn.restore(0)


class TestEagerValidation:
    @pytest.mark.parametrize("bad", (-0.1, 1.0000001, float("nan")))
    def test_probabilities_outside_unit_interval_rejected(self, bad):
        with pytest.raises(ValueError, match="probability"):
            drop(bad)
        with pytest.raises(ValueError, match="probability"):
            garble(bad)

    def test_negative_crash_round_rejected(self):
        with pytest.raises(ValueError, match="crash round"):
            crash_at(-1)

    def test_parameter_errors_are_value_errors(self):
        with pytest.raises(ParameterError):
            drop(2.0)
        assert issubclass(ParameterError, ValueError)

    def test_unknown_labels_rejected_when_nodes_given(self, small_gnp):
        with pytest.raises(ValueError, match="unknown node label"):
            FaultPlan(
                {"no-such-node": crash_at(0)}, nodes=small_gnp.nodes
            )
        # Known labels validate cleanly...
        some = sorted(small_gnp.nodes)[0]
        plan = FaultPlan({some: crash_at(0)}, nodes=small_gnp.nodes)
        assert len(plan) == 1
        # ...and without ``nodes`` unknown labels stay inert (the
        # documented plan-vs-graph independence).
        inert = FaultPlan({"no-such-node": crash_at(0)})
        assert len(inert) == 1

    def test_sample_plan_fraction_validated(self, small_gnp):
        with pytest.raises(ValueError, match="probability"):
            sample_plan(small_gnp, drop(0.5), 1.5, seed=1)


class TestRecoveryDiagnostics:
    def test_step_record_carries_recovery_trail(self):
        """A runner that recovered folds its trail into the backends
        annotation: ``"shard-batch[respawn@r2(s1)]"``."""
        g = SimGraph.from_networkx(nx.path_graph(4))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)

        def runner(domain, inputs, salt):
            note_stepping("shard-batch")
            note_recovery("respawn@r2(s1)")
            return {u: 0 for u in domain.nodes}, 3

        engine.step_with(
            runner, label="B", iteration=1, index=1, guesses={}, budget=3
        )
        record = engine.steps[-1]
        assert record.backends[0] == "shard-batch[respawn@r2(s1)]"
        assert "[" not in (record.backends[1] or "")

    def test_honest_step_has_plain_backends(self):
        g = SimGraph.from_networkx(nx.path_graph(4))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)

        def runner(domain, inputs, salt):
            note_stepping("batch")
            return {u: 0 for u in domain.nodes}, 2

        engine.step_with(
            runner, label="B", iteration=1, index=1, guesses={}, budget=2
        )
        assert engine.steps[-1].backends[0] == "batch"
        assert last_recovery() is None


@needs_fork
class TestSessionChaos:
    """D18 sessions under D15 chaos: a SIGKILL mid-``.rerun()`` heals
    surgically inside the session's warm pool, and the *next*
    ``.mutate()+.rerun()`` on the healed pool is still bit-identical to
    a cold rebuild — the service keeps serving correct bits after
    losing a worker."""

    @pytest.fixture(autouse=True)
    def fail_once_setup(self, monkeypatch, tmp_path):
        monkeypatch.setattr(sharded, "SHARD_RETRY_BACKOFF", 0.01)
        self.flag = tmp_path / "failed-once.flag"
        monkeypatch.setenv(KILL_FLAG, str(self.flag))

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    def test_mid_rerun_kill_then_mutate_rerun_identical(
        self, small_gnp, channel
    ):
        algo = LocalAlgorithm(name="kill-once", process=_KillOnceWorker)
        honest = run(small_gnp, algo, seed=1, backend="reference")
        with open_session(
            small_gnp, backend="sharded", shards=2, shard_channel=channel
        ) as session:
            got = session.rerun(algo, seed=1)
            assert_results_equal(honest, got, context=("session", channel))
            # Surgical (D15): exactly one respawn, no rebuild, no
            # inline escalation — the warm pool survived the kill.
            assert self.flag.exists(), "the fault never fired"
            trail = last_recovery()
            assert trail is not None and trail.startswith("respawn@r2(s")
            assert trail.count("respawn") == 1
            assert "rebuild" not in trail and "inline" not in trail
            if channel == "mp-pooled":
                pool = session.stats()["pool"]
                assert pool is not None and not pool["broken"]
                healed_pids = pool["pids"]
            # The flag file stays on disk: warm workers forked with the
            # env baked in see it and survive — later runs are honest.
            edge = next(iter(session.graph.edges()))
            session.mutate(GraphDelta(del_edges=[edge]))
            again = session.rerun(algo, seed=1)
            assert last_recovery() is None
            truth = small_gnp.to_networkx()
            truth.remove_edge(*edge)
            oracle = SimGraph.from_networkx(
                truth, idents=dict(small_gnp.ident)
            )
            cold = run(oracle, algo, seed=1, backend="reference")
            assert_results_equal(again, cold, context=("post-heal", channel))
            if channel == "mp-pooled":
                # The healed pool (same slots) served the mutated rerun.
                assert session.stats()["pool"]["pids"] == healed_pids
        assert sharded.pool_stats() is None
