"""Verifier behaviour: accept known-good solutions, reject corruptions."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.greedy import (
    greedy_coloring,
    greedy_edge_coloring,
    greedy_matching,
    greedy_mis,
)
from repro.errors import InvalidInstanceError
from repro.local import SimGraph
from repro.problems import (
    EDGE_COLORING,
    MAXIMAL_MATCHING,
    MIS,
    PROPER_COLORING,
    ColoringProblem,
    ColorList,
    EdgeColoringProblem,
    HPartitionProblem,
    SLC,
    SLCInput,
    deg_plus_one_coloring,
    matched_pairs,
    partner_to_paper_encoding,
    ruling_set,
)


def sim(graph):
    return SimGraph.from_networkx(graph)


@pytest.fixture(scope="module")
def g():
    return sim(nx.gnp_random_graph(25, 0.2, seed=4))


class TestMISVerifier:
    def test_accepts_greedy(self, g):
        assert MIS.is_solution(g, {}, greedy_mis(g))

    def test_rejects_adjacent_pair(self, g):
        solution = greedy_mis(g)
        u = next(u for u in g.nodes if solution[u] == 1)
        v = g.neighbors(u)[0]
        solution[v] = 1
        violations = MIS.violations(g, {}, solution)
        assert any("adjacent" in v.reason for v in violations)

    def test_rejects_undominated(self, g):
        solution = {u: 0 for u in g.nodes}
        assert not MIS.is_solution(g, {}, solution)

    def test_missing_outputs_raise(self, g):
        with pytest.raises(InvalidInstanceError):
            MIS.violations(g, {}, {})

    def test_assert_solution_message(self, g):
        with pytest.raises(InvalidInstanceError, match="MIS violated"):
            MIS.assert_solution(g, {}, {u: 0 for u in g.nodes})


class TestRulingSetVerifier:
    def test_mis_is_any_beta_ruling_set(self, g):
        solution = greedy_mis(g)
        for beta in (1, 2, 5):
            assert ruling_set(2, beta).is_solution(g, {}, solution)

    def test_alpha_constraint(self):
        graph = sim(nx.path_graph(4))
        solution = {0: 1, 1: 1, 2: 0, 3: 0}
        problem = ruling_set(2, 3)
        violations = problem.violations(graph, {}, solution)
        assert any("distance" in v.reason for v in violations)

    def test_beta_constraint_tight(self):
        graph = sim(nx.path_graph(5))
        solution = {0: 1, 1: 0, 2: 0, 3: 0, 4: 0}
        assert ruling_set(2, 4).is_solution(graph, {}, solution)
        assert not ruling_set(2, 3).is_solution(graph, {}, solution)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ruling_set(0, 1)


class TestColoringVerifier:
    def test_accepts_greedy(self, g):
        assert PROPER_COLORING.is_solution(g, {}, greedy_coloring(g))

    def test_deg_plus_one_range(self, g):
        colors = greedy_coloring(g)
        assert deg_plus_one_coloring().is_solution(g, {}, colors)

    def test_rejects_monochromatic_edge(self, g):
        colors = greedy_coloring(g)
        u = g.nodes[0]
        v = g.neighbors(u)[0]
        colors[v] = colors[u]
        assert not PROPER_COLORING.is_solution(g, {}, colors)

    def test_range_bound(self):
        graph = sim(nx.path_graph(3))
        problem = ColoringProblem(max_colors=2)
        assert not problem.is_solution(graph, {}, {0: 1, 1: 3, 2: 1})

    def test_non_integer_rejected(self):
        graph = sim(nx.path_graph(2))
        assert not PROPER_COLORING.is_solution(graph, {}, {0: "red", 1: 2})


class TestColorList:
    def test_membership_and_removal(self):
        lst = ColorList(3, 4)
        assert (1, 1) in lst and (3, 4) in lst
        assert (4, 1) not in lst and (0, 1) not in lst
        shrunk = lst.without([(2, 1), (2, 2)])
        assert (2, 1) not in shrunk
        assert shrunk.remaining_copies(2) == 2
        assert shrunk.first_free(2) == 3

    def test_non_int_pairs_rejected(self):
        lst = ColorList(3, 4)
        assert ("x", 1) not in lst
        assert 0 not in lst

    def test_slc_verifier(self):
        graph = sim(nx.path_graph(3))
        inputs = {
            u: SLCInput(2, ColorList(4, 3)) for u in graph.nodes
        }
        outputs = {0: (1, 1), 1: (2, 1), 2: (1, 2)}
        assert SLC.is_solution(graph, inputs, outputs)
        outputs[1] = (9, 9)
        assert not SLC.is_solution(graph, inputs, outputs)


class TestMatchingVerifier:
    def test_accepts_greedy(self, g):
        assert MAXIMAL_MATCHING.is_solution(g, {}, greedy_matching(g))

    def test_matched_pairs_extraction(self):
        graph = sim(nx.path_graph(4))
        outputs = greedy_matching(graph)
        pairs = matched_pairs(graph, outputs)
        assert len(pairs) == 2

    def test_rejects_empty_on_edge(self):
        graph = sim(nx.path_graph(2))
        outputs = {0: ("U", 0 + 1), 1: ("U", 1 + 1)}
        outputs = {u: ("U", graph.ident[u]) for u in graph.nodes}
        assert not MAXIMAL_MATCHING.is_solution(graph, {}, outputs)

    def test_partner_encoding_roundtrip(self):
        graph = sim(nx.cycle_graph(6))
        partner = {}
        for u in range(0, 6, 2):
            v = u + 1
            partner[u] = graph.ident[v]
            partner[v] = graph.ident[u]
        outputs = partner_to_paper_encoding(graph, partner)
        assert MAXIMAL_MATCHING.is_solution(graph, {}, outputs)

    def test_double_match_detected(self):
        graph = sim(nx.path_graph(3))
        value = ("M", 1, 2)
        outputs = {0: value, 1: value, 2: value}
        # 1 would be matched to both 0 and 2 — but the encoding's
        # cleanliness condition already demotes them all to unmatched,
        # so maximality fails instead.
        assert not MAXIMAL_MATCHING.is_solution(graph, {}, outputs)


class TestEdgeColoringVerifier:
    def test_accepts_greedy(self, g):
        colors = greedy_edge_coloring(g)
        assert EDGE_COLORING.is_solution(g, {}, colors)
        delta = g.max_degree
        assert EdgeColoringProblem(2 * delta - 1).is_solution(g, {}, colors)

    def test_rejects_shared_incident_color(self):
        graph = sim(nx.path_graph(3))
        colors = {(0, 1): 1, (1, 2): 1}
        assert not EDGE_COLORING.is_solution(graph, {}, colors)

    def test_rejects_missing_edge(self):
        graph = sim(nx.path_graph(3))
        assert not EDGE_COLORING.is_solution(graph, {}, {(0, 1): 1})

    def test_rejects_phantom_edge(self):
        graph = sim(nx.path_graph(3))
        colors = {(0, 1): 1, (1, 2): 2, (0, 2): 3}
        assert not EDGE_COLORING.is_solution(graph, {}, colors)


class TestHPartitionVerifier:
    def test_single_class_bounded_degree(self):
        graph = sim(nx.cycle_graph(6))
        outputs = {u: 1 for u in graph.nodes}
        assert HPartitionProblem(2).is_solution(graph, {}, outputs)
        assert not HPartitionProblem(1).is_solution(graph, {}, outputs)

    def test_later_classes_counted(self):
        graph = sim(nx.star_graph(5))
        outputs = {0: 2} | {u: 1 for u in range(1, 6)}
        # leaves: 1 neighbour (the hub) in a later class -> fine with t=1
        assert HPartitionProblem(1).is_solution(graph, {}, outputs)
        # hub in class 2 has no same-or-later neighbours
        outputs = {0: 1} | {u: 1 for u in range(1, 6)}
        assert not HPartitionProblem(4).is_solution(graph, {}, outputs)
