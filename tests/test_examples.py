"""Examples smoke test: every ``examples/*.py`` main path runs green.

The examples double as end-to-end documentation of the public API, so a
backend refactor that breaks one of them is a regression even when the
unit suites stay green.  Each module's ``main()`` is imported and
executed (the demos already build small graphs — the whole sweep costs
a few seconds), with stdout captured to keep the test log quiet.
Discovery is by glob, so a new example is covered the day it lands.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path):
    name = f"examples_smoke_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Register before exec so dataclasses/pickling inside examples work.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_examples_directory_discovered():
    assert EXAMPLE_FILES, f"no examples found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_main_runs(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} has no main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
