"""Theorem 3: weakly-dominated parameter sets."""

from __future__ import annotations

import pytest

from repro.algorithms.arboricity import (
    arb_mis_nonuniform_nonly,
    arb_mis_nonuniform_product,
    sqrt_log_witness,
)
from repro.core import (
    DominationWitness,
    ExtendedBound,
    extend_nonuniform,
    mis_pruning,
    theorem1,
    theorem3,
)
from repro.core.bounds import AdditiveBound, log2_of
from repro.errors import ParameterError
from repro.problems import MIS


class TestWitnesses:
    def test_identity_witness_derivation(self):
        w = DominationWitness("a", "n")
        assert w.derive(17) == 17

    def test_sqrt_log_family_witness(self):
        w = sqrt_log_witness()
        # g(a) = 2^(a²); derived ã = max{y : 2^(y²) ≤ ñ}
        assert w.derive(2) == 1
        assert w.derive(16) == 2
        assert w.derive(2**9) == 3
        assert w.derive(2**16) == 4

    def test_cube_witness(self):
        from repro.params import M_DOMINATED_BY_N

        # m ≤ n³: derived m̃ should be ≥ ñ³-ish
        derived = M_DOMINATED_BY_N.derive(10)
        assert derived >= 1000

    def test_witness_via_must_be_bound_param(self):
        bound = AdditiveBound([log2_of("n")])
        with pytest.raises(ParameterError):
            ExtendedBound(bound, [DominationWitness("a", "Delta")])


class TestExtendedBound:
    def test_vectors_carry_derived_guesses(self):
        bound = AdditiveBound([log2_of("n", 2.0)])
        extended = ExtendedBound(bound, [sqrt_log_witness()])
        vectors = extended.set_sequence(64)
        assert vectors
        for vector in vectors:
            assert "a" in vector and "n" in vector
            assert 2 ** (vector["a"] ** 2) <= vector["n"]
            assert 2 ** ((vector["a"] + 1) ** 2) > vector["n"]

    def test_inherits_sequence_number(self):
        bound = AdditiveBound([log2_of("n", 2.0)])
        extended = ExtendedBound(bound, [sqrt_log_witness()])
        assert extended.sequence_number(100) == bound.sequence_number(100)

    def test_value_ignores_derived_params(self):
        bound = AdditiveBound([log2_of("n", 2.0)])
        extended = ExtendedBound(bound, [sqrt_log_witness()])
        assert extended.value({"n": 16}) == bound.value({"n": 16})


class TestTheorem3:
    def test_uncovered_parameter_rejected(self):
        nu = arb_mis_nonuniform_nonly()  # Γ = {a, n}, Λ = {n}
        with pytest.raises(ParameterError):
            extend_nonuniform(nu, [])

    def test_arb_nonly_on_low_arboricity_family(self, tree):
        uni = theorem3(
            arb_mis_nonuniform_nonly(), mis_pruning(), [sqrt_log_witness()]
        )
        result = uni.run(tree, seed=5)
        assert MIS.is_solution(tree, {}, result.outputs)
        assert uni.requires == ()

    def test_arb_nonly_catalog_low_arb(self, catalog):
        uni = theorem3(
            arb_mis_nonuniform_nonly(), mis_pruning(), [sqrt_log_witness()]
        )
        for name in ("path16", "grid4x6", "tree40", "caterpillar", "cycle17"):
            graph = catalog[name]
            result = uni.run(graph, seed=2)
            assert MIS.is_solution(graph, {}, result.outputs), name

    def test_product_path_still_works(self, catalog):
        uni = theorem1(arb_mis_nonuniform_product(), mis_pruning())
        graph = catalog["forest3_32"]
        result = uni.run(graph, seed=4)
        assert MIS.is_solution(graph, {}, result.outputs)

    def test_dispatches_randomized_kind(self):
        from repro.algorithms.luby import luby_mc_nonuniform
        from repro.core.randomized import UniformLasVegas

        nu = luby_mc_nonuniform()
        uni = theorem3(nu, mis_pruning(), [])
        assert isinstance(uni, UniformLasVegas)
