"""Section 6.3 realized: uniform strong g-coloring with forbidden lists.

The paper closes by proposing strong g-coloring (forbidden lists) as
the route to prunable coloring; these tests exercise the concrete
construction: the pruner's definitional properties, the capacity
invariant, and the Theorem-1 uniformization end to end.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.forbidden_coloring import (
    ForbiddenPruning,
    forbidden_coloring,
    forbidden_coloring_bound,
    forbidden_coloring_nonuniform,
)
from repro.algorithms.greedy import greedy_coloring
from repro.core import theorem1
from repro.core.domain import PhysicalDomain
from repro.local import SimGraph, run
from repro.problems.forbidden import (
    STRONG_COLORING,
    ForbiddenInput,
    fresh_inputs,
)


def sim(graph):
    return SimGraph.from_networkx(graph)


graphs = st.builds(
    lambda n, p, seed: nx.gnp_random_graph(n, p, seed=seed),
    n=st.integers(min_value=1, max_value=20),
    p=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10**6),
)


class TestProblem:
    def test_accepts_greedy_with_room(self):
        g = sim(nx.cycle_graph(8))
        inputs = fresh_inputs(g, g=5)
        colors = greedy_coloring(g)
        assert STRONG_COLORING.is_solution(g, inputs, colors)

    def test_rejects_forbidden_choice(self):
        g = sim(nx.path_graph(2))
        inputs = {
            0: ForbiddenInput(4, {1}),
            1: ForbiddenInput(4),
        }
        assert not STRONG_COLORING.is_solution(g, inputs, {0: 1, 1: 2})

    def test_capacity_invariant_checked(self):
        g = sim(nx.star_graph(4))
        inputs = {u: ForbiddenInput(3) for u in g.nodes}  # hub deg 4 > g-1
        colors = {0: 1} | {u: 2 for u in range(1, 5)}
        violations = STRONG_COLORING.violations(g, inputs, colors)
        assert any("capacity" in v.reason for v in violations)


class TestPruner:
    def test_solution_detection(self):
        g = sim(nx.gnp_random_graph(15, 0.3, seed=2))
        inputs = fresh_inputs(g, g=g.max_degree + 1)
        colors = greedy_coloring(g)
        result = ForbiddenPruning().apply(PhysicalDomain(g), inputs, colors)
        assert result.pruned == set(g.nodes)

    def test_survivors_inherit_forbidden_colors(self):
        g = sim(nx.path_graph(3))
        inputs = fresh_inputs(g, g=4)
        tentative = {0: 1, 1: 1, 2: 2}  # 0/1 clash; 2 is safe
        result = ForbiddenPruning().apply(PhysicalDomain(g), inputs, tentative)
        assert result.pruned == {2}
        assert 2 in result.new_inputs[1].forbidden
        assert 2 not in result.new_inputs[0].forbidden

    @given(graph=graphs, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_gluing_property(self, graph, data):
        """Prune arbitrary tentative colors, solve the rest, combine."""
        g = sim(graph)
        palette = g.max_degree + 1 + 2
        inputs = fresh_inputs(g, g=palette)
        tentative = {
            u: data.draw(
                st.integers(min_value=0, max_value=palette + 1),
                label=f"y({u})",
            )
            for u in g.nodes
        }
        pruner = ForbiddenPruning()
        result = pruner.apply(PhysicalDomain(g), inputs, tentative)
        survivors = set(g.nodes) - result.pruned
        residual = g.subgraph(survivors)
        # solve the residual instance exactly, respecting new forbidden sets
        solution = {}
        for u in sorted(survivors, key=lambda u: g.ident[u]):
            x = result.new_inputs[u]
            used = {
                solution[v]
                for v in residual.neighbors(u)
                if v in solution
            }
            choice = next(
                c
                for c in range(1, x.g + 1)
                if c not in used and c not in x.forbidden
            )
            solution[u] = choice
        combined = {
            u: (tentative[u] if u in result.pruned else solution[u])
            for u in g.nodes
        }
        assert STRONG_COLORING.is_solution(g, inputs, combined), (
            STRONG_COLORING.violations(g, inputs, combined)[:3]
        )

    @given(graph=graphs, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant_preserved(self, graph, data):
        g = sim(graph)
        palette = g.max_degree + 1
        inputs = fresh_inputs(g, g=palette)
        tentative = {
            u: data.draw(
                st.integers(min_value=1, max_value=palette), label=f"y({u})"
            )
            for u in g.nodes
        }
        result = ForbiddenPruning().apply(PhysicalDomain(g), inputs, tentative)
        survivors = set(g.nodes) - result.pruned
        residual = g.subgraph(survivors)
        for u in survivors:
            x = result.new_inputs[u]
            assert len(x.forbidden) + residual.degree(u) + 1 <= x.g


class TestAlgorithm:
    def test_correct_with_good_guesses(self, small_gnp):
        palette = small_gnp.max_degree + 1
        inputs = fresh_inputs(small_gnp, g=palette)
        guesses = {
            "m": small_gnp.max_ident,
            "Delta": max(1, small_gnp.max_degree),
        }
        result = run(
            small_gnp, forbidden_coloring(), inputs=inputs, guesses=guesses
        )
        assert STRONG_COLORING.is_solution(small_gnp, inputs, result.outputs)
        bound = forbidden_coloring_bound().value(guesses)
        assert result.rounds <= bound

    def test_respects_preexisting_forbidden_sets(self):
        g = sim(nx.cycle_graph(6))
        inputs = {
            u: ForbiddenInput(6, {1, 2} if u % 2 == 0 else set())
            for u in g.nodes
        }
        guesses = {"m": g.max_ident, "Delta": 2}
        result = run(g, forbidden_coloring(), inputs=inputs, guesses=guesses)
        assert STRONG_COLORING.is_solution(g, inputs, result.outputs)


class TestUniformization:
    """The artifact §6.3 asks for: a uniform strong-coloring algorithm."""

    def test_theorem1_uniform_strong_coloring(self, small_gnp):
        palette = small_gnp.max_degree + 3
        inputs = fresh_inputs(small_gnp, g=palette)
        uniform = theorem1(forbidden_coloring_nonuniform(), ForbiddenPruning())
        result = uniform.run(small_gnp, inputs=inputs, seed=3)
        assert result.completed
        assert STRONG_COLORING.is_solution(
            small_gnp, inputs, result.outputs
        ), STRONG_COLORING.violations(small_gnp, inputs, result.outputs)[:3]

    def test_uniform_on_catalog_slice(self, catalog):
        uniform = theorem1(forbidden_coloring_nonuniform(), ForbiddenPruning())
        for name in ("cycle17", "grid4x6", "tree40", "regular4_30"):
            graph = catalog[name]
            inputs = fresh_inputs(graph, g=graph.max_degree + 2)
            result = uniform.run(graph, inputs=inputs, seed=4)
            assert STRONG_COLORING.is_solution(
                graph, inputs, result.outputs
            ), name
