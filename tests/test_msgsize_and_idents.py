"""Message-size estimation (§6.2) and adversarial identity regimes."""

from __future__ import annotations

import pytest

from repro.algorithms.fast_mis import fast_mis_nonuniform
from repro.algorithms.hash_luby import hash_luby_nonuniform
from repro.algorithms.luby import luby_mis
from repro.core import mis_pruning, theorem1
from repro.graphs import families, identifiers
from repro.local import SimGraph, estimate_bits, run
from repro.problems import MIS


class TestEstimateBits:
    def test_integers_scale_with_magnitude(self):
        assert estimate_bits(1) < estimate_bits(2**40)

    def test_none_and_bool_are_tiny(self):
        assert estimate_bits(None) == 1
        assert estimate_bits(True) == 1

    def test_containers_sum(self):
        flat = estimate_bits((1, 2, 3))
        assert flat > estimate_bits(1) + estimate_bits(2) + estimate_bits(3)

    def test_dicts_count_keys_and_values(self):
        assert estimate_bits({1: 2}) > estimate_bits(1) + estimate_bits(2)

    def test_strings(self):
        assert estimate_bits("abcd") == 32


class TestTrackBits:
    def test_disabled_by_default(self, small_gnp):
        result = run(small_gnp, luby_mis(), seed=1)
        assert result.max_message_bits is None

    def test_enabled_reports_positive(self, small_gnp):
        result = run(small_gnp, luby_mis(), seed=1, track_bits=True)
        assert result.max_message_bits > 0

    def test_payloads_track_identity_space_not_guesses(self, small_gnp):
        """§6.2: inflating a guess must not inflate payloads."""
        from repro.algorithms.fast_mis import fast_mis

        base = run(
            small_gnp,
            fast_mis(),
            guesses={"Delta": small_gnp.max_degree, "m": small_gnp.max_ident},
            seed=1,
            track_bits=True,
        )
        inflated = run(
            small_gnp,
            fast_mis(),
            guesses={
                "Delta": small_gnp.max_degree,
                "m": small_gnp.max_ident**3,
            },
            seed=1,
            track_bits=True,
            max_rounds=50_000,
        )
        assert inflated.max_message_bits <= base.max_message_bits + 16


class TestAdversarialIdentities:
    """Uniformization must survive hostile identity assignments."""

    @pytest.mark.parametrize("scheme", ["sequential", "adversarial_path"])
    def test_uniform_mis_under_hostile_ids(self, scheme):
        graph = families.gnp(40, 0.12, seed=9)
        idents = identifiers.SCHEMES[scheme](graph)
        sim = SimGraph.from_networkx(graph, idents=idents)
        for box in (hash_luby_nonuniform(), fast_mis_nonuniform()):
            uniform = theorem1(box, mis_pruning())
            result = uniform.run(sim, seed=5)
            assert MIS.is_solution(sim, {}, result.outputs), (
                scheme,
                box.name,
            )

    def test_huge_sparse_identities(self):
        """Identities near the poly(n) ceiling stress log* m terms."""
        graph = families.random_regular(30, 4, seed=1)
        idents = identifiers.poly_idents(graph, seed=1, exponent=3)
        sim = SimGraph.from_networkx(graph, idents=idents)
        uniform = theorem1(fast_mis_nonuniform(), mis_pruning())
        result = uniform.run(sim, seed=2)
        assert MIS.is_solution(sim, {}, result.outputs)
